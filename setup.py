"""Setuptools shim so editable installs work without the wheel package.

The offline environment ships setuptools 65 but no ``wheel`` module, so
PEP 517 editable builds (``pip install -e .``) fail with
``invalid command 'bdist_wheel'``.  ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on newer toolchains) uses this
shim; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
