"""Trace a batched decode and read engine utilization off the trace.

Enables the span tracer, runs a batch-8 decode on the OnePlus 12 (V75)
profile, exports a Perfetto/Chrome trace with one lane per simulated
engine (HMX / HVX / DMA / CPU), and prints the HMX idle fraction — the
headroom that test-time scaling converts into accuracy (paper §4).

Run:  python examples/profile_decode.py
Then open profile_decode_trace.json in https://ui.perfetto.dev

See also: `python -m repro profile` for the same flow as a CLI command.
"""

from __future__ import annotations

from repro.llm import (
    ByteTokenizer,
    InferenceEngine,
    NPUTransformer,
    Sampler,
    TransformerWeights,
    tiny_config,
)
from repro.npu import TimingModel, get_device
from repro.obs import (
    MetricsRegistry,
    Tracer,
    engine_utilization,
    set_metrics,
    set_tracer,
    write_chrome_trace,
)

TRACE_PATH = "profile_decode_trace.json"


def main() -> None:
    config = tiny_config(vocab_size=512)
    weights = TransformerWeights.generate(config, seed=0, embedding_std=0.1)
    model = NPUTransformer(weights, strategy="ours", attention_method="lut")

    device = get_device("oneplus_12")
    engine_batch = 8
    engine = InferenceEngine(model, batch=engine_batch, max_context=64,
                             device=device)
    print(f"device: {device.name} ({device.soc}, NPU {device.npu.name})")

    # install a fresh tracer + metrics registry for this run
    tracer = Tracer(enabled=True)
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(MetricsRegistry())
    try:
        tokenizer = ByteTokenizer(config.vocab_size)
        prompt = tokenizer.encode("What is 12 * 7?")
        result = engine.generate(prompt, max_new_tokens=12,
                                 sampler=Sampler(temperature=1.0, seed=7))
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)

    print(f"decoded {result.total_generated_tokens} tokens across "
          f"{len(result.sequences)} candidates "
          f"({result.n_decode_steps} batched steps)")

    timing = TimingModel(device.npu)
    trace = write_chrome_trace(TRACE_PATH, tracer, timing=timing)
    print(f"trace: {len(trace['traceEvents'])} events -> {TRACE_PATH} "
          "(open in https://ui.perfetto.dev)")

    # the paper's headline observation, recovered from the trace alone:
    # even at batch 8 the matrix engine spends most of the decode idle.
    util = engine_utilization(trace)
    print(f"\nengine utilization over the simulated timeline (batch "
          f"{engine_batch}):")
    for lane in ("HMX", "HVX", "DMA", "CPU"):
        print(f"  {lane:4s} busy {100 * util[lane]:5.1f}%")
    hmx_idle = 1.0 - util["HMX"]
    print(f"\nHMX idle fraction: {hmx_idle:.1%} — the slack test-time "
          "scaling spends on extra candidates instead of latency.")


if __name__ == "__main__":
    main()
