"""Deployment planner: which (model, device, budget) configurations work?

For every evaluated model and device this script checks whether the
inference session fits the NPU virtual address space (the 8 Gen 2
limitation), then reports throughput, power and energy per token across
test-time-scaling budgets — the operational questions the paper's
evaluation answers.

Run:  python examples/device_planner.py
"""

from __future__ import annotations

from repro.errors import AddressSpaceError
from repro.harness.report import render_table
from repro.llm import MODEL_CONFIGS
from repro.npu import DEVICES
from repro.perf import DecodePerformanceModel, MemoryModel, PowerModel

CONTEXT_BUDGET = 4096
BATCHES = (1, 8, 16)


def main() -> None:
    rows = []
    for device in DEVICES.values():
        for name, config in MODEL_CONFIGS.items():
            heap = device.rpcmem_heap()
            try:
                heap.alloc(config.npu_session_bytes(CONTEXT_BUDGET),
                           name=f"{name}-session")
            except AddressSpaceError:
                rows.append([device.short_name, name, "-", "-", "-", "-",
                             "no: NPU VA space"])
                continue
            perf = DecodePerformanceModel(config, device)
            power = PowerModel(config, device)
            memory = MemoryModel(config, device, CONTEXT_BUDGET)
            for batch in BATCHES:
                sample = power.sample(batch)
                rows.append([
                    device.short_name, name, batch,
                    round(perf.decode_throughput(batch, 1024), 1),
                    round(sample.power_w, 2),
                    round(1e3 * sample.energy_per_token_j, 1),
                    f"yes ({memory.dmabuf_bytes() / 2**20:.0f} MiB dmabuf)",
                ])
    print(render_table(
        f"Deployment planner (context budget {CONTEXT_BUDGET} tokens)",
        ["device", "model", "batch", "decode tok/s", "power (W)",
         "energy/tok (mJ)", "fits NPU?"], rows))
    print("\n'no: NPU VA space' rows reproduce the paper's 8 Gen 2 "
          "limitation: >=3B models cannot map into a 2 GiB session.")


if __name__ == "__main__":
    main()
