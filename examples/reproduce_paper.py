"""Regenerate every table and figure of the paper in one run.

Walks the experiment registry (Tables 1-5, Figs. 5, 8, 10-17), prints
each regenerated artifact with its paper-vs-measured comparison, and
finishes with a summary.  The accuracy tables take a couple of minutes
(they run real quantization/attention numerics on the probe models).

Run:  python examples/reproduce_paper.py [experiment-id ...]
"""

from __future__ import annotations

import sys
import time

from repro.harness import EXPERIMENTS, run_experiment


def main() -> None:
    requested = sys.argv[1:] or list(EXPERIMENTS)
    unknown = [eid for eid in requested if eid not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment ids {unknown}; "
                         f"known: {sorted(EXPERIMENTS)}")
    durations = {}
    for eid in requested:
        start = time.perf_counter()
        result = run_experiment(eid)
        durations[eid] = time.perf_counter() - start
        print(result.render())
        print()
    print("=" * 60)
    print(f"regenerated {len(requested)} artifacts")
    for eid in requested:
        print(f"  {eid:<8s} {durations[eid]:6.1f} s")


if __name__ == "__main__":
    main()
