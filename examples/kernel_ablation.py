"""Kernel ablations on the simulated NPU (the Figs. 14/15 experiments).

Runs the *functional* kernels — real FP16 numerics plus instruction
traces — and converts the traces into per-generation latency:

* GEMV dequantization: baseline scatter vs HMX-layout tile groups vs
  super-group coalescing vs the no-dequantization bound;
* on-chip softmax: FP32 polynomial exp vs FP16 polynomial vs LUT.

Run:  python examples/kernel_ablation.py
"""

from __future__ import annotations

import numpy as np

from repro.harness.report import render_table
from repro.kernels import MixedPrecisionGemm, OnChipSoftmax
from repro.npu import GENERATIONS, TCM, HVXContext, KernelCost, TimingModel


def gemm_ablation() -> None:
    rng = np.random.default_rng(0)
    weight = rng.normal(0, 0.05, (1536, 1536)).astype(np.float32)
    activation = rng.normal(0, 1, 1536).astype(np.float16)

    rows = []
    for gen_name, generation in GENERATIONS.items():
        timing = TimingModel(generation)
        seconds = {}
        for strategy in ("baseline", "hmx_layout", "ours", "no_dequant"):
            qfloat = "ieee" if generation.ieee_float else "qfloat"
            gemm = MixedPrecisionGemm(strategy, qfloat_mode=qfloat)
            prepared = gemm.prepare_weight(weight)
            _, cost = gemm.gemv(activation, prepared)
            seconds[strategy] = timing.seconds(cost)
        rows.append([gen_name,
                     round(1e3 * seconds["baseline"], 3),
                     round(1e3 * seconds["hmx_layout"], 3),
                     round(1e3 * seconds["ours"], 3),
                     round(1e3 * seconds["no_dequant"], 3),
                     round(seconds["baseline"] / seconds["ours"], 1)])
    print(render_table(
        "GEMV dequantization ablation (1536x1536 Q4_0, per generation)",
        ["NPU", "baseline (ms)", "HMX layout (ms)", "ours (ms)",
         "no dequant (ms)", "speedup"], rows))


def softmax_ablation() -> None:
    rng = np.random.default_rng(1)
    timing = TimingModel(GENERATIONS["V75"])
    rows = []
    for n_q, n_kv in ((1, 4096), (16, 4096), (16, 16384)):
        scores = rng.normal(0, 2, (n_q, n_kv)).astype(np.float16)
        seconds = {}
        errors = {}
        reference = None
        for method in ("poly32", "poly16", "lut"):
            hvx = HVXContext()
            softmax = OnChipSoftmax(hvx, method, tcm=TCM())
            out = softmax(scores).astype(np.float64)
            if reference is None:
                s64 = scores.astype(np.float64)
                reference = np.exp(s64 - s64.max(axis=1, keepdims=True))
                reference /= reference.sum(axis=1, keepdims=True)
            errors[method] = float(np.abs(out - reference).max())
            seconds[method] = timing.seconds(KernelCost.from_trace(hvx.trace))
        rows.append([f"{n_q}x{n_kv}",
                     round(1e6 * seconds["poly32"], 1),
                     round(1e6 * seconds["poly16"], 1),
                     round(1e6 * seconds["lut"], 1),
                     round(seconds["poly32"] / seconds["lut"], 2),
                     f"{errors['lut']:.1e}"])
    print()
    print(render_table(
        "On-chip softmax: exp implementation ablation (V75)",
        ["Nq x Nkv", "f32 exp (us)", "f16 exp (us)", "LUT exp (us)",
         "LUT speedup", "LUT max abs err"], rows))


if __name__ == "__main__":
    gemm_ablation()
    softmax_ablation()
