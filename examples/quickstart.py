"""Quickstart: run a transformer on the simulated Hexagon NPU.

Builds a tiny (but architecturally real: GQA + RoPE + SwiGLU) model with
synthetic weights, quantizes it with the paper's tile-group scheme, and
generates a batch of candidate continuations — the core test-time-scaling
workload — while reporting what the NPU actually executed.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.llm import (
    ByteTokenizer,
    InferenceEngine,
    NPUTransformer,
    Sampler,
    TransformerWeights,
    tiny_config,
)
from repro.npu import TimingModel, get_device


def main() -> None:
    # 1. a small model with the real architecture and synthetic weights
    config = tiny_config(vocab_size=512)
    weights = TransformerWeights.generate(config, seed=0, embedding_std=0.1)

    # 2. quantize + place it on the simulated NPU (tile-group Q4_0,
    #    Q8_0 down-projection, FP16 LUT FlashAttention)
    model = NPUTransformer(weights, strategy="ours", attention_method="lut")

    # 3. an engine bound to a real device profile (OnePlus 12 / V75);
    #    weights + KV cache are mapped into the NPU VA space
    device = get_device("oneplus_12")
    engine = InferenceEngine(model, batch=4, max_context=64, device=device)
    print(f"device: {device.name} ({device.soc}, NPU {device.npu.name})")
    print(f"NPU-mapped memory: {engine.heap.total_mapped_bytes() / 2**20:.1f} MiB")

    # 4. one prefill, four parallel candidates — the Best-of-N decode shape
    tokenizer = ByteTokenizer(config.vocab_size)
    prompt = tokenizer.encode("What is 12 * 7?")
    result = engine.generate(prompt, max_new_tokens=12,
                             sampler=Sampler(temperature=1.0, seed=7))

    print(f"\nprompt tokens: {len(prompt)}, candidates: "
          f"{len(result.sequences)}")
    for i, seq in enumerate(result.sequences):
        print(f"  candidate {i}: {seq}")

    # 5. what did the NPU execute? (per decode step, batch of 4)
    timing = TimingModel(device.npu)
    step = result.decode_costs[0].npu
    print("\nper-decode-step NPU cost (batch 4):")
    print(f"  HMX tile MACs : {step.hmx_tile_macs}")
    print(f"  HVX packets   : {step.hvx_packets}")
    print(f"  DMA bytes     : {step.dma_bytes}")
    print(f"  simulated time: {timing.seconds(step) * 1e6:.1f} us")
    print("\nthe HMX work is the same for batch 1 and batch 4 — that idle "
          "capacity is what test-time scaling rides on.")


if __name__ == "__main__":
    main()
