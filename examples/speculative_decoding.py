"""Speculative decoding on the simulated NPU (the §9 extension).

The paper notes that generalized speculative decoding and test-time
scaling share the Generate-then-Verify structure, so the NPU system
supports it "seamlessly": verifying k drafted tokens in one target
forward costs the same HMX time as decoding one token.

This demo drafts with a 1-layer model, verifies with the full tiny
model, and reports acceptance rate, target-pass savings, and the
(provable) equality with plain greedy decoding.

Run:  python examples/speculative_decoding.py
"""

from __future__ import annotations

import numpy as np

from repro.llm import (
    NPUTransformer,
    SpeculativeDecoder,
    TransformerWeights,
    tiny_config,
)
from repro.npu import TimingModel, V75


def greedy_reference(model: NPUTransformer, prompt, n: int):
    cache = model.new_cache(1, len(prompt) + n + 2)
    logits, cost = model.forward(np.array([prompt]), cache)
    total = cost.npu
    out = [int(logits[0, -1].argmax())]
    for _ in range(n - 1):
        logits, cost = model.forward(np.array([[out[-1]]]), cache)
        total.merge(cost.npu)
        out.append(int(logits[0, -1].argmax()))
    return out, total


def main() -> None:
    target_cfg = tiny_config(vocab_size=512)
    target = NPUTransformer(
        TransformerWeights.generate(target_cfg, seed=0, embedding_std=0.1))
    draft_cfg = tiny_config(n_layers=1, hidden_dim=32, n_heads=2,
                            n_kv_heads=1, intermediate_dim=64, vocab_size=512)
    draft = NPUTransformer(
        TransformerWeights.generate(draft_cfg, seed=1, embedding_std=0.1))

    prompt = [3, 1, 4, 1, 5, 9]
    n_tokens = 24
    timing = TimingModel(V75)

    reference, ref_cost = greedy_reference(target, prompt, n_tokens)

    print(f"{'draft':>12s} {'accept':>7s} {'tgt passes':>10s} "
          f"{'tok/pass':>8s} {'lossless':>8s}")
    for label, draft_model, k in (("none (ref)", None, 0),
                                  ("weak 1-layer", draft, 4),
                                  ("self (ideal)", target, 4)):
        if draft_model is None:
            print(f"{label:>12s} {'-':>7s} {n_tokens:>10d} {1.0:>8.2f} "
                  f"{'-':>8s}")
            continue
        decoder = SpeculativeDecoder(target, draft_model, draft_len=k)
        result = decoder.generate(prompt, n_tokens)
        print(f"{label:>12s} {result.acceptance_rate:>7.2f} "
              f"{result.target_forward_passes:>10d} "
              f"{result.tokens_per_target_pass:>8.2f} "
              f"{str(result.tokens == reference):>8s}")

    print(f"\ntarget NPU time, plain greedy: "
          f"{1e6 * timing.seconds(ref_cost):.1f} us for {n_tokens} tokens")
    print("a good draft model cuts target passes ~4x while producing "
          "byte-identical output — the same idle-HMX effect that makes "
          "test-time scaling cheap.")


if __name__ == "__main__":
    main()
