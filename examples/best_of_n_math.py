"""Test-time scaling study: can a 1.5B model beat a 3B model on-device?

Reproduces the paper's headline experiment (Fig. 10) end to end:

1. sweep Best-of-N / Beam Search budgets for the small and large model
   on the synthetic MATH500 environment;
2. price every configuration with the device latency model
   (batched decode on the OnePlus 12 NPU);
3. print the Pareto comparison.

Run:  python examples/best_of_n_math.py
"""

from __future__ import annotations

from repro.harness.report import render_table
from repro.llm import get_model_config
from repro.npu import get_device
from repro.perf import DecodePerformanceModel
from repro.tts import TaskDataset, budget_sweep, get_model_profile

BUDGETS = (1, 2, 4, 8, 16)
DEVICE = "oneplus_12"
DATASET = "math500"


def main() -> None:
    device = get_device(DEVICE)
    dataset = TaskDataset.generate(DATASET, n_problems=600, seed=0)

    rows = []
    frontier = {}
    for model in ("qwen2.5-1.5b", "qwen2.5-3b"):
        profile = get_model_profile(model)
        perf = DecodePerformanceModel(get_model_config(model), device)
        for method in ("best_of_n", "beam_search"):
            curve = budget_sweep(method, dataset, profile, budgets=BUDGETS,
                                 seed=17)
            for budget, accuracy in zip(curve.budgets, curve.accuracies):
                latency_ms = 1e3 * perf.decode_latency(budget, context=1024)
                rows.append([model, method, budget,
                             round(100 * accuracy, 1), round(latency_ms, 1)])
                frontier[(model, method, budget)] = (accuracy, latency_ms)

    print(render_table(
        f"Accuracy vs decode latency ({DATASET}, {device.name})",
        ["model", "method", "budget N", "accuracy (%)", "latency/step (ms)"],
        rows))

    base_3b_acc, base_3b_lat = frontier[("qwen2.5-3b", "best_of_n", 1)]
    winners = [
        (budget, acc, lat)
        for (model, method, budget), (acc, lat) in frontier.items()
        if model == "qwen2.5-1.5b" and method == "best_of_n"
        and acc > base_3b_acc and lat < base_3b_lat
    ]
    print(f"\n3B base point: {100 * base_3b_acc:.1f}% at "
          f"{base_3b_lat:.1f} ms/step")
    if winners:
        print("1.5B + Best-of-N configurations that dominate it "
              "(higher accuracy, lower latency):")
        for budget, acc, lat in sorted(winners):
            print(f"  N={budget:<3d} {100 * acc:.1f}% at {lat:.1f} ms/step")
    else:
        print("no dominating 1.5B configuration found in this sweep")


if __name__ == "__main__":
    main()
