"""NPU-side computation thread pool and kernel scheduler (§6).

The paper's operator library implements "computation kernels, power
management, hardware resource management, and a computation thread
pool".  This module models that runtime layer: kernels are submitted as
jobs with HVX-packet work estimates and optional dependencies; the pool
schedules them across the generation's HVX contexts (list scheduling,
longest-job-first among ready jobs) and reports the makespan.

The timing model's assumption that vector work divides evenly across
contexts (``TimingModel.hvx_seconds``) is an idealization; the scheduler
computes the *actual* makespan of a job set, so tests can bound the
idealization error and experiments can study scheduling effects
(e.g. one huge dequantization job serializing behind small ones).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..errors import NPUError
from .timing import KernelCost, NPUGenerationTiming, TimingModel

__all__ = ["KernelJob", "ScheduleResult", "NPUThreadPool"]


@dataclass
class KernelJob:
    """One schedulable kernel invocation."""

    name: str
    cost: KernelCost
    depends_on: "tuple[str, ...]" = ()


@dataclass
class ScheduledSpan:
    """Placement of one job on one HVX context."""

    job: str
    context: int
    start: float
    end: float


@dataclass
class ScheduleResult:
    """Outcome of scheduling a job set."""

    makespan_seconds: float
    spans: List[ScheduledSpan]
    context_busy_seconds: List[float]

    @property
    def utilization(self) -> float:
        """Mean busy fraction of the HVX contexts over the makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        busy = sum(self.context_busy_seconds)
        return busy / (len(self.context_busy_seconds) * self.makespan_seconds)


class NPUThreadPool:
    """List scheduler for kernel jobs over the HVX contexts."""

    def __init__(self, generation: NPUGenerationTiming) -> None:
        self.generation = generation
        self.timing = TimingModel(generation)

    def _job_seconds(self, job: KernelJob) -> float:
        # one job occupies a single HVX context: serial vector time
        return self.timing.hvx_seconds(job.cost, hvx_threads=1)

    def schedule(self, jobs: Sequence[KernelJob]) -> ScheduleResult:
        """Schedule jobs respecting dependencies; return the makespan.

        Ready jobs are dispatched longest-first onto the earliest-free
        context (classic LPT list scheduling).
        """
        by_name: Dict[str, KernelJob] = {}
        for job in jobs:
            if job.name in by_name:
                raise NPUError(f"duplicate job name {job.name!r}")
            by_name[job.name] = job
        for job in jobs:
            for dep in job.depends_on:
                if dep not in by_name:
                    raise NPUError(
                        f"job {job.name!r} depends on unknown job {dep!r}")

        n_contexts = self.generation.hvx_contexts
        context_free = [0.0] * n_contexts
        finish: Dict[str, float] = {}
        spans: List[ScheduledSpan] = []
        remaining: Set[str] = set(by_name)

        while remaining:
            ready = [name for name in remaining
                     if all(dep in finish for dep in by_name[name].depends_on)]
            if not ready:
                raise NPUError("dependency cycle among kernel jobs")
            ready.sort(key=lambda n: -self._job_seconds(by_name[n]))
            progressed = False
            for name in ready:
                job = by_name[name]
                dep_ready = max((finish[d] for d in job.depends_on),
                                default=0.0)
                ctx = min(range(n_contexts), key=lambda c: context_free[c])
                start = max(context_free[ctx], dep_ready)
                duration = self._job_seconds(job)
                end = start + duration
                context_free[ctx] = end
                finish[name] = end
                spans.append(ScheduledSpan(job=name, context=ctx, start=start,
                                           end=end))
                remaining.discard(name)
                progressed = True
            if not progressed:  # pragma: no cover - defensive
                raise NPUError("scheduler made no progress")

        makespan = max((s.end for s in spans), default=0.0)
        busy = [0.0] * n_contexts
        for span in spans:
            busy[span.context] += span.end - span.start
        return ScheduleResult(makespan_seconds=makespan, spans=spans,
                              context_busy_seconds=busy)

    def idealization_gap(self, jobs: Sequence[KernelJob]) -> float:
        """Ratio of the scheduled makespan to the even-split ideal.

        1.0 means the timing model's even-division assumption is exact
        for this job set; larger values quantify scheduling loss.
        """
        result = self.schedule(jobs)
        total = KernelCost()
        for job in jobs:
            total.merge(job.cost)
        ideal = self.timing.hvx_seconds(total)
        if ideal <= 0:
            return 1.0
        return result.makespan_seconds / ideal
