"""Hexagon NPU model: functional HVX/HMX simulation plus a timing model.

Public surface:

* :mod:`repro.npu.datatypes` — FP16/FP32 bit manipulation, qfloat.
* :mod:`repro.npu.hvx` — vector unit (``vlut16``, ``vgather``, shuffles,
  FP16 arithmetic) with instruction tracing.
* :mod:`repro.npu.hmx` — matrix unit: 32x32 FP16 tiles, Fig. 4 layout.
* :mod:`repro.npu.memory` — TCM, DMA, rpcmem shared buffers.
* :mod:`repro.npu.timing` — calibrated per-generation cost model.
* :mod:`repro.npu.soc` — device registry (Table 3), CPU model, FastRPC.
"""

from .datatypes import QFloatMode
from .hmx import (
    TILE_DIM,
    HMXUnit,
    matrix_from_hmx_layout,
    matrix_to_hmx_layout,
    tile_permute,
    tile_unpermute,
)
from .hvx import VECTOR_BYTES, HVXContext, InstructionTrace
from .memory import DMAEngine, MultiSessionHeap, RpcMemHeap, SharedBuffer, TCM
from .power_mgmt import GOVERNORS, PowerGovernor, apply_governor
from .soc import DEVICES, CPUModel, Device, FastRPCSession, get_device
from .threadpool import KernelJob, NPUThreadPool, ScheduleResult
from .timing import GENERATIONS, V73, V75, V79, KernelCost, TimingModel

__all__ = [
    "QFloatMode",
    "TILE_DIM",
    "HMXUnit",
    "matrix_from_hmx_layout",
    "matrix_to_hmx_layout",
    "tile_permute",
    "tile_unpermute",
    "VECTOR_BYTES",
    "HVXContext",
    "InstructionTrace",
    "DMAEngine",
    "MultiSessionHeap",
    "RpcMemHeap",
    "SharedBuffer",
    "TCM",
    "GOVERNORS",
    "PowerGovernor",
    "apply_governor",
    "KernelJob",
    "NPUThreadPool",
    "ScheduleResult",
    "DEVICES",
    "CPUModel",
    "Device",
    "FastRPCSession",
    "get_device",
    "GENERATIONS",
    "V73",
    "V75",
    "V79",
    "KernelCost",
    "TimingModel",
]
