"""Bit-level floating-point helpers for the Hexagon NPU model.

The paper's kernels manipulate IEEE-754 binary16 values at the bit level:

* the LUT-based exponential (Section 5.2.1) drops the FP16 sign bit and
  left-shifts the remaining 15 bits by one to form a byte offset into a
  64 KiB table;
* the polynomial ``exp2`` baseline splits an input into integer part ``k``
  and fractional part ``f`` and adds ``k`` directly to the exponent field
  of the IEEE representation of ``2**f``;
* HVX floating-point instructions on NPUs prior to V79 produce results in
  an internal *qfloat* format which must be converted back to IEEE with
  extra instructions (Section 5.2.2).

This module provides those primitives as pure NumPy functions so the rest
of the simulator can stay vectorized.  All functions are deterministic and
allocation-light; they form the numerical foundation for the accuracy
experiments in Tables 4 and 5.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FP16_BITS",
    "FP16_EXP_BITS",
    "FP16_MANT_BITS",
    "FP16_EXP_BIAS",
    "fp16_to_bits",
    "bits_to_fp16",
    "fp16_sign",
    "fp16_exponent_field",
    "fp16_mantissa_field",
    "compose_fp16",
    "fp32_to_bits",
    "bits_to_fp32",
    "add_to_exponent_fp32",
    "add_to_exponent_fp16",
    "split_int_frac",
    "qfloat_round",
    "QFloatMode",
]

FP16_BITS = 16
FP16_EXP_BITS = 5
FP16_MANT_BITS = 10
FP16_EXP_BIAS = 15

_FP16_SIGN_MASK = np.uint16(0x8000)
_FP16_EXP_MASK = np.uint16(0x7C00)
_FP16_MANT_MASK = np.uint16(0x03FF)


def fp16_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret an FP16 array as its uint16 bit pattern."""
    arr = np.asarray(values, dtype=np.float16)
    return arr.view(np.uint16)


def bits_to_fp16(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint16 array as FP16 values."""
    arr = np.asarray(bits, dtype=np.uint16)
    return arr.view(np.float16)


def fp16_sign(values: np.ndarray) -> np.ndarray:
    """Return the sign bit (0 or 1) of each FP16 value."""
    return (fp16_to_bits(values) >> 15).astype(np.uint16)


def fp16_exponent_field(values: np.ndarray) -> np.ndarray:
    """Return the raw 5-bit exponent field of each FP16 value."""
    return ((fp16_to_bits(values) & _FP16_EXP_MASK) >> FP16_MANT_BITS).astype(np.uint16)


def fp16_mantissa_field(values: np.ndarray) -> np.ndarray:
    """Return the raw 10-bit mantissa field of each FP16 value."""
    return (fp16_to_bits(values) & _FP16_MANT_MASK).astype(np.uint16)


def compose_fp16(sign: np.ndarray, exponent: np.ndarray, mantissa: np.ndarray) -> np.ndarray:
    """Assemble FP16 values from raw sign/exponent/mantissa fields.

    Fields are masked to their legal widths, matching how hardware bit
    insertion would silently truncate out-of-range values.
    """
    s = (np.asarray(sign, dtype=np.uint16) & np.uint16(1)) << np.uint16(15)
    e = (np.asarray(exponent, dtype=np.uint16) & np.uint16(0x1F)) << np.uint16(FP16_MANT_BITS)
    m = np.asarray(mantissa, dtype=np.uint16) & _FP16_MANT_MASK
    return bits_to_fp16(s | e | m)


def fp32_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret an FP32 array as its uint32 bit pattern."""
    arr = np.asarray(values, dtype=np.float32)
    return arr.view(np.uint32)


def bits_to_fp32(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 array as FP32 values."""
    arr = np.asarray(bits, dtype=np.uint32)
    return arr.view(np.float32)


def add_to_exponent_fp32(values: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Scale FP32 ``values`` by ``2**k`` via direct exponent-field addition.

    This is the hardware trick used by polynomial ``exp2`` kernels: instead
    of computing ``2**k`` and multiplying, the integer ``k`` is added to
    the 8-bit exponent field of the IEEE-754 representation.  Inputs whose
    adjusted exponent would underflow or overflow produce the same wrapped
    bit patterns the hardware would, so callers must range-limit ``k``.
    """
    bits = fp32_to_bits(values)
    shifted = (np.asarray(k, dtype=np.int64) << 23).astype(np.int64)
    out = (bits.astype(np.int64) + shifted).astype(np.uint32)
    return bits_to_fp32(out)


def add_to_exponent_fp16(values: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Scale FP16 ``values`` by ``2**k`` via exponent-field addition."""
    bits = fp16_to_bits(values)
    shifted = (np.asarray(k, dtype=np.int32) << FP16_MANT_BITS).astype(np.int32)
    out = (bits.astype(np.int32) + shifted).astype(np.uint16)
    return bits_to_fp16(out)


def split_int_frac(values: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Split values into integer part ``k`` and fractional part ``f``.

    ``k = floor(x)`` and ``f = x - k`` with ``0 <= f < 1``, the
    decomposition used for ``2**x = 2**k * 2**f`` in the paper's
    polynomial exponential baseline (Section 5.2.1).
    """
    arr = np.asarray(values, dtype=np.float32)
    k = np.floor(arr)
    f = (arr - k).astype(np.float32)
    # tiny negatives make f round to exactly 1.0 in float32; renormalize
    carry = f >= 1.0
    k = k + carry
    f = np.where(carry, np.float32(0.0), f)
    return k.astype(np.int32), f.astype(np.float32)


class QFloatMode:
    """Enumeration of HVX floating-point result formats.

    Hexagon NPUs prior to V79 produce HVX float results in an internal
    *qfloat* format; converting back to IEEE costs extra instructions
    (Section 5.2.2).  V79 produces IEEE directly.  Functionally we model
    qfloat as IEEE FP16 with an extra rounding step — the observable
    difference on real silicon is confined to sub-ULP rounding behaviour,
    while the *cost* difference (the extra conversion instructions) is
    tracked by the timing model.
    """

    QFLOAT = "qfloat"
    IEEE = "ieee"

    _ALL = (QFLOAT, IEEE)

    @classmethod
    def validate(cls, mode: str) -> str:
        if mode not in cls._ALL:
            raise ValueError(f"unknown qfloat mode: {mode!r}; expected one of {cls._ALL}")
        return mode


def qfloat_round(values: np.ndarray) -> np.ndarray:
    """Apply the qfloat -> IEEE conversion rounding step.

    The conversion re-rounds through FP16; numerically this is idempotent
    for values already representable in FP16, which models the conversion
    as value-preserving while the timing model charges for it.
    """
    return np.asarray(values, dtype=np.float16)
