"""Functional model of the Hexagon Vector eXtensions (HVX) unit.

The HVX unit (Section 3.1.2 of the paper) provides 32 vector registers of
1024 bits (128 bytes) each.  All general-purpose computation in the
paper's kernels — dequantization, Softmax, normalization — runs on HVX,
so this module implements the instruction subset those kernels need:

* ``vlut16`` — 16-entry table lookup producing a 16-bit value per input
  byte (Section 5.2.2, Fig. 9);
* ``vgather`` — gather of 64 2-byte elements from TCM per instruction,
  with a 16-bit byte-offset window (Section 5.2.1);
* ``vshuff``/``vdeal`` — cross-lane interleave/deinterleave used to build
  the HMX tile layout (Fig. 4a);
* FP16 arithmetic (``vadd``, ``vsub``, ``vmpy``, ``vmax``, ``vmin``) with
  qfloat-format emulation for generations prior to V79;
* byte-wise logic and shifts used by the mask-unpack-convert baseline.

Semantically the model is *vector-width faithful*: every operation
processes whole 128-byte vectors and the per-opcode instruction counts it
records are exactly what the timing model (:mod:`repro.npu.timing`)
converts into cycles.  Kernels therefore pay — in simulated time — for
partially filled registers, which is precisely the inefficiency the
paper's super-group coalescing (Section 5.1.2) removes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import LUTError, RegisterError
from .datatypes import QFloatMode, qfloat_round

__all__ = [
    "VECTOR_BYTES",
    "NUM_VECTOR_REGISTERS",
    "FP16_LANES",
    "VGATHER_ELEMENTS",
    "VGATHER_MAX_OFFSET",
    "InstructionTrace",
    "HVXContext",
    "vectors_for_bytes",
]

VECTOR_BYTES = 128
NUM_VECTOR_REGISTERS = 32
FP16_LANES = VECTOR_BYTES // 2
VGATHER_ELEMENTS = 64
VGATHER_MAX_OFFSET = 65536


def vectors_for_bytes(num_bytes: int) -> int:
    """Number of 128-byte HVX vectors needed to hold ``num_bytes``."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return -(-num_bytes // VECTOR_BYTES)


class InstructionTrace:
    """Per-opcode instruction counter for one simulated kernel invocation.

    The trace is the contract between the functional model and the timing
    model: kernels record *what* executed, timing converts it to *when*.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def record(self, opcode: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"instruction count must be non-negative, got {count}")
        self._counts[opcode] += count

    def count(self, opcode: str) -> int:
        return self._counts.get(opcode, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "InstructionTrace") -> None:
        self._counts.update(other._counts)

    def clear(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"InstructionTrace({body})"


class HVXContext:
    """One HVX execution context: vector semantics plus instruction trace.

    Parameters
    ----------
    qfloat_mode:
        ``QFloatMode.QFLOAT`` for generations before V79 (each float op
        yields the internal qfloat format; converting back to IEEE costs
        a ``vconv`` instruction), ``QFloatMode.IEEE`` for V79+.
    trace:
        Optional externally owned trace; a fresh one is created otherwise.
    """

    def __init__(self, qfloat_mode: str = QFloatMode.QFLOAT,
                 trace: Optional[InstructionTrace] = None) -> None:
        self.qfloat_mode = QFloatMode.validate(qfloat_mode)
        self.trace = trace if trace is not None else InstructionTrace()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _vectors(self, array: np.ndarray) -> int:
        return vectors_for_bytes(np.asarray(array).nbytes)

    def _record_vec_op(self, opcode: str, array: np.ndarray) -> None:
        self.trace.record(opcode, self._vectors(array))

    def _maybe_qfloat(self, values: np.ndarray, convert_to_ieee: bool) -> np.ndarray:
        """Apply the qfloat round-trip and charge conversion instructions.

        On pre-V79 hardware every HVX float result is in qfloat format;
        code that needs an IEEE value (e.g. before storing to memory read
        by HMX) must pay one ``vconv`` per vector.
        """
        if self.qfloat_mode == QFloatMode.QFLOAT and convert_to_ieee:
            self._record_vec_op("vconv", values)
            return qfloat_round(values)
        return values.astype(np.float16)

    # ------------------------------------------------------------------
    # table lookup instructions
    # ------------------------------------------------------------------
    def vlut16(self, indices: np.ndarray, table: np.ndarray) -> np.ndarray:
        """16-entry table lookup: one 16-bit output per input byte.

        ``indices`` are bytes whose low nibble selects one of 16 table
        entries (Fig. 9 uses 4-bit quantized values placed one per byte).
        Each 128-byte source register yields a register *pair* of 16-bit
        results; the instruction count is one ``vlut16`` per source
        vector, matching the paper's description.
        """
        table = np.asarray(table)
        if table.size != 16:
            raise LUTError(f"vlut16 table must have 16 entries, got {table.size}")
        idx = np.asarray(indices, dtype=np.uint8)
        if np.any(idx > 15):
            raise LUTError("vlut16 indices must be 4-bit values (0..15)")
        self.trace.record("vlut16", vectors_for_bytes(idx.nbytes))
        return table[idx]

    def vgather(self, table_bytes: np.ndarray, byte_offsets: np.ndarray) -> np.ndarray:
        """Gather 2-byte elements from a TCM-resident table.

        Models the HVX ``vgather`` variant the paper uses for the exp LUT:
        64 2-byte elements per instruction, byte offsets limited to a
        64 KiB window.  ``table_bytes`` is the raw table memory; offsets
        index *bytes* and must be even (element-aligned) and below
        :data:`VGATHER_MAX_OFFSET`.
        """
        table_bytes = np.asarray(table_bytes, dtype=np.uint8)
        offsets = np.asarray(byte_offsets, dtype=np.int64)
        if offsets.size == 0:
            return np.empty(0, dtype=np.uint16)
        if np.any(offsets < 0) or np.any(offsets + 1 >= min(table_bytes.size + 1,
                                                            VGATHER_MAX_OFFSET + 1)):
            raise LUTError(
                "vgather byte offsets out of range: max offset "
                f"{int(offsets.max())} vs window {min(table_bytes.size, VGATHER_MAX_OFFSET)}"
            )
        if np.any(offsets % 2 != 0):
            raise LUTError("vgather offsets must be 2-byte aligned")
        n_instr = -(-offsets.size // VGATHER_ELEMENTS)
        self.trace.record("vgather", n_instr)
        lo = table_bytes[offsets].astype(np.uint16)
        hi = table_bytes[offsets + 1].astype(np.uint16)
        return (hi << np.uint16(8)) | lo

    # ------------------------------------------------------------------
    # shuffles
    # ------------------------------------------------------------------
    def vshuff_pair_rows(self, row_even: np.ndarray, row_odd: np.ndarray) -> np.ndarray:
        """Interleave two equal-length rows element-wise.

        This is the cross-lane shuffle the paper names as the typical way
        to construct the HMX tile layout: two adjacent 32-element rows are
        stored as the transposed 2x32 sub-matrix (Fig. 4a), i.e.
        ``[e0, o0, e1, o1, ...]``.
        """
        row_even = np.asarray(row_even)
        row_odd = np.asarray(row_odd)
        if row_even.shape != row_odd.shape:
            raise RegisterError(
                f"vshuff operands must match: {row_even.shape} vs {row_odd.shape}")
        out = np.empty(row_even.size * 2, dtype=row_even.dtype)
        out[0::2] = row_even.ravel()
        out[1::2] = row_odd.ravel()
        self.trace.record("vshuff", max(1, self._vectors(out) // 2))
        return out

    def vdeal_pair_rows(self, interleaved: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`vshuff_pair_rows` (deinterleave)."""
        arr = np.asarray(interleaved).ravel()
        if arr.size % 2 != 0:
            raise RegisterError("vdeal requires an even element count")
        self.trace.record("vdeal", max(1, self._vectors(arr) // 2))
        return arr[0::2].copy(), arr[1::2].copy()

    def vror(self, data: np.ndarray, byte_rotate: int) -> np.ndarray:
        """Rotate the byte lanes of a vector-sized array."""
        arr = np.asarray(data)
        flat = arr.view(np.uint8).ravel()
        self._record_vec_op("vror", arr)
        rotated = np.roll(flat, -byte_rotate % flat.size if flat.size else 0)
        return rotated.view(arr.dtype).reshape(arr.shape)

    # ------------------------------------------------------------------
    # FP16 arithmetic
    # ------------------------------------------------------------------
    def vadd_hf(self, a: np.ndarray, b: np.ndarray, to_ieee: bool = False) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            out = (np.asarray(a, dtype=np.float16) + np.asarray(b, dtype=np.float16))
        self._record_vec_op("vadd_hf", out)
        return self._maybe_qfloat(out, to_ieee)

    def vsub_hf(self, a: np.ndarray, b: np.ndarray, to_ieee: bool = False) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            out = (np.asarray(a, dtype=np.float16) - np.asarray(b, dtype=np.float16))
        self._record_vec_op("vsub_hf", out)
        return self._maybe_qfloat(out, to_ieee)

    def vmpy_hf(self, a: np.ndarray, b: np.ndarray, to_ieee: bool = False) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            out = (np.asarray(a, dtype=np.float16) * np.asarray(b, dtype=np.float16))
        self._record_vec_op("vmpy_hf", out)
        return self._maybe_qfloat(out, to_ieee)

    def vmax_hf(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.maximum(np.asarray(a, dtype=np.float16), np.asarray(b, dtype=np.float16))
        self._record_vec_op("vmax_hf", out)
        return out

    def vmin_hf(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.minimum(np.asarray(a, dtype=np.float16), np.asarray(b, dtype=np.float16))
        self._record_vec_op("vmin_hf", out)
        return out

    def vmpy_qf32(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """FP16 multiply with FP32 (qf32) result, used for accumulation."""
        out = np.asarray(a, dtype=np.float32) * np.asarray(b, dtype=np.float32)
        self._record_vec_op("vmpy_qf32", out)
        return out

    def vadd_qf32(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.asarray(a, dtype=np.float32) + np.asarray(b, dtype=np.float32)
        self._record_vec_op("vadd_qf32", out)
        return out

    def vsplat_hf(self, scalar: float, lanes: int) -> np.ndarray:
        """Broadcast a scalar into all FP16 lanes of enough vectors."""
        out = np.full(lanes, np.float16(scalar), dtype=np.float16)
        self._record_vec_op("vsplat", out)
        return out

    # ------------------------------------------------------------------
    # byte logic / shifts (mask-unpack-convert baseline path)
    # ------------------------------------------------------------------
    def vand(self, a: np.ndarray, mask: int) -> np.ndarray:
        arr = np.asarray(a)
        self._record_vec_op("vand", arr)
        return arr & np.asarray(mask, dtype=arr.dtype)

    def vlsr(self, a: np.ndarray, shift: int) -> np.ndarray:
        arr = np.asarray(a)
        self._record_vec_op("vlsr", arr)
        return arr >> np.asarray(shift, dtype=arr.dtype)

    def vasl(self, a: np.ndarray, shift: int) -> np.ndarray:
        arr = np.asarray(a)
        self._record_vec_op("vasl", arr)
        return arr << np.asarray(shift, dtype=arr.dtype)

    def vsub_b(self, a: np.ndarray, b: int) -> np.ndarray:
        """Byte-wise subtract (used to recentre unpacked nibbles)."""
        arr = np.asarray(a, dtype=np.int16)
        self._record_vec_op("vsub_b", arr)
        return arr - np.int16(b)

    def vconv_b_to_hf(self, a: np.ndarray) -> np.ndarray:
        """Integer-to-FP16 conversion instruction."""
        arr = np.asarray(a)
        self._record_vec_op("vconv_b_hf", arr)
        out = arr.astype(np.float16)
        if self.qfloat_mode == QFloatMode.QFLOAT:
            # pre-V79: result lands in qfloat, pay the IEEE conversion
            self._record_vec_op("vconv", out)
        return out

    # ------------------------------------------------------------------
    # memory traffic
    # ------------------------------------------------------------------
    def vmem_load(self, array: np.ndarray) -> np.ndarray:
        """Model a vector load: charge one ``vmem_ld`` per vector touched."""
        arr = np.asarray(array)
        self._record_vec_op("vmem_ld", arr)
        return arr

    def vmem_store(self, array: np.ndarray) -> np.ndarray:
        """Model a vector store: charge one ``vmem_st`` per vector touched."""
        arr = np.asarray(array)
        self._record_vec_op("vmem_st", arr)
        return arr

    def vscatter(self, destination: np.ndarray, offsets: np.ndarray,
                 values: np.ndarray) -> None:
        """Scatter 2-byte elements to arbitrary TCM offsets.

        Scatter is the expensive operation that dominates the *baseline*
        dequantization layout in Fig. 15: each group of 64 elements costs
        one high-latency ``vscatter`` instruction.
        """
        destination = np.asarray(destination)
        offsets = np.asarray(offsets, dtype=np.int64)
        values = np.asarray(values)
        if offsets.shape != values.shape:
            raise RegisterError(
                f"vscatter offsets/values mismatch: {offsets.shape} vs {values.shape}")
        if offsets.size and (offsets.min() < 0 or offsets.max() >= destination.size):
            raise RegisterError("vscatter offsets out of destination range")
        n_instr = -(-offsets.size // VGATHER_ELEMENTS) if offsets.size else 0
        self.trace.record("vscatter", n_instr)
        destination[offsets] = values
