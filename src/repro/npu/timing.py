"""Calibrated timing model for the Hexagon NPU generations.

The functional models (:mod:`repro.npu.hvx`, :mod:`repro.npu.hmx`,
:mod:`repro.npu.memory`) record *what* executed — instruction traces and
DMA descriptors.  This module converts those records into *time* using a
cost model whose anchor points are the paper's own measurements:

* Table 2 — HMX FP16 GEMM 12032.54 GFLOPS vs 32.93 GFLOPS for a single
  HVX thread; 60 GB/s DMA read vs <30 GB/s HVX core-path read (V75);
* Section 5.2.1 — ``vgather`` costs 24-48 instruction packets on V75;
* Section 3.1.2 — 6-8 scalar VLIW threads, 4-6 HVX contexts, 1-2 HMX
  units, V79 produces IEEE floats directly (no qfloat conversion).

Absolute seconds are therefore simulator estimates, but the *ratios* the
paper reports (dequantization speedups in Fig. 15, softmax speedups in
Fig. 14, batch-scaling curves in Fig. 11) emerge from the same
instruction-count and bandwidth asymmetries that produce them on silicon.

The overlap model is deliberately simple and documented: DMA, HVX and HMX
engines run concurrently; execution time is the maximum engine time plus
a fixed fraction of the remaining (non-overlapped) work, reflecting
imperfect software pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import NPUError
from .hmx import TILE_DIM
from .hvx import InstructionTrace
from .memory import DMAEngine

__all__ = [
    "TILE_MAC_FLOPS",
    "NPUGenerationTiming",
    "V73",
    "V75",
    "V79",
    "GENERATIONS",
    "KernelCost",
    "TimingModel",
    "SimClock",
]

TILE_MAC_FLOPS = 2 * TILE_DIM ** 3  # one 32x32x32 tile MAC = 65536 FLOPs

# Fraction of non-critical-path engine work that fails to overlap with the
# critical engine.  0 would be perfect pipelining, 1 fully serial.
_OVERLAP_SLACK = 0.15

# HVX instructions that occupy one issue slot for one packet (cycle).
_SINGLE_PACKET_OPS = frozenset({
    "vadd_hf", "vsub_hf", "vmpy_hf", "vmax_hf", "vmin_hf",
    "vmpy_qf32", "vadd_qf32", "vsplat", "vand", "vlsr", "vasl",
    "vsub_b", "vconv_b_hf", "vconv", "vlut16", "vshuff", "vdeal", "vror",
    "stall",  # exposed latency / fixed overhead packets recorded by kernels
})


@dataclass(frozen=True)
class NPUGenerationTiming:
    """Timing parameters of one Hexagon NPU generation."""

    name: str
    clock_hz: float
    hvx_contexts: int
    scalar_threads: int
    hmx_units: int
    hmx_fp16_gflops: float
    hvx_thread_gemm_gflops: float
    dma_read_gbps: float
    hvx_mem_read_gbps: float
    vgather_packets: int        # raw exposed latency (paper: 24-48 on V75)
    vgather_issue_packets: int  # effective occupancy when gathers pipeline
    vscatter_packets: int       # scatters serialize on write conflicts
    ieee_float: bool
    npu_va_space_bytes: int

    @property
    def hmx_seconds_per_tile_mac(self) -> float:
        return TILE_MAC_FLOPS / (self.hmx_fp16_gflops * 1e9)


# Parameter sets for the three evaluated generations (Table 3).  V75 values
# are the paper's measurements; V73/V79 are scaled by the published
# generation-over-generation characteristics (slower clock and 2 GiB VA
# space on 8 Gen 2; faster clock, IEEE HVX floats on 8 Elite).
V73 = NPUGenerationTiming(
    name="V73", clock_hz=0.9e9, hvx_contexts=4, scalar_threads=6, hmx_units=1,
    hmx_fp16_gflops=9200.0, hvx_thread_gemm_gflops=26.5,
    dma_read_gbps=50.0, hvx_mem_read_gbps=21.0,
    vgather_packets=40, vgather_issue_packets=17, vscatter_packets=52,
    ieee_float=False, npu_va_space_bytes=2 * 2**30,
)

V75 = NPUGenerationTiming(
    name="V75", clock_hz=1.0e9, hvx_contexts=6, scalar_threads=6, hmx_units=1,
    hmx_fp16_gflops=12032.54, hvx_thread_gemm_gflops=32.93,
    dma_read_gbps=60.0, hvx_mem_read_gbps=26.0,
    vgather_packets=36, vgather_issue_packets=15, vscatter_packets=48,
    ieee_float=False, npu_va_space_bytes=4 * 2**30,
)

V79 = NPUGenerationTiming(
    name="V79", clock_hz=1.2e9, hvx_contexts=6, scalar_threads=8, hmx_units=2,
    hmx_fp16_gflops=17500.0, hvx_thread_gemm_gflops=41.0,
    dma_read_gbps=72.0, hvx_mem_read_gbps=33.0,
    vgather_packets=30, vgather_issue_packets=12, vscatter_packets=40,
    ieee_float=True, npu_va_space_bytes=4 * 2**30,
)

GENERATIONS: Dict[str, NPUGenerationTiming] = {g.name: g for g in (V73, V75, V79)}


@dataclass
class KernelCost:
    """Aggregated execution cost of one kernel invocation."""

    hmx_tile_macs: int = 0
    hvx_packets: int = 0          # single-packet vector instructions
    vgather_instrs: int = 0
    vscatter_instrs: int = 0
    hvx_ddr_bytes: int = 0        # core-path reads that miss TCM/L2 (DDR)
    dma_bytes: int = 0

    def merge(self, other: "KernelCost") -> "KernelCost":
        """Accumulate ``other`` into ``self`` **in place** and return self.

        The returned object *is* ``self`` — binding it to a new name
        aliases the accumulator.  Use :meth:`__add__`/:meth:`combined`
        in expression position when a fresh record is wanted.
        """
        self.hmx_tile_macs += other.hmx_tile_macs
        self.hvx_packets += other.hvx_packets
        self.vgather_instrs += other.vgather_instrs
        self.vscatter_instrs += other.vscatter_instrs
        self.hvx_ddr_bytes += other.hvx_ddr_bytes
        self.dma_bytes += other.dma_bytes
        return self

    def __add__(self, other: "KernelCost") -> "KernelCost":
        """Non-mutating sum: returns a fresh record, operands untouched."""
        if not isinstance(other, KernelCost):
            return NotImplemented
        return KernelCost(
            hmx_tile_macs=self.hmx_tile_macs + other.hmx_tile_macs,
            hvx_packets=self.hvx_packets + other.hvx_packets,
            vgather_instrs=self.vgather_instrs + other.vgather_instrs,
            vscatter_instrs=self.vscatter_instrs + other.vscatter_instrs,
            hvx_ddr_bytes=self.hvx_ddr_bytes + other.hvx_ddr_bytes,
            dma_bytes=self.dma_bytes + other.dma_bytes,
        )

    def combined(self, *others: "KernelCost") -> "KernelCost":
        """Fresh sum of ``self`` and ``others`` (alias-safe merge)."""
        total = self + KernelCost()
        for other in others:
            total = total + other
        return total

    def scaled(self, factor: float) -> "KernelCost":
        """Return a cost scaled by ``factor`` (e.g. per-layer -> per-model)."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return KernelCost(
            hmx_tile_macs=int(round(self.hmx_tile_macs * factor)),
            hvx_packets=int(round(self.hvx_packets * factor)),
            vgather_instrs=int(round(self.vgather_instrs * factor)),
            vscatter_instrs=int(round(self.vscatter_instrs * factor)),
            hvx_ddr_bytes=int(round(self.hvx_ddr_bytes * factor)),
            dma_bytes=int(round(self.dma_bytes * factor)),
        )

    @classmethod
    def from_trace(cls, trace: InstructionTrace,
                   dma: Optional[DMAEngine] = None) -> "KernelCost":
        """Build a cost record from a recorded instruction trace."""
        counts = trace.as_dict()
        cost = cls()
        for opcode, count in counts.items():
            if opcode in ("vmem_ld", "vmem_st"):
                # TCM accesses: full-rate, one issue packet each.  Core-path
                # DDR traffic is charged separately via hvx_ddr_bytes.
                cost.hvx_packets += count
            elif opcode == "vgather":
                cost.vgather_instrs += count
            elif opcode == "vscatter":
                cost.vscatter_instrs += count
            elif opcode == "hmx_tile_mac":
                cost.hmx_tile_macs += count
            elif opcode == "hmx_tile_out":
                pass  # output drain is folded into the tile MAC rate
            elif opcode in _SINGLE_PACKET_OPS:
                cost.hvx_packets += count
            else:
                raise NPUError(f"timing model does not know opcode {opcode!r}")
        if dma is not None:
            cost.dma_bytes += dma.total_bytes()
        return cost


class TimingModel:
    """Convert :class:`KernelCost` records into seconds for a generation."""

    def __init__(self, generation: NPUGenerationTiming) -> None:
        self.generation = generation

    # ------------------------------------------------------------------
    # per-engine component times
    # ------------------------------------------------------------------
    def hmx_seconds(self, cost: KernelCost) -> float:
        return cost.hmx_tile_macs * self.generation.hmx_seconds_per_tile_mac

    def hvx_seconds(self, cost: KernelCost, hvx_threads: Optional[int] = None) -> float:
        """Vector-engine time: issue packets + gather/scatter latency.

        Work distributes across ``hvx_threads`` contexts (defaults to all
        available).  Core-path memory traffic is bandwidth-limited and is
        taken as the max against the issue-rate bound.
        """
        gen = self.generation
        threads = gen.hvx_contexts if hvx_threads is None else hvx_threads
        if threads <= 0 or threads > gen.hvx_contexts:
            raise NPUError(
                f"hvx_threads must be in [1, {gen.hvx_contexts}], got {threads}")
        packets = (cost.hvx_packets
                   + cost.vgather_instrs * gen.vgather_issue_packets
                   + cost.vscatter_instrs * gen.vscatter_packets)
        issue_seconds = packets / threads / gen.clock_hz
        mem_seconds = cost.hvx_ddr_bytes / (gen.hvx_mem_read_gbps * 1e9)
        return max(issue_seconds, mem_seconds)

    def dma_seconds(self, cost: KernelCost) -> float:
        return cost.dma_bytes / (self.generation.dma_read_gbps * 1e9)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def seconds(self, cost: KernelCost, hvx_threads: Optional[int] = None) -> float:
        """Total kernel time under the partial-overlap engine model.

        The three engines (DMA, HVX, HMX) run concurrently; total time is
        the critical engine plus ``_OVERLAP_SLACK`` of the remaining work,
        modelling imperfect double-buffering.
        """
        parts = [
            self.dma_seconds(cost),
            self.hvx_seconds(cost, hvx_threads),
            self.hmx_seconds(cost),
        ]
        critical = max(parts)
        slack = sum(parts) - critical
        return critical + _OVERLAP_SLACK * slack

    def gemm_seconds_hmx_peak(self, m: int, k: int, n: int) -> float:
        """Ideal HMX-only GEMM time (used for Table 2 regeneration)."""
        from .hmx import HMXUnit
        tile_macs = HMXUnit.tile_macs_for_gemm(m, k, n)
        return tile_macs * self.generation.hmx_seconds_per_tile_mac

    def gemm_seconds_hvx_thread(self, m: int, k: int, n: int) -> float:
        """Single-HVX-thread GEMM time at the measured Table 2 rate."""
        flops = 2.0 * m * k * n
        return flops / (self.generation.hvx_thread_gemm_gflops * 1e9)

    def effective_gflops(self, flops: float, seconds: float) -> float:
        if seconds <= 0:
            raise NPUError(f"elapsed time must be positive, got {seconds}")
        return flops / seconds / 1e9


# SimClock grew into the shared discrete-event kernel and now lives in
# repro.sim; re-exported here because every timing consumer historically
# imported it from this module.
from ..sim import SimClock  # noqa: E402  (re-export)
