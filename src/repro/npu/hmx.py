"""Functional model of the Hexagon Matrix eXtension (HMX) unit.

The HMX unit (Section 3.1.2, Fig. 4) is the source of the NPU's matrix
throughput.  Its basic data unit is a *tile*: a 32x32 FP16 matrix stored
in 2 KiB with a special permuted layout —

* within a tile, every two adjacent rows are stored as the transposed
  2x32 sub-matrix (elements of the even and odd row interleave
  column-by-column, Fig. 4a);
* across a weight matrix, tiles are laid out column-major because the
  hardware computes a tile-level inner product (Fig. 4b).

The unit multiplies pairs of activation/weight tiles, accumulating into an
internal higher-precision accumulator, and can independently scale and
bias each output channel (column).  This module implements those
semantics exactly (FP16 inputs, FP32 accumulation, FP16 output) and
counts tile multiply-accumulate operations for the timing model.

The layout helpers here are the foundation of the paper's *tile-group
quantization* (Section 5.1.1): quantization groups are formed in this
memory order so dequantized weights stream contiguously into TCM.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import TileShapeError
from .hvx import InstructionTrace

__all__ = [
    "TILE_DIM",
    "TILE_ELEMS",
    "TILE_BYTES_FP16",
    "tile_permute",
    "tile_unpermute",
    "pad_to_tiles",
    "matrix_to_hmx_layout",
    "matrix_from_hmx_layout",
    "hmx_layout_order",
    "HMXUnit",
]

TILE_DIM = 32
TILE_ELEMS = TILE_DIM * TILE_DIM
TILE_BYTES_FP16 = TILE_ELEMS * 2


def tile_permute(tile: np.ndarray) -> np.ndarray:
    """Permute one 32x32 tile into the FP16 HMX memory order (Fig. 4a).

    Every two adjacent rows ``(2p, 2p+1)`` are stored as the transposed
    2x32 sub-matrix: ``(2p, 0), (2p+1, 0), (2p, 1), (2p+1, 1), ...``.
    Returns the flat 1024-element array in memory order.
    """
    tile = np.asarray(tile)
    if tile.shape != (TILE_DIM, TILE_DIM):
        raise TileShapeError(f"HMX tile must be {TILE_DIM}x{TILE_DIM}, got {tile.shape}")
    paired = tile.reshape(TILE_DIM // 2, 2, TILE_DIM)
    return paired.transpose(0, 2, 1).reshape(TILE_ELEMS).copy()


def tile_unpermute(flat: np.ndarray) -> np.ndarray:
    """Inverse of :func:`tile_permute`: memory order back to a 32x32 tile."""
    flat = np.asarray(flat)
    if flat.size != TILE_ELEMS:
        raise TileShapeError(f"HMX tile buffer must have {TILE_ELEMS} elements, got {flat.size}")
    paired = flat.reshape(TILE_DIM // 2, TILE_DIM, 2)
    return paired.transpose(0, 2, 1).reshape(TILE_DIM, TILE_DIM).copy()


def pad_to_tiles(matrix: np.ndarray) -> np.ndarray:
    """Zero-pad a 2-D matrix so both dimensions are multiples of 32."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise TileShapeError(f"expected a 2-D matrix, got shape {matrix.shape}")
    rows, cols = matrix.shape
    pad_r = (-rows) % TILE_DIM
    pad_c = (-cols) % TILE_DIM
    if pad_r == 0 and pad_c == 0:
        return matrix
    return np.pad(matrix, ((0, pad_r), (0, pad_c)))


def matrix_to_hmx_layout(matrix: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Convert a matrix into the full HMX weight memory layout.

    The matrix is zero-padded to whole tiles; tiles are emitted in
    column-major order (Fig. 4b) and each tile is internally permuted
    (Fig. 4a).  Returns ``(flat_layout, padded_shape)``.
    """
    padded = pad_to_tiles(matrix)
    rows, cols = padded.shape
    tiles_r, tiles_c = rows // TILE_DIM, cols // TILE_DIM
    out = np.empty(rows * cols, dtype=padded.dtype)
    pos = 0
    for tc in range(tiles_c):
        for tr in range(tiles_r):
            tile = padded[tr * TILE_DIM:(tr + 1) * TILE_DIM,
                          tc * TILE_DIM:(tc + 1) * TILE_DIM]
            out[pos:pos + TILE_ELEMS] = tile_permute(tile)
            pos += TILE_ELEMS
    return out, (rows, cols)


def matrix_from_hmx_layout(flat: np.ndarray, padded_shape: Tuple[int, int],
                           original_shape: Optional[Tuple[int, int]] = None) -> np.ndarray:
    """Inverse of :func:`matrix_to_hmx_layout`.

    ``original_shape`` crops away the zero padding when provided.
    """
    rows, cols = padded_shape
    if rows % TILE_DIM or cols % TILE_DIM:
        raise TileShapeError(f"padded shape must be tile-aligned, got {padded_shape}")
    flat = np.asarray(flat)
    if flat.size != rows * cols:
        raise TileShapeError(
            f"layout buffer size {flat.size} does not match padded shape {padded_shape}")
    tiles_r, tiles_c = rows // TILE_DIM, cols // TILE_DIM
    out = np.empty((rows, cols), dtype=flat.dtype)
    pos = 0
    for tc in range(tiles_c):
        for tr in range(tiles_r):
            tile = tile_unpermute(flat[pos:pos + TILE_ELEMS])
            out[tr * TILE_DIM:(tr + 1) * TILE_DIM,
                tc * TILE_DIM:(tc + 1) * TILE_DIM] = tile
            pos += TILE_ELEMS
    if original_shape is not None:
        out = out[:original_shape[0], :original_shape[1]]
    return out


def hmx_layout_order(rows: int, cols: int) -> np.ndarray:
    """Return flat original-matrix indices in HMX memory order.

    ``order[i]`` is the row-major index (into the *padded* matrix) of the
    element stored at layout position ``i``.  Quantizing padded weights in
    this order is exactly the paper's tile-group quantization.
    """
    if rows % TILE_DIM or cols % TILE_DIM:
        raise TileShapeError(f"shape ({rows}, {cols}) must be tile-aligned")
    index_matrix = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    layout, _ = matrix_to_hmx_layout(index_matrix)
    return layout


class HMXUnit:
    """The HMX matrix engine: tile MACs with FP32 accumulation.

    Each :meth:`tile_mac` multiplies a 32x32 FP16 activation tile by a
    32x32 FP16 weight tile and accumulates into an FP32 accumulator,
    which models the "higher-precision floating point numbers for
    accumulation internally" noted in Section 5.2.1.  The trace records
    one ``hmx_tile_mac`` per operation for the timing model.
    """

    def __init__(self, trace: Optional[InstructionTrace] = None) -> None:
        self.trace = trace if trace is not None else InstructionTrace()

    def tile_mac(self, activation_tile: np.ndarray, weight_tile: np.ndarray,
                 accumulator: np.ndarray) -> np.ndarray:
        """Accumulate ``activation_tile @ weight_tile`` into ``accumulator``."""
        a = np.asarray(activation_tile, dtype=np.float16)
        w = np.asarray(weight_tile, dtype=np.float16)
        if a.shape != (TILE_DIM, TILE_DIM) or w.shape != (TILE_DIM, TILE_DIM):
            raise TileShapeError(
                f"tile_mac expects {TILE_DIM}x{TILE_DIM} tiles, got {a.shape} and {w.shape}")
        acc = np.asarray(accumulator, dtype=np.float32)
        if acc.shape != (TILE_DIM, TILE_DIM):
            raise TileShapeError(f"accumulator must be {TILE_DIM}x{TILE_DIM}, got {acc.shape}")
        self.trace.record("hmx_tile_mac")
        acc += a.astype(np.float32) @ w.astype(np.float32)
        return acc

    def emit_output_tile(self, accumulator: np.ndarray,
                         channel_scale: Optional[np.ndarray] = None,
                         channel_bias: Optional[np.ndarray] = None) -> np.ndarray:
        """Convert an accumulator to an FP16 output tile.

        Per Section 3.1.2 the HMX unit "can independently scale and add
        biases to each channel (column) of the output tile".
        """
        acc = np.asarray(accumulator, dtype=np.float32)
        if channel_scale is not None:
            scale = np.asarray(channel_scale, dtype=np.float32)
            if scale.shape != (TILE_DIM,):
                raise TileShapeError(f"channel scale must have {TILE_DIM} entries")
            acc = acc * scale[np.newaxis, :]
        if channel_bias is not None:
            bias = np.asarray(channel_bias, dtype=np.float32)
            if bias.shape != (TILE_DIM,):
                raise TileShapeError(f"channel bias must have {TILE_DIM} entries")
            acc = acc + bias[np.newaxis, :]
        self.trace.record("hmx_tile_out")
        return acc.astype(np.float16)

    def gemm(self, activations: np.ndarray, weights: np.ndarray,
             out_dtype: np.dtype = np.float16) -> np.ndarray:
        """Full GEMM ``activations @ weights`` through tile decomposition.

        Both operands are padded to whole tiles; the per-(m,n) tile output
        is the inner product over the K tile dimension.  Tile MAC counts
        grow as ``ceil(m/32) * ceil(k/32) * ceil(n/32)``, which is why a
        single-token decode (m=1) wastes 31/32 of the activation tile —
        the underutilization the paper's test-time scaling exploits.
        """
        a = np.asarray(activations, dtype=np.float16)
        w = np.asarray(weights, dtype=np.float16)
        if a.ndim != 2 or w.ndim != 2:
            raise TileShapeError("gemm expects 2-D operands")
        if a.shape[1] != w.shape[0]:
            raise TileShapeError(
                f"inner dimensions differ: {a.shape} @ {w.shape}")
        m, k = a.shape
        n = w.shape[1]
        a_pad = pad_to_tiles(a)
        w_pad = pad_to_tiles(w)
        tiles_m = a_pad.shape[0] // TILE_DIM
        tiles_k = a_pad.shape[1] // TILE_DIM
        tiles_n = w_pad.shape[1] // TILE_DIM
        out = np.zeros((a_pad.shape[0], w_pad.shape[1]), dtype=np.float32)
        for tm in range(tiles_m):
            for tn in range(tiles_n):
                acc = np.zeros((TILE_DIM, TILE_DIM), dtype=np.float32)
                for tk in range(tiles_k):
                    at = a_pad[tm * TILE_DIM:(tm + 1) * TILE_DIM,
                               tk * TILE_DIM:(tk + 1) * TILE_DIM]
                    wt = w_pad[tk * TILE_DIM:(tk + 1) * TILE_DIM,
                               tn * TILE_DIM:(tn + 1) * TILE_DIM]
                    self.tile_mac(at, wt, acc)
                out[tm * TILE_DIM:(tm + 1) * TILE_DIM,
                    tn * TILE_DIM:(tn + 1) * TILE_DIM] = acc
                self.trace.record("hmx_tile_out")
        return out[:m, :n].astype(out_dtype)

    @staticmethod
    def tile_macs_for_gemm(m: int, k: int, n: int) -> int:
        """Number of tile MAC operations a GEMM of this shape issues."""
        if min(m, k, n) <= 0:
            raise TileShapeError(f"GEMM dimensions must be positive, got ({m}, {k}, {n})")
        tiles = lambda d: -(-d // TILE_DIM)  # noqa: E731 - tiny local helper
        return tiles(m) * tiles(k) * tiles(n)
