"""SoC-level model: devices, CPU complex, and the FastRPC NPU session.

Covers the non-NPU pieces the paper's end-to-end system depends on:

* the three evaluated devices (Table 3) with their NPU generations;
* a mobile CPU model used for the operators the system keeps on the CPU —
  most importantly the ``lm_head`` vocabulary projection, whose CPU
  placement caps throughput scaling at large batch (Section 7.2.2);
* a FastRPC-style session: a shared-memory mailbox the NPU side polls,
  with the manual cache maintenance the paper describes (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import EngineError, NPUError, SessionAbortError
from .memory import RpcMemHeap, SharedBuffer
from .timing import GENERATIONS, NPUGenerationTiming

__all__ = [
    "CPUModel",
    "Device",
    "DEVICES",
    "get_device",
    "FastRPCSession",
]


@dataclass(frozen=True)
class CPUModel:
    """Simple throughput model of the mobile CPU cluster.

    The system limits itself to 4 cores (Fig. 16 shows utilized cores
    "consistently limited to 4"); per-core throughput and shared DRAM
    bandwidth are representative of Snapdragon big cores.
    """

    name: str
    max_cores: int
    gflops_per_core: float
    dram_read_gbps: float

    def gemm_seconds(self, m: int, k: int, n: int, cores: Optional[int] = None,
                     weight_bytes: Optional[int] = None) -> float:
        """Time for an ``m x k x n`` GEMM: max of compute and weight streaming.

        ``weight_bytes`` defaults to FP16 weights; decode-sized GEMMs
        (small ``m``) are memory-bound on weight traffic, which is why
        the CPU-resident lm_head becomes the bottleneck at batch 16.
        """
        if min(m, k, n) <= 0:
            raise EngineError(f"GEMM dims must be positive, got ({m}, {k}, {n})")
        used = self.max_cores if cores is None else min(cores, self.max_cores)
        flops = 2.0 * m * k * n
        compute = flops / (self.gflops_per_core * used * 1e9)
        bytes_streamed = (2 * k * n) if weight_bytes is None else weight_bytes
        memory = bytes_streamed / (self.dram_read_gbps * 1e9)
        return max(compute, memory)


@dataclass(frozen=True)
class Device:
    """One evaluation device from Table 3."""

    name: str
    soc: str
    npu: NPUGenerationTiming
    cpu: CPUModel

    def rpcmem_heap(self) -> RpcMemHeap:
        """A fresh rpcmem heap bounded by this device's NPU VA space."""
        return RpcMemHeap(self.npu.npu_va_space_bytes)

    @property
    def short_name(self) -> str:
        return {"Snapdragon 8 Gen 2": "8G2",
                "Snapdragon 8 Gen 3": "8G3",
                "Snapdragon 8 Elite": "8E"}.get(self.soc, self.soc)


_CPU_8G2 = CPUModel(name="Kryo (8 Gen 2)", max_cores=4, gflops_per_core=30.0,
                    dram_read_gbps=22.0)
_CPU_8G3 = CPUModel(name="Kryo (8 Gen 3)", max_cores=4, gflops_per_core=40.0,
                    dram_read_gbps=25.0)
_CPU_8E = CPUModel(name="Oryon (8 Elite)", max_cores=4, gflops_per_core=55.0,
                   dram_read_gbps=30.0)

DEVICES: Dict[str, Device] = {
    "oneplus_ace3": Device(name="OnePlus Ace3", soc="Snapdragon 8 Gen 2",
                           npu=GENERATIONS["V73"], cpu=_CPU_8G2),
    "oneplus_12": Device(name="OnePlus 12", soc="Snapdragon 8 Gen 3",
                         npu=GENERATIONS["V75"], cpu=_CPU_8G3),
    "oneplus_ace5_pro": Device(name="OnePlus Ace5 Pro", soc="Snapdragon 8 Elite",
                               npu=GENERATIONS["V79"], cpu=_CPU_8E),
}


def get_device(key: str) -> Device:
    """Look up a device by registry key or human-readable name."""
    if key in DEVICES:
        return DEVICES[key]
    for device in DEVICES.values():
        if key in (device.name, device.soc, device.npu.name, device.short_name):
            return device
    raise NPUError(f"unknown device {key!r}; known: {sorted(DEVICES)}")


class FastRPCSession:
    """Shared-memory command session between the CPU and the NPU side.

    Mirrors the paper's Section 6 design: backend initialization starts a
    remote session and sets up a shared-memory mailbox that an NPU thread
    polls for computation requests.  Because CPU->NPU coherence is
    one-way, the CPU must clean the cache after writing a request —
    :meth:`submit` does so explicitly, and tests can call
    :meth:`submit_without_clean` to observe the stale-read failure mode.

    Sessions can die: on real hardware the remote Hexagon process is
    torn down by driver restarts or subsystem resets, and every mapping
    it held is lost (§7.2's FastRPC plumbing).  :meth:`abort` models
    that — the session goes dead and submits raise
    :class:`~repro.errors.SessionAbortError` until :meth:`reopen`
    rebuilds the mailbox.  A
    :class:`~repro.resilience.FaultInjector` passed as
    ``fault_injector`` schedules aborts and DMA timeouts at the
    ``fastrpc.submit`` site; :class:`~repro.resilience.ResilientSession`
    wraps the retry/reopen loop around it.
    """

    _MAILBOX_BYTES = 4096

    def __init__(self, heap: RpcMemHeap, fault_injector=None) -> None:
        self.heap = heap
        self.fault_injector = fault_injector
        self.alive = True
        self.reopen_count = 0
        self.mailbox = heap.alloc(self._MAILBOX_BYTES, name="fastrpc-mailbox")
        self._handlers: Dict[int, Callable[[np.ndarray], np.ndarray]] = {}
        self._sequence = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def abort(self) -> None:
        """Kill the session: NPU-side state is gone until :meth:`reopen`."""
        self.alive = False

    def reopen(self) -> None:
        """Re-establish a dead session.

        Tears down the old mailbox mapping (its VA range is returned to
        the heap) and maps a fresh one; registered op handlers are
        CPU-side state and survive.  The request sequence restarts, as
        it would with a fresh remote session.
        """
        if self.alive:
            raise EngineError("cannot reopen a live session; abort it first")
        self.heap.free(self.mailbox)
        self.reopen_count += 1
        self.mailbox = self.heap.alloc(
            self._MAILBOX_BYTES, name=f"fastrpc-mailbox#{self.reopen_count}")
        self._sequence = 0
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise SessionAbortError(
                "FastRPC session is dead; reopen() before submitting")
        if self.fault_injector is not None:
            try:
                self.fault_injector.maybe_raise(
                    "fastrpc.submit",
                    detail=f"after {self.requests_served} requests")
            except SessionAbortError:
                self.abort()
                raise

    def register_op(self, opcode: int,
                    handler: Callable[[np.ndarray], np.ndarray]) -> None:
        if opcode in self._handlers:
            raise EngineError(f"opcode {opcode} already registered")
        self._handlers[opcode] = handler

    def _encode(self, opcode: int, payload: np.ndarray) -> np.ndarray:
        raw = np.ascontiguousarray(payload).view(np.uint8).ravel()
        header = np.array([self._sequence, opcode, raw.size], dtype=np.uint32)
        message = np.concatenate([header.view(np.uint8), raw])
        if message.size > self._MAILBOX_BYTES:
            raise EngineError(
                f"request of {message.size} bytes exceeds mailbox "
                f"({self._MAILBOX_BYTES} bytes)")
        return message

    def submit(self, opcode: int, payload: np.ndarray) -> np.ndarray:
        """Write a request, clean the cache, let the NPU poll and execute."""
        self._check_alive()
        self._sequence += 1
        self.mailbox.cpu_write(self._encode(opcode, payload))
        self.mailbox.clean_cache()
        return self._poll_and_execute()

    def submit_without_clean(self, opcode: int, payload: np.ndarray) -> np.ndarray:
        """Faulty submit path: skips cache maintenance (for failure tests)."""
        self._check_alive()
        self._sequence += 1
        self.mailbox.cpu_write(self._encode(opcode, payload))
        return self._poll_and_execute()

    def _poll_and_execute(self) -> np.ndarray:
        header = self.mailbox.npu_read(12, dtype=np.uint32)
        sequence, opcode, size = (int(header[0]), int(header[1]), int(header[2]))
        if sequence != self._sequence:
            raise EngineError(
                f"NPU observed stale mailbox (sequence {sequence}, expected "
                f"{self._sequence}); was the cache cleaned after the CPU write?")
        if opcode not in self._handlers:
            raise EngineError(f"NPU has no handler for opcode {opcode}")
        payload = self.mailbox.npu_read(size, offset=12)
        self.requests_served += 1
        return self._handlers[opcode](payload)
