"""Memory subsystem of the Hexagon NPU model: TCM, DMA and shared buffers.

Section 3.1.2 of the paper describes the memory hierarchy this module
models:

* 8 MiB of TCM (Tightly Coupled Memory), a software-managed on-chip
  scratchpad.  Vector scatter/gather and *all* HMX instructions can only
  touch TCM, so kernels must explicitly stage data here;
* a shared 1 MiB L2 cache fed by ``l2fetch`` (we model capacity only);
* a DMA engine that moves large regular 1D/2D blocks between DDR and TCM
  at ~60 GB/s, but "cannot efficiently handle small or irregular memory
  accesses" (Section 3.3);
* ``rpcmem`` shared buffers between CPU and NPU with only *one-way*
  coherence: after the CPU writes, the NPU-side cache must be manually
  cleaned or the NPU observes stale data (Section 6).  The staleness is
  simulated for real so integration tests can catch missing cache
  maintenance, the actual bug class the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import AddressSpaceError, DMAError, TCMAccessError, TCMAllocationError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = [
    "TCM_CAPACITY_BYTES",
    "L2_CAPACITY_BYTES",
    "TCM_ALIGNMENT",
    "TCMRegion",
    "TCM",
    "DMATransfer",
    "DMAEngine",
    "SharedBuffer",
    "RpcMemHeap",
]

TCM_CAPACITY_BYTES = 8 * 1024 * 1024
L2_CAPACITY_BYTES = 1 * 1024 * 1024
TCM_ALIGNMENT = 128  # HVX vector width in bytes


@dataclass(frozen=True)
class TCMRegion:
    """A reserved region of TCM: ``[offset, offset + size)``."""

    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class TCM:
    """Software-managed on-chip scratchpad with a first-fit allocator.

    The allocator enforces HVX alignment (128 bytes) because vector and
    HMX accesses require it.  Peak usage is tracked so experiments can
    confirm claims like the exp LUT consuming ~0.8% of TCM.
    """

    def __init__(self, capacity: int = TCM_CAPACITY_BYTES,
                 alignment: int = TCM_ALIGNMENT) -> None:
        if capacity <= 0:
            raise ValueError(f"TCM capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.alignment = alignment
        self._buffer = np.zeros(capacity, dtype=np.uint8)
        self._regions: List[TCMRegion] = []
        self._peak_usage = 0
        # optional repro.resilience.FaultInjector; fires alloc_fail
        # events at the "tcm.alloc" site when set
        self.fault_injector = None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def _align(self, value: int) -> int:
        return -(-value // self.alignment) * self.alignment

    def alloc(self, size: int) -> TCMRegion:
        """Reserve ``size`` bytes; raises :class:`TCMAllocationError` when full."""
        if size <= 0:
            raise TCMAllocationError(f"allocation size must be positive, got {size}")
        aligned = self._align(size)
        if self.fault_injector is not None:
            self.fault_injector.maybe_raise(
                "tcm.alloc",
                detail=f"requested {size} bytes ({aligned} aligned), "
                       f"{self.free_bytes()} free of {self.capacity}, "
                       f"peak use {self._peak_usage}")
        cursor = 0
        for region in sorted(self._regions, key=lambda r: r.offset):
            if region.offset - cursor >= aligned:
                break
            cursor = self._align(region.end)
        if cursor + aligned > self.capacity:
            raise TCMAllocationError(
                f"TCM exhausted: need {aligned} bytes "
                f"({size} requested), {self.free_bytes()} free of "
                f"{self.capacity}, peak use {self._peak_usage}")
        region = TCMRegion(cursor, aligned)
        self._regions.append(region)
        self._peak_usage = max(self._peak_usage, self.used_bytes())
        if obs_trace.enabled():
            reg = obs_metrics.get_metrics()
            reg.gauge("repro.npu.tcm_used_bytes").set(self.used_bytes())
            reg.gauge("repro.npu.tcm_peak_bytes").set(self._peak_usage)
        return region

    def free(self, region: TCMRegion) -> None:
        try:
            self._regions.remove(region)
        except ValueError:
            raise TCMAllocationError(f"region {region} was not allocated") from None

    def used_bytes(self) -> int:
        return sum(r.size for r in self._regions)

    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes()

    @property
    def peak_usage(self) -> int:
        return self._peak_usage

    def reset(self) -> None:
        self._regions.clear()
        self._buffer[:] = 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def _check(self, region: TCMRegion, offset: int, nbytes: int) -> int:
        start = region.offset + offset
        if offset < 0 or start + nbytes > region.end:
            raise TCMAccessError(
                f"access [{offset}, {offset + nbytes}) outside region of {region.size} bytes")
        return start

    def write(self, region: TCMRegion, data: np.ndarray, offset: int = 0) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        start = self._check(region, offset, raw.size)
        self._buffer[start:start + raw.size] = raw

    def read(self, region: TCMRegion, nbytes: int, offset: int = 0,
             dtype: np.dtype = np.uint8) -> np.ndarray:
        start = self._check(region, offset, nbytes)
        raw = self._buffer[start:start + nbytes]
        return raw.view(dtype).copy()

    def view(self, region: TCMRegion) -> np.ndarray:
        """Raw byte view of a region (used by gather/scatter models)."""
        return self._buffer[region.offset:region.end]


@dataclass(frozen=True)
class DMATransfer:
    """A completed DMA descriptor, used by the timing model."""

    nbytes: int
    rows: int
    direction: str  # "ddr_to_tcm" or "tcm_to_ddr"

    @property
    def is_2d(self) -> bool:
        return self.rows > 1


class DMAEngine:
    """DMA engine moving regular 1D/2D blocks between DDR and TCM.

    Transfers are recorded as :class:`DMATransfer` descriptors; the
    timing model converts total bytes (plus a per-row setup charge for 2D
    descriptors) into seconds.  Small irregular transfers must instead go
    through the HVX core path — this split is what makes the paper's
    AoS-friendly layouts matter.
    """

    _DIRECTIONS = ("ddr_to_tcm", "tcm_to_ddr")

    def __init__(self) -> None:
        self.transfers: List[DMATransfer] = []

    def transfer_1d(self, nbytes: int, direction: str = "ddr_to_tcm") -> DMATransfer:
        return self._submit(nbytes, 1, direction)

    def transfer_2d(self, rows: int, row_bytes: int,
                    direction: str = "ddr_to_tcm") -> DMATransfer:
        if rows <= 0 or row_bytes <= 0:
            raise DMAError(f"2D transfer needs positive rows/row_bytes, got {rows}x{row_bytes}")
        return self._submit(rows * row_bytes, rows, direction)

    def _submit(self, nbytes: int, rows: int, direction: str) -> DMATransfer:
        if direction not in self._DIRECTIONS:
            raise DMAError(f"unknown DMA direction {direction!r}")
        if nbytes <= 0:
            raise DMAError(f"DMA transfer size must be positive, got {nbytes}")
        transfer = DMATransfer(nbytes=nbytes, rows=rows, direction=direction)
        self.transfers.append(transfer)
        if obs_trace.enabled():
            obs_metrics.get_metrics().counter("repro.npu.dma_bytes").inc(nbytes)
        return transfer

    def total_bytes(self, direction: Optional[str] = None) -> int:
        return sum(t.nbytes for t in self.transfers
                   if direction is None or t.direction == direction)

    def reset(self) -> None:
        self.transfers.clear()


class SharedBuffer:
    """An rpcmem (dmabuf-backed) buffer shared between CPU and NPU.

    Coherence is one-way on Snapdragon SoCs: the NPU does not observe CPU
    writes until the corresponding cache lines are cleaned.  We simulate
    this faithfully — :meth:`npu_read` returns the *snapshot from the
    last* :meth:`clean_cache` call, so forgetting cache maintenance
    produces stale activations, exactly as on hardware.
    """

    def __init__(self, nbytes: int, name: str = "rpcmem") -> None:
        if nbytes <= 0:
            raise ValueError(f"buffer size must be positive, got {nbytes}")
        self.name = name
        self.nbytes = nbytes
        self._ddr = np.zeros(nbytes, dtype=np.uint8)
        self._npu_snapshot = np.zeros(nbytes, dtype=np.uint8)
        self.clean_count = 0

    def cpu_write(self, data: np.ndarray, offset: int = 0) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        if offset < 0 or offset + raw.size > self.nbytes:
            raise TCMAccessError(
                f"cpu_write of {raw.size} bytes at {offset} exceeds buffer {self.nbytes}")
        self._ddr[offset:offset + raw.size] = raw

    def clean_cache(self) -> None:
        """Flush CPU writes so the NPU observes them (manual maintenance)."""
        self._npu_snapshot[:] = self._ddr
        self.clean_count += 1

    def npu_read(self, nbytes: int, offset: int = 0,
                 dtype: np.dtype = np.uint8) -> np.ndarray:
        if offset < 0 or offset + nbytes > self.nbytes:
            raise TCMAccessError(
                f"npu_read of {nbytes} bytes at {offset} exceeds buffer {self.nbytes}")
        return self._npu_snapshot[offset:offset + nbytes].view(dtype).copy()

    def npu_write(self, data: np.ndarray, offset: int = 0) -> None:
        """NPU-side write; visible to the CPU immediately (one-way coherence)."""
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        if offset < 0 or offset + raw.size > self.nbytes:
            raise TCMAccessError(
                f"npu_write of {raw.size} bytes at {offset} exceeds buffer {self.nbytes}")
        self._npu_snapshot[offset:offset + raw.size] = raw
        self._ddr[offset:offset + raw.size] = raw

    def cpu_read(self, nbytes: int, offset: int = 0,
                 dtype: np.dtype = np.uint8) -> np.ndarray:
        if offset < 0 or offset + nbytes > self.nbytes:
            raise TCMAccessError(
                f"cpu_read of {nbytes} bytes at {offset} exceeds buffer {self.nbytes}")
        return self._ddr[offset:offset + nbytes].view(dtype).copy()


class RpcMemHeap:
    """Allocator for rpcmem shared buffers bounded by the NPU VA space.

    Older NPU generations expose a 32-bit virtual address space to a
    session — and Snapdragon 8 Gen 2 effectively only 2 GiB — which
    prevents 3B-parameter models from running (Sections 7.2.1, 7.2.2).
    Every mapping is charged against the session's VA budget.  The
    paper's §8c mitigation — "employing multiple NPU sessions could help
    alleviate this issue" — is modelled by :class:`MultiSessionHeap`.
    """

    def __init__(self, va_space_bytes: int) -> None:
        if va_space_bytes <= 0:
            raise ValueError(f"VA space must be positive, got {va_space_bytes}")
        self.va_space_bytes = va_space_bytes
        self.buffers: List[SharedBuffer] = []
        self.peak_mapped_bytes = 0
        # optional repro.resilience.FaultInjector; fires alloc_fail
        # events at the "rpcmem.alloc" site when set
        self.fault_injector = None

    def mapped_bytes(self) -> int:
        return sum(b.nbytes for b in self.buffers)

    def free_va_bytes(self) -> int:
        """Remaining VA headroom — what bounds the KV block pool size."""
        return self.va_space_bytes - self.mapped_bytes()

    def alloc(self, nbytes: int, name: str = "rpcmem") -> SharedBuffer:
        if self.fault_injector is not None:
            self.fault_injector.maybe_raise(
                "rpcmem.alloc",
                detail=f"mapping {name}: requested {nbytes} bytes, "
                       f"{self.free_va_bytes()} VA free of "
                       f"{self.va_space_bytes}, peak mapped "
                       f"{self.peak_mapped_bytes}")
        if self.mapped_bytes() + nbytes > self.va_space_bytes:
            raise AddressSpaceError(
                f"mapping {name} ({nbytes / 2**20:.0f} MiB) exceeds NPU VA space: "
                f"requested {nbytes} bytes, "
                f"{self.mapped_bytes() / 2**20:.0f} MiB already mapped of "
                f"{self.va_space_bytes / 2**20:.0f} MiB "
                f"({self.free_va_bytes()} bytes free, peak mapped "
                f"{self.peak_mapped_bytes})")
        buffer = SharedBuffer(nbytes, name=name)
        self.buffers.append(buffer)
        self.peak_mapped_bytes = max(self.peak_mapped_bytes,
                                     self.mapped_bytes())
        if obs_trace.enabled():
            obs_metrics.get_metrics().gauge(
                "repro.npu.rpcmem_mapped_bytes").set(self.mapped_bytes())
        return buffer

    def free(self, buffer: SharedBuffer) -> None:
        try:
            self.buffers.remove(buffer)
        except ValueError:
            raise AddressSpaceError(f"buffer {buffer.name} is not mapped") from None


class MultiSessionHeap:
    """Sharded rpcmem mapping across several NPU sessions (§8c).

    Each FastRPC session has its own virtual address space; a model too
    large for one session can shard its weights (e.g. layer groups)
    across several.  ``alloc_sharded`` splits a mapping into per-session
    shards, each of which must fit the session with the most headroom;
    crossing sessions at runtime costs an extra synchronization, which
    the performance model charges per boundary.
    """

    def __init__(self, n_sessions: int, va_space_bytes: int) -> None:
        if n_sessions <= 0:
            raise ValueError(f"need at least one session, got {n_sessions}")
        self.sessions = [RpcMemHeap(va_space_bytes) for _ in range(n_sessions)]

    @property
    def n_sessions(self) -> int:
        return len(self.sessions)

    def total_mapped_bytes(self) -> int:
        return sum(s.mapped_bytes() for s in self.sessions)

    def alloc(self, nbytes: int, name: str = "rpcmem") -> SharedBuffer:
        """Map an unshardable buffer into the emptiest session."""
        target = min(self.sessions, key=lambda s: s.mapped_bytes())
        return target.alloc(nbytes, name=name)

    def free(self, buffer: SharedBuffer) -> None:
        """Unmap a buffer from whichever session holds it."""
        for session in self.sessions:
            if buffer in session.buffers:
                session.free(buffer)
                return
        raise AddressSpaceError(f"buffer {buffer.name} is not mapped")

    def alloc_sharded(self, nbytes: int, name: str = "rpcmem",
                      shards: Optional[int] = None) -> List[SharedBuffer]:
        """Split a large mapping evenly across sessions.

        Raises :class:`~repro.errors.AddressSpaceError` when even the
        sharded pieces do not fit — the model is too large for the
        device no matter how many sessions are opened.
        """
        n = self.n_sessions if shards is None else shards
        if not 1 <= n <= self.n_sessions:
            raise AddressSpaceError(
                f"cannot split into {n} shards across {self.n_sessions} sessions")
        shard_bytes = -(-nbytes // n)
        buffers = []
        for i in range(n):
            size = min(shard_bytes, nbytes - i * shard_bytes)
            if size <= 0:
                break
            buffers.append(self.sessions[i].alloc(size, name=f"{name}[{i}]"))
        return buffers
