"""NPU power management: DVFS governors (§6, §7.2.3).

The paper's operator library includes power management, and all power
measurements are taken "with the performance mode enabled".  This module
models the DVFS levels a Hexagon NPU session can request through the HAP
power API: each governor scales the clock (and therefore every
issue-rate-bound term of the timing model) and the dynamic power draw,
with voltage-driven superlinear power scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import NPUError
from .timing import NPUGenerationTiming

__all__ = ["PowerGovernor", "GOVERNORS", "THROTTLE_LADDER", "apply_governor",
           "downgrade", "governor_level", "ThermalState"]


@dataclass(frozen=True)
class PowerGovernor:
    """One DVFS operating point.

    ``clock_scale`` multiplies the NPU clock (and DMA/memory rates move
    with the fabric, scaled by ``fabric_scale``); ``power_scale``
    multiplies dynamic power, superlinear in frequency because voltage
    rises with it (P ~ f * V^2).
    """

    name: str
    clock_scale: float
    fabric_scale: float
    power_scale: float

    def __post_init__(self) -> None:
        if self.clock_scale <= 0 or self.fabric_scale <= 0:
            raise NPUError(f"governor {self.name!r} has non-positive scales")


GOVERNORS: Dict[str, PowerGovernor] = {
    # the paper's measurement setting
    "performance": PowerGovernor("performance", clock_scale=1.0,
                                 fabric_scale=1.0, power_scale=1.0),
    # default balanced governor: ~20% lower clock, ~35% lower dynamic power
    "balanced": PowerGovernor("balanced", clock_scale=0.8,
                              fabric_scale=0.9, power_scale=0.65),
    # background / low-power mode
    "efficiency": PowerGovernor("efficiency", clock_scale=0.55,
                                fabric_scale=0.75, power_scale=0.38),
}


#: DVFS downgrade order under thermal pressure (§7.2.3): sustained load
#: walks the session down this ladder one rung per thermal event.
THROTTLE_LADDER = ("performance", "balanced", "efficiency")


def governor_level(governor: "PowerGovernor | str") -> int:
    """Rung of a governor on :data:`THROTTLE_LADDER` (0 = performance).

    Off-ladder governors read as -1 so telemetry gauges stay numeric.
    """
    name = governor.name if isinstance(governor, PowerGovernor) else governor
    try:
        return THROTTLE_LADDER.index(name)
    except ValueError:
        return -1


def downgrade(governor: "PowerGovernor | str") -> PowerGovernor:
    """The next-lower DVFS rung for a thermal throttling event.

    Already at the bottom (``efficiency``) stays there — real DVFS
    governors saturate rather than power the NPU off.
    """
    name = governor.name if isinstance(governor, PowerGovernor) else governor
    if name not in GOVERNORS:
        raise NPUError(
            f"unknown governor {name!r}; known: {sorted(GOVERNORS)}")
    rung = THROTTLE_LADDER.index(name)
    return GOVERNORS[THROTTLE_LADDER[min(rung + 1, len(THROTTLE_LADDER) - 1)]]


class ThermalState:
    """Per-device thermal governor state for sustained serving load.

    A leaky-bucket skin-temperature proxy: dynamic energy dissipated
    while serving accumulates as ``heat_joules``; idle time bleeds it
    off at ``cool_watts``.  Crossing ``throttle_at_joules`` walks the
    session one rung **down** :data:`THROTTLE_LADDER`; cooling below
    ``recover_at_joules`` walks it back up.  The hysteresis gap between
    the two thresholds prevents governor flapping at the boundary.
    Deterministic: state is a pure function of the absorb/cool call
    sequence.
    """

    def __init__(self, throttle_at_joules: float = 60.0,
                 recover_at_joules: float = 30.0,
                 cool_watts: float = 1.5) -> None:
        if throttle_at_joules <= 0 or cool_watts <= 0:
            raise NPUError(
                f"thermal thresholds must be positive, got throttle_at="
                f"{throttle_at_joules}, cool_watts={cool_watts}")
        if not 0 <= recover_at_joules < throttle_at_joules:
            raise NPUError(
                f"recover_at_joules must sit below throttle_at_joules "
                f"({recover_at_joules} vs {throttle_at_joules})")
        self.throttle_at_joules = throttle_at_joules
        self.recover_at_joules = recover_at_joules
        self.cool_watts = cool_watts
        self.heat_joules = 0.0
        self.rung = 0
        self.n_throttles = 0
        self.n_recoveries = 0

    @property
    def governor(self) -> PowerGovernor:
        return GOVERNORS[THROTTLE_LADDER[self.rung]]

    def absorb(self, joules: float) -> PowerGovernor:
        """Accumulate dissipated energy; may throttle.  Returns governor."""
        if joules < 0:
            raise NPUError(f"cannot absorb {joules} joules")
        self.heat_joules += joules
        # one rung per crossing — sustained load walks the ladder one
        # thermal event at a time, mirroring downgrade()'s saturation
        if (self.heat_joules >= self.throttle_at_joules
                and self.rung < len(THROTTLE_LADDER) - 1):
            self.rung += 1
            self.n_throttles += 1
            # re-arm inside the hysteresis band: the next rung needs
            # fresh heat, recovery needs real cooling below recover_at
            self.heat_joules = 0.5 * (self.recover_at_joules
                                      + self.throttle_at_joules)
        return self.governor

    def cool(self, idle_seconds: float) -> PowerGovernor:
        """Bleed heat during idle time; may recover a rung."""
        if idle_seconds < 0:
            raise NPUError(f"cannot cool for {idle_seconds} seconds")
        self.heat_joules = max(
            0.0, self.heat_joules - self.cool_watts * idle_seconds)
        if self.heat_joules <= self.recover_at_joules and self.rung > 0:
            self.rung -= 1
            self.n_recoveries += 1
        return self.governor


def apply_governor(generation: NPUGenerationTiming,
                   governor: "PowerGovernor | str") -> NPUGenerationTiming:
    """Return a generation parameter set rescaled to a DVFS level.

    Compute-rate terms scale with the clock; DMA and core-path memory
    bandwidth scale with the fabric.
    """
    if isinstance(governor, str):
        try:
            governor = GOVERNORS[governor]
        except KeyError:
            raise NPUError(
                f"unknown governor {governor!r}; known: "
                f"{sorted(GOVERNORS)}") from None
    return replace(
        generation,
        clock_hz=generation.clock_hz * governor.clock_scale,
        hmx_fp16_gflops=generation.hmx_fp16_gflops * governor.clock_scale,
        hvx_thread_gemm_gflops=(generation.hvx_thread_gemm_gflops
                                * governor.clock_scale),
        dma_read_gbps=generation.dma_read_gbps * governor.fabric_scale,
        hvx_mem_read_gbps=(generation.hvx_mem_read_gbps
                           * governor.fabric_scale),
    )
