"""Miscellaneous transformer operators (the "Misc. Ops" of §5.2.1).

RMSNorm, RoPE, SwiGLU activation and residual addition.  The paper
classifies these as minor contributors to decode latency, but the LLM
engine still needs them numerically (FP16 storage, FP32 internal
accumulation where reductions are involved) and the timing model charges
their vector work when an :class:`~repro.npu.hvx.HVXContext` is passed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import KernelError
from ..npu.hvx import HVXContext, vectors_for_bytes

__all__ = ["rms_norm", "rope_rotate", "silu", "swiglu", "residual_add",
           "rope_frequencies"]


def _charge(hvx: Optional[HVXContext], opcode: str, nbytes: int,
            n_ops: int = 1) -> None:
    if hvx is not None:
        hvx.trace.record(opcode, vectors_for_bytes(nbytes) * n_ops)


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6,
             hvx: Optional[HVXContext] = None) -> np.ndarray:
    """RMSNorm over the last axis: ``x / rms(x) * weight`` (FP32 reduce)."""
    arr = np.asarray(x, dtype=np.float16)
    w = np.asarray(weight, dtype=np.float16)
    if arr.shape[-1] != w.shape[-1]:
        raise KernelError(f"weight width {w.shape} does not match input {arr.shape}")
    x32 = arr.astype(np.float32)
    mean_sq = np.mean(x32 * x32, axis=-1, keepdims=True)
    normed = x32 / np.sqrt(mean_sq + eps)
    _charge(hvx, "vmpy_qf32", arr.size * 4, 3)
    _charge(hvx, "vmpy_hf", arr.size * 2, 1)
    return (normed * w.astype(np.float32)).astype(np.float16)


def rope_frequencies(head_dim: int, max_positions: int,
                     theta: float = 10000.0) -> Tuple[np.ndarray, np.ndarray]:
    """Precompute RoPE cos/sin tables of shape ``(max_positions, head_dim/2)``."""
    if head_dim % 2 != 0:
        raise KernelError(f"head dim must be even for RoPE, got {head_dim}")
    inv_freq = 1.0 / theta ** (np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)
    angles = np.outer(np.arange(max_positions, dtype=np.float64), inv_freq)
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


def rope_rotate(x: np.ndarray, positions: np.ndarray, cos_table: np.ndarray,
                sin_table: np.ndarray, hvx: Optional[HVXContext] = None) -> np.ndarray:
    """Apply rotary position embedding to ``(tokens, head_dim)`` vectors.

    Uses the interleaved-pair convention: dimensions ``(2i, 2i+1)`` rotate
    together by the position's angle for frequency ``i``.
    """
    arr = np.asarray(x, dtype=np.float16).astype(np.float32)
    pos = np.asarray(positions, dtype=np.int64)
    if arr.ndim != 2:
        raise KernelError(f"rope expects (tokens, head_dim), got {arr.shape}")
    if pos.shape[0] != arr.shape[0]:
        raise KernelError(f"positions {pos.shape} do not match tokens {arr.shape[0]}")
    if pos.size and int(pos.max()) >= cos_table.shape[0]:
        raise KernelError(
            f"position {int(pos.max())} exceeds RoPE table length {cos_table.shape[0]}")
    cos = cos_table[pos]
    sin = sin_table[pos]
    even = arr[:, 0::2]
    odd = arr[:, 1::2]
    out = np.empty_like(arr)
    out[:, 0::2] = even * cos - odd * sin
    out[:, 1::2] = even * sin + odd * cos
    _charge(hvx, "vmpy_hf", arr.size * 2, 4)
    return out.astype(np.float16)


def silu(x: np.ndarray, hvx: Optional[HVXContext] = None) -> np.ndarray:
    """SiLU activation ``x * sigmoid(x)`` with FP32 internals."""
    x32 = np.asarray(x, dtype=np.float16).astype(np.float32)
    out = x32 / (1.0 + np.exp(-x32)) if x32.size else x32
    _charge(hvx, "vmpy_hf", x32.size * 2, 4)
    return out.astype(np.float16)


def swiglu(gate: np.ndarray, up: np.ndarray,
           hvx: Optional[HVXContext] = None) -> np.ndarray:
    """SwiGLU combine: ``silu(gate) * up`` (the Qwen/Llama FFN core)."""
    g = np.asarray(gate, dtype=np.float16)
    u = np.asarray(up, dtype=np.float16)
    if g.shape != u.shape:
        raise KernelError(f"gate/up shapes differ: {g.shape} vs {u.shape}")
    out = silu(g, hvx).astype(np.float32) * u.astype(np.float32)
    _charge(hvx, "vmpy_hf", g.size * 2, 1)
    return out.astype(np.float16)


def residual_add(x: np.ndarray, residual: np.ndarray,
                 hvx: Optional[HVXContext] = None) -> np.ndarray:
    """Residual addition in FP16."""
    a = np.asarray(x, dtype=np.float16)
    b = np.asarray(residual, dtype=np.float16)
    if a.shape != b.shape:
        raise KernelError(f"residual shapes differ: {a.shape} vs {b.shape}")
    _charge(hvx, "vadd_hf", a.size * 2, 1)
    return (a.astype(np.float32) + b.astype(np.float32)).astype(np.float16)
