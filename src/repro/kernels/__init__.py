"""NPU kernels: mixed-precision GEMM, LUT softmax, FlashAttention, ops.

* :mod:`repro.kernels.lut` — exp LUT + vlut16 table construction (§5.2).
* :mod:`repro.kernels.softmax` — three exp kernels and on-chip softmax.
* :mod:`repro.kernels.dequant` — the four Fig. 15 dequantization paths.
* :mod:`repro.kernels.gemm` — the end-to-end W4A16 GEMM pipeline.
* :mod:`repro.kernels.flash_attention` — Algorithm 1 plus FP32 baseline.
* :mod:`repro.kernels.ops` — RMSNorm / RoPE / SwiGLU / residual add.
"""

from .dequant import (
    DEQUANT_STRATEGIES,
    broadcast_scales_vlut,
    broadcast_scales_vsplat,
    dequantize_stream,
    int4_to_fp16_unpack,
    int4_to_fp16_vlut,
)
from .flash_attention import (
    AttentionBreakdown,
    FlashAttention,
    attention_fp32_reference,
)
from .gemm import MixedPrecisionGemm, PreparedWeight
from .hvx_gemm import hvx_gemm
from .lut import (
    EXP_LUT_BYTES,
    EXP_LUT_ENTRIES,
    ExpLUT,
    build_exp_lut,
    exp_lut_offsets,
    scale_broadcast_indices,
)
from .ops import residual_add, rms_norm, rope_frequencies, rope_rotate, silu, swiglu
from .tmac import TMacGemv, TMacPreparedWeight
from .softmax import (
    CHAIN_STALL_PACKETS,
    EXP_METHODS,
    OnChipSoftmax,
    exp_lut,
    exp_poly16,
    exp_poly32,
)

__all__ = [
    "DEQUANT_STRATEGIES",
    "broadcast_scales_vlut",
    "broadcast_scales_vsplat",
    "dequantize_stream",
    "int4_to_fp16_unpack",
    "int4_to_fp16_vlut",
    "AttentionBreakdown",
    "FlashAttention",
    "attention_fp32_reference",
    "MixedPrecisionGemm",
    "hvx_gemm",
    "PreparedWeight",
    "EXP_LUT_BYTES",
    "EXP_LUT_ENTRIES",
    "ExpLUT",
    "build_exp_lut",
    "exp_lut_offsets",
    "scale_broadcast_indices",
    "TMacGemv",
    "TMacPreparedWeight",
    "residual_add",
    "rms_norm",
    "rope_frequencies",
    "rope_rotate",
    "silu",
    "swiglu",
    "CHAIN_STALL_PACKETS",
    "EXP_METHODS",
    "OnChipSoftmax",
    "exp_lut",
    "exp_poly16",
    "exp_poly32",
]
