"""T-MAC-style LUT GEMV: mixed-precision decode without dequantization.

The paper's discussion (§8a) notes that its decode speed is bounded by
dequantization overhead, and that "approaches similar to T-MAC could
potentially enable efficient GEMV with fine-grained group quantization
on NPUs, thereby accelerating the LLM decoding process".  This module
implements that future-work direction on the simulator.

T-MAC (Wei et al., EuroSys '25) replaces multiply-accumulate with table
lookup.  A 4-bit weight decomposes into four bit-planes
``W = sum_b 2^b * B_b - 8`` with ``B_b`` binary; the dot product of an
activation vector with a binary column is a sum of group lookups:
activations are split into groups of ``g = 4``, and for each group a
16-entry table holds the partial sums of every activation subset.  The
weight bits themselves become the lookup indices, so the inner loop is
*pure* ``vlut16`` + accumulate — no unpack, no scale multiply per
element, no dequantized FP16 stream written to TCM.

Per 256 weight elements the kernel issues ~5 vector packets (one load,
lookups, accumulates) versus ~17 for the paper's dequantization path,
which pushes GEMV back to the DMA bound — the behaviour the benchmarks
measure against the Fig. 15 "no dequantization" ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import KernelError
from ..npu.hvx import HVXContext, InstructionTrace, vectors_for_bytes
from ..npu.memory import DMAEngine
from ..npu.timing import KernelCost
from ..quant.schemes import Q4_GROUP_SIZE
from ..quant.tile_quant import QuantizedWeight, quantize_tile_group

__all__ = ["TMacPreparedWeight", "TMacGemv", "ACTIVATION_GROUP"]

ACTIVATION_GROUP = 4  # activations per lookup table (16 subset sums)


@dataclass
class TMacPreparedWeight:
    """Bit-plane decomposed 4-bit weight for LUT GEMV."""

    quantized: QuantizedWeight
    bitplanes: np.ndarray       # (4, k_pad, n_pad) binary
    group_scales: np.ndarray    # FP32 scale per element, (k_pad, n_pad)
    original_shape: Tuple[int, int]

    @property
    def storage_bytes(self) -> int:
        return self.quantized.storage_bytes


class TMacGemv:
    """Dequantization-free GEMV via activation-group lookup tables."""

    def __init__(self, group_size: int = Q4_GROUP_SIZE) -> None:
        self.group_size = group_size

    # ------------------------------------------------------------------
    def prepare_weight(self, weight: np.ndarray) -> TMacPreparedWeight:
        """Quantize with tile groups and decompose into bit-planes."""
        w = np.asarray(weight, dtype=np.float32)
        if w.ndim != 2:
            raise KernelError(f"expected a weight matrix, got shape {w.shape}")
        quantized = quantize_tile_group(w, bits=4, group_size=self.group_size)
        from ..quant.tile_quant import dequantize_weight
        from ..npu.hmx import hmx_layout_order, pad_to_tiles

        rows, cols = quantized.padded_shape
        # reconstruct the per-element codes and scales in matrix order
        order = hmx_layout_order(rows, cols)
        codes_flat = np.empty(rows * cols, dtype=np.uint8)
        codes_flat[order] = quantized.groups.codes.ravel()
        scales_flat = np.empty(rows * cols, dtype=np.float32)
        scales_flat[order] = np.repeat(
            quantized.groups.scales.astype(np.float32), self.group_size)
        codes = codes_flat.reshape(rows, cols)
        scales = scales_flat.reshape(rows, cols)

        bitplanes = np.stack([(codes >> b) & 1 for b in range(4)]) \
            .astype(np.int8)
        return TMacPreparedWeight(quantized=quantized, bitplanes=bitplanes,
                                  group_scales=scales,
                                  original_shape=w.shape)

    # ------------------------------------------------------------------
    def _build_tables(self, activation: np.ndarray) -> np.ndarray:
        """Subset-sum tables: ``tables[g, p] = sum of x[4g+i] where bit i
        of p is set``."""
        x = activation.astype(np.float32)
        n_groups = x.size // ACTIVATION_GROUP
        grouped = x.reshape(n_groups, ACTIVATION_GROUP)
        patterns = np.arange(16)
        masks = ((patterns[:, None] >> np.arange(ACTIVATION_GROUP)[None, :])
                 & 1).astype(np.float32)
        return grouped @ masks.T  # (n_groups, 16)

    def __call__(self, activation: np.ndarray, prepared: TMacPreparedWeight
                 ) -> Tuple[np.ndarray, KernelCost]:
        """Compute ``activation @ weight`` via table lookups.

        ``activation`` is one token's hidden vector (the decode GEMV);
        the result matches the dequantization-based kernel bit-for-bit in
        FP32 (both evaluate the same quantized weights).
        """
        vec = np.asarray(activation, dtype=np.float16).astype(np.float32)
        if vec.ndim != 1:
            raise KernelError(f"T-MAC GEMV expects a vector, got {vec.shape}")
        k, n = prepared.original_shape
        if vec.size != k:
            raise KernelError(
                f"activation width {vec.size} != weight input dim {k}")
        k_pad, n_pad = prepared.quantized.padded_shape
        x = np.zeros(k_pad, dtype=np.float32)
        x[:k] = vec

        trace = InstructionTrace()
        dma = DMAEngine()
        dma.transfer_1d(prepared.storage_bytes)
        dma.transfer_1d(vec.size * 2)

        # table build: 16 subset sums per 4 activations -- vectorized adds
        tables = self._build_tables(x)
        trace.record("vadd_hf", vectors_for_bytes(tables.size * 2))

        # scaled bit-plane accumulation.  Scales are constant within a
        # quantization group, so fold them after the binary dot products.
        scaled_planes = prepared.bitplanes.astype(np.float32) \
            * prepared.group_scales[None, :, :]
        acc = np.zeros(n_pad, dtype=np.float32)
        for b in range(4):
            acc += float(2 ** b) * (x @ scaled_planes[b])
        # the -8 offset of the Q4_0 code grid
        offset = (prepared.group_scales * 8.0)
        acc -= x @ offset

        # instruction accounting: the weight bits are the lookup indices —
        # one vlut16 per 128 index bytes per bit-plane, plus accumulates
        total_elements = k_pad * n_pad
        lut_ops = 4 * vectors_for_bytes(total_elements // 8)  # packed bits
        trace.record("vlut16", lut_ops)
        trace.record("vadd_hf", lut_ops)          # table-sum accumulation
        trace.record("vmem_ld", vectors_for_bytes(prepared.storage_bytes))
        trace.record("vmpy_hf", vectors_for_bytes(n_pad * 2))  # final scale fold

        cost = KernelCost.from_trace(trace, dma)
        return acc[:n].astype(np.float16), cost
