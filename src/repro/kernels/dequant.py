"""Runtime weight dequantization kernels (§5.2.2, Fig. 9, Fig. 15).

Dequantization is the HVX-side cost of running 4-bit weights through the
FP16 HMX unit, and its layout determines whether that cost is tolerable.
This module implements the four strategies of the Fig. 15 ablation:

* ``baseline`` — conventional column-major quantization groups: unpack
  each group with the mask-unpack-convert sequence, then **scatter** the
  elements to their positions in the HMX tile layout (vector scatter is
  the dominating cost);
* ``hmx_layout`` — tile-group quantization (§5.1.1): the dequantized
  stream is already in HMX order so writes are sequential, but the AoS
  group granularity under-fills registers and needs merge instructions;
* ``ours`` — tile groups **plus** super-group coalescing (§5.1.2) and
  the LUT tricks of §5.2.2: full-register loads, ``vlut16`` INT4→FP16
  conversion, and four-groups-per-instruction scale broadcast;
* ``no_dequant`` — copy the quantized bytes without converting: the
  performance upper bound of any dequantization-based method.

Each strategy returns the FP16 weights (in HMX layout order where
applicable) *and* leaves a complete instruction trace, so benchmarks can
convert one invocation into per-generation latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import KernelError
from ..obs import trace as obs_trace
from ..npu.hvx import HVXContext, VECTOR_BYTES, vectors_for_bytes
from ..npu.hmx import hmx_layout_order
from ..npu.memory import DMAEngine
from ..quant.codebooks import Codebook, Q4_0_CODEBOOK
from ..quant.coalesce import PackedWeight, unpack_nibbles
from ..quant.schemes import QuantizedGroups
from ..quant.tile_quant import QuantizedWeight
from .lut import scale_broadcast_indices

__all__ = [
    "DEQUANT_STRATEGIES",
    "int4_to_fp16_vlut",
    "int4_to_fp16_unpack",
    "broadcast_scales_vlut",
    "broadcast_scales_vsplat",
    "dequantize_stream",
    "scatter_conflict_factor",
]

DEQUANT_STRATEGIES = ("baseline", "hmx_layout", "ours", "no_dequant")

# Extra per-super-group packets in the "ours" path: loop control, address
# generation and TCM write synchronization that cannot be hidden in the
# VLIW slots.  Together with the DMA streaming this places the kernel
# ~25% above the no-dequantization bound, as the paper measures.
OURS_SUPER_GROUP_OVERHEAD_PACKETS = 3


def scatter_conflict_factor(rows: int) -> float:
    """Scatter replay factor as a function of the scattered column span.

    The baseline scatters each conventional group across ``rows`` tile-
    layout positions; wider spans touch more TCM banks per instruction
    and replay more often.  Calibrated so the Fig. 15 baseline speedups
    spread across the paper's 9.65x-19.04x band.
    """
    if rows <= 0:
        raise KernelError(f"row span must be positive, got {rows}")
    return float(np.clip(0.5 + rows / 4096.0, 1.0, 1.8))


# ----------------------------------------------------------------------
# element converters (Fig. 9)
# ----------------------------------------------------------------------
def int4_to_fp16_vlut(hvx: HVXContext, codes: np.ndarray,
                      codebook: Codebook = Q4_0_CODEBOOK) -> np.ndarray:
    """INT4 -> FP16 via a single table lookup per vector (Fig. 9, right).

    The 16-entry table holds the codebook reconstruction values, so the
    same instruction supports Q4_0, FP4, NF4 or IQ4_NL by swapping table
    contents.  No qfloat conversion is needed because the table already
    stores IEEE FP16 bit patterns.
    """
    return hvx.vlut16(codes, codebook.values)


def int4_to_fp16_unpack(hvx: HVXContext, codes: np.ndarray) -> np.ndarray:
    """INT4 -> FP16 via the conventional mask-unpack-convert sequence.

    Mask the nibble, recentre by -8, convert to FP16 — and on pre-V79
    parts pay the extra qfloat->IEEE conversion (Fig. 9, left).
    """
    masked = hvx.vand(np.asarray(codes, dtype=np.uint8), 0x0F)
    centred = hvx.vsub_b(masked, 8)
    return hvx.vconv_b_to_hf(centred)


# ----------------------------------------------------------------------
# scale broadcast (§5.2.2)
# ----------------------------------------------------------------------
def broadcast_scales_vlut(hvx: HVXContext, scales: np.ndarray,
                          group_size: int = 32) -> np.ndarray:
    """Broadcast four groups' scales with one vlut16 per four groups.

    The scales become LUT contents; a predefined constant index vector
    replicates scale ``g`` across group ``g``'s lanes.
    """
    scales = np.asarray(scales, dtype=np.float16).ravel()
    if scales.size % 4 != 0:
        raise KernelError(f"vlut scale broadcast needs a multiple of 4 groups, "
                          f"got {scales.size}")
    indices = scale_broadcast_indices(group_size, 4)
    out = np.empty(scales.size * group_size, dtype=np.float16)
    for block in range(scales.size // 4):
        table = np.zeros(16, dtype=np.float16)
        table[:4] = scales[block * 4:(block + 1) * 4]
        looked = hvx.vlut16(indices, table)
        out[block * 4 * group_size:(block + 1) * 4 * group_size] = looked
    return out


def broadcast_scales_vsplat(hvx: HVXContext, scales: np.ndarray,
                            group_size: int = 32) -> np.ndarray:
    """Conventional broadcast: one splat (plus merge) per group."""
    scales = np.asarray(scales, dtype=np.float16).ravel()
    out = np.empty(scales.size * group_size, dtype=np.float16)
    for g, scale in enumerate(scales):
        lanes = hvx.vsplat_hf(float(scale), group_size)
        # merging two half-register groups into one full register
        hvx.trace.record("vror", 1)
        out[g * group_size:(g + 1) * group_size] = lanes
    return out


# ----------------------------------------------------------------------
# full-stream dequantization (Fig. 15 variants)
# ----------------------------------------------------------------------
@dataclass
class DequantOutput:
    """Result of one dequantization pass over a weight."""

    weights_fp16: Optional[np.ndarray]  # HMX-layout stream; None for no_dequant
    strategy: str
    n_elements: int


def _dma_stream_weights(dma: Optional[DMAEngine], packed_bytes: int) -> None:
    if dma is not None and packed_bytes > 0:
        dma.transfer_1d(packed_bytes, direction="ddr_to_tcm")


def _groups_dequant_values(groups: QuantizedGroups,
                           codebook: Codebook) -> np.ndarray:
    if groups.bits == 8:
        centred = groups.codes.astype(np.float32) - 128.0
        values = centred * groups.scales.astype(np.float32)[:, None]
    else:
        table = codebook.values.astype(np.float32)
        values = table[groups.codes] * groups.scales.astype(np.float32)[:, None]
    return values.astype(np.float16)


def dequantize_stream(quantized: QuantizedWeight, strategy: str,
                      hvx: HVXContext, dma: Optional[DMAEngine] = None,
                      packed: Optional[PackedWeight] = None,
                      codebook: Codebook = Q4_0_CODEBOOK,
                      coalesce: int = 8) -> DequantOutput:
    """Dequantize a full weight with one of the Fig. 15 strategies.

    Parameters mirror the on-device data flow: ``quantized`` carries the
    codes/scales and layout, ``packed`` optionally supplies the byte
    stream whose size sets the DMA traffic, ``hvx`` records instruction
    costs, ``dma`` records weight streaming from DDR.

    Returns the FP16 weights in HMX layout order (ready for the matrix
    unit) except for ``no_dequant``, which only moves bytes.
    """
    if strategy not in DEQUANT_STRATEGIES:
        raise KernelError(
            f"unknown dequantization strategy {strategy!r}; expected one of "
            f"{DEQUANT_STRATEGIES}")
    groups = quantized.groups
    n_elements = groups.n_elements
    packed_bytes = packed.data.size if packed is not None else quantized.storage_bytes
    with obs_trace.span("kernel.dequant", category="kernel",
                        strategy=strategy, bits=groups.bits,
                        n_elements=n_elements, packed_bytes=packed_bytes):
        _dma_stream_weights(dma, packed_bytes)

        if strategy == "no_dequant":
            # stream quantized bytes through the vector unit untouched
            n_vec = vectors_for_bytes(packed_bytes)
            hvx.trace.record("vmem_ld", n_vec)
            hvx.trace.record("vmem_st", n_vec)
            return DequantOutput(weights_fp16=None, strategy=strategy,
                                 n_elements=n_elements)

        if strategy == "baseline":
            return _dequant_baseline(quantized, hvx, codebook)
        if strategy == "hmx_layout":
            return _dequant_hmx_layout(quantized, hvx, codebook)
        return _dequant_ours(quantized, hvx, codebook, coalesce)


def _dequant_baseline(quantized: QuantizedWeight, hvx: HVXContext,
                      codebook: Codebook) -> DequantOutput:
    """Conventional layout: per-group unpack + scatter into tile layout."""
    if quantized.layout != "column_major":
        raise KernelError("the baseline strategy expects conventional "
                          "column-major quantization groups")
    groups = quantized.groups
    n_groups = groups.n_groups
    group_size = groups.group_size
    # per-group partial register load of the 18-byte AoS record
    hvx.trace.record("vmem_ld", n_groups)
    # mask-unpack-convert on every group's codes (partial registers: one
    # instruction sequence per group regardless of fill)
    per_group_ops = 3 + (1 if hvx.qfloat_mode == "qfloat" else 0)
    hvx.trace.record("vand", n_groups)
    hvx.trace.record("vsub_b", n_groups)
    hvx.trace.record("vconv_b_hf", n_groups)
    if hvx.qfloat_mode == "qfloat":
        hvx.trace.record("vconv", n_groups)
    del per_group_ops
    # scalar scale broadcast + multiply per group
    hvx.trace.record("vsplat", n_groups)
    hvx.trace.record("vmpy_hf", n_groups)

    values = _groups_dequant_values(groups, codebook)  # column-major order
    rows, cols = quantized.padded_shape
    # scatter each element to its position in the HMX tile layout
    order = hmx_layout_order(rows, cols)
    inverse = np.empty_like(order)
    inverse[order] = np.arange(order.size)
    col_major_rm_index = (np.arange(rows * cols) % rows) * cols \
        + (np.arange(rows * cols) // rows)
    scatter_offsets = inverse[col_major_rm_index]
    destination = np.empty(rows * cols, dtype=np.float16)
    hvx.vscatter(destination, scatter_offsets, values.ravel())
    # bank-conflict replays grow with the scattered column span
    replays = scatter_conflict_factor(rows) - 1.0
    if replays > 0:
        n_scatters = -(-scatter_offsets.size // 64)
        hvx.trace.record("vscatter", int(round(n_scatters * replays)))
    return DequantOutput(weights_fp16=destination, strategy="baseline",
                         n_elements=groups.n_elements)


def _dequant_hmx_layout(quantized: QuantizedWeight, hvx: HVXContext,
                        codebook: Codebook) -> DequantOutput:
    """Tile-group layout without coalescing: sequential but under-filled."""
    if quantized.layout != "hmx_tile":
        raise KernelError("the hmx_layout strategy expects tile-group "
                          "quantized weights")
    groups = quantized.groups
    n_groups = groups.n_groups
    # AoS records stream sequentially, but each 18-byte group still costs a
    # load, two merge ops to extract codes/scale from the register, a
    # 16-entry lookup, a scale splat, a multiply and a sequential store.
    hvx.trace.record("vmem_ld", n_groups)
    hvx.trace.record("vror", 2 * n_groups)
    hvx.trace.record("vlut16", n_groups)
    hvx.trace.record("vsplat", n_groups)
    hvx.trace.record("vmpy_hf", n_groups)
    hvx.trace.record("vmem_st", n_groups)
    values = _groups_dequant_values(groups, codebook)
    return DequantOutput(weights_fp16=values.ravel(), strategy="hmx_layout",
                         n_elements=groups.n_elements)


def _dequant_ours(quantized: QuantizedWeight, hvx: HVXContext,
                  codebook: Codebook, coalesce: int) -> DequantOutput:
    """Tile groups + super-group coalescing + LUT dequantization (§5.2.2)."""
    if quantized.layout != "hmx_tile":
        raise KernelError("our strategy expects tile-group quantized weights")
    groups = quantized.groups
    if groups.n_groups % coalesce != 0:
        raise KernelError(
            f"{groups.n_groups} groups do not divide into super-groups of {coalesce}")
    n_super = groups.n_groups // coalesce
    elems_per_super = coalesce * groups.group_size           # 256 by default
    code_bytes = elems_per_super * groups.bits // 8
    out_bytes = elems_per_super * 2                          # FP16 output
    # per super-group: full-register loads of codes+scales
    hvx.trace.record("vmem_ld", n_super * vectors_for_bytes(code_bytes + 2 * coalesce))
    if groups.bits == 4:
        # nibble expansion: two ops produce byte indices for vlut16
        hvx.trace.record("vlsr", n_super * vectors_for_bytes(code_bytes))
        hvx.trace.record("vand", n_super * vectors_for_bytes(code_bytes))
        # vlut16 over the byte indices (one per index vector)
        hvx.trace.record("vlut16", n_super * vectors_for_bytes(elems_per_super))
    else:
        # 8-bit codes convert directly (no table needed)
        hvx.trace.record("vconv_b_hf", n_super * vectors_for_bytes(elems_per_super))
    # scale broadcast: one vlut16 per 4 groups
    hvx.trace.record("vlut16", n_super * (coalesce // 4 if coalesce >= 4 else 1))
    # paired multiply of codes by broadcast scales over the FP16 outputs
    hvx.trace.record("vmpy_hf", n_super * vectors_for_bytes(out_bytes) // 2)
    # sequential stores of the FP16 stream
    hvx.trace.record("vmem_st", n_super * vectors_for_bytes(out_bytes))
    # loop control / address generation / synchronization
    hvx.trace.record("stall", n_super * OURS_SUPER_GROUP_OVERHEAD_PACKETS)
    values = _groups_dequant_values(groups, codebook)
    return DequantOutput(weights_fp16=values.ravel(), strategy="ours",
                         n_elements=groups.n_elements)
