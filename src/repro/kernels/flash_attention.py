"""FP16 FlashAttention on the NPU model (Algorithm 1, §5.2.1).

Implements the paper's on-chip attention exactly as Algorithm 1 states:

* ``S = MatMul(Q_i, K_j^T)`` on the HMX unit with FP32 accumulation,
  stored FP16;
* running row max ``m`` and the safe-softmax shift, stored FP16;
* ``P = exp(S - m)`` through a pluggable exponential (``lut`` /
  ``poly16`` / ``poly32``), stored FP16;
* the running denominator ``l`` with FP32 row summation, stored FP16;
* output accumulation ``O = diag(correction) O + P V`` on HMX with FP32
  accumulation, stored FP16;
* final normalization ``O / l``.

A conventional FP32 attention (:func:`attention_fp32_reference`) provides
the accuracy baseline of Table 5.  Every invocation records a per-phase
cost breakdown (``qk_matmul`` / ``softmax`` / ``pv_matmul`` /
``rescale``) so Fig. 8's latency decomposition can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import KernelError
from ..obs import trace as obs_trace
from ..npu.hvx import HVXContext, InstructionTrace, vectors_for_bytes
from ..npu.hmx import HMXUnit, TILE_DIM, pad_to_tiles
from ..npu.memory import TCM
from ..npu.timing import KernelCost
from .lut import ExpLUT
from .softmax import (
    CALL_FIXED_PACKETS,
    EXP_METHODS,
    LUT_ROW_EXPOSED_PACKETS,
    ROW_REDUCE_PACKETS,
    exp_lut,
    exp_poly16,
    exp_poly32,
)

__all__ = [
    "AttentionBreakdown",
    "FlashAttention",
    "attention_fp32_reference",
]

_NEG_LIMIT = np.float16(-65504.0)  # most negative finite FP16


@dataclass
class AttentionBreakdown:
    """Per-phase instruction costs of one attention invocation."""

    qk_matmul: KernelCost = field(default_factory=KernelCost)
    softmax: KernelCost = field(default_factory=KernelCost)
    pv_matmul: KernelCost = field(default_factory=KernelCost)
    rescale: KernelCost = field(default_factory=KernelCost)

    def total(self) -> KernelCost:
        out = KernelCost()
        for part in (self.qk_matmul, self.softmax, self.pv_matmul, self.rescale):
            out.merge(part)
        return out


class FlashAttention:
    """Blockwise FP16 attention with the paper's precision discipline."""

    def __init__(self, method: str = "lut", tcm: Optional[TCM] = None,
                 qfloat_mode: str = "qfloat",
                 block_q: int = TILE_DIM, block_kv: int = TILE_DIM) -> None:
        if method not in EXP_METHODS:
            raise KernelError(f"unknown exp method {method!r}; expected {EXP_METHODS}")
        if block_q % TILE_DIM or block_kv % TILE_DIM:
            raise KernelError(
                f"block sizes must be multiples of {TILE_DIM}, got "
                f"{block_q}x{block_kv}")
        self.method = method
        self.block_q = block_q
        self.block_kv = block_kv
        self.qfloat_mode = qfloat_mode
        self._lut: Optional[ExpLUT] = None
        if method == "lut":
            if tcm is None:
                raise KernelError("LUT attention needs a TCM for the exp table")
            self._lut = ExpLUT(tcm)

    # ------------------------------------------------------------------
    def _exp(self, hvx: HVXContext, values: np.ndarray) -> np.ndarray:
        if self.method == "poly32":
            return exp_poly32(hvx, values).astype(np.float16)
        if self.method == "poly16":
            return exp_poly16(hvx, values)
        clipped = np.minimum(values, np.float16(0.0))
        return exp_lut(hvx, clipped, self._lut)

    @staticmethod
    def _phase(trace_holder: Dict[str, InstructionTrace], name: str) -> InstructionTrace:
        if name not in trace_holder:
            trace_holder[name] = InstructionTrace()
        return trace_holder[name]

    # ------------------------------------------------------------------
    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray,
                 scale: Optional[float] = None,
                 q_positions: Optional[np.ndarray] = None,
                 k_positions: Optional[np.ndarray] = None
                 ) -> "tuple[np.ndarray, AttentionBreakdown]":
        """Attention over one head: ``softmax(Q K^T * scale) V``.

        ``q`` is ``(n_q, d)``, ``k``/``v`` are ``(n_kv, d)``; optional
        position arrays enable causal masking (a key is visible to a
        query iff ``k_pos <= q_pos``).  Returns the FP16 output and the
        per-phase cost breakdown.
        """
        q = np.asarray(q, dtype=np.float16)
        k = np.asarray(k, dtype=np.float16)
        v = np.asarray(v, dtype=np.float16)
        if q.ndim != 2 or k.ndim != 2 or v.ndim != 2:
            raise KernelError("attention operands must be 2-D (tokens, head_dim)")
        if k.shape != v.shape or q.shape[1] != k.shape[1]:
            raise KernelError(
                f"shape mismatch: q{q.shape}, k{k.shape}, v{v.shape}")
        n_q, d = q.shape
        n_kv = k.shape[0]
        if scale is None:
            scale = 1.0 / float(np.sqrt(d))
        causal = q_positions is not None and k_positions is not None
        if causal and (len(q_positions) != n_q or len(k_positions) != n_kv):
            raise KernelError("position arrays must match q/k lengths")

        traces: Dict[str, InstructionTrace] = {}
        breakdown = AttentionBreakdown()

        q_pad = pad_to_tiles(q)
        k_pad = pad_to_tiles(k)
        v_pad = pad_to_tiles(v)
        n_q_pad, n_kv_pad = q_pad.shape[0], k_pad.shape[0]

        out = np.zeros((n_q_pad, v_pad.shape[1]), dtype=np.float16)
        m = np.full(n_q_pad, _NEG_LIMIT, dtype=np.float16)
        l = np.zeros(n_q_pad, dtype=np.float16)
        n_blocks = -(-n_kv_pad // self.block_kv)

        for kv_start in range(0, n_kv_pad, self.block_kv):
            kv_end = min(kv_start + self.block_kv, n_kv_pad)
            k_blk = k_pad[kv_start:kv_end]
            v_blk = v_pad[kv_start:kv_end]

            # --- S = Q K^T (HMX, FP32 accumulate, FP16 store) ----------
            hmx = HMXUnit(self._phase(traces, "qk_matmul"))
            s = hmx.gemm(q_pad, k_blk.T, out_dtype=np.float32)
            s = (s * np.float32(scale)).astype(np.float16)
            # vector-side softmax work touches only the true query rows;
            # padded rows are masked out of the tile
            valid_elems = n_q * s.shape[1]
            hvx_soft = HVXContext(self.qfloat_mode, self._phase(traces, "softmax"))
            hvx_soft.trace.record("vmpy_hf", vectors_for_bytes(valid_elems * 2))

            # mask out padded keys (and causal-future keys)
            valid = np.arange(kv_start, kv_end) < n_kv
            s[:, ~valid] = _NEG_LIMIT
            if causal:
                kv_pos = np.full(kv_end - kv_start, np.iinfo(np.int64).max)
                real = np.arange(kv_start, kv_end)[valid]
                kv_pos[valid] = np.asarray(k_positions)[real]
                q_pos = np.full(n_q_pad, np.iinfo(np.int64).max)
                q_pos[:n_q] = np.asarray(q_positions)
                s[q_pos[:, None] < kv_pos[None, :]] = _NEG_LIMIT

            # --- online softmax (FP16 with FP32 row sums) --------------
            block_max = s.max(axis=1).astype(np.float16)
            hvx_soft.trace.record("vmax_hf", vectors_for_bytes(valid_elems * 2))
            new_m = np.maximum(m, block_max)
            # the per-row rescale factor e^(m - m') is produced by the
            # scalar core fused into the rescale pass, so it is computed
            # here without vector charges
            with np.errstate(over="ignore"):
                correction = np.exp(np.minimum(
                    m.astype(np.float32) - new_m.astype(np.float32), 0.0)
                ).astype(np.float16)
            p = np.zeros_like(s)
            shifted = (s[:n_q].astype(np.float32)
                       - new_m[:n_q].astype(np.float32)[:, None]).astype(np.float16)
            p[:n_q] = self._exp(hvx_soft, shifted)
            hvx_soft.trace.record("vsub_hf", vectors_for_bytes(valid_elems * 2))
            row_sum = p.astype(np.float32).sum(axis=1)  # FP32 upcast (Alg. 1)
            hvx_soft.trace.record("vadd_qf32", vectors_for_bytes(valid_elems * 4))
            # cross-vector row reductions + exposed gather latency
            overhead = ROW_REDUCE_PACKETS
            if self.method == "lut":
                overhead += LUT_ROW_EXPOSED_PACKETS
            hvx_soft.trace.record("stall", max(1, n_q * overhead // n_blocks))
            l = (correction.astype(np.float32) * l.astype(np.float32)
                 + row_sum).astype(np.float16)
            m = new_m

            # --- O = diag(correction) O + P V (HMX) ---------------------
            hvx_rescale = HVXContext(self.qfloat_mode, self._phase(traces, "rescale"))
            out = (out.astype(np.float32) * correction.astype(np.float32)[:, None])
            hvx_rescale.trace.record("vmpy_hf", vectors_for_bytes(out.size * 2))
            hmx_pv = HMXUnit(self._phase(traces, "pv_matmul"))
            pv = hmx_pv.gemm(p, v_blk, out_dtype=np.float32)
            out = (out + pv.astype(np.float32)).astype(np.float16)
            hvx_rescale.trace.record("vadd_hf", vectors_for_bytes(out.size * 2))

        # --- final normalization O / l ---------------------------------
        hvx_final = HVXContext(self.qfloat_mode, self._phase(traces, "rescale"))
        denom = l.astype(np.float32)
        denom = np.where(denom > 0, denom, 1.0)
        out = (out.astype(np.float32) / denom[:, None]).astype(np.float16)
        hvx_final.trace.record("vmpy_hf", vectors_for_bytes(out.size * 2))
        hvx_final.trace.record("stall", CALL_FIXED_PACKETS)

        breakdown.qk_matmul = KernelCost.from_trace(traces.get("qk_matmul",
                                                               InstructionTrace()))
        breakdown.softmax = KernelCost.from_trace(traces.get("softmax",
                                                             InstructionTrace()))
        breakdown.pv_matmul = KernelCost.from_trace(traces.get("pv_matmul",
                                                               InstructionTrace()))
        breakdown.rescale = KernelCost.from_trace(traces.get("rescale",
                                                             InstructionTrace()))
        tracer = obs_trace.get_tracer()
        if tracer.enabled:
            # one structural span per invocation, one cost-only child per
            # Algorithm 1 phase — the Fig. 8 decomposition, from the trace
            with tracer.span("kernel.flash_attention", category="kernel",
                             n_q=n_q, n_kv=n_kv, head_dim=d,
                             method=self.method,
                             flops=4.0 * n_q * n_kv * d):
                for phase in ("qk_matmul", "softmax", "pv_matmul", "rescale"):
                    with tracer.span(f"kernel.attention.{phase}",
                                     category="kernel") as phase_span:
                        phase_span.add_cost(getattr(breakdown, phase))
        return out[:n_q, :v.shape[1]], breakdown


def attention_fp32_reference(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                             scale: Optional[float] = None,
                             q_positions: Optional[np.ndarray] = None,
                             k_positions: Optional[np.ndarray] = None) -> np.ndarray:
    """Conventional FP32 attention (the Table 5 baseline)."""
    q32 = np.asarray(q, dtype=np.float32)
    k32 = np.asarray(k, dtype=np.float32)
    v32 = np.asarray(v, dtype=np.float32)
    d = q32.shape[1]
    if scale is None:
        scale = 1.0 / float(np.sqrt(d))
    scores = q32 @ k32.T * np.float32(scale)
    if q_positions is not None and k_positions is not None:
        mask = np.asarray(q_positions)[:, None] < np.asarray(k_positions)[None, :]
        scores = np.where(mask, np.float32(-1e30), scores)
    scores = scores - scores.max(axis=1, keepdims=True)
    probs = np.exp(scores)
    probs = probs / probs.sum(axis=1, keepdims=True)
    return (probs @ v32).astype(np.float32)
