"""FP16 GEMM on the HVX vector unit (the Table 2 comparison kernel).

Table 2 measures a single HVX thread at 32.93 GFLOPS on a 1024^3 FP16
GEMM — over 300x slower than the HMX matrix unit.  That number is not
arbitrary: a dot-product inner loop on a 1024-bit vector unit spends
four packets per 64-lane FMA chunk (load A, load B, multiply, accumulate)
and therefore delivers ``128 flops / 4 cycles = 32 flops/cycle`` — i.e.
~32-33 GFLOPS at 1 GHz.  This module implements that kernel functionally
(FP32 accumulation over FP16 operands, like the qf32 path) with exactly
that instruction structure, so the Table 2 anchor *emerges* from the
trace instead of being asserted.

It exists as the contrast object: everything the paper builds (HMX
layouts, LUT dequantization) is about *not* doing matrix math here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import KernelError
from ..npu.hvx import FP16_LANES, HVXContext, vectors_for_bytes
from ..npu.timing import KernelCost

__all__ = ["hvx_gemm"]


def hvx_gemm(a: np.ndarray, b: np.ndarray,
             hvx: Optional[HVXContext] = None
             ) -> Tuple[np.ndarray, KernelCost]:
    """Dot-product GEMM ``a @ b`` on one HVX thread.

    ``a`` is ``(m, k)`` FP16 and ``b`` is ``(k, n)`` FP16 stored
    column-major (the layout §5.1.1 calls conventional for vector
    dot-products).  Products accumulate in the qf32 path; each 64-lane
    chunk costs the canonical four packets plus a log-tree horizontal
    reduction per output element.
    """
    a = np.asarray(a, dtype=np.float16)
    b = np.asarray(b, dtype=np.float16)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise KernelError(f"incompatible GEMM operands: {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    hvx = hvx if hvx is not None else HVXContext()

    # numerics: FP16 operands, FP32 accumulation (the qf32 semantics)
    out = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float16)

    # instruction structure of the register-blocked inner loop: 4 output
    # columns share one A-row load, so each 64-lane chunk costs
    # (1/4 ld A + 1 ld B + 1 mpy + 1 add) = 3.25 packets per column
    chunks_per_dot = -(-k // FP16_LANES)
    n_dots = m * n
    inner = n_dots * chunks_per_dot
    hvx.trace.record("vmem_ld", inner + -(-inner // 4))
    hvx.trace.record("vmpy_qf32", inner)
    hvx.trace.record("vadd_qf32", inner)
    # horizontal reduction tree: log2(64) shuffle+add pairs per output
    reduce_ops = n_dots * 6
    hvx.trace.record("vshuff", reduce_ops)
    hvx.trace.record("vadd_qf32", reduce_ops)
    hvx.trace.record("vmem_st", vectors_for_bytes(out.nbytes))

    return out, KernelCost.from_trace(hvx.trace)
