"""Mixed-precision GEMM: 4-bit weights through the FP16 matrix unit.

The paper's core compute path (§4): weights are stored in 4-bit
fine-grained groups, dequantized on the fly by the HVX vector unit, and
multiplied on the FP16 HMX unit.  :class:`MixedPrecisionGemm` packages
the full pipeline —

    DMA packed weights -> HVX dequantization (one of the Fig. 15
    strategies) -> HMX tile GEMM -> FP16 output

— and returns both the numerical result and the aggregated
:class:`~repro.npu.timing.KernelCost`, so a single invocation feeds both
accuracy tests and latency benchmarks.  All strategies produce identical
numerics; they differ only in instruction mix and memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import KernelError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..npu.hvx import HVXContext, InstructionTrace
from ..npu.hmx import HMXUnit
from ..npu.memory import DMAEngine
from ..npu.timing import KernelCost
from ..quant.codebooks import Codebook, Q4_0_CODEBOOK
from ..quant.coalesce import (
    PackedWeight,
    pack_aos_q4,
    pack_supergroups_q4,
)
from ..quant.tile_quant import (
    QuantizedWeight,
    dequantize_weight,
    quantize_conventional_group,
    quantize_tile_group,
)
from .dequant import DEQUANT_STRATEGIES, dequantize_stream

__all__ = ["PreparedWeight", "MixedPrecisionGemm"]


@dataclass
class PreparedWeight:
    """A weight quantized and packed for one dequantization strategy."""

    quantized: QuantizedWeight
    packed: Optional[PackedWeight]
    dequantized_matrix: np.ndarray  # FP16, original shape
    strategy: str

    @property
    def storage_bytes(self) -> int:
        if self.packed is not None:
            return int(self.packed.data.size)
        return self.quantized.storage_bytes


class MixedPrecisionGemm:
    """W4A16 GEMM kernel parameterized by dequantization strategy.

    ``strategy`` selects the Fig. 15 variant; ``bits=8`` switches to the
    Q8_0 path used for FFN down projections (§7.1).  The 8-bit path skips
    nibble packing but follows the same layout rules.
    """

    def __init__(self, strategy: str = "ours", bits: int = 4,
                 codebook: Codebook = Q4_0_CODEBOOK, coalesce: int = 8,
                 qfloat_mode: str = "qfloat") -> None:
        if strategy not in DEQUANT_STRATEGIES:
            raise KernelError(
                f"unknown strategy {strategy!r}; expected one of {DEQUANT_STRATEGIES}")
        if bits not in (4, 8):
            raise KernelError(f"unsupported weight width {bits}")
        self.strategy = strategy
        self.bits = bits
        self.codebook = codebook
        self.coalesce = coalesce
        self.qfloat_mode = qfloat_mode

    # ------------------------------------------------------------------
    def prepare_weight(self, weight: np.ndarray) -> PreparedWeight:
        """Offline pipeline: layout transform, quantize, pack (§5.1)."""
        w = np.asarray(weight, dtype=np.float32)
        if self.strategy == "baseline":
            quantized = quantize_conventional_group(w, bits=self.bits)
        else:
            quantized = quantize_tile_group(w, bits=self.bits)
        packed: Optional[PackedWeight] = None
        if self.bits == 4:
            if self.strategy == "ours" or self.strategy == "no_dequant":
                packed = pack_supergroups_q4(quantized.groups, self.coalesce)
            else:
                packed = pack_aos_q4(quantized.groups)
        matrix = dequantize_weight(quantized)
        return PreparedWeight(quantized=quantized, packed=packed,
                              dequantized_matrix=matrix, strategy=self.strategy)

    # ------------------------------------------------------------------
    def __call__(self, activations: np.ndarray, prepared: PreparedWeight
                 ) -> Tuple[np.ndarray, KernelCost]:
        """Run ``activations @ weight`` and return (output, cost)."""
        if prepared.strategy != self.strategy:
            raise KernelError(
                f"weight was prepared for strategy {prepared.strategy!r}, "
                f"kernel runs {self.strategy!r}")
        acts = np.asarray(activations, dtype=np.float16)
        if acts.ndim != 2:
            raise KernelError(f"activations must be 2-D, got shape {acts.shape}")
        in_dim, out_dim = prepared.quantized.original_shape
        if acts.shape[1] != in_dim:
            raise KernelError(
                f"activation width {acts.shape[1]} != weight input dim {in_dim}")

        flops = 2.0 * acts.shape[0] * in_dim * out_dim
        with obs_trace.span("kernel.gemm", category="kernel",
                            m=acts.shape[0], k=in_dim, n=out_dim,
                            strategy=self.strategy, bits=self.bits,
                            flops=flops,
                            weight_bytes=prepared.storage_bytes) as sp:
            trace = InstructionTrace()
            hvx = HVXContext(self.qfloat_mode, trace)
            dma = DMAEngine()

            # stage activations into TCM (2-D DMA descriptor)
            dma.transfer_2d(acts.shape[0], acts.shape[1] * 2,
                            direction="ddr_to_tcm")

            # weight dequantization (streams packed weights via DMA)
            dequantize_stream(prepared.quantized, self.strategy, hvx, dma,
                              packed=prepared.packed, codebook=self.codebook,
                              coalesce=self.coalesce)

            # HMX tile GEMM on the dequantized FP16 weights
            hmx = HMXUnit(trace)
            if self.strategy == "no_dequant":
                # upper-bound variant computes nothing; charge the MACs the
                # real kernel would issue so only dequantization differs
                trace.record("hmx_tile_mac",
                             HMXUnit.tile_macs_for_gemm(acts.shape[0], in_dim,
                                                        out_dim))
                output = np.zeros((acts.shape[0], out_dim), dtype=np.float16)
            else:
                output = hmx.gemm(acts, prepared.dequantized_matrix)

            cost = KernelCost.from_trace(trace, dma)
            sp.add_cost(cost)
        if obs_trace.enabled():
            reg = obs_metrics.get_metrics()
            reg.counter("repro.kernels.gemm_flops").inc(flops)
            reg.counter("repro.kernels.gemm_weight_bytes").inc(
                prepared.storage_bytes)
        return output, cost

    # ------------------------------------------------------------------
    def gemv(self, activation: np.ndarray, prepared: PreparedWeight
             ) -> Tuple[np.ndarray, KernelCost]:
        """Single-token convenience wrapper (the decode-phase GEMV)."""
        vec = np.asarray(activation, dtype=np.float16)
        if vec.ndim != 1:
            raise KernelError(f"gemv expects a vector, got shape {vec.shape}")
        out, cost = self(vec[np.newaxis, :], prepared)
        return out[0], cost
