"""Lookup-table construction for the LUT-based kernels (§5.2).

Two table families:

* the **exp LUT** for Softmax — 32768 FP16 entries covering every
  non-positive FP16 input (safe softmax guarantees ``x <= 0`` after
  subtracting the row max, so the sign bit carries no information and
  can be dropped).  Entries are precomputed with 64-bit intermediates,
  which is why LUT-exp is *more* accurate than 16-bit polynomial
  evaluation (§7.4).  The table occupies 64 KiB of TCM — ~0.8% of the
  8 MiB capacity;
* the **vlut16 dequantization tables** — 16 FP16 entries mapping a 4-bit
  code to its reconstruction value (Fig. 9), one per supported codebook,
  plus the constant index pattern that broadcasts four groups' scales
  with a single ``vlut16`` (§5.2.2).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import LUTError
from ..npu.datatypes import bits_to_fp16, fp16_to_bits
from ..npu.memory import TCM, TCMRegion
from ..quant.codebooks import Codebook

__all__ = [
    "EXP_LUT_ENTRIES",
    "EXP_LUT_BYTES",
    "build_exp_lut",
    "build_reduced_exp_lut",
    "reduced_exp_lookup",
    "exp_lut_offsets",
    "ExpLUT",
    "scale_broadcast_indices",
    "codebook_lut_values",
]

EXP_LUT_ENTRIES = 32768
EXP_LUT_BYTES = EXP_LUT_ENTRIES * 2  # 64 KiB


def build_exp_lut(base: float = np.e) -> np.ndarray:
    """Precompute the FP16 exp table for non-positive inputs.

    Index ``p`` (15 bits) is the magnitude bit pattern of an FP16 value
    ``v >= 0``; the entry stores ``base ** (-v)`` rounded once from a
    float64 intermediate.  Non-finite magnitude patterns (``v = inf`` or
    NaN payloads) map to 0, which is the correct safe-softmax limit for
    ``-inf`` and a harmless value for NaN patterns that cannot occur
    after ``S - rowmax``.
    """
    if base <= 1.0:
        raise LUTError(f"exp LUT base must exceed 1, got {base}")
    patterns = np.arange(EXP_LUT_ENTRIES, dtype=np.uint16)
    magnitudes = bits_to_fp16(patterns).astype(np.float64)
    with np.errstate(over="ignore", invalid="ignore"):
        entries = np.power(float(base), -magnitudes)
    entries = np.where(np.isfinite(magnitudes), entries, 0.0)
    entries = np.nan_to_num(entries, nan=0.0)
    return entries.astype(np.float16)


def build_reduced_exp_lut(index_bits: int, base: float = np.e) -> np.ndarray:
    """Ablation: a smaller exp table addressed by truncated FP16 bits.

    The paper's table spends 64 KiB (15 index bits).  Dropping the low
    ``15 - index_bits`` mantissa bits shrinks the table by the same
    power of two at the cost of quantizing the exp input — the accuracy
    side of the table-size trade-off the ablation benchmarks sweep.
    """
    if not 4 <= index_bits <= 15:
        raise LUTError(f"index bits must be in [4, 15], got {index_bits}")
    drop = 15 - index_bits
    patterns = (np.arange(2 ** index_bits, dtype=np.uint16)
                << np.uint16(drop)).astype(np.uint16)
    magnitudes = bits_to_fp16(patterns).astype(np.float64)
    with np.errstate(over="ignore", invalid="ignore"):
        entries = np.power(float(base), -magnitudes)
    entries = np.where(np.isfinite(magnitudes), entries, 0.0)
    return np.nan_to_num(entries, nan=0.0).astype(np.float16)


def reduced_exp_lookup(table: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Evaluate ``base**x`` (x <= 0) through a reduced table."""
    table = np.asarray(table, dtype=np.float16)
    size = table.size
    if size & (size - 1) or not 16 <= size <= EXP_LUT_ENTRIES:
        raise LUTError(f"reduced table size must be a power of two in "
                       f"[16, {EXP_LUT_ENTRIES}], got {size}")
    index_bits = int(np.log2(size))
    drop = 15 - index_bits
    arr = np.asarray(values, dtype=np.float16)
    if arr.size and float(arr.max()) > 0.0:
        raise LUTError("reduced exp LUT inputs must be non-positive")
    bits = fp16_to_bits(arr) & np.uint16(0x7FFF)
    idx = (bits >> np.uint16(drop)).astype(np.int64)
    return table[idx]


def exp_lut_offsets(values: np.ndarray) -> np.ndarray:
    """Byte offsets into the exp LUT for non-positive FP16 inputs.

    Implements the paper's addressing trick: ignore the MSB (sign bit)
    and left-shift the remaining 15 bits by one to form the 2-byte
    element offset required by ``vgather``.
    """
    arr = np.asarray(values, dtype=np.float16)
    if arr.size and float(arr.max()) > 0.0:
        raise LUTError(
            "exp LUT inputs must be non-positive (safe softmax subtracts the "
            f"row max); got max {float(arr.max())}")
    bits = fp16_to_bits(arr)
    return ((bits & np.uint16(0x7FFF)).astype(np.int64)) << 1


class ExpLUT:
    """An exp lookup table resident in TCM.

    Construction happens once at system initialization (no inference-time
    overhead); :meth:`lookup` runs the gather through an
    :class:`~repro.npu.hvx.HVXContext` so instruction costs are recorded.
    """

    def __init__(self, tcm: TCM, base: float = np.e) -> None:
        self.base = float(base)
        self.table = build_exp_lut(base)
        self.region: TCMRegion = tcm.alloc(EXP_LUT_BYTES)
        tcm.write(self.region, self.table)
        self._tcm = tcm

    def lookup(self, hvx, values: np.ndarray) -> np.ndarray:
        """Gather ``base ** x`` for FP16 ``x <= 0`` via ``vgather``."""
        arr = np.asarray(values, dtype=np.float16)
        offsets = exp_lut_offsets(arr.ravel())
        table_bytes = self._tcm.view(self.region)[:EXP_LUT_BYTES]
        raw = hvx.vgather(table_bytes, offsets)
        return bits_to_fp16(raw).reshape(arr.shape)

    def free(self) -> None:
        self._tcm.free(self.region)


def scale_broadcast_indices(group_size: int = 32, n_groups: int = 4) -> np.ndarray:
    """Constant vlut16 index pattern that broadcasts four groups' scales.

    With the scales of four groups loaded as LUT contents, applying this
    predefined index vector replicates scale ``g`` across the lanes of
    group ``g`` in one ``vlut16`` (§5.2.2).  Entry count is
    ``n_groups * group_size`` bytes — one full 128-byte register for the
    default 4 groups of 32.
    """
    if group_size <= 0 or n_groups <= 0 or n_groups > 16:
        raise LUTError(
            f"invalid broadcast geometry: {n_groups} groups of {group_size}")
    return np.repeat(np.arange(n_groups, dtype=np.uint8), group_size)


def codebook_lut_values(codebook: Codebook) -> np.ndarray:
    """The 16 FP16 entries loaded into vlut16 for a 4-bit codebook."""
    return codebook.values.astype(np.float16)
