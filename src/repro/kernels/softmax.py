"""On-chip Softmax with three exponential implementations (§5.2.1).

The Softmax bottleneck analysis in the paper (Fig. 8) shows exponential
computation dominating Attention at scale.  Three interchangeable exp
kernels are provided:

* ``poly32`` — the conventional path: replace ``exp`` with ``exp2``,
  split the input into integer ``k`` and fraction ``f``, evaluate
  ``2**f`` by a Taylor polynomial in FP32, and add ``k`` to the IEEE
  exponent field.  Polynomial evaluation is a dependent chain, which
  limits instruction-level parallelism under VLIW — modelled by a
  per-operation stall factor;
* ``poly16`` — the same algorithm in FP16 arithmetic (cheaper, less
  accurate, still chained);
* ``lut`` — the paper's method: a single ``vgather`` from a precomputed
  64 KiB FP16 table per 64 elements, plus two bit-manipulation ops to
  form offsets.  Because table entries are rounded once from float64,
  LUT-exp is *more accurate* than ``poly16`` while being faster.

:class:`OnChipSoftmax` assembles safe softmax (subtract row max) from
these kernels with FP32 row summation, as in Algorithm 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import KernelError
from ..obs import trace as obs_trace
from ..npu.datatypes import add_to_exponent_fp16, add_to_exponent_fp32, split_int_frac
from ..npu.hvx import HVXContext, vectors_for_bytes
from ..npu.memory import TCM
from .lut import ExpLUT

__all__ = [
    "CHAIN_STALL_PACKETS",
    "EXP_METHODS",
    "exp_poly32",
    "exp_poly16",
    "exp_lut",
    "OnChipSoftmax",
]

# Dependent polynomial operations cannot fill the 4 VLIW slots; each op in
# the chain effectively occupies several issue packets (§5.2.1: "polynomial
# evaluation involves sequential dependencies, limiting instruction-level
# parallelism under the VLIW architecture").  Calibrated, together with
# the vgather occupancy in the timing model, against the Fig. 14 speedup
# band (1.26-2.19x over FP32 exp, up to 1.60x over FP16 exp).
CHAIN_STALL_PACKETS = 2.1

# Per-row overheads of the row-wise reduction passes (cross-vector shuffle
# trees, scalar bookkeeping) and the gather latency the LUT path cannot
# hide on the last gather of a short row.
ROW_REDUCE_PACKETS = 16
LUT_ROW_EXPOSED_PACKETS = 24
CALL_FIXED_PACKETS = 200

EXP_METHODS = ("poly32", "poly16", "lut")

_LN2 = float(np.log(2.0))
# Taylor coefficients of 2**f = sum (f ln2)^k / k! for f in [0, 1).
_EXP2_COEFFS = [
    1.0,
    _LN2,
    _LN2 ** 2 / 2.0,
    _LN2 ** 3 / 6.0,
    _LN2 ** 4 / 24.0,
    _LN2 ** 5 / 120.0,
]


def _charge_chain(hvx: HVXContext, nbytes: int, n_ops: int) -> None:
    """Charge a dependent-chain op sequence over ``nbytes`` of lanes."""
    vectors = vectors_for_bytes(nbytes)
    hvx.trace.record("vmpy_hf", int(round(vectors * n_ops * CHAIN_STALL_PACKETS)))


def exp_poly32(hvx: HVXContext, x: np.ndarray, base: float = float(np.e)) -> np.ndarray:
    """FP32 polynomial ``base**x`` via the exp2 decomposition."""
    arr = np.asarray(x, dtype=np.float32)
    t = arr * np.float32(np.log2(base))
    k, f = split_int_frac(t)
    poly = np.full_like(f, _EXP2_COEFFS[-1], dtype=np.float32)
    for coeff in reversed(_EXP2_COEFFS[:-1]):
        poly = poly * f + np.float32(coeff)
    k_clipped = np.clip(k, -126, 126)
    out = add_to_exponent_fp32(poly, k_clipped)
    out = np.where(t < -126.0, 0.0, out)
    # 1 scale + 2 split + 5 FMA + 2 exponent-insert ops, all chained, FP32 lanes
    _charge_chain(hvx, arr.size * 4, n_ops=10)
    return out.astype(np.float32)


def exp_poly16(hvx: HVXContext, x: np.ndarray, base: float = float(np.e)) -> np.ndarray:
    """FP16 polynomial ``base**x``: same chain, half-width arithmetic.

    Every intermediate rounds to FP16, which is what costs accuracy
    relative to the LUT (whose entries round once from float64).
    """
    arr = np.asarray(x, dtype=np.float16)
    t = (arr.astype(np.float16) * np.float16(np.log2(base))).astype(np.float16)
    k, f32 = split_int_frac(t.astype(np.float32))
    f = f32.astype(np.float16)
    poly = np.full_like(f, np.float16(_EXP2_COEFFS[4]), dtype=np.float16)
    for coeff in reversed(_EXP2_COEFFS[:4]):  # degree 4 in FP16
        poly = (poly * f + np.float16(coeff)).astype(np.float16)
    # apply 2**k in two steps so deep-negative k lands on FP16 subnormals
    # instead of wrapping the exponent field: an exponent-field add for the
    # representable part, then a multiply for the remainder
    k_field = np.clip(k, -14, 15)
    out = add_to_exponent_fp16(poly, k_field)
    k_rest = np.clip(k - k_field, -24, 0)
    out = (out * np.exp2(k_rest.astype(np.float16))).astype(np.float16)
    out = np.where(t.astype(np.float32) < -25.0, np.float16(0.0), out)
    # 1 scale + 2 split + 4 FMA + 3 exponent/scale ops + 2 half-register
    # pack/unpack ops chained, FP16 lanes, plus qfloat->IEEE conversions
    # on pre-V79 parts
    n_ops = 12 + (2 if hvx.qfloat_mode == "qfloat" else 0)
    _charge_chain(hvx, arr.size * 2, n_ops=n_ops)
    return out.astype(np.float16)


def exp_lut(hvx: HVXContext, x: np.ndarray, table: ExpLUT) -> np.ndarray:
    """LUT ``base**x`` for non-positive FP16 inputs (§5.2.1).

    One ``vgather`` per 64 elements plus two bit ops per vector to strip
    the sign bit and form byte offsets.
    """
    arr = np.asarray(x, dtype=np.float16)
    # offset formation: vand (drop sign) + vasl (byte offset)
    hvx.trace.record("vand", vectors_for_bytes(arr.size * 2))
    hvx.trace.record("vasl", vectors_for_bytes(arr.size * 2))
    return table.lookup(hvx, arr)


class OnChipSoftmax:
    """Row-wise safe softmax on the HVX unit with pluggable exp.

    Follows Algorithm 1's precision discipline: inputs, outputs and the
    exp evaluation are FP16 (for ``poly16``/``lut``); the row summation
    is upcast to FP32.  ``poly32`` keeps the whole pipeline in FP32 as
    the conventional baseline.
    """

    def __init__(self, hvx: HVXContext, method: str = "lut",
                 tcm: Optional[TCM] = None, base: float = float(np.e)) -> None:
        if method not in EXP_METHODS:
            raise KernelError(f"unknown exp method {method!r}; expected {EXP_METHODS}")
        self.method = method
        self.hvx = hvx
        self.base = base
        self._lut: Optional[ExpLUT] = None
        if method == "lut":
            if tcm is None:
                raise KernelError("the LUT softmax needs a TCM to host its table")
            self._lut = ExpLUT(tcm, base=base)

    def exp(self, values: np.ndarray) -> np.ndarray:
        """Apply the configured exponential to non-positive inputs."""
        if self.method == "poly32":
            return exp_poly32(self.hvx, values, self.base)
        if self.method == "poly16":
            return exp_poly16(self.hvx, values, self.base)
        return exp_lut(self.hvx, values, self._lut)

    def _row_reduce_charges(self, matrix: np.ndarray) -> None:
        """Charge the vector ops of a row-wise max/sum reduction pass."""
        n_vectors = vectors_for_bytes(matrix.size * 2)
        self.hvx.trace.record("vmax_hf", n_vectors)
        # cross-vector reduction tree + scalar bookkeeping per row
        self.hvx.trace.record("stall", matrix.shape[0] * ROW_REDUCE_PACKETS)

    def __call__(self, scores: np.ndarray) -> np.ndarray:
        """Softmax along the last axis of an FP16 score matrix."""
        s = np.asarray(scores)
        if s.ndim != 2:
            raise KernelError(f"softmax expects a 2-D score matrix, got {s.shape}")
        with obs_trace.span("kernel.softmax", category="kernel",
                            rows=s.shape[0], cols=s.shape[1],
                            method=self.method):
            return self._softmax(s)

    def _softmax(self, s: np.ndarray) -> np.ndarray:
        self.hvx.trace.record("stall", CALL_FIXED_PACKETS)
        if self.method == "lut":
            # the last gather of each row exposes its latency (cannot be
            # overlapped with further gathers from the same row)
            self.hvx.trace.record("stall", s.shape[0] * LUT_ROW_EXPOSED_PACKETS)
        if self.method == "poly32":
            work = s.astype(np.float32)
        else:
            work = s.astype(np.float16)
        self._row_reduce_charges(work)
        row_max = work.max(axis=1, keepdims=True)
        shifted = self.hvx.vsub_hf(work, row_max) if self.method != "poly32" \
            else (work - row_max)
        if self.method == "poly32":
            self.hvx.trace.record("vadd_qf32", vectors_for_bytes(work.size * 4))
        probs = self.exp(shifted)
        # FP32 row summation (upcast), per Algorithm 1
        upcast = probs.astype(np.float32)
        self.hvx.trace.record("vadd_qf32", vectors_for_bytes(upcast.size * 4))
        denom = upcast.sum(axis=1, keepdims=True)
        denom = np.where(denom > 0, denom, 1.0)
        out = upcast / denom
        self.hvx.trace.record("vmpy_hf", vectors_for_bytes(probs.size * 2))
        if self.method == "poly32":
            return out.astype(np.float32)
        return out.astype(np.float16)
