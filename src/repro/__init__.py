"""Reproduction of "Scaling LLM Test-Time Compute with Mobile NPU on
Smartphones" (EUROSYS '26).

Subpackages:

* :mod:`repro.npu` — functional + timing model of the Hexagon NPU
  (HVX vector unit, HMX matrix unit, TCM/DMA, devices, FastRPC).
* :mod:`repro.quant` — Q4_0/Q8_0 group quantization, the paper's
  hardware-aware tile-group scheme, super-group coalescing, codebooks.
* :mod:`repro.kernels` — mixed-precision GEMM, LUT softmax, FP16
  FlashAttention (Algorithm 1), misc transformer ops.
* :mod:`repro.llm` — model configs, GQA transformer, KV cache, engine.
* :mod:`repro.tts` — Best-of-N / Beam Search / Self-Consistency with
  ORM/PRM scorers over a calibrated synthetic task environment.
* :mod:`repro.perf` — latency, power, memory and baseline-system models.
* :mod:`repro.obs` — span tracing, metrics, Perfetto trace export.
* :mod:`repro.resilience` — deterministic fault injection and recovery
  (retry/backoff, KV rebuild, eviction, deadlines, thermal throttling).
* :mod:`repro.harness` — per-table/figure experiment regeneration.

Quickstart::

    from repro.harness import run_experiment
    print(run_experiment("fig15").render())
"""

from . import errors, kernels, llm, npu, obs, perf, quant, resilience, tts
from . import harness

__version__ = "1.0.0"

__all__ = [
    "errors",
    "harness",
    "kernels",
    "llm",
    "npu",
    "obs",
    "perf",
    "quant",
    "resilience",
    "tts",
    "__version__",
]
