"""Fleet-scale serving simulation on the shared event-loop kernel.

Thousands of simulated phones, one timeline: a discrete-event layer
(:mod:`repro.sim`) drives a device population built from
:mod:`repro.npu.timing` parameter sets through seeded arrival traces,
with bounded admission control, per-device thermal governors and
battery rails, and a capacity-planning report surfaced by the
``repro fleet`` CLI (schema ``repro.fleet/v1``).
"""

from ..sim import EventHandle, EventLoop, SimClock
from .devices import (AnalyticFleetDevice, BatteryRail, EngineFleetDevice,
                      FleetDevice, GENERATION_HDR_BITS, ServiceOutcome,
                      build_population)
from .health import (CircuitBreaker, DeviceHealth, FailoverPolicy,
                     FleetHealth, HedgePolicy)
from .load import ARRIVAL_PATTERNS, TraceConfig, generate_trace
from .report import (DEFAULT_P99_TARGET_MS, FLEET_SCHEMA, FleetReport,
                     MAX_PLANNED_DEVICES, plan_capacity, run_fleet)
from .requests import (AdmissionController, DEFAULT_TENANT_PRIORITIES,
                       FleetRequest)
from .simulation import FleetResult, FleetSimulation

__all__ = [
    "SimClock", "EventHandle", "EventLoop",
    "FleetRequest", "AdmissionController", "DEFAULT_TENANT_PRIORITIES",
    "TraceConfig", "generate_trace", "ARRIVAL_PATTERNS",
    "FleetDevice", "AnalyticFleetDevice", "EngineFleetDevice",
    "BatteryRail", "ServiceOutcome", "build_population",
    "GENERATION_HDR_BITS",
    "CircuitBreaker", "DeviceHealth", "FailoverPolicy", "FleetHealth",
    "HedgePolicy",
    "FleetSimulation", "FleetResult",
    "FleetReport", "run_fleet", "plan_capacity", "FLEET_SCHEMA",
    "DEFAULT_P99_TARGET_MS", "MAX_PLANNED_DEVICES",
]
