"""Fleet request frontend: typed requests and admission control.

A serving frontend cannot queue unboundedly — overload must shed
deterministically, and latency-sensitive tenants must overtake batch
traffic.  :class:`AdmissionController` is a bounded priority queue with
shed-on-overflow: requests order by ``(priority, arrival sequence)``
(lower priority value first, FIFO within a tenant class), and when the
queue is full the *worst* entry — the incoming request or the worst
queued one — is shed, so a high-priority arrival always displaces
low-priority backlog rather than being dropped.

Everything is deterministic: insertion order is the tie-breaker, there
is no RNG and no host clock anywhere in the frontend.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import FleetError

__all__ = ["FleetRequest", "AdmissionController", "DEFAULT_TENANT_PRIORITIES"]

#: Tenant classes of the default load generator: interactive traffic
#: preempts batch (lower value = more urgent).
DEFAULT_TENANT_PRIORITIES: Dict[str, int] = {"interactive": 0, "batch": 1}


@dataclass(frozen=True)
class FleetRequest:
    """One Best-of-N serving request arriving at the fleet frontend."""

    request_id: int
    arrival_seconds: float
    tenant: str = "interactive"
    priority: int = 0
    prompt_tokens: int = 64
    n_candidates: int = 4
    max_new_tokens: int = 32
    #: Explicit prompt token ids for engine-backed devices; analytic
    #: devices only need ``prompt_tokens``.  Kept a tuple so the
    #: request stays hashable/frozen.
    prompt: Optional[Tuple[int, ...]] = None
    #: Optional :class:`~repro.resilience.FaultPlan` spec string an
    #: engine-backed device arms for this request's run.
    fault_spec: str = ""

    def __post_init__(self) -> None:
        if self.arrival_seconds < 0:
            raise FleetError(
                f"request {self.request_id} arrives at negative time "
                f"{self.arrival_seconds}")
        if (self.prompt_tokens <= 0 or self.n_candidates <= 0
                or self.max_new_tokens <= 0):
            raise FleetError(
                f"request {self.request_id} needs positive prompt/"
                f"candidates/tokens, got ({self.prompt_tokens}, "
                f"{self.n_candidates}, {self.max_new_tokens})")

    @property
    def total_new_tokens(self) -> int:
        """Decode tokens the request generates across all candidates."""
        return self.n_candidates * self.max_new_tokens


class AdmissionController:
    """Bounded per-tenant priority queue with shed-on-overflow.

    ``tenant_priorities`` maps tenant names to priority classes and
    overrides each request's own ``priority`` field when its tenant is
    listed; unlisted tenants keep the request's value.  The queue is a
    sorted list keyed ``(priority, seq)`` — bounded depth keeps the
    O(depth) insert deterministic and cheap.
    """

    def __init__(self, max_queue_depth: int = 64,
                 tenant_priorities: Optional[Dict[str, int]] = None) -> None:
        if max_queue_depth <= 0:
            raise FleetError(
                f"max_queue_depth must be positive, got {max_queue_depth}")
        self.max_queue_depth = max_queue_depth
        self.tenant_priorities = (dict(tenant_priorities)
                                  if tenant_priorities is not None
                                  else dict(DEFAULT_TENANT_PRIORITIES))
        self._queue: List[Tuple[int, int, FleetRequest]] = []
        self._seq = 0
        self.n_offered = 0
        self.n_shed = 0
        self.n_popped = 0
        self.peak_depth = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def priority_of(self, request: FleetRequest) -> int:
        return self.tenant_priorities.get(request.tenant, request.priority)

    def offer(self, request: FleetRequest
              ) -> Tuple[bool, Optional[FleetRequest]]:
        """Try to enqueue; returns ``(admitted, shed_request)``.

        On overflow the entry with the worst ``(priority, seq)`` key is
        shed: the incoming request if it is worst (``admitted=False``),
        otherwise the displaced queue tail (``admitted=True`` with the
        victim returned for shed accounting).
        """
        self.n_offered += 1
        key = (self.priority_of(request), self._seq, request)
        self._seq += 1
        shed: Optional[FleetRequest] = None
        if len(self._queue) >= self.max_queue_depth:
            worst = self._queue[-1]
            if key[:2] >= worst[:2]:
                self.n_shed += 1
                return False, request
            self._queue.pop()
            shed = worst[2]
            self.n_shed += 1
        bisect.insort(self._queue, key)
        self.peak_depth = max(self.peak_depth, len(self._queue))
        return True, shed

    def pop(self) -> Optional[FleetRequest]:
        """Dequeue the most urgent request, or ``None`` when empty."""
        if not self._queue:
            return None
        self.n_popped += 1
        return self._queue.pop(0)[2]

    def drain(self) -> List[FleetRequest]:
        """Remove and return everything still queued, in service order."""
        out = [entry[2] for entry in self._queue]
        self._queue.clear()
        return out
