"""The device population: simulated phones a fleet serves on.

Each fleet device owns the state a real phone owns:

* an NPU generation parameter set (:data:`repro.npu.soc.DEVICES` /
  :data:`repro.npu.timing.GENERATIONS`) that fixes its speed,
* a thermal governor (:class:`~repro.npu.power_mgmt.ThermalState`) that
  walks the DVFS throttle ladder under sustained load and recovers
  while idle,
* a battery rail (:class:`BatteryRail`) drained by the
  :class:`~repro.perf.power.PowerBudget` power model — a depleted
  device drops out of the dispatchable population,
* a token-latency histogram at a resolution matched to its generation
  (:data:`GENERATION_HDR_BITS`), so fleet-wide percentiles exercise the
  mixed-resolution :meth:`~repro.obs.metrics.Histogram.merge`.

Two service models share the :class:`FleetDevice` interface:
:class:`AnalyticFleetDevice` prices a request closed-form through
:class:`~repro.perf.latency.DecodePerformanceModel` +
:func:`~repro.llm.scheduler.plan_waves` (thousands of devices, millions
of tokens), and :class:`EngineFleetDevice` drives a real
:class:`~repro.llm.scheduler.ContinuousBatchingScheduler` on a
device-local :class:`~repro.sim.SimClock` (the differential-test path
proving the shared-kernel extraction is a no-op).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, List, Optional

from ..errors import FleetError
from ..llm.config import get_model_config
from ..npu.power_mgmt import GOVERNORS, ThermalState, apply_governor
from ..npu.soc import DEVICES, Device
from ..obs.metrics import Histogram
from ..obs.slo import hdr_buckets
from ..perf.power import PowerBudget, PowerModel
from ..perf.latency import DecodePerformanceModel
from ..sim import SimClock
from .requests import FleetRequest

__all__ = ["GENERATION_HDR_BITS", "BatteryRail", "ServiceOutcome",
           "FleetDevice", "AnalyticFleetDevice", "EngineFleetDevice",
           "build_population", "DEFAULT_FLEET_MODEL",
           "DEFAULT_BATTERY_JOULES"]

#: The serving model every fleet phone runs (the paper's on-device LLM).
DEFAULT_FLEET_MODEL = "qwen2.5-1.5b"

#: ~5000 mAh at a nominal 3.85 V — a 2024 flagship battery in joules.
DEFAULT_BATTERY_JOULES = 6.9e4

#: Token-latency histogram resolution per NPU generation: newer SoCs
#: carry finer HDR sub-bucketing, so fleet aggregation always crosses
#: bucket resolutions (the Histogram.merge satellite in production).
GENERATION_HDR_BITS: Dict[str, int] = {"V73": 1, "V75": 2, "V79": 3}

#: Engine batch the analytic service model assumes per phone; Best-of-N
#: wider than this waves over the batch exactly like the scheduler.
SERVICE_BATCH = 8

#: Shared token-latency range of every device/fleet histogram; only the
#: per-octave sub-bucket count varies by generation, so bounds of any
#: two resolutions are subset-aligned and merges re-bucket exactly.
_LATENCY_RANGE = (1e-4, 134.0)

# service-time memoization granularity: contexts and prompts quantize
# to these grids so the closed-form model is evaluated O(grid) times,
# not O(requests)
_CTX_QUANT = 64
_PROMPT_QUANT = 32


def _quantize(value: int, grid: int) -> int:
    return max(grid, ((value + grid - 1) // grid) * grid)


@lru_cache(maxsize=None)
def _governed_models(device: Device, governor_name: str, model_name: str
                     ) -> "tuple[DecodePerformanceModel, PowerModel]":
    """(latency, power) models of ``device`` at a DVFS operating point."""
    governor = GOVERNORS[governor_name]
    scaled = replace(device, npu=apply_governor(device.npu, governor))
    config = get_model_config(model_name)
    return (DecodePerformanceModel(config, scaled),
            PowerModel(config, scaled))


@lru_cache(maxsize=None)
def _decode_step_seconds(device: Device, governor_name: str,
                         model_name: str, batch: int, context: int) -> float:
    perf, _ = _governed_models(device, governor_name, model_name)
    return perf.decode_step(batch, context).total_seconds


@lru_cache(maxsize=None)
def _prefill_seconds(device: Device, governor_name: str,
                     model_name: str, prompt_tokens: int) -> float:
    perf, _ = _governed_models(device, governor_name, model_name)
    return perf.prefill_latency(prompt_tokens)


@lru_cache(maxsize=None)
def _power_watts(device: Device, governor_name: str,
                 model_name: str, batch: int, context: int) -> float:
    """Whole-SoC watts while decoding, with DVFS-scaled dynamic power."""
    _, power = _governed_models(device, governor_name, model_name)
    sample = power.sample(batch, context)
    governor = GOVERNORS[governor_name]
    base = power.budget.base_w
    return base + (sample.power_w - base) * governor.power_scale


@dataclass
class BatteryRail:
    """Finite energy store drained by served requests.

    Depletion removes the device from the dispatchable population —
    capacity planning on battery-powered hardware must price energy,
    not just latency.
    """

    capacity_joules: float = DEFAULT_BATTERY_JOULES
    drained_joules: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_joules <= 0:
            raise FleetError(
                f"battery capacity must be positive, got "
                f"{self.capacity_joules}")

    def draw(self, joules: float) -> None:
        """Drain ``joules``; the rail clamps empty rather than going
        negative.  Negative draws are a caller bug, not a charge path —
        rejected with :class:`ValueError`."""
        if joules < 0:
            raise ValueError(
                f"cannot draw {joules} joules from a battery rail; "
                f"draws must be >= 0")
        self.drained_joules = min(self.capacity_joules,
                                  self.drained_joules + joules)

    def deplete(self) -> None:
        """Pull the rail straight to empty (the ``battery@T`` fault)."""
        self.drained_joules = self.capacity_joules

    @property
    def depleted(self) -> bool:
        return self.drained_joules >= self.capacity_joules

    @property
    def remaining_fraction(self) -> float:
        return max(0.0, 1.0 - self.drained_joules / self.capacity_joules)


@dataclass
class ServiceOutcome:
    """What serving one request on one device cost."""

    service_seconds: float
    tokens: int
    joules: float
    n_faults: int = 0
    n_retries: int = 0
    result: Optional[object] = None  # ScheduledGeneration on engine devices


class FleetDevice:
    """Common per-phone bookkeeping; subclasses price the service."""

    def __init__(self, device_id: int, device: Device,
                 battery: Optional[BatteryRail] = None,
                 thermal: Optional[ThermalState] = None,
                 hdr_bits: Optional[int] = None) -> None:
        self.device_id = device_id
        self.device = device
        self.battery = battery if battery is not None else BatteryRail()
        self.thermal = thermal if thermal is not None else ThermalState()
        bits = (hdr_bits if hdr_bits is not None
                else GENERATION_HDR_BITS.get(device.npu.name, 2))
        self.histogram = Histogram(
            f"fleet.device{device_id}.token_latency_seconds",
            buckets=hdr_buckets(*_LATENCY_RANGE, precision_bits=bits))
        self.busy = False
        self.idle_since = 0.0
        self.n_served = 0
        self.tokens_generated = 0
        self.busy_seconds = 0.0
        self.joules = 0.0
        self.n_faults = 0
        self.n_retries = 0

    @property
    def generation(self) -> str:
        return self.device.npu.name

    @property
    def available(self) -> bool:
        return not self.busy and not self.battery.depleted

    # ------------------------------------------------------------------
    def serve(self, request: FleetRequest, start_seconds: float,
              service_multiplier: float = 1.0) -> ServiceOutcome:
        """Price the request and commit its thermal/battery effects.

        Called at dispatch time; the simulation schedules the completion
        event ``service_seconds`` later on the shared loop.
        ``service_multiplier`` stretches the priced service time (and
        the energy burned at the same power) — the ``straggle`` fault's
        hook; at its default of 1.0 the arithmetic is untouched, so
        fault-free runs stay bitwise-identical.
        """
        if service_multiplier <= 0:
            raise FleetError(
                f"service multiplier must be positive, got "
                f"{service_multiplier}")
        self.thermal.cool(max(0.0, start_seconds - self.idle_since))
        outcome = self._service(request)
        if service_multiplier != 1.0:
            outcome.service_seconds *= service_multiplier
            outcome.joules *= service_multiplier
        self.busy = True
        self.n_served += 1
        self.tokens_generated += outcome.tokens
        self.busy_seconds += outcome.service_seconds
        self.joules += outcome.joules
        self.n_faults += outcome.n_faults
        self.n_retries += outcome.n_retries
        self.battery.draw(outcome.joules)
        return outcome

    def complete(self, request: FleetRequest, outcome: ServiceOutcome,
                 completion_seconds: float) -> float:
        """Release the device; record per-token latency.  Returns it.

        Token latency is arrival-to-completion time amortized per
        generated token (time-per-output-token including queue wait) —
        the quantity the capacity planner targets at p99, because it is
        the one that degrades under load.
        """
        self.busy = False
        self.idle_since = completion_seconds
        token_latency = ((completion_seconds - request.arrival_seconds)
                         / max(1, outcome.tokens))
        self.histogram.observe_many(token_latency, max(1, outcome.tokens))
        return token_latency

    def release(self, release_seconds: float,
                unused_seconds: float = 0.0) -> None:
        """Free the device without recording a completion.

        The cancellation path: a crashed/dropped dispatch or a hedge
        loser never completes, so its unfired tail (``unused_seconds``)
        is refunded from ``busy_seconds`` to keep utilization honest.
        Latency histograms record nothing — the request's outcome is
        accounted where it actually terminates.
        """
        self.busy = False
        self.idle_since = release_seconds
        self.busy_seconds -= max(0.0, unused_seconds)

    def _service(self, request: FleetRequest) -> ServiceOutcome:
        raise NotImplementedError


class AnalyticFleetDevice(FleetDevice):
    """Closed-form service model: fast enough for thousands of phones.

    Service time = chunked prefill + (continuous-batching decode steps
    from :func:`~repro.llm.scheduler.plan_waves`) x (per-step latency
    at the device's *current* thermal governor).  Energy follows the
    utilization-weighted :class:`~repro.perf.power.PowerModel`, with
    dynamic power rescaled by the governor's operating point; dynamic
    joules heat the thermal state, so sustained load throttles the
    device and its service times visibly degrade — the heterogeneity
    capacity planning exists to price.
    """

    def __init__(self, device_id: int, device: Device,
                 model_name: str = DEFAULT_FLEET_MODEL,
                 battery: Optional[BatteryRail] = None,
                 thermal: Optional[ThermalState] = None,
                 hdr_bits: Optional[int] = None,
                 dispatch: bool = False) -> None:
        super().__init__(device_id, device, battery=battery,
                         thermal=thermal, hdr_bits=hdr_bits)
        self.model_name = model_name
        self.selector = None
        self.n_backend_switches = 0
        if dispatch:
            from ..llm.dispatch import BackendSelector

            self.selector = BackendSelector(device,
                                            get_model_config(model_name))

    def _service(self, request: FleetRequest) -> ServiceOutcome:
        from ..llm.scheduler import plan_waves

        governor = self.thermal.governor
        batch = min(request.n_candidates, SERVICE_BATCH)
        prompt = _quantize(request.prompt_tokens, _PROMPT_QUANT)
        # mid-generation context: prompt plus half the decode budget
        context = _quantize(
            request.prompt_tokens + request.max_new_tokens // 2, _CTX_QUANT)
        steps = plan_waves([request.max_new_tokens] * request.n_candidates,
                           batch).continuous_steps
        step_seconds = _decode_step_seconds(
            self.device, governor.name, self.model_name, batch, context)
        prefill = _prefill_seconds(
            self.device, governor.name, self.model_name, prompt)
        migration = 0.0
        if self.selector is not None:
            # stage-level placement: rescale each stage by the chosen
            # backend's modeled slowdown relative to the NPU (the same
            # npu_ratio lever the scheduler applies per step), and pay
            # one rpcmem KV crossing when prefill and decode land on
            # different backends
            from ..llm.placement import crossing_for_bytes

            pre = self.selector.select("prefill", prompt, governor.name)
            dec = self.selector.select("decode", batch, governor.name)
            prefill *= pre.npu_ratio
            step_seconds *= dec.npu_ratio
            if pre.backend != dec.backend:
                config = get_model_config(self.model_name)
                kv_bytes = (batch * context * config.n_layers
                            * 2 * config.kv_dim * 2)
                migration = crossing_for_bytes(self.device, kv_bytes)
                self.n_backend_switches += 1
        service = prefill + steps * step_seconds + migration
        watts = _power_watts(self.device, governor.name, self.model_name,
                             batch, context)
        joules = watts * service
        # only dynamic power heats the SoC past its idle baseline
        base_w = PowerBudget().base_w
        self.thermal.absorb(max(0.0, watts - base_w) * service)
        return ServiceOutcome(service_seconds=service,
                              tokens=request.total_new_tokens,
                              joules=joules)


class EngineFleetDevice(FleetDevice):
    """Engine-backed phone: runs the real continuous-batching scheduler.

    Every request executes on this device's local
    :class:`~repro.sim.SimClock` via the scheduler's injected-clock
    path, so a single-device fleet is bitwise-comparable to driving
    :class:`~repro.llm.scheduler.ContinuousBatchingScheduler` directly
    — the differential proof that the kernel extraction changed
    nothing.
    """

    def __init__(self, device_id: int, scheduler, device: Device,
                 sampler_factory=None,
                 battery: Optional[BatteryRail] = None,
                 hdr_bits: Optional[int] = None,
                 dispatch=None, prefill_chunk: Optional[int] = None) -> None:
        super().__init__(device_id, device, battery=battery,
                         hdr_bits=hdr_bits)
        self.scheduler = scheduler
        self.clock = SimClock()
        self._sampler_factory = sampler_factory
        # optional stage-level placement, threaded into every generate
        # call; both default off so existing fleets stay bitwise
        self.dispatch = dispatch
        self.prefill_chunk = prefill_chunk

    def _synthetic_prompt(self, request: FleetRequest) -> List[int]:
        # deterministic, request-shaped, vocabulary-safe token ids
        return [(7 * i + request.request_id) % 97 + 1
                for i in range(request.prompt_tokens)]

    def _service(self, request: FleetRequest) -> ServiceOutcome:
        from ..llm.sampler import Sampler
        from ..resilience.faults import FaultPlan

        prompt = (list(request.prompt) if request.prompt is not None
                  else self._synthetic_prompt(request))
        plan = (FaultPlan.parse(request.fault_spec)
                if request.fault_spec else None)
        sampler = (self._sampler_factory(request)
                   if self._sampler_factory is not None
                   else Sampler(temperature=0.8, seed=request.request_id))
        result = self.scheduler.generate(
            prompt, n_candidates=request.n_candidates,
            max_new_tokens=request.max_new_tokens, sampler=sampler,
            fault_plan=plan, clock=self.clock,
            dispatch=self.dispatch, prefill_chunk=self.prefill_chunk)
        tokens = sum(len(seq) for seq in result.sequences)
        return ServiceOutcome(service_seconds=result.sim_seconds,
                              tokens=tokens, joules=result.joules,
                              n_faults=result.n_faults,
                              n_retries=result.n_retries, result=result)


def build_population(n_devices: int,
                     model_name: str = DEFAULT_FLEET_MODEL,
                     battery_capacity_joules: float = DEFAULT_BATTERY_JOULES,
                     throttle_at_joules: float = 60.0,
                     recover_at_joules: float = 30.0,
                     dispatch: bool = False
                     ) -> List[AnalyticFleetDevice]:
    """A heterogeneous analytic population, round-robin over the three
    Table-3 devices (deterministic: device ``i`` is generation
    ``sorted(DEVICES)[i % 3]``)."""
    if n_devices <= 0:
        raise FleetError(f"population needs >= 1 device, got {n_devices}")
    keys = sorted(DEVICES)
    out: List[AnalyticFleetDevice] = []
    for i in range(n_devices):
        device = DEVICES[keys[i % len(keys)]]
        out.append(AnalyticFleetDevice(
            device_id=i, device=device, model_name=model_name,
            battery=BatteryRail(capacity_joules=battery_capacity_joules),
            thermal=ThermalState(throttle_at_joules=throttle_at_joules,
                                 recover_at_joules=recover_at_joules),
            dispatch=dispatch))
    return out
