"""Fleet capacity reports: run a scenario, summarize, plan capacity.

:func:`run_fleet` is the one-call entry the CLI, the bench scenario,
the golden fixture and the fuzz oracle all share: build a seeded trace,
build a population, simulate, and fold the result into a
:class:`FleetReport` whose ``--json`` serialization (schema
``repro.fleet/v1``) is byte-identical across replays — every number in
it derives from the simulated clock and seeded RNG streams, never from
the host.

:func:`plan_capacity` answers the serving question the report exists
for: *how many phones does this QPS need to hold a p99 token-latency
target?*  It probes short deterministic simulations over a doubling
then bisecting device count; a probe passes when it sheds nothing,
serves everything, and holds the target.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import FleetError
from ..obs.slo import histogram_summary
from ..obs.timeline import EventLog, set_event_log
from ..resilience.faults import FaultPlan
from .devices import build_population
from .health import FailoverPolicy, HedgePolicy
from .load import ARRIVAL_PATTERNS, TraceConfig, generate_trace
from .requests import AdmissionController
from .simulation import FleetResult, FleetSimulation

__all__ = ["FLEET_SCHEMA", "FleetReport", "run_fleet", "plan_capacity",
           "DEFAULT_P99_TARGET_MS", "MAX_PLANNED_DEVICES"]

FLEET_SCHEMA = "repro.fleet/v1"

#: Default p99 time-per-output-token target: 250 ms/token keeps a
#: 32-token answer under ~8 s end to end at the tail.
DEFAULT_P99_TARGET_MS = 250.0

#: Capacity-search ceiling; a target unreachable below it reports null.
MAX_PLANNED_DEVICES = 4096

#: Probe length of one capacity-search simulation, in trace seconds.
_PROBE_HORIZON_SECONDS = 12.0

#: Probe QPS multipliers around the requested operating point.
_CAPACITY_CURVE = (0.5, 1.0, 2.0)


@dataclass
class FleetReport:
    """One serving window, summarized for machines and humans."""

    config: Dict[str, Any]
    population: Dict[str, Any]
    requests: Dict[str, Any]
    latency: Dict[str, Any]
    throughput: Dict[str, Any]
    energy: Dict[str, Any]
    thermal: Dict[str, Any]
    capacity: Dict[str, Any]
    #: Chaos/recovery section; present only when a fault plan or
    #: hedging was armed, so fault-free reports stay byte-identical to
    #: the pre-chaos schema.
    chaos: Optional[Dict[str, Any]] = None
    #: Critical-path blame section (schema ``repro.explain/v1``);
    #: present only when the run was recorded with ``explain=True``,
    #: so un-explained reports keep their existing byte-exact shape.
    explain: Optional[Dict[str, Any]] = None
    schema: str = FLEET_SCHEMA
    #: The raw result, for tests and trace export; never serialized.
    result: Optional[FleetResult] = field(default=None, repr=False)

    def to_json(self) -> Dict[str, Any]:
        out = {
            "schema": self.schema,
            "config": self.config,
            "population": self.population,
            "requests": self.requests,
            "latency": self.latency,
            "throughput": self.throughput,
            "energy": self.energy,
            "thermal": self.thermal,
            "capacity": self.capacity,
        }
        if self.chaos is not None:
            out["chaos"] = self.chaos
        if self.explain is not None:
            out["explain"] = self.explain
        return out

    def to_json_text(self) -> str:
        """Canonical serialization (sorted keys) for byte-wise diffing."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        token = self.latency["token"]
        request = self.latency["request"]
        wait = self.latency["queue_wait"]
        lines: List[str] = []
        lines.append(
            f"== fleet: {self.config['devices']} devices @ "
            f"{self.config['qps']:g} qps ({self.config['pattern']}, seed "
            f"{self.config['seed']}) ==")
        lines.append(f"requests           "
                     f"{self.requests['offered']} offered / "
                     f"{self.requests['completed']} completed / "
                     f"{self.requests['shed']} shed / "
                     f"{self.requests['unserved']} unserved")
        lines.append(f"makespan           "
                     f"{self.throughput['makespan_seconds']:.3f} s "
                     f"(util {self.throughput['busy_fraction']:.1%}, "
                     f"peak queue {self.requests['peak_queue_depth']})")
        lines.append(f"tokens             {int(self.throughput['tokens'])} "
                     f"({self.throughput['tokens_per_second']:.0f} tok/s)")
        lines.append(
            f"token latency      p50 {token['p50'] * 1e3:.1f} ms · "
            f"p95 {token['p95'] * 1e3:.1f} ms · "
            f"p99 {token['p99'] * 1e3:.1f} ms")
        lines.append(
            f"request latency    p50 {request['p50']:.3f} s · "
            f"p95 {request['p95']:.3f} s · p99 {request['p99']:.3f} s")
        lines.append(
            f"queue wait         p50 {wait['p50'] * 1e3:.1f} ms · "
            f"p99 {wait['p99'] * 1e3:.1f} ms · max {wait['max']:.3f} s")
        lines.append(f"energy             "
                     f"{self.energy['total_joules']:.1f} J total, "
                     f"{self.energy['batteries_depleted']} batteries "
                     f"depleted")
        lines.append(f"thermal            "
                     f"{self.thermal['throttle_events']} throttle events "
                     f"across {self.thermal['devices_throttled']} devices")
        if self.chaos is not None:
            faults = self.chaos["faults"]
            recovery = self.chaos["recovery"]
            ledger = self.chaos["conservation"]
            lines.append("")
            spec = self.chaos["fault_spec"] or "(none)"
            lines.append(f"== chaos: {spec} "
                         f"(hedge {'on' if self.chaos['hedge'] else 'off'})"
                         f" ==")
            lines.append(f"faults             "
                         f"{faults['fleet_events']} fleet events: "
                         f"{faults['crashes']} crashes "
                         f"({faults['reboots']} reboots) / "
                         f"{faults['straggles']} straggles / "
                         f"{faults['drops']} drops / "
                         f"{faults['battery_drains']} battery drains")
            lines.append(f"recovery           "
                         f"{recovery['failovers']} failovers "
                         f"({recovery['failed_permanently']} exhausted) / "
                         f"{recovery['hedges']} hedges "
                         f"({recovery['hedge_cancelled']} cancelled) / "
                         f"breakers {recovery['breaker_opens']} opened, "
                         f"{recovery['breaker_closes']} closed")
            lines.append(f"conservation       "
                         f"{ledger['offered']} offered = "
                         f"{ledger['completed']} completed + "
                         f"{ledger['shed']} shed + "
                         f"{ledger['failed_permanently']} failed + "
                         f"{ledger['unserved']} unserved")
        if self.explain is not None:
            agg = self.explain["aggregate"]
            lines.append("")
            lines.append(
                f"== blame (critical path, {agg['n_requests']} requests "
                f"explained) ==")
            total = agg["total_latency_ns"]
            for phase in sorted(agg["blame_ns"],
                                key=lambda p: -agg["blame_ns"][p]):
                ns = agg["blame_ns"][phase]
                share = ns / total if total else 0.0
                lines.append(f"  {phase:<18s} {ns / 1e9:>10.3f} s "
                             f"{share:>6.1%}")
            for name, cohort in agg["cohorts"].items():
                lines.append(
                    f"  {name} cohort ({cohort['n_requests']} requests "
                    f">= {cohort['cutoff_ns'] / 1e9:.3f} s): dominant "
                    f"{cohort['dominant_phase']}")
        lines.append("")
        lines.append(f"== capacity @ p99 token latency <= "
                     f"{self.capacity['p99_target_ms']:g} ms ==")
        if not self.capacity["points"]:
            lines.append("  (capacity plan skipped)")
            return "\n".join(lines) + "\n"
        for point in self.capacity["points"]:
            needed = point["devices_needed"]
            label = str(needed) if needed is not None else (
                f">{MAX_PLANNED_DEVICES}")
            lines.append(f"  {point['qps']:>8.2f} qps -> {label:>6s} devices")
        needed = self.capacity["devices_needed"]
        lines.append(
            f"devices needed     "
            f"{needed if needed is not None else f'>{MAX_PLANNED_DEVICES}'}"
            f" at {self.config['qps']:g} qps")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def _trace_config(qps: float, horizon_seconds: Optional[float],
                  max_requests: Optional[int], seed: int,
                  pattern: str) -> TraceConfig:
    return TraceConfig(qps=qps, horizon_seconds=horizon_seconds,
                       max_requests=max_requests, seed=seed,
                       pattern=pattern)


def _simulate(n_devices: int, trace: TraceConfig,
              queue_depth: int, model_name: str,
              battery_capacity_joules: float,
              fault_plan: Optional[FaultPlan] = None,
              hedge: bool = False) -> FleetResult:
    requests = generate_trace(trace)
    population = build_population(
        n_devices, model_name=model_name,
        battery_capacity_joules=battery_capacity_joules)
    simulation = FleetSimulation(
        population, requests,
        admission=AdmissionController(max_queue_depth=queue_depth),
        fault_plan=fault_plan,
        failover=FailoverPolicy(seed=trace.seed),
        hedge=HedgePolicy() if hedge else None,
        seed=trace.seed)
    return simulation.run()


def plan_capacity(qps: float, p99_target_seconds: float, seed: int,
                  pattern: str = "poisson", queue_depth: int = 64,
                  model_name: str = "qwen2.5-1.5b",
                  battery_capacity_joules: float = 6.9e4,
                  probe_horizon_seconds: float = _PROBE_HORIZON_SECONDS,
                  max_devices: int = MAX_PLANNED_DEVICES) -> Optional[int]:
    """Fewest devices holding the p99 token-latency target at ``qps``.

    A candidate count passes when its probe simulation sheds nothing,
    serves every arrival, and holds p99 token latency at or under the
    target.  Doubling finds an upper bound, bisection tightens it; the
    probe trace is fixed per (qps, seed, pattern), so the answer is a
    deterministic function of the inputs.  Returns ``None`` when even
    ``max_devices`` cannot hold the target.
    """
    if p99_target_seconds <= 0:
        raise FleetError(
            f"p99 target must be positive, got {p99_target_seconds}")
    trace = _trace_config(qps, probe_horizon_seconds, None, seed, pattern)

    def holds(n_devices: int) -> bool:
        result = _simulate(n_devices, trace, queue_depth, model_name,
                           battery_capacity_joules)
        if result.n_shed or result.n_unserved:
            return False
        if result.n_completed == 0:
            return True  # an empty probe trace constrains nothing
        summary = histogram_summary(result.token_latency())
        return summary["p99"] <= p99_target_seconds

    lo, hi = 0, 1
    while not holds(hi):
        if hi >= max_devices:
            return None
        lo, hi = hi, min(hi * 2, max_devices)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if holds(mid):
            hi = mid
        else:
            lo = mid
    return hi


def run_fleet(n_devices: int, qps: float,
              horizon_seconds: Optional[float] = 60.0,
              max_requests: Optional[int] = None,
              seed: int = 0, pattern: str = "poisson",
              queue_depth: int = 64,
              p99_target_ms: float = DEFAULT_P99_TARGET_MS,
              model_name: str = "qwen2.5-1.5b",
              battery_capacity_joules: float = 6.9e4,
              with_capacity_plan: bool = True,
              fault_spec: str = "",
              hedge: bool = False,
              explain: bool = False) -> FleetReport:
    """Simulate one serving window and fold it into a report.

    ``fault_spec`` arms a :class:`FaultPlan` of ``dev#K:...`` fleet
    fault events on the simulation's event loop; ``hedge`` turns on
    p99-tail hedged dispatch.  Either adds a ``chaos`` section to the
    report; with both at their defaults the report is byte-identical
    to the pre-chaos schema (capacity probes always run fault-free).

    ``explain=True`` records the run on a private event log and adds a
    critical-path blame section (schema ``repro.explain/v1``): every
    request's latency and joules attributed to queue wait / service /
    lost work / failover backoff, with p50/p99 cohort breakdowns.
    Only the main simulation is recorded — capacity probes stay
    unobserved, so the rest of the report is unchanged by explaining.
    """
    if pattern not in ARRIVAL_PATTERNS:
        raise FleetError(
            f"unknown arrival pattern {pattern!r}; known: "
            f"{ARRIVAL_PATTERNS}")
    fault_plan = FaultPlan.parse(fault_spec) if fault_spec else None
    trace = _trace_config(qps, horizon_seconds, max_requests, seed, pattern)
    log: Optional[EventLog] = None
    if explain:
        log = EventLog(enabled=True)
        previous_log = set_event_log(log)
        try:
            result = _simulate(n_devices, trace, queue_depth, model_name,
                               battery_capacity_joules,
                               fault_plan=fault_plan, hedge=hedge)
        finally:
            set_event_log(previous_log)
    else:
        result = _simulate(n_devices, trace, queue_depth, model_name,
                           battery_capacity_joules, fault_plan=fault_plan,
                           hedge=hedge)

    by_generation: Dict[str, int] = {}
    for device in result.devices:
        by_generation[device.generation] = (
            by_generation.get(device.generation, 0) + 1)
    token = histogram_summary(result.token_latency())
    target_seconds = p99_target_ms * 1e-3

    points: List[Dict[str, Any]] = []
    devices_needed: Optional[int] = None
    if with_capacity_plan:
        for factor in _CAPACITY_CURVE:
            point_qps = qps * factor
            needed = plan_capacity(
                point_qps, target_seconds, seed, pattern=pattern,
                queue_depth=queue_depth, model_name=model_name,
                battery_capacity_joules=battery_capacity_joules)
            points.append({"qps": point_qps, "devices_needed": needed})
            if factor == 1.0:
                devices_needed = needed

    chaos: Optional[Dict[str, Any]] = None
    if fault_plan is not None or hedge:
        chaos = {
            "fault_spec": fault_spec,
            "hedge": hedge,
            "faults": {
                "fleet_events": result.n_fleet_faults,
                "crashes": result.n_crashes,
                "reboots": result.n_reboots,
                "straggles": result.n_straggles,
                "drops": result.n_drops,
                "battery_drains": result.n_battery_faults,
            },
            "recovery": {
                "failovers": result.n_failovers,
                "failed_permanently": result.n_failed,
                "hedges": result.n_hedges,
                "hedge_cancelled": result.n_hedge_cancelled,
                "breaker_opens": result.n_breaker_opens,
                "breaker_closes": result.n_breaker_closes,
            },
            "conservation": result.conservation(),
        }

    explain_data: Optional[Dict[str, Any]] = None
    if log is not None:
        from ..obs.blame import explain_section
        explain_data = explain_section(log)
        explained = explain_data["aggregate"]["n_requests"]
        if explained != result.n_arrivals:
            raise FleetError(
                f"explain ledger violated: {result.n_arrivals} offered "
                f"requests but {explained} explained")

    makespan = result.makespan_seconds
    return FleetReport(
        config={
            "devices": n_devices,
            "qps": qps,
            "horizon_seconds": horizon_seconds,
            "max_requests": max_requests,
            "seed": seed,
            "pattern": pattern,
            "queue_depth": queue_depth,
            "p99_target_ms": p99_target_ms,
            "model": model_name,
            "battery_capacity_joules": battery_capacity_joules,
        },
        population={"total": len(result.devices),
                    "by_generation": {k: by_generation[k]
                                      for k in sorted(by_generation)}},
        requests={
            "offered": result.n_arrivals,
            "dispatched": result.n_dispatched,
            "completed": result.n_completed,
            "shed": result.n_shed,
            "unserved": result.n_unserved,
            "peak_queue_depth": result.peak_queue_depth,
        },
        latency={
            "token": token,
            "request": histogram_summary(result.request_latency),
            "queue_wait": histogram_summary(result.queue_wait),
        },
        throughput={
            "tokens": float(result.tokens),
            "tokens_per_second": (result.tokens / makespan
                                  if makespan > 0.0 else 0.0),
            "completed_per_second": (result.n_completed / makespan
                                     if makespan > 0.0 else 0.0),
            "makespan_seconds": makespan,
            "busy_fraction": result.busy_fraction(),
        },
        energy={
            "total_joules": result.joules,
            "joules_per_token": (result.joules / result.tokens
                                 if result.tokens else 0.0),
            "batteries_depleted": result.n_batteries_depleted,
            "mean_battery_remaining": (
                sum(d.battery.remaining_fraction
                    for d in result.devices) / len(result.devices)),
        },
        thermal={
            "throttle_events": result.n_throttle_events,
            "recovery_events": sum(d.thermal.n_recoveries
                                   for d in result.devices),
            "devices_throttled": sum(1 for d in result.devices
                                     if d.thermal.n_throttles),
        },
        capacity={
            "p99_target_ms": p99_target_ms,
            "points": points,
            "devices_needed": devices_needed,
        },
        chaos=chaos,
        explain=explain_data,
        result=result)
