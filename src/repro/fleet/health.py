"""Per-device health tracking and recovery policy for the fleet layer.

Real phone fleets are dominated by transient device misbehavior —
crashes, thermal stalls, stragglers, lost dispatches — so the serving
frontend needs the three classic recovery mechanisms, each implemented
here as deterministic policy objects wired into
:class:`~repro.fleet.simulation.FleetSimulation`:

* :class:`CircuitBreaker` — trips **open** after ``failure_threshold``
  consecutive failures on one device, quarantining it; after a
  seeded-jitter exponential cooldown it **half-opens** and the next
  dispatch is a probe: success closes the breaker, failure re-opens it
  with a doubled cooldown.
* :class:`FailoverPolicy` — a capped retry budget for requests whose
  dispatch died with the device; each re-offer through the admission
  controller waits a deterministic jittered exponential backoff first
  (the thundering-herd guard, minus the herd's nondeterminism).
* :class:`HedgePolicy` — requests stuck in the queue past the p99 of
  observed waits dispatch a second copy to another idle device;
  first completion wins, the loser is cancelled on the shared event
  loop so no request is ever served twice.

Determinism is the contract everywhere: "jitter" draws come from
:func:`numpy.random.default_rng` streams keyed by ``(seed, identity,
attempt)``, so the same fault schedule always produces the same
failovers, cooldowns and hedges — byte-identical ``repro.fleet/v1``
reports across replays, which is what the ``fleet.chaos`` fuzz oracle
pins.

Each mechanism has a fixed address in the critical-path blame taxonomy
(:mod:`repro.obs.critical_path`): a failover retry charges the wait
before its re-offer to ``failover_backoff`` and the dead dispatch's
progress to ``service_lost``; a cancelled hedge loser's energy lands in
``hedge_wasted`` joules; a breaker quarantine shows up as ``queue_wait``
on the requests it delays (quarantine removes capacity, it does not
touch in-flight work).  :meth:`FleetHealth.counters` is the
cross-check surface: the invariant tests assert blame phases appear
only when the mechanism that produces them actually fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from ..errors import FleetError
from ..obs.metrics import Histogram

__all__ = ["BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
           "CircuitBreaker", "DeviceHealth", "FailoverPolicy",
           "HedgePolicy", "FleetHealth"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


def _jitter(seed: int, *key: int) -> float:
    """Deterministic uniform draw in [0, 1) keyed by (seed, *key)."""
    return float(np.random.default_rng([seed, *key]).random())


class CircuitBreaker:
    """Consecutive-failure breaker for one device.

    States walk ``closed -> open -> half_open -> (closed | open)``.
    The cooldown before half-opening grows exponentially with the trip
    count and carries a seeded jitter of up to 25% so a correlated
    failure burst across devices does not half-open the whole fleet on
    the same tick.
    """

    def __init__(self, device_id: int, failure_threshold: int = 3,
                 cooldown_seconds: float = 2.0,
                 backoff_factor: float = 2.0,
                 max_cooldown_seconds: float = 60.0,
                 seed: int = 0) -> None:
        if failure_threshold <= 0:
            raise FleetError(
                f"breaker failure_threshold must be positive, got "
                f"{failure_threshold}")
        if cooldown_seconds <= 0 or max_cooldown_seconds <= 0:
            raise FleetError(
                f"breaker cooldowns must be positive, got "
                f"{cooldown_seconds}/{max_cooldown_seconds}")
        if backoff_factor < 1.0:
            raise FleetError(
                f"breaker backoff_factor must be >= 1, got "
                f"{backoff_factor}")
        self.device_id = device_id
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.backoff_factor = backoff_factor
        self.max_cooldown_seconds = max_cooldown_seconds
        self.seed = seed
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.n_trips = 0
        self.n_opens = 0
        self.n_closes = 0

    # ------------------------------------------------------------------
    @property
    def allows_dispatch(self) -> bool:
        """Closed and half-open breakers accept work (half-open probes)."""
        return self.state != BREAKER_OPEN

    def cooldown(self, trip: int) -> float:
        """Seeded-jitter exponential cooldown before half-opening."""
        base = self.cooldown_seconds * (self.backoff_factor ** max(
            0, trip - 1))
        base = min(base, self.max_cooldown_seconds)
        return base * (1.0 + 0.25 * _jitter(self.seed, self.device_id,
                                            trip))

    def record_failure(self) -> Optional[float]:
        """Count one failure; returns the cooldown if the breaker opened.

        A failure while half-open re-opens immediately (the probe
        failed); while closed the breaker opens once the consecutive
        count reaches the threshold.  Returns ``None`` when the breaker
        stayed closed (or was already open).
        """
        self.consecutive_failures += 1
        if self.state == BREAKER_OPEN:
            return None
        if (self.state == BREAKER_HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self.state = BREAKER_OPEN
            self.n_trips += 1
            self.n_opens += 1
            return self.cooldown(self.n_trips)
        return None

    def record_success(self) -> bool:
        """Count one success; returns True if this closed the breaker."""
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self.n_trips = 0
            self.n_closes += 1
            return True
        return False

    def half_open(self) -> None:
        """Cooldown expired: admit one probe dispatch."""
        if self.state == BREAKER_OPEN:
            self.state = BREAKER_HALF_OPEN


class DeviceHealth:
    """Everything the fleet tracks about one device beyond its physics.

    ``online`` covers crash/reboot; the straggle window stretches
    service times priced while it is active; the breaker quarantines
    repeat offenders.  :meth:`dispatchable` is the single gate the
    dispatch loop consults.
    """

    def __init__(self, device_id: int, breaker: CircuitBreaker) -> None:
        self.device_id = device_id
        self.breaker = breaker
        self.online = True
        self.straggle_factor = 1.0
        self.straggle_until = 0.0
        self.n_crashes = 0
        self.n_reboots = 0
        self.n_drops = 0
        self.n_straggles = 0

    def service_multiplier(self, now: float) -> float:
        """Service-time stretch in effect at ``now`` (1.0 = healthy)."""
        return self.straggle_factor if now < self.straggle_until else 1.0

    def start_straggle(self, now: float, factor: float,
                       duration_seconds: float) -> None:
        self.straggle_factor = factor
        self.straggle_until = now + duration_seconds
        self.n_straggles += 1

    def crash(self) -> None:
        self.online = False
        self.n_crashes += 1

    def reboot(self) -> None:
        self.online = True
        self.n_reboots += 1

    def dispatchable(self) -> bool:
        return self.online and self.breaker.allows_dispatch


@dataclass(frozen=True)
class FailoverPolicy:
    """Capped, deterministically-jittered retry budget for failovers.

    ``max_attempts`` counts re-dispatches after the first failure; a
    request whose budget is exhausted is accounted
    ``failed_permanently`` (the conservation invariant's fourth bucket)
    rather than retried forever against a dying fleet.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise FleetError(
                f"failover max_attempts must be >= 0, got "
                f"{self.max_attempts}")
        if self.backoff_seconds <= 0 or self.max_backoff_seconds <= 0:
            raise FleetError(
                f"failover backoffs must be positive, got "
                f"{self.backoff_seconds}/{self.max_backoff_seconds}")
        if self.backoff_factor < 1.0:
            raise FleetError(
                f"failover backoff_factor must be >= 1, got "
                f"{self.backoff_factor}")

    def backoff(self, request_id: int, attempt: int) -> float:
        """Delay before re-offering ``request_id``'s ``attempt``-th retry."""
        base = self.backoff_seconds * (self.backoff_factor ** attempt)
        base = min(base, self.max_backoff_seconds)
        return base * (1.0 + 0.5 * _jitter(self.seed, 1_000_003,
                                           request_id, attempt))


@dataclass(frozen=True)
class HedgePolicy:
    """When to dispatch a second copy of a queued-too-long request.

    With ``threshold_seconds`` unset, a dispatch hedges once at least
    ``min_samples`` queue waits have been observed and this request
    waited at or beyond their ``quantile`` (default: the p99 queue
    tail).  An explicit threshold bypasses the quantile estimate.
    """

    quantile: float = 99.0
    min_samples: int = 32
    threshold_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 100.0:
            raise FleetError(
                f"hedge quantile must be in (0, 100], got {self.quantile}")
        if self.min_samples <= 0:
            raise FleetError(
                f"hedge min_samples must be positive, got "
                f"{self.min_samples}")
        if (self.threshold_seconds is not None
                and self.threshold_seconds < 0):
            raise FleetError(
                f"hedge threshold must be >= 0 seconds, got "
                f"{self.threshold_seconds}")

    def should_hedge(self, wait_seconds: float,
                     queue_wait: Histogram) -> bool:
        if self.threshold_seconds is not None:
            return wait_seconds >= self.threshold_seconds
        if queue_wait.count < self.min_samples:
            return False
        tail = queue_wait.percentile(self.quantile)
        if tail <= 0.0:
            # an unloaded fleet's p99 wait is 0; hedging instant
            # dispatches would duplicate every request
            return False
        return wait_seconds >= tail


class FleetHealth:
    """The health side of a whole population: one tracker per device.

    Constructed by :class:`~repro.fleet.simulation.FleetSimulation`
    from its device ids; policies default to production-shaped values
    and everything is inert until a fault or hedge actually fires, so a
    fault-free simulation through this layer is behavior-identical to
    one without it.
    """

    def __init__(self, device_ids: Iterable[int], seed: int = 0,
                 failover: Optional[FailoverPolicy] = None,
                 hedge: Optional[HedgePolicy] = None,
                 failure_threshold: int = 3,
                 cooldown_seconds: float = 2.0,
                 max_cooldown_seconds: float = 60.0) -> None:
        self.seed = seed
        self.failover = (failover if failover is not None
                         else FailoverPolicy(seed=seed))
        self.hedge = hedge
        self.devices: Dict[int, DeviceHealth] = {
            device_id: DeviceHealth(
                device_id,
                CircuitBreaker(device_id,
                               failure_threshold=failure_threshold,
                               cooldown_seconds=cooldown_seconds,
                               max_cooldown_seconds=max_cooldown_seconds,
                               seed=seed))
            for device_id in device_ids}

    def __getitem__(self, device_id: int) -> DeviceHealth:
        return self.devices[device_id]

    @property
    def n_breaker_opens(self) -> int:
        return sum(h.breaker.n_opens for h in self.devices.values())

    @property
    def n_breaker_closes(self) -> int:
        return sum(h.breaker.n_closes for h in self.devices.values())

    def offline_devices(self) -> int:
        return sum(1 for h in self.devices.values() if not h.online)

    def counters(self) -> Dict[str, int]:
        """Fleet-wide fault/recovery totals across every device.

        The blame cross-check surface: ``service_lost`` nanoseconds can
        only exist when ``crashes + drops`` fired, ``hedge_wasted``
        joules require a hedge policy, and breaker opens bound how much
        capacity quarantine could have added to ``queue_wait``.
        """
        return {
            "crashes": sum(h.n_crashes for h in self.devices.values()),
            "reboots": sum(h.n_reboots for h in self.devices.values()),
            "drops": sum(h.n_drops for h in self.devices.values()),
            "straggles": sum(h.n_straggles for h in self.devices.values()),
            "breaker_opens": self.n_breaker_opens,
            "breaker_closes": self.n_breaker_closes,
        }
