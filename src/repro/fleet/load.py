"""Trace-driven load generation: seeded Poisson and diurnal arrivals.

A fleet simulation is only as honest as its arrival process.  This
module generates request traces as a pure function of a
:class:`TraceConfig` — all randomness flows through one
``numpy.random.default_rng`` stream spawned from ``[seed, pattern]``,
so the same config always yields the byte-identical trace (the
determinism the fuzz oracle and the golden fixture pin).

Two arrival patterns:

* ``poisson`` — homogeneous: exponential inter-arrival times at
  ``qps``.
* ``diurnal`` — inhomogeneous: the rate swings sinusoidally around
  ``qps`` with ``diurnal_amplitude`` over ``diurnal_period_seconds``,
  realized by thinning a Poisson process at the peak rate (Lewis &
  Shedler), the standard exact method for non-homogeneous Poisson
  sampling.

Request shapes (prompt length, Best-of-N width, token budget) and the
tenant class draw from the same stream, so heterogeneous workloads are
reproducible too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import FleetError
from .requests import FleetRequest

__all__ = ["ARRIVAL_PATTERNS", "TraceConfig", "generate_trace"]

ARRIVAL_PATTERNS = ("poisson", "diurnal")

#: Seed-stream discriminator per pattern: traces of different patterns
#: never share an RNG stream even at the same seed.
_PATTERN_STREAM = {"poisson": 0, "diurnal": 1}

#: (tenant, weight) mix of the generated load; priorities come from
#: :data:`~repro.fleet.requests.DEFAULT_TENANT_PRIORITIES`.
_TENANT_MIX: Tuple[Tuple[str, float], ...] = (("interactive", 0.7),
                                              ("batch", 0.3))


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of one generated arrival trace.

    At least one of ``horizon_seconds`` / ``max_requests`` must bound
    the trace; with both set, generation stops at whichever bound hits
    first.  Shape ranges are inclusive ``(lo, hi)`` bounds.
    """

    qps: float
    horizon_seconds: Optional[float] = None
    max_requests: Optional[int] = None
    seed: int = 0
    pattern: str = "poisson"
    diurnal_period_seconds: float = 120.0
    diurnal_amplitude: float = 0.6
    prompt_tokens: Tuple[int, int] = (32, 192)
    n_candidates: Tuple[int, int] = (1, 8)
    max_new_tokens: Tuple[int, int] = (16, 96)

    def validate(self) -> None:
        if self.qps <= 0:
            raise FleetError(f"qps must be positive, got {self.qps}")
        if self.pattern not in ARRIVAL_PATTERNS:
            raise FleetError(
                f"unknown arrival pattern {self.pattern!r}; known: "
                f"{ARRIVAL_PATTERNS}")
        if self.horizon_seconds is None and self.max_requests is None:
            raise FleetError(
                "trace needs horizon_seconds and/or max_requests to bound it")
        if self.horizon_seconds is not None and self.horizon_seconds <= 0:
            raise FleetError(
                f"horizon_seconds must be positive, got "
                f"{self.horizon_seconds}")
        if self.max_requests is not None and self.max_requests <= 0:
            raise FleetError(
                f"max_requests must be positive, got {self.max_requests}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise FleetError(
                f"diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}")
        if self.diurnal_period_seconds <= 0:
            raise FleetError(
                f"diurnal_period_seconds must be positive, got "
                f"{self.diurnal_period_seconds}")
        for name, (lo, hi) in (("prompt_tokens", self.prompt_tokens),
                               ("n_candidates", self.n_candidates),
                               ("max_new_tokens", self.max_new_tokens)):
            if lo <= 0 or hi < lo:
                raise FleetError(
                    f"{name} range must satisfy 0 < lo <= hi, got "
                    f"({lo}, {hi})")


def _draw_shape(rng: np.random.Generator, lo: int, hi: int) -> int:
    return int(rng.integers(lo, hi + 1))


def generate_trace(config: TraceConfig) -> List[FleetRequest]:
    """The arrival trace of ``config`` — deterministic for a config."""
    config.validate()
    rng = np.random.default_rng(
        [config.seed, _PATTERN_STREAM[config.pattern]])
    # thinning rate: for poisson the peak rate IS qps and every
    # candidate arrival is accepted, so both patterns share one loop
    amplitude = (config.diurnal_amplitude
                 if config.pattern == "diurnal" else 0.0)
    peak_rate = config.qps * (1.0 + amplitude)
    omega = 2.0 * math.pi / config.diurnal_period_seconds
    out: List[FleetRequest] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak_rate))
        if (config.horizon_seconds is not None
                and t > config.horizon_seconds):
            break
        if amplitude > 0.0:
            rate = config.qps * (1.0 + amplitude * math.sin(omega * t))
            if float(rng.random()) >= rate / peak_rate:
                continue
        tenant = (_TENANT_MIX[0][0]
                  if float(rng.random()) < _TENANT_MIX[0][1]
                  else _TENANT_MIX[1][0])
        out.append(FleetRequest(
            request_id=len(out),
            arrival_seconds=t,
            tenant=tenant,
            prompt_tokens=_draw_shape(rng, *config.prompt_tokens),
            n_candidates=_draw_shape(rng, *config.n_candidates),
            max_new_tokens=_draw_shape(rng, *config.max_new_tokens)))
        if (config.max_requests is not None
                and len(out) >= config.max_requests):
            break
    return out
