"""Re-export of the shared discrete-event kernel (:mod:`repro.sim`).

The fleet layer, the continuous-batching scheduler and the fault
injector all advance the same :class:`~repro.sim.SimClock`; this module
exists so fleet code (and readers following the ISSUE's
``repro.fleet.clock`` name) find the kernel next to the layer that
motivated extracting it.
"""

from __future__ import annotations

from ..sim import EventHandle, EventLoop, SimClock

__all__ = ["SimClock", "EventHandle", "EventLoop"]
