"""The fleet simulation: one event loop driving the whole population.

Arrivals, dispatches and completions are events on a single shared
:class:`~repro.sim.EventLoop`; devices price each request's service
time synchronously at dispatch (analytic model or a real scheduler run
on the device-local clock) and the completion lands back on the global
timeline ``service_seconds`` later.  Dispatch order is deterministic:
the longest-idle available device (ties by device id) serves the most
urgent queued request.

Timeline integration: with the structured event log armed
(:mod:`repro.obs.timeline`), the simulation emits ``queue`` /
``dispatch`` / ``shed`` / ``complete`` events per request, so
``repro monitor`` folds a fleet scenario exactly like a single-engine
one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FleetError
from ..obs import timeline as obs_timeline
from ..obs.metrics import Histogram
from ..obs.slo import hdr_buckets
from ..sim import EventLoop
from .devices import FleetDevice
from .requests import AdmissionController, FleetRequest

__all__ = ["FleetResult", "FleetSimulation"]

#: Fleet-wide aggregation resolution (4 sub-buckets/octave); device
#: histograms use generation-dependent bits, so merging into these
#: bounds is the mixed-resolution path by construction.
_FLEET_HDR_BITS = 2


def _fleet_histogram(name: str, lo: float, hi: float) -> Histogram:
    return Histogram(name, buckets=hdr_buckets(
        lo, hi, precision_bits=_FLEET_HDR_BITS))


@dataclass
class FleetResult:
    """Raw outcome of one simulated serving window."""

    devices: List[FleetDevice]
    n_arrivals: int = 0
    n_dispatched: int = 0
    n_completed: int = 0
    n_shed: int = 0
    n_unserved: int = 0
    makespan_seconds: float = 0.0
    peak_queue_depth: int = 0
    tokens: int = 0
    joules: float = 0.0
    n_faults: int = 0
    n_retries: int = 0
    request_latency: Histogram = field(default_factory=lambda: _fleet_histogram(
        "fleet.request_latency_seconds", 1e-3, 1074.0))
    queue_wait: Histogram = field(default_factory=lambda: _fleet_histogram(
        "fleet.queue_wait_seconds", 1e-4, 1074.0))

    def token_latency(self) -> Histogram:
        """All devices' token-latency histograms folded into one.

        Per-device instruments carry generation-matched resolutions
        (:data:`~repro.fleet.devices.GENERATION_HDR_BITS`), so this is
        the mixed-resolution :meth:`~repro.obs.metrics.Histogram.merge`
        running in production, not just in its regression test.
        """
        merged = _fleet_histogram("fleet.token_latency_seconds", 1e-4, 134.0)
        for device in self.devices:
            if device.histogram.count:
                merged.merge(device.histogram)
        return merged

    @property
    def n_throttle_events(self) -> int:
        return sum(d.thermal.n_throttles for d in self.devices)

    @property
    def n_batteries_depleted(self) -> int:
        return sum(1 for d in self.devices if d.battery.depleted)

    def busy_fraction(self) -> float:
        """Mean device utilization over the makespan."""
        if self.makespan_seconds <= 0.0 or not self.devices:
            return 0.0
        busy = sum(d.busy_seconds for d in self.devices)
        return busy / (len(self.devices) * self.makespan_seconds)


class FleetSimulation:
    """Drives a device population through an arrival trace."""

    def __init__(self, devices: Sequence[FleetDevice],
                 requests: Sequence[FleetRequest],
                 admission: Optional[AdmissionController] = None,
                 loop: Optional[EventLoop] = None) -> None:
        if not devices:
            raise FleetError("fleet simulation needs at least one device")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise FleetError(f"duplicate device ids in population: {ids}")
        self.devices = list(devices)
        self._by_id: Dict[int, FleetDevice] = {d.device_id: d
                                               for d in self.devices}
        self.requests = sorted(requests,
                               key=lambda r: (r.arrival_seconds,
                                              r.request_id))
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self.loop = loop if loop is not None else EventLoop()
        # (idle_since, device_id): longest-idle first, ties by id — a
        # device appears at most once (pushed only on release)
        self._idle: List[Tuple[float, int]] = [
            (0.0, d.device_id) for d in sorted(self.devices,
                                               key=lambda d: d.device_id)]
        heapq.heapify(self._idle)
        self.result = FleetResult(devices=self.devices)

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        for request in self.requests:
            self.loop.at(request.arrival_seconds, self._arrive, request)
        self.loop.run()
        # whatever is still queued after the last completion can never
        # be served (every device depleted): account, don't lose
        leftover = self.admission.drain()
        self.result.n_unserved = len(leftover)
        self.result.peak_queue_depth = self.admission.peak_depth
        return self.result

    # ------------------------------------------------------------------
    def _arrive(self, request: FleetRequest) -> None:
        now = self.loop.now
        self.result.n_arrivals += 1
        obs_timeline.emit("queue", now, request_id=request.request_id,
                          tenant=request.tenant)
        admitted, shed = self.admission.offer(request)
        if not admitted:
            self._shed(request, now)
        elif shed is not None:
            self._shed(shed, now)
        self._dispatch()

    def _shed(self, request: FleetRequest, now: float) -> None:
        self.result.n_shed += 1
        obs_timeline.emit("shed", now, request_id=request.request_id,
                          tenant=request.tenant,
                          queue_depth=len(self.admission))

    def _dispatch(self) -> None:
        now = self.loop.now
        while len(self.admission) > 0 and self._idle:
            _, device_id = heapq.heappop(self._idle)
            device = self._by_id[device_id]
            if device.battery.depleted:
                continue  # drops out of the rotation permanently
            request = self.admission.pop()
            assert request is not None
            wait = now - request.arrival_seconds
            self.queue_wait_observe(wait)
            outcome = device.serve(request, now)
            self.result.n_dispatched += 1
            obs_timeline.emit("dispatch", now,
                              request_id=request.request_id,
                              device=device.device_id,
                              generation=device.generation,
                              wait_seconds=wait,
                              service_seconds=outcome.service_seconds)
            self.loop.after(outcome.service_seconds, self._complete,
                            device, request, outcome)

    def queue_wait_observe(self, wait: float) -> None:
        # zero waits (dispatch at arrival) sit below the first bound —
        # fine, the histogram's first bucket covers them
        self.result.queue_wait.observe(wait)

    def _complete(self, device: FleetDevice, request: FleetRequest,
                  outcome) -> None:
        now = self.loop.now
        device.complete(request, outcome, now)
        result = self.result
        result.n_completed += 1
        result.tokens += outcome.tokens
        result.joules += outcome.joules
        result.n_faults += outcome.n_faults
        result.n_retries += outcome.n_retries
        result.makespan_seconds = max(result.makespan_seconds, now)
        result.request_latency.observe(now - request.arrival_seconds)
        obs_timeline.emit("complete", now, request_id=request.request_id,
                          reason="served", tokens=outcome.tokens,
                          latency_seconds=now - request.arrival_seconds,
                          joules=outcome.joules)
        if not device.battery.depleted:
            heapq.heappush(self._idle, (now, device.device_id))
        self._dispatch()
