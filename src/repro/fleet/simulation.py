"""The fleet simulation: one event loop driving the whole population.

Arrivals, dispatches and completions are events on a single shared
:class:`~repro.sim.EventLoop`; devices price each request's service
time synchronously at dispatch (analytic model or a real scheduler run
on the device-local clock) and the completion lands back on the global
timeline ``service_seconds`` later.  Dispatch order is deterministic:
the longest-idle available device (ties by device id) serves the most
urgent queued request.

Chaos (PR 8): a :class:`~repro.resilience.faults.FaultPlan` may carry
``fleet.device`` events — ``dev#K:crash@T[:D]`` / ``straggle@T:F:D`` /
``drop@T`` / ``battery@T`` — which the simulation schedules on the same
loop.  The recovery side lives in :mod:`repro.fleet.health`: per-device
circuit breakers quarantine repeat offenders, failed dispatches fail
over back through the :class:`AdmissionController` under a capped
retry budget with deterministic jittered backoff, and (optionally) the
p99 queue tail hedges onto a second device with first-completion-wins
cancellation.  Under **any** fault schedule the run upholds the
conservation invariant::

    offered == completed + shed + failed_permanently + unserved

with no request served twice (hedge losers are cancelled before their
completion fires) — checked at the end of every run and fuzzed by the
``fleet.chaos`` oracle.

Timeline integration: with the structured event log armed
(:mod:`repro.obs.timeline`), the simulation emits ``queue`` /
``dispatch`` / ``shed`` / ``complete`` events per request — plus
``device_down`` / ``device_up`` / ``failover`` / ``hedge`` /
``breaker_open`` / ``breaker_close`` and ``fault`` under chaos — so
``repro monitor`` folds a fleet scenario exactly like a single-engine
one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import FleetError
from ..obs import timeline as obs_timeline
from ..obs.metrics import Histogram
from ..obs.slo import hdr_buckets
from ..sim import EventHandle, EventLoop
from .devices import FleetDevice
from .health import FleetHealth, FailoverPolicy, HedgePolicy
from .requests import AdmissionController, FleetRequest

__all__ = ["FleetResult", "FleetSimulation"]

#: Fleet-wide aggregation resolution (4 sub-buckets/octave); device
#: histograms use generation-dependent bits, so merging into these
#: bounds is the mixed-resolution path by construction.
_FLEET_HDR_BITS = 2


def _fleet_histogram(name: str, lo: float, hi: float) -> Histogram:
    return Histogram(name, buckets=hdr_buckets(
        lo, hi, precision_bits=_FLEET_HDR_BITS))


@dataclass
class _Dispatch:
    """One in-flight (request, device) service; a hedged request has two."""

    request: FleetRequest
    device_id: int
    outcome: object  # ServiceOutcome
    handle: EventHandle
    start_seconds: float
    hedged: bool = False


@dataclass
class FleetResult:
    """Raw outcome of one simulated serving window."""

    devices: List[FleetDevice]
    n_arrivals: int = 0
    n_dispatched: int = 0
    n_completed: int = 0
    n_shed: int = 0
    n_unserved: int = 0
    makespan_seconds: float = 0.0
    peak_queue_depth: int = 0
    tokens: int = 0
    joules: float = 0.0
    n_faults: int = 0
    n_retries: int = 0
    # --- chaos / recovery counters (all zero on a fault-free run) ---
    n_failed: int = 0            #: requests whose failover budget ran out
    n_failovers: int = 0         #: re-dispatch attempts scheduled
    n_fleet_faults: int = 0      #: fleet.device fault events fired
    n_crashes: int = 0
    n_reboots: int = 0
    n_drops: int = 0             #: dispatches actually lost in flight
    n_straggles: int = 0
    n_battery_faults: int = 0
    n_hedges: int = 0            #: hedge dispatches issued
    n_hedge_cancelled: int = 0   #: losing hedge legs cancelled
    n_breaker_opens: int = 0
    n_breaker_closes: int = 0
    request_latency: Histogram = field(default_factory=lambda: _fleet_histogram(
        "fleet.request_latency_seconds", 1e-3, 1074.0))
    queue_wait: Histogram = field(default_factory=lambda: _fleet_histogram(
        "fleet.queue_wait_seconds", 1e-4, 1074.0))

    def token_latency(self) -> Histogram:
        """All devices' token-latency histograms folded into one.

        Per-device instruments carry generation-matched resolutions
        (:data:`~repro.fleet.devices.GENERATION_HDR_BITS`), so this is
        the mixed-resolution :meth:`~repro.obs.metrics.Histogram.merge`
        running in production, not just in its regression test.
        """
        merged = _fleet_histogram("fleet.token_latency_seconds", 1e-4, 134.0)
        for device in self.devices:
            if device.histogram.count:
                merged.merge(device.histogram)
        return merged

    @property
    def n_throttle_events(self) -> int:
        return sum(d.thermal.n_throttles for d in self.devices)

    @property
    def n_batteries_depleted(self) -> int:
        return sum(1 for d in self.devices if d.battery.depleted)

    def busy_fraction(self) -> float:
        """Mean device utilization over the makespan."""
        if self.makespan_seconds <= 0.0 or not self.devices:
            return 0.0
        busy = sum(d.busy_seconds for d in self.devices)
        return busy / (len(self.devices) * self.makespan_seconds)

    # ------------------------------------------------------------------
    def conservation(self) -> Dict[str, int]:
        """The invariant's ledger: every offered request's terminal state."""
        return {
            "offered": self.n_arrivals,
            "completed": self.n_completed,
            "shed": self.n_shed,
            "failed_permanently": self.n_failed,
            "unserved": self.n_unserved,
        }

    def check_conservation(self) -> None:
        """Raise :class:`FleetError` unless every request is accounted."""
        ledger = self.conservation()
        terminal = (ledger["completed"] + ledger["shed"]
                    + ledger["failed_permanently"] + ledger["unserved"])
        if ledger["offered"] != terminal:
            raise FleetError(
                f"request conservation violated: offered "
                f"{ledger['offered']} != completed + shed + "
                f"failed_permanently + unserved = {terminal} ({ledger})")


class FleetSimulation:
    """Drives a device population through an arrival trace.

    ``fault_plan`` arms any ``fleet.device`` events it carries on the
    shared loop (its scheduler-level events are untouched here — engine
    devices arm those per run).  ``failover`` / ``hedge`` configure the
    recovery policies; with no plan and no hedging the health layer is
    inert and the simulation is bitwise-identical to the pre-chaos one.
    """

    def __init__(self, devices: Sequence[FleetDevice],
                 requests: Sequence[FleetRequest],
                 admission: Optional[AdmissionController] = None,
                 loop: Optional[EventLoop] = None,
                 fault_plan=None,
                 failover: Optional[FailoverPolicy] = None,
                 hedge: Optional[HedgePolicy] = None,
                 seed: int = 0,
                 breaker_failure_threshold: int = 3,
                 breaker_cooldown_seconds: float = 2.0) -> None:
        if not devices:
            raise FleetError("fleet simulation needs at least one device")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise FleetError(f"duplicate device ids in population: {ids}")
        self.devices = list(devices)
        self._by_id: Dict[int, FleetDevice] = {d.device_id: d
                                               for d in self.devices}
        self.requests = sorted(requests,
                               key=lambda r: (r.arrival_seconds,
                                              r.request_id))
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self.loop = loop if loop is not None else EventLoop()
        self.health = FleetHealth(
            self._by_id, seed=seed, failover=failover, hedge=hedge,
            failure_threshold=breaker_failure_threshold,
            cooldown_seconds=breaker_cooldown_seconds)
        self._fault_events: Tuple = ()
        if fault_plan is not None:
            self._fault_events = fault_plan.fleet_events()
            unknown = sorted({e.device for e in self._fault_events}
                             - set(self._by_id))
            if unknown:
                raise FleetError(
                    f"fault plan addresses devices {unknown} not in the "
                    f"population (ids: {sorted(self._by_id)})")
        # (idle_since, device_id): longest-idle first, ties by id — a
        # device appears at most once (the _in_rotation mirror guards
        # the rejoin paths: reboot, breaker half-open, hedge release)
        self._idle: List[Tuple[float, int]] = [
            (0.0, d.device_id) for d in sorted(self.devices,
                                               key=lambda d: d.device_id)]
        heapq.heapify(self._idle)
        self._in_rotation: Set[int] = {d.device_id for d in self.devices}
        self._inflight: Dict[int, List[_Dispatch]] = {}
        self._attempts: Dict[int, int] = {}
        self._completed_ids: Set[int] = set()
        self._hedge_pending: List[int] = []
        self.result = FleetResult(devices=self.devices)

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        # fault events enter the heap first: at equal timestamps a
        # fault fires before an arrival, deterministically
        for event in self._fault_events:
            self.loop.at(event.time_seconds, self._fault, event)
        for request in self.requests:
            self.loop.at(request.arrival_seconds, self._arrive, request)
        self.loop.run()
        # whatever is still queued after the last completion can never
        # be served (every device depleted/offline): account, don't lose
        leftover = self.admission.drain()
        self.result.n_unserved = len(leftover)
        self.result.peak_queue_depth = self.admission.peak_depth
        self.result.n_breaker_opens = self.health.n_breaker_opens
        self.result.n_breaker_closes = self.health.n_breaker_closes
        self.result.check_conservation()
        return self.result

    # ------------------------------------------------------------------
    def _arrive(self, request: FleetRequest) -> None:
        now = self.loop.now
        self.result.n_arrivals += 1
        obs_timeline.emit("queue", now, request_id=request.request_id,
                          tenant=request.tenant)
        admitted, shed = self.admission.offer(request)
        if not admitted:
            self._shed(request, now)
        elif shed is not None:
            self._shed(shed, now)
        self._dispatch()

    def _shed(self, request: FleetRequest, now: float) -> None:
        self.result.n_shed += 1
        obs_timeline.emit("shed", now, request_id=request.request_id,
                          tenant=request.tenant,
                          queue_depth=len(self.admission))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatchable(self, device: FleetDevice) -> bool:
        return (not device.battery.depleted
                and self.health[device.device_id].dispatchable())

    def _pop_idle_device(self) -> Optional[FleetDevice]:
        """Longest-idle dispatchable device, or None; skipped entries
        drop out of the rotation until a rejoin path re-adds them."""
        while self._idle:
            _, device_id = heapq.heappop(self._idle)
            self._in_rotation.discard(device_id)
            device = self._by_id[device_id]
            if self._dispatchable(device):
                return device
        return None

    def _try_rejoin(self, device: FleetDevice, now: float) -> None:
        """Return a freed device to the idle rotation if it may serve."""
        if device.busy or device.device_id in self._in_rotation:
            return
        if not self._dispatchable(device):
            return
        heapq.heappush(self._idle, (now, device.device_id))
        self._in_rotation.add(device.device_id)

    def _dispatch(self) -> None:
        now = self.loop.now
        hedge = self.health.hedge
        while len(self.admission) > 0 and self._idle:
            device = self._pop_idle_device()
            if device is None:
                return
            request = self.admission.pop()
            assert request is not None
            wait = now - request.arrival_seconds
            self.queue_wait_observe(wait)
            self._start_dispatch(request, device, now, wait, hedged=False)
            if (hedge is not None
                    and hedge.should_hedge(wait, self.result.queue_wait)):
                # p99 queue tail: eligible for a hedge copy once the
                # fleet has spare capacity
                self._hedge_pending.append(request.request_id)
        self._service_hedges(now)

    def _service_hedges(self, now: float) -> None:
        """Hedge the queue tail onto spare devices.

        A request whose queue wait landed in the policy's tail gets a
        second dispatch on another device as soon as the queue is empty
        and a device idles — never ahead of real queued work.  The two
        legs race; the first completion wins and cancels the other.
        """
        if self.health.hedge is None or not self._hedge_pending:
            return
        if len(self.admission) > 0:
            return
        while self._hedge_pending:
            rid = self._hedge_pending[0]
            legs = self._inflight.get(rid)
            if not legs or len(legs) != 1 or legs[0].hedged:
                self._hedge_pending.pop(0)  # completed or already hedged
                continue
            partner = self._pop_idle_device()
            if partner is None:
                return  # stays pending; retried when a device frees
            self._hedge_pending.pop(0)
            primary = legs[0]
            self.result.n_hedges += 1
            obs_timeline.emit(
                "hedge", now, request_id=rid,
                primary=primary.device_id,
                secondary=partner.device_id,
                elapsed_seconds=now - primary.request.arrival_seconds)
            self._start_dispatch(
                primary.request, partner, now,
                now - primary.request.arrival_seconds, hedged=True)

    def _start_dispatch(self, request: FleetRequest, device: FleetDevice,
                        now: float, wait: float, hedged: bool) -> None:
        multiplier = self.health[device.device_id].service_multiplier(now)
        outcome = device.serve(request, now,
                               service_multiplier=multiplier)
        self.result.n_dispatched += 1
        attrs = dict(request_id=request.request_id,
                     device=device.device_id,
                     generation=device.generation,
                     wait_seconds=wait,
                     service_seconds=outcome.service_seconds,
                     joules=outcome.joules)
        if hedged:
            attrs["hedged"] = True
        obs_timeline.emit("dispatch", now, **attrs)
        dispatch = _Dispatch(request=request, device_id=device.device_id,
                             outcome=outcome, handle=None,  # set below
                             start_seconds=now, hedged=hedged)
        dispatch.handle = self.loop.after(outcome.service_seconds,
                                          self._complete, dispatch)
        self._inflight.setdefault(request.request_id, []).append(dispatch)

    def queue_wait_observe(self, wait: float) -> None:
        # zero waits (dispatch at arrival) sit below the first bound —
        # fine, the histogram's first bucket covers them
        self.result.queue_wait.observe(wait)

    # ------------------------------------------------------------------
    # completion (and first-completion-wins hedge cancellation)
    # ------------------------------------------------------------------
    def _complete(self, dispatch: _Dispatch) -> None:
        now = self.loop.now
        request = dispatch.request
        rid = request.request_id
        legs = self._inflight.pop(rid, [dispatch])
        losers = [leg for leg in legs if leg is not dispatch]
        for loser in losers:
            self.loop.cancel(loser.handle)
            loser_device = self._by_id[loser.device_id]
            unused = (loser.start_seconds + loser.outcome.service_seconds
                      - now)
            loser_device.release(now, unused_seconds=unused)
            # the loser's energy was really drawn from its battery at
            # dispatch; keep the fleet ledger honest about wasted work
            self.result.joules += loser.outcome.joules
            self.result.n_hedge_cancelled += 1
            obs_timeline.emit("hedge", now, request_id=rid,
                              loser=loser.device_id,
                              winner=dispatch.device_id,
                              cancelled=True)
        if rid in self._completed_ids:
            raise FleetError(
                f"request {rid} completed twice — hedge cancellation "
                f"failed to fire")
        self._completed_ids.add(rid)
        device = self._by_id[dispatch.device_id]
        outcome = dispatch.outcome
        device.complete(request, outcome, now)
        result = self.result
        result.n_completed += 1
        result.tokens += outcome.tokens
        result.joules += outcome.joules
        result.n_faults += outcome.n_faults
        result.n_retries += outcome.n_retries
        result.makespan_seconds = max(result.makespan_seconds, now)
        result.request_latency.observe(now - request.arrival_seconds)
        obs_timeline.emit("complete", now, request_id=rid,
                          reason="served", tokens=outcome.tokens,
                          latency_seconds=now - request.arrival_seconds,
                          joules=outcome.joules,
                          device=dispatch.device_id,
                          tenant=request.tenant)
        breaker = self.health[device.device_id].breaker
        if breaker.record_success():  # half-open probe succeeded
            obs_timeline.emit("breaker_close", now,
                              device=device.device_id)
        self._try_rejoin(device, now)
        for loser in losers:
            self._try_rejoin(self._by_id[loser.device_id], now)
        self._dispatch()

    # ------------------------------------------------------------------
    # fleet-level faults
    # ------------------------------------------------------------------
    def _fault(self, event) -> None:
        now = self.loop.now
        device = self._by_id[event.device]
        health = self.health[event.device]
        self.result.n_fleet_faults += 1
        if event.kind == "device_crash":
            health.crash()
            self.result.n_crashes += 1
            obs_timeline.emit("device_down", now, device=event.device,
                              reboot_seconds=event.duration_seconds)
            self._fail_inflight_on(device, now, reason="crash")
            if event.duration_seconds is not None:
                self.loop.after(event.duration_seconds, self._reboot,
                                device)
        elif event.kind == "straggle":
            health.start_straggle(now, event.factor,
                                  event.duration_seconds)
            self.result.n_straggles += 1
            obs_timeline.emit("fault", now, fault_kind="straggle",
                              device=event.device, factor=event.factor,
                              duration_seconds=event.duration_seconds)
        elif event.kind == "dispatch_drop":
            obs_timeline.emit("fault", now, fault_kind="dispatch_drop",
                              device=event.device)
            dropped = self._fail_inflight_on(device, now, reason="drop")
            if dropped:
                self.result.n_drops += dropped
                health.n_drops += dropped
                self._try_rejoin(device, now)
                self._dispatch()
        elif event.kind == "battery_drain":
            device.battery.deplete()
            self.result.n_battery_faults += 1
            obs_timeline.emit("fault", now, fault_kind="battery_drain",
                              device=event.device)
        else:  # pragma: no cover — grammar validation forbids this
            raise FleetError(f"unhandled fleet fault kind {event.kind!r}")

    def _fail_inflight_on(self, device: FleetDevice, now: float,
                          reason: str) -> int:
        """Cancel every live dispatch on ``device``; fail them over.

        Returns the number of dispatches lost.  A lost *hedge leg*
        whose sibling is still running is not a request failure — the
        request is still being served — but it does count against the
        device's breaker.
        """
        lost = 0
        for rid in list(self._inflight):
            legs = self._inflight.get(rid, [])
            victims = [leg for leg in legs
                       if leg.device_id == device.device_id
                       and leg.handle.pending]
            for victim in victims:
                self.loop.cancel(victim.handle)
                legs.remove(victim)
                unused = (victim.start_seconds
                          + victim.outcome.service_seconds - now)
                device.release(now, unused_seconds=unused)
                self.result.joules += victim.outcome.joules
                lost += 1
                self._record_device_failure(device, now)
                if legs:
                    # the sibling hedge leg races on — no failover
                    self.result.n_hedge_cancelled += 1
                    obs_timeline.emit("hedge", now, request_id=rid,
                                      loser=device.device_id,
                                      cancelled=True, reason=reason)
                else:
                    del self._inflight[rid]
                    self._failover(victim.request, device, now, reason)
        return lost

    def _record_device_failure(self, device: FleetDevice,
                               now: float) -> None:
        breaker = self.health[device.device_id].breaker
        cooldown = breaker.record_failure()
        if cooldown is not None:
            obs_timeline.emit(
                "breaker_open", now, device=device.device_id,
                cooldown_seconds=cooldown,
                consecutive_failures=breaker.consecutive_failures)
            self.loop.after(cooldown, self._half_open, device)

    def _half_open(self, device: FleetDevice) -> None:
        self.health[device.device_id].breaker.half_open()
        self._try_rejoin(device, self.loop.now)
        self._dispatch()

    def _reboot(self, device: FleetDevice) -> None:
        health = self.health[device.device_id]
        if health.online:
            return  # a later crash/reboot pair already brought it back
        health.reboot()
        now = self.loop.now
        self.result.n_reboots += 1
        obs_timeline.emit("device_up", now, device=device.device_id)
        self._try_rejoin(device, now)
        self._dispatch()

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def _failover(self, request: FleetRequest, from_device: FleetDevice,
                  now: float, reason: str) -> None:
        rid = request.request_id
        attempt = self._attempts.get(rid, 0)
        policy = self.health.failover
        if attempt >= policy.max_attempts:
            self.result.n_failed += 1
            obs_timeline.emit("failover", now, request_id=rid,
                              from_device=from_device.device_id,
                              reason=reason, attempt=attempt,
                              outcome="exhausted")
            return
        self._attempts[rid] = attempt + 1
        delay = policy.backoff(rid, attempt)
        self.result.n_failovers += 1
        obs_timeline.emit("failover", now, request_id=rid,
                          from_device=from_device.device_id,
                          reason=reason, attempt=attempt,
                          outcome="retry", backoff_seconds=delay)
        self.loop.after(delay, self._reoffer, request)

    def _reoffer(self, request: FleetRequest) -> None:
        """Re-enter the admission queue after a failover backoff.

        The request keeps its tenant class (a failed-over batch request
        must not jump interactive traffic) and takes a fresh arrival
        sequence number — the back of its priority class, like any
        other late arrival.  Re-offers do not recount as arrivals.
        """
        now = self.loop.now
        obs_timeline.emit("queue", now, request_id=request.request_id,
                          tenant=request.tenant, reoffer=True)
        admitted, shed = self.admission.offer(request)
        if not admitted:
            self._shed(request, now)
        elif shed is not None:
            self._shed(shed, now)
        self._dispatch()
