"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments`` — list every regenerable table/figure;
* ``run <id> [...]`` — regenerate one or more artifacts and print them;
* ``devices`` — the Table 3 device registry with modelled parameters;
* ``plan <model>`` — deployment feasibility/throughput across devices;
* ``sweep <model> <dataset>`` — test-time-scaling budget sweep;
* ``profile`` — trace a workload, export Perfetto JSON + text report;
* ``bench`` — run the benchmark suite, snapshot it, gate on regressions;
* ``monitor`` — replay a scenario and render timeline/stream/anomaly/
  energy telemetry (schema ``repro.monitor/v1`` with ``--json``);
* ``fleet`` — discrete-event fleet serving simulation with capacity
  planning (schema ``repro.fleet/v1`` with ``--json``);
* ``fuzz`` — seeded differential fuzzing over the oracle registry;
* ``goldens`` — check/update the committed golden fixtures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scaling LLM Test-Time Compute with "
                    "Mobile NPU on Smartphones' (EUROSYS '26)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list regenerable tables/figures")

    run = sub.add_parser("run", help="regenerate artifacts by id")
    run.add_argument("ids", nargs="+", help="experiment ids (e.g. fig15)")

    sub.add_parser("devices", help="show the evaluation device registry")

    plan = sub.add_parser("plan", help="deployment planner for one model")
    plan.add_argument("model", help="model name (e.g. qwen2.5-1.5b)")
    plan.add_argument("--context", type=int, default=4096,
                      help="context budget in tokens")

    sweep = sub.add_parser("sweep", help="test-time-scaling budget sweep")
    sweep.add_argument("model", help="model name (e.g. qwen2.5-1.5b)")
    sweep.add_argument("dataset", choices=["math500", "gsm8k"])
    sweep.add_argument("--method", default="best_of_n",
                       help="scaling method (best_of_n, beam_search, "
                            "self_consistency, weighted_sc, mcts)")
    sweep.add_argument("--budgets", type=int, nargs="+",
                       default=[1, 2, 4, 8, 16])
    sweep.add_argument("--problems", type=int, default=400)

    profile = sub.add_parser(
        "profile",
        help="trace a workload and export a Perfetto JSON + text report")
    profile.add_argument("--workload", choices=["decode", "sweep"],
                         default="decode",
                         help="decode: batched generation on the tiny "
                              "simulator model; sweep: a small TTS budget "
                              "sweep")
    profile.add_argument("--device", default="oneplus_12",
                         help="device key from the Table 3 registry "
                              "(e.g. oneplus_12 for the V75 NPU)")
    profile.add_argument("--batch", type=int, default=8,
                         help="decode batch size / candidate count")
    profile.add_argument("--scheduler", action="store_true",
                         help="decode through the continuous-batching "
                              "scheduler over a paged KV cache (waved "
                              "Best-of-N; --candidates may exceed --batch)")
    profile.add_argument("--candidates", type=int, default=None,
                         help="total candidate count for --scheduler "
                              "(default: 2x batch to show slot backfill)")
    profile.add_argument("--prompt-tokens", type=int, default=8)
    profile.add_argument("--new-tokens", type=int, default=8)
    profile.add_argument("--faults", default=None, metavar="SPEC",
                         help="chaos mode: a deterministic fault plan, e.g. "
                              "'abort@2,alloc@5,throttle@3:efficiency:4' or "
                              "'random:42' (see repro.resilience.FaultPlan); "
                              "requires --scheduler for the decode workload")
    profile.add_argument("--deadline-ms", type=float, default=None,
                         help="per-query wall-clock deadline on the "
                              "simulated timeline; generation degrades to "
                              "best-answer-so-far when exceeded")
    profile.add_argument("--placement", action="store_true",
                         help="print the stage-level backend decision "
                              "table (prefill/decode grids x thermal "
                              "governors) from the Fig. 13 crossover "
                              "models; with --scheduler, also dispatches "
                              "the decode run stage-by-stage")
    profile.add_argument("--trace-out", default="repro_trace.json",
                         help="output path of the chrome://tracing JSON")
    profile.add_argument("--report-out", default=None,
                         help="optional path for the text report "
                              "(printed to stdout regardless)")
    profile.add_argument("--json", default=None, metavar="PATH",
                         dest="json_out",
                         help="emit the report data as structured JSON to "
                              "PATH ('-' for stdout) so profiling runs are "
                              "scriptable")

    bench = sub.add_parser(
        "bench",
        help="run the canonical benchmark scenarios, write a BENCH_<n>.json "
             "snapshot, and/or gate against a baseline")
    bench.add_argument("mode", nargs="?", default="run", choices=["run"],
                       help="run the suite (default)")
    gate = bench.add_mutually_exclusive_group()
    gate.add_argument("--check", action="store_true",
                      help="compare the run against the baseline snapshot "
                           "and exit 2 on regression (writes no history "
                           "snapshot)")
    gate.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline snapshot from this run")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="baseline snapshot path (default: "
                            "benchmarks/baseline.json)")
    bench.add_argument("--only", action="append", default=None,
                       metavar="NAME",
                       help="restrict to one scenario (repeatable); "
                            "--check then gates only those scenarios")
    bench.add_argument("--fast", action="store_true",
                       help="run only the scenarios marked fast")
    bench.add_argument("--device", default=None,
                       help="device key from the Table 3 registry "
                            "(default: oneplus_12)")
    bench.add_argument("--seed", type=int, default=0,
                       help="suite seed recorded in the fingerprint")
    bench.add_argument("--out-dir", default=None, metavar="DIR",
                       help="directory for BENCH_<n>.json history "
                            "snapshots (default: benchmarks/history; "
                            "ignored with --check/--update-baseline)")
    bench.add_argument("--json", default=None, metavar="PATH",
                       dest="json_out",
                       help="also write the snapshot JSON to PATH "
                            "('-' for stdout)")
    bench.add_argument("--markdown", action="store_true",
                       help="render the comparison report as markdown")
    bench.add_argument("--list-scenarios", action="store_true",
                       help="list registered scenarios and exit")
    bench.add_argument("--self-profile", action="store_true",
                       help="run each scenario under cProfile and write a "
                            "top-N cumulative-time table per scenario "
                            "(simulator host-time attribution; never "
                            "gated or fingerprinted)")
    bench.add_argument("--profile-out", default=None, metavar="PATH",
                       help="self-profile artifact path ('-' for stdout; "
                            "default: benchmarks/profile.txt)")

    monitor = sub.add_parser(
        "monitor",
        help="replay a bench scenario with the event log armed and render "
             "windowed streams, per-request timelines, anomalies, and "
             "energy attribution")
    monitor.add_argument("--scenario", default="chaos.waves",
                         help="registered bench scenario to replay "
                              "(default: chaos.waves; see "
                              "'repro bench --list-scenarios')")
    monitor.add_argument("--device", default="oneplus_12",
                         help="device key from the Table 3 registry")
    monitor.add_argument("--seed", type=int, default=0,
                         help="scenario seed; the report is a pure function "
                              "of (scenario, device, seed)")
    monitor.add_argument("--windows", type=int, default=8,
                         help="number of equal sim-time windows to fold the "
                              "run into (ignored with --window-ms)")
    monitor.add_argument("--window-ms", type=float, default=None,
                         help="explicit window width in simulated "
                              "milliseconds")
    monitor.add_argument("--json", default=None, metavar="PATH",
                         dest="json_out",
                         help="write the repro.monitor/v1 report JSON to "
                              "PATH ('-' for stdout); byte-identical "
                              "across replays")
    monitor.add_argument("--trace-out", default=None, metavar="PATH",
                         help="also export a chrome://tracing JSON with "
                              "per-request timeline lanes")
    monitor.add_argument("--min-anomalies", type=int, default=None,
                         metavar="N",
                         help="exit 2 unless at least N anomalies were "
                              "flagged (CI chaos gate)")
    monitor.add_argument("--max-anomalies", type=int, default=None,
                         metavar="N",
                         help="exit 2 if more than N anomalies were "
                              "flagged (CI quiet-scenario gate)")

    explain = sub.add_parser(
        "explain",
        help="replay a bench scenario with the event log armed and "
             "attribute every simulated nanosecond (and joule) of every "
             "request to a critical-path blame phase")
    explain.add_argument("--scenario", default="chaos.waves",
                         help="registered bench scenario to replay "
                              "(default: chaos.waves; see "
                              "'repro bench --list-scenarios')")
    explain.add_argument("--device", default="oneplus_12",
                         help="device key from the Table 3 registry")
    explain.add_argument("--seed", type=int, default=0,
                         help="scenario seed; the report is a pure "
                              "function of (scenario, device, seed)")
    explain.add_argument("--top", type=int, default=5, dest="top_k",
                         help="exemplar slow-request waterfalls to keep "
                              "in the report (default: 5)")
    explain.add_argument("--json", default=None, metavar="PATH",
                         dest="json_out",
                         help="write the repro.explain/v1 report JSON to "
                              "PATH ('-' for stdout); byte-identical "
                              "across replays")
    explain.add_argument("--trace-out", default=None, metavar="PATH",
                         help="also export a chrome://tracing JSON with "
                              "critical-path blame bars overlaid on the "
                              "per-request lanes")

    fleet = sub.add_parser(
        "fleet",
        help="simulate a phone fleet serving a seeded arrival trace and "
             "report latency percentiles plus devices needed at a p99 "
             "token-latency target")
    fleet.add_argument("--devices", type=int, default=100,
                       help="population size; devices round-robin the "
                            "Table 3 registry across NPU generations")
    fleet.add_argument("--qps", type=float, default=10.0,
                       help="mean arrival rate of the load trace")
    fleet.add_argument("--horizon-seconds", type=float, default=60.0,
                       help="trace length in simulated seconds")
    fleet.add_argument("--requests", type=int, default=None, metavar="N",
                       help="cap the trace at N requests (with "
                            "--horizon-seconds, whichever bound hits "
                            "first)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="trace seed; the report is a pure function of "
                            "the flags")
    fleet.add_argument("--pattern", default="poisson",
                       choices=["poisson", "diurnal"],
                       help="arrival process (diurnal swings the rate "
                            "sinusoidally around --qps)")
    fleet.add_argument("--p99-target-ms", type=float, default=250.0,
                       help="p99 token-latency target the capacity plan "
                            "sizes for")
    fleet.add_argument("--queue-depth", type=int, default=64,
                       help="admission-queue bound; overflow sheds the "
                            "worst-priority request")
    fleet.add_argument("--model", default="qwen2.5-1.5b",
                       help="model key served by every device")
    fleet.add_argument("--no-capacity-plan", action="store_true",
                       help="skip the devices-per-QPS capacity search")
    fleet.add_argument("--faults", default="", metavar="SPEC",
                       help="fleet fault plan, e.g. "
                            "'dev#0:crash@2:5,dev#1:straggle@1:3:10,"
                            "dev#2:drop@4,dev#3:battery@6'; adds a chaos "
                            "section to the report")
    fleet.add_argument("--hedge", action="store_true",
                       help="hedge the p99 queue-wait tail onto a second "
                            "device (first completion wins)")
    fleet.add_argument("--explain", action="store_true",
                       help="record the run's timeline and add the "
                            "critical-path blame section (per-phase "
                            "nanosecond ledger, p50/p99 cohorts) to the "
                            "report; enforces offered == explained")
    fleet.add_argument("--json", default=None, metavar="PATH",
                       dest="json_out",
                       help="write the repro.fleet/v1 report JSON to PATH "
                            "('-' for stdout); byte-identical across "
                            "replays")

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded differential fuzzing over the registered oracles")
    fuzz.add_argument("--trials", type=int, default=100,
                      help="number of random configurations to run")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed; trial i derives its own RNG from "
                           "(seed, i), so sweeps are reproducible")
    fuzz.add_argument("--oracle", action="append", default=None,
                      metavar="NAME",
                      help="restrict to one oracle (repeatable); "
                           "default: all registered oracles")
    fuzz.add_argument("--replay", default=None, metavar="REPRO",
                      help="replay one canonical repro string (e.g. "
                           "'paged_kv::batch=4,block_size=3,...') instead "
                           "of fuzzing")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures without minimizing them")
    fuzz.add_argument("--list-oracles", action="store_true",
                      help="list registered oracles and exit")

    goldens = sub.add_parser(
        "goldens",
        help="check or update the committed golden fixtures")
    mode = goldens.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true", default=True,
                      help="regenerate every case and diff against the "
                           "committed fixture (default)")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the fixtures from the current "
                           "implementation")
    goldens.add_argument("--only", default=None, metavar="CASE",
                         help="restrict to one golden case")
    goldens.add_argument("--dir", default=None, metavar="PATH",
                         help="fixture directory (default: the committed "
                              "src/repro/testing/_goldens)")
    return parser


def _cmd_experiments(out) -> int:
    from .harness import EXPERIMENTS
    for eid, runner in EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        out.write(f"{eid:<8s} {summary}\n")
    return 0


def _cmd_run(ids: List[str], out) -> int:
    from .errors import HarnessError
    from .harness import run_experiment
    status = 0
    for eid in ids:
        try:
            result = run_experiment(eid)
        except HarnessError as error:
            out.write(f"error: {error}\n")
            status = 2
            continue
        out.write(result.render() + "\n\n")
    return status


def _cmd_devices(out) -> int:
    from .harness.tables import run_table3
    out.write(run_table3().render() + "\n")
    return 0


def _cmd_plan(model: str, context: int, out) -> int:
    from .errors import AddressSpaceError, ModelConfigError
    from .harness.report import render_table
    from .llm import get_model_config
    from .npu import DEVICES
    from .perf import DecodePerformanceModel, MemoryModel, PowerModel

    try:
        config = get_model_config(model)
    except ModelConfigError as error:
        out.write(f"error: {error}\n")
        return 2
    rows = []
    for device in DEVICES.values():
        heap = device.rpcmem_heap()
        try:
            heap.alloc(config.npu_session_bytes(context), name="session")
        except AddressSpaceError:
            rows.append([device.short_name, "-", "-", "-",
                         "no: NPU VA space"])
            continue
        perf = DecodePerformanceModel(config, device)
        power = PowerModel(config, device)
        memory = MemoryModel(config, device, context)
        rows.append([
            device.short_name,
            round(perf.decode_throughput(8, 1024), 1),
            round(power.sample(8).power_w, 2),
            round(memory.dmabuf_bytes() / 2**20),
            "yes",
        ])
    out.write(render_table(
        f"{config.name} deployment (batch 8, context budget {context})",
        ["device", "decode tok/s", "power (W)", "dmabuf (MiB)", "fits"],
        rows) + "\n")
    return 0


def _cmd_sweep(model: str, dataset: str, method: str, budgets: List[int],
               problems: int, out) -> int:
    from .errors import ScalingError
    from .harness.report import render_table
    from .tts import TaskDataset, budget_sweep, get_model_profile

    try:
        profile = get_model_profile(model)
        data = TaskDataset.generate(dataset, problems, seed=0)
        curve = budget_sweep(method, data, profile, budgets=budgets, seed=0)
    except ScalingError as error:
        out.write(f"error: {error}\n")
        return 2
    rows = [[budget, round(100 * acc, 1), round(tokens)]
            for budget, acc, tokens in zip(curve.budgets, curve.accuracies,
                                           curve.tokens_per_problem)]
    out.write(render_table(
        f"{method} on {dataset} — {model} ({problems} problems)",
        ["budget N", "accuracy (%)", "tokens/problem"], rows) + "\n")
    return 0


def _cmd_profile(workload: str, device_key: str, batch: int,
                 prompt_tokens: int, new_tokens: int, trace_out: str,
                 report_out: Optional[str], out, scheduler: bool = False,
                 candidates: Optional[int] = None,
                 faults: Optional[str] = None,
                 deadline_ms: Optional[float] = None,
                 json_out: Optional[str] = None,
                 placement: bool = False) -> int:
    import json

    from .errors import ObservabilityError, ReproError
    from .harness.report import render_metrics
    from .npu import DEVICES
    from .npu.timing import TimingModel
    from .obs import (
        MetricsRegistry,
        Tracer,
        engine_utilization,
        get_metrics,
        get_tracer,
        report_data,
        set_metrics,
        set_tracer,
        text_report,
        write_chrome_trace,
    )

    if device_key not in DEVICES:
        out.write(f"error: unknown device {device_key!r}; "
                  f"known: {sorted(DEVICES)}\n")
        return 2
    device = DEVICES[device_key]
    timing = TimingModel(device.npu)

    placement_rows = None
    if placement:
        from .llm.config import get_model_config
        from .llm.dispatch import BackendSelector

        # the crossover table is reported for the paper's 3B model —
        # the tiny simulator config the run itself uses is GPU-won
        # everywhere and would hide the Fig. 13 structure
        table_selector = BackendSelector(device,
                                         get_model_config("qwen2.5-3b"))
        out.write(f"== stage-level placement ({device_key} / "
                  f"qwen2.5-3b) ==\n")
        placement_rows = []
        for governor in ("performance", "balanced", "efficiency"):
            cross = table_selector.crossover_batch(governor=governor)
            out.write(f"governor {governor}: NPU wins decode from "
                      f"batch {cross}\n")
            for row in table_selector.decision_table(governor):
                out.write(f"  {row.stage:<8s} size {row.size:>5d} -> "
                          f"{row.backend:<4s} "
                          f"({row.latency_seconds * 1e3:9.4f} ms)\n")
                placement_rows.append({
                    "governor": governor, "stage": row.stage,
                    "size": row.size, "backend": row.backend,
                    "latency_seconds": row.latency_seconds})
        out.write("\n")

    fault_plan = None
    if faults is not None:
        from .resilience import FaultPlan
        fault_plan = FaultPlan.parse(faults)
    if (fault_plan is not None or deadline_ms is not None) and not (
            workload == "decode" and scheduler):
        if workload == "decode":
            out.write("error: --faults/--deadline-ms on the decode workload "
                      "require --scheduler (recovery lives in the "
                      "continuous-batching scheduler)\n")
            return 2
        if deadline_ms is not None:
            out.write("error: --deadline-ms only applies to the decode "
                      "workload (the sweep path is in decode-step units)\n")
            return 2

    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    prev_tracer, prev_metrics = get_tracer(), get_metrics()
    set_tracer(tracer)
    set_metrics(registry)
    try:
        if workload == "decode":
            from .llm import (
                ContinuousBatchingScheduler,
                InferenceEngine,
                NPUTransformer,
                TransformerWeights,
            )
            from .llm.config import tiny_config

            config = tiny_config()
            weights = TransformerWeights.generate(config, seed=0)
            model = NPUTransformer(weights)
            engine = InferenceEngine(
                model, batch=batch,
                max_context=prompt_tokens + new_tokens + 1, device=device,
                kv_backend="paged" if scheduler else "contiguous")
            if scheduler:
                n_candidates = candidates if candidates is not None \
                    else 2 * batch
                sched = ContinuousBatchingScheduler(engine)
                dispatch = None
                if placement:
                    from .llm.dispatch import BackendSelector
                    dispatch = BackendSelector(device, config)
                result = sched.generate(
                    list(range(1, prompt_tokens + 1)),
                    n_candidates=n_candidates,
                    max_new_tokens=new_tokens,
                    fault_plan=fault_plan,
                    dispatch=dispatch,
                    deadline_seconds=(deadline_ms / 1e3
                                      if deadline_ms is not None else None))
                out.write(
                    f"scheduled {result.total_generated_tokens} tokens "
                    f"across {n_candidates} candidates on batch {batch} "
                    f"({result.n_steps} steps, mean live batch "
                    f"{result.mean_live_batch:.2f}, "
                    f"{result.n_admissions} admissions, "
                    f"{result.cow_copies} CoW copies, "
                    f"peak KV {result.peak_kv_bytes} B, "
                    f"{result.sim_seconds * 1e3:.3f} ms simulated)\n")
                if dispatch is not None:
                    backends = sorted({b for _, b in result.backend_steps})
                    out.write(
                        f"placement: decode on {'/'.join(backends)}, "
                        f"{result.n_backend_switches} backend switches, "
                        f"{result.migration_seconds * 1e3:.3f} ms "
                        f"migrating KV\n")
                if fault_plan is not None or deadline_ms is not None:
                    kind_counts: dict = {}
                    for record in result.faults:
                        kind_counts[record.kind] = (
                            kind_counts.get(record.kind, 0) + 1)
                    kinds = ", ".join(
                        f"{k}={v}" for k, v in sorted(kind_counts.items())
                    ) or "none"
                    out.write(
                        f"chaos: faults [{kinds}], {result.n_retries} "
                        f"retries, {result.n_evictions} evictions, "
                        f"{result.n_rebuilds} KV rebuilds "
                        f"({result.rebuilt_tokens} tokens), "
                        f"{len(result.governor_steps)} governor changes, "
                        f"deadline hit: {result.deadline_hit}, "
                        f"degraded: {result.degraded}\n")
            else:
                result = engine.generate(list(range(1, prompt_tokens + 1)),
                                         max_new_tokens=new_tokens)
                out.write(f"generated {result.total_generated_tokens} tokens "
                          f"across {batch} candidates "
                          f"({result.n_decode_steps} decode steps)\n")
        else:
            from .tts import TaskDataset, budget_sweep, get_model_profile

            profile = get_model_profile("qwen2.5-1.5b")
            data = TaskDataset.generate("math500", 50, seed=0)
            budget_sweep("best_of_n", data, profile, budgets=[1, 2, 4],
                         seed=0, engine_batch=batch if scheduler else None,
                         fault_plan=fault_plan)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)

    trace = write_chrome_trace(trace_out, tracer, timing=timing,
                               process_name=f"repro profile ({device_key})")
    report = text_report(tracer, timing=timing, metrics=registry)
    if report_out is not None:
        with open(report_out, "w") as handle:
            handle.write(report)
    out.write(report)
    if json_out is not None:
        data = report_data(tracer, timing=timing, metrics=registry)
        data["workload"] = ("scheduler" if workload == "decode" and scheduler
                            else workload)
        data["device"] = device_key
        if placement_rows is not None:
            data["placement"] = placement_rows
        if json_out == "-":
            out.write(json.dumps(data, indent=2, sort_keys=True) + "\n")
        else:
            with open(json_out, "w") as handle:
                json.dump(data, handle, indent=2, sort_keys=True)
                handle.write("\n")
            out.write(f"profile JSON written to {json_out}\n")
    try:
        util = engine_utilization(trace)
    except ObservabilityError:
        # the sweep workload traces control flow, not kernel costs
        util = None
    if util is not None:
        out.write("\n== simulated engine utilization ==\n")
        for lane, fraction in util.items():
            out.write(f"{lane:<4s} busy {100 * fraction:5.1f}%  "
                      f"idle {100 * (1 - fraction):5.1f}%\n")
    snapshot = registry.snapshot()
    if snapshot:
        out.write("\n" + render_metrics(snapshot) + "\n")
    out.write(f"\ntrace written to {trace_out} "
              f"({len(trace['traceEvents'])} events); open in "
              f"https://ui.perfetto.dev\n")
    return 0


def _cmd_bench(check: bool, update_baseline: bool, baseline: Optional[str],
               only, fast: bool, device: Optional[str], seed: int,
               out_dir: Optional[str], json_out: Optional[str],
               markdown: bool, list_scenarios: bool, out,
               self_profile: bool = False,
               profile_out: Optional[str] = None) -> int:
    import json
    import os

    from .obs.bench import (
        DEFAULT_BASELINE_PATH,
        DEFAULT_DEVICE,
        SCENARIOS,
        BenchError,
        BenchSnapshot,
        compare_snapshots,
        next_snapshot_path,
        render_profile_table,
        run_suite,
    )

    if list_scenarios:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            tag = "fast" if scenario.fast else "slow"
            out.write(f"{name:<20s} [{tag}] {scenario.description}\n")
        return 0

    baseline_path = baseline if baseline is not None else DEFAULT_BASELINE_PATH
    device_key = device if device is not None else DEFAULT_DEVICE
    snapshot = run_suite(only=only, device_key=device_key, seed=seed,
                         fast_only=fast, self_profile=self_profile)
    if self_profile:
        table = render_profile_table(snapshot.profiles or {})
        if profile_out == "-":
            out.write(table)
        else:
            path = profile_out if profile_out is not None \
                else os.path.join("benchmarks", "profile.txt")
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(path, "w") as handle:
                handle.write(table)
            out.write(f"self-profile written to {path}\n")
    out.write(f"ran {len(snapshot.records)} scenario(s) on {device_key} "
              f"(seed {seed}, git {snapshot.fingerprint['git_sha'][:12]})\n")
    for name in sorted(snapshot.records):
        metrics = snapshot.records[name].metrics
        sim = metrics.get("sim_seconds")
        tput = metrics.get("tokens_per_second")
        parts = [f"  {name:<20s}"]
        if sim is not None:
            parts.append(f"sim {sim * 1e3:9.3f} ms")
        if tput is not None:
            parts.append(f"{tput:12.1f} tok/s")
        out.write(" ".join(parts) + "\n")

    if json_out is not None:
        if json_out == "-":
            out.write(json.dumps(snapshot.to_json(), indent=2,
                                 sort_keys=True) + "\n")
        else:
            snapshot.write(json_out)
            out.write(f"snapshot written to {json_out}\n")

    if update_baseline:
        os.makedirs(os.path.dirname(baseline_path) or ".", exist_ok=True)
        snapshot.write(baseline_path)
        out.write(f"baseline updated: {baseline_path}\n")
        return 0

    if check:
        try:
            base = BenchSnapshot.load(baseline_path)
        except BenchError as error:
            out.write(f"error: {error}\n")
            out.write("hint: seed a baseline with "
                      "'repro bench --update-baseline'\n")
            return 2
        report = compare_snapshots(base, snapshot)
        out.write("\n" + report.render(markdown=markdown) + "\n")
        return 0 if report.ok else 2

    # plain run: append the snapshot to the bench history
    history_dir = out_dir if out_dir is not None \
        else os.path.join("benchmarks", "history")
    path = snapshot.write(next_snapshot_path(history_dir))
    out.write(f"snapshot written to {path}\n")
    return 0


def _cmd_monitor(scenario: str, device: str, seed: int, windows: int,
                 window_ms: Optional[float], json_out: Optional[str],
                 trace_out: Optional[str], min_anomalies: Optional[int],
                 max_anomalies: Optional[int], out) -> int:
    from .errors import ReproError
    from .obs.monitor import run_monitor

    try:
        report = run_monitor(
            scenario, device_key=device, seed=seed, n_windows=windows,
            window_seconds=(window_ms / 1e3 if window_ms is not None
                            else None))
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2

    out.write(report.render())
    if json_out is not None:
        if json_out == "-":
            out.write(report.to_json_text())
        else:
            with open(json_out, "w") as handle:
                handle.write(report.to_json_text())
            out.write(f"monitor JSON written to {json_out}\n")
    if trace_out is not None:
        from .obs import write_chrome_trace
        trace = write_chrome_trace(
            trace_out, report.tracer, timing=report.timing,
            events=report.log,
            process_name=f"repro monitor ({scenario} on {device})")
        out.write(f"trace written to {trace_out} "
                  f"({len(trace['traceEvents'])} events); open in "
                  f"https://ui.perfetto.dev\n")

    n_anomalies = len(report.anomalies)
    if min_anomalies is not None and n_anomalies < min_anomalies:
        out.write(f"error: expected >= {min_anomalies} anomalies, "
                  f"detected {n_anomalies}\n")
        return 2
    if max_anomalies is not None and n_anomalies > max_anomalies:
        out.write(f"error: expected <= {max_anomalies} anomalies, "
                  f"detected {n_anomalies}\n")
        return 2
    return 0


def _cmd_explain(scenario: str, device: str, seed: int, top_k: int,
                 json_out: Optional[str], trace_out: Optional[str],
                 out) -> int:
    from .errors import ReproError
    from .obs.blame import run_explain

    try:
        report = run_explain(scenario, device_key=device, seed=seed,
                             top_k=top_k)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2

    out.write(report.render(top_k=top_k))
    if json_out is not None:
        if json_out == "-":
            out.write(report.to_json_text())
        else:
            with open(json_out, "w") as handle:
                handle.write(report.to_json_text())
            out.write(f"explain JSON written to {json_out}\n")
    if trace_out is not None:
        from .obs import write_chrome_trace
        trace = write_chrome_trace(
            trace_out, report.tracer, timing=report.timing,
            events=report.log, critical_paths=report.critical_paths(),
            process_name=f"repro explain ({scenario} on {device})")
        out.write(f"trace written to {trace_out} "
                  f"({len(trace['traceEvents'])} events); open in "
                  f"https://ui.perfetto.dev\n")
    if report.lifecycle_problems:
        out.write(f"error: {len(report.lifecycle_problems)} lifecycle "
                  "problem(s) in the recorded timeline\n")
        return 2
    return 0


def _cmd_fleet(devices: int, qps: float, horizon_seconds: float,
               max_requests: Optional[int], seed: int, pattern: str,
               p99_target_ms: float, queue_depth: int, model: str,
               no_capacity_plan: bool, faults: str, hedge: bool,
               json_out: Optional[str], out, explain: bool = False) -> int:
    from .errors import ReproError
    from .fleet import run_fleet

    try:
        report = run_fleet(
            devices, qps, horizon_seconds=horizon_seconds,
            max_requests=max_requests, seed=seed, pattern=pattern,
            queue_depth=queue_depth, p99_target_ms=p99_target_ms,
            model_name=model, with_capacity_plan=not no_capacity_plan,
            fault_spec=faults, hedge=hedge, explain=explain)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2

    out.write(report.render())
    if json_out is not None:
        if json_out == "-":
            out.write(report.to_json_text())
        else:
            with open(json_out, "w") as handle:
                handle.write(report.to_json_text())
            out.write(f"fleet JSON written to {json_out}\n")
    return 0


def _cmd_fuzz(trials: int, seed: int, oracle_names, replay, shrink: bool,
              list_oracles: bool, out) -> int:
    from .testing import ORACLES, fuzz, run_repro

    if list_oracles:
        for name in sorted(ORACLES):
            out.write(f"{name:<12s} {ORACLES[name].description}\n")
        return 0
    if replay is not None:
        result = run_repro(replay)
        out.write(f"replay {result.repro}\n")
        if result.notes:
            notes = ", ".join(f"{k}={v:g}"
                              for k, v in sorted(result.notes.items()))
            out.write(f"notes: {notes}\n")
        if result.ok:
            out.write("PASS\n")
            return 0
        out.write(f"FAIL {result.mismatch.kind}: "
                  f"{result.mismatch.message}\n")
        if result.mismatch.diff is not None:
            out.write(f"diff: {result.mismatch.diff.to_json()}\n")
        return 1
    report = fuzz(trials, seed=seed, oracles=oracle_names, shrink=shrink)
    out.write(report.render() + "\n")
    return 0 if report.ok else 1


def _cmd_goldens(update: bool, only, directory, out) -> int:
    from .testing import check_goldens, update_goldens

    if update:
        for path in update_goldens(directory=directory, only=only):
            out.write(f"wrote {path}\n")
        return 0
    mismatches = check_goldens(directory=directory, only=only)
    if not mismatches:
        from .testing import GOLDEN_CASES
        n = 1 if only is not None else len(GOLDEN_CASES)
        out.write(f"goldens ok ({n} case{'s' if n != 1 else ''})\n")
        return 0
    for mismatch in mismatches:
        out.write(f"MISMATCH {mismatch.case}: {mismatch.message}\n")
        out.write(f"  fixture: {mismatch.path}\n")
    out.write(f"{len(mismatches)} golden mismatch(es); run "
              "'repro goldens --update' if the change is intentional\n")
    return 1


def _dispatch(args, out) -> int:
    if args.command == "experiments":
        return _cmd_experiments(out)
    if args.command == "run":
        return _cmd_run(args.ids, out)
    if args.command == "devices":
        return _cmd_devices(out)
    if args.command == "plan":
        return _cmd_plan(args.model, args.context, out)
    if args.command == "sweep":
        return _cmd_sweep(args.model, args.dataset, args.method,
                          args.budgets, args.problems, out)
    if args.command == "profile":
        return _cmd_profile(args.workload, args.device, args.batch,
                            args.prompt_tokens, args.new_tokens,
                            args.trace_out, args.report_out, out,
                            scheduler=args.scheduler,
                            candidates=args.candidates,
                            faults=args.faults,
                            deadline_ms=args.deadline_ms,
                            json_out=args.json_out,
                            placement=args.placement)
    if args.command == "bench":
        return _cmd_bench(args.check, args.update_baseline, args.baseline,
                          args.only, args.fast, args.device, args.seed,
                          args.out_dir, args.json_out, args.markdown,
                          args.list_scenarios, out,
                          self_profile=args.self_profile,
                          profile_out=args.profile_out)
    if args.command == "monitor":
        return _cmd_monitor(args.scenario, args.device, args.seed,
                            args.windows, args.window_ms, args.json_out,
                            args.trace_out, args.min_anomalies,
                            args.max_anomalies, out)
    if args.command == "explain":
        return _cmd_explain(args.scenario, args.device, args.seed,
                            args.top_k, args.json_out, args.trace_out, out)
    if args.command == "fleet":
        return _cmd_fleet(args.devices, args.qps, args.horizon_seconds,
                          args.requests, args.seed, args.pattern,
                          args.p99_target_ms, args.queue_depth, args.model,
                          args.no_capacity_plan, args.faults, args.hedge,
                          args.json_out, out, explain=args.explain)
    if args.command == "fuzz":
        return _cmd_fuzz(args.trials, args.seed, args.oracle, args.replay,
                         not args.no_shrink, args.list_oracles, out)
    if args.command == "goldens":
        return _cmd_goldens(args.update, args.only, args.dir, out)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    from .errors import ReproError
    try:
        return _dispatch(args, out)
    except ReproError as error:
        # commands catch the errors they can explain; anything that
        # escapes (a malformed fault spec, an infeasible plan) still
        # exits with one line instead of a traceback
        out.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
