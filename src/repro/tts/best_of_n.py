"""Best-of-N selection (Fig. 1 left, §2.1).

Generate N independent complete solutions per problem, score each with
the outcome reward model, and answer with the highest-scoring sample.
With a perfect verifier this attains pass@N; with a noisy verifier the
gap to pass@N is the selection regret the reward model's AUC controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ScalingError
from ..llm.scheduler import plan_waves
from ..obs import trace as obs_trace
from .reward import RewardModel
from .tasks import ModelProfile, SampledSolution, TaskDataset, sample_solutions

__all__ = ["BestOfNResult", "best_of_n_single", "evaluate_best_of_n"]


@dataclass
class BestOfNResult:
    """Aggregate outcome of a Best-of-N evaluation."""

    dataset: str
    model: str
    budget: int
    accuracy: float
    oracle_accuracy: float     # pass@N with a perfect verifier
    mean_tokens_per_problem: float
    # set when the budget is routed through the continuous-batching
    # scheduler (engine_batch given): decode-step makespans summed over
    # problems, per the two batching disciplines of ``plan_waves``.
    engine_batch: Optional[int] = None
    scheduled_decode_steps: int = 0
    lockstep_decode_steps: int = 0

    @property
    def scheduler_speedup(self) -> float:
        """Lock-step / continuous makespan ratio (1.0 when not routed)."""
        if self.scheduled_decode_steps == 0:
            return 1.0
        return self.lockstep_decode_steps / self.scheduled_decode_steps


def best_of_n_single(solutions: Sequence[SampledSolution],
                     reward: RewardModel) -> SampledSolution:
    """Select the highest-scoring completed solution."""
    if not solutions:
        raise ScalingError("Best-of-N needs at least one solution")
    scores = reward.outcome_scores(solutions)
    return solutions[int(np.argmax(scores))]


def evaluate_best_of_n(dataset: TaskDataset, profile: ModelProfile,
                       budget: int, reward: Optional[RewardModel] = None,
                       seed: int = 0,
                       engine_batch: Optional[int] = None) -> BestOfNResult:
    """Run Best-of-N over a dataset and report selection accuracy.

    ``budget`` is the number of parallel samples N — the decode batch
    size on the NPU.  ``budget == 1`` degenerates to conventional
    single-sample decoding (the "base" markers of Fig. 10).

    ``engine_batch`` routes budgets larger than the physical decode
    batch through the continuous-batching discipline: each problem's
    sampled solution lengths are wave-planned (:func:`plan_waves`) and
    the makespans accumulated on the result.  The sampling RNG stream
    is untouched, so accuracy is bit-identical with or without routing.
    """
    if budget <= 0:
        raise ScalingError(f"budget must be positive, got {budget}")
    if engine_batch is not None and engine_batch <= 0:
        raise ScalingError(
            f"engine_batch must be positive, got {engine_batch}")
    reward = reward if reward is not None else RewardModel(seed=seed + 1)
    rng = np.random.default_rng(seed)
    probabilities = profile.solve_probabilities(dataset)
    tokens_per_step = dataset.profile.tokens_per_step

    n_correct = 0
    n_oracle = 0
    total_tokens = 0
    scheduled_steps = 0
    lockstep_steps = 0
    for problem, p in zip(dataset.problems, probabilities):
        with obs_trace.span("tts.best_of_n.problem", category="tts",
                            problem=problem.problem_id,
                            n_candidates=budget) as sp:
            solutions = sample_solutions(problem, float(p), budget, rng,
                                         tokens_per_step=tokens_per_step)
            problem_tokens = sum(s.n_tokens for s in solutions)
            total_tokens += problem_tokens
            if any(s.correct for s in solutions):
                n_oracle += 1
            chosen = best_of_n_single(solutions, reward)
            if chosen.correct:
                n_correct += 1
            sp.set(tokens=problem_tokens, correct=chosen.correct)
            if engine_batch is not None:
                plan = plan_waves([s.n_tokens for s in solutions],
                                  batch=engine_batch)
                scheduled_steps += plan.continuous_steps
                lockstep_steps += plan.lockstep_steps
                sp.set(scheduled_steps=plan.continuous_steps,
                       lockstep_steps=plan.lockstep_steps)
    n = len(dataset.problems)
    return BestOfNResult(dataset=dataset.name, model=profile.name, budget=budget,
                         accuracy=n_correct / n, oracle_accuracy=n_oracle / n,
                         mean_tokens_per_problem=total_tokens / n,
                         engine_batch=engine_batch,
                         scheduled_decode_steps=scheduled_steps,
                         lockstep_decode_steps=lockstep_steps)
