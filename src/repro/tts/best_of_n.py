"""Best-of-N selection (Fig. 1 left, §2.1).

Generate N independent complete solutions per problem, score each with
the outcome reward model, and answer with the highest-scoring sample.
With a perfect verifier this attains pass@N; with a noisy verifier the
gap to pass@N is the selection regret the reward model's AUC controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ScalingError
from ..llm.scheduler import plan_waves
from ..obs import trace as obs_trace
from ..resilience.faults import FaultPlan
from ..resilience.recovery import degraded_schedule
from .reward import RewardModel
from .tasks import ModelProfile, SampledSolution, TaskDataset, sample_solutions

__all__ = ["BestOfNResult", "best_of_n_single", "evaluate_best_of_n"]


@dataclass
class BestOfNResult:
    """Aggregate outcome of a Best-of-N evaluation."""

    dataset: str
    model: str
    budget: int
    accuracy: float
    oracle_accuracy: float     # pass@N with a perfect verifier
    mean_tokens_per_problem: float
    # set when the budget is routed through the continuous-batching
    # scheduler (engine_batch given): decode-step makespans summed over
    # problems, per the two batching disciplines of ``plan_waves``.
    engine_batch: Optional[int] = None
    scheduled_decode_steps: int = 0
    lockstep_decode_steps: int = 0
    # chaos mode (fault_plan and/or deadline_steps given): selection
    # runs over the candidates that survive the faulted schedule
    fault_spec: Optional[str] = None
    deadline_steps: Optional[float] = None
    n_dropped_candidates: int = 0
    deadline_hits: int = 0
    degraded_problems: int = 0
    degraded_decode_steps: float = 0.0
    fault_retry_steps: float = 0.0
    throttled_steps: int = 0

    @property
    def scheduler_speedup(self) -> float:
        """Lock-step / continuous makespan ratio (1.0 when not routed)."""
        if self.scheduled_decode_steps == 0:
            return 1.0
        return self.lockstep_decode_steps / self.scheduled_decode_steps

    @property
    def degraded(self) -> bool:
        """True when any problem's candidate set was reduced by chaos."""
        return bool(self.n_dropped_candidates or self.deadline_hits
                    or self.degraded_problems)


def best_of_n_single(solutions: Sequence[SampledSolution],
                     reward: RewardModel) -> SampledSolution:
    """Select the highest-scoring completed solution."""
    if not solutions:
        raise ScalingError("Best-of-N needs at least one solution")
    scores = reward.outcome_scores(solutions)
    return solutions[int(np.argmax(scores))]


def evaluate_best_of_n(dataset: TaskDataset, profile: ModelProfile,
                       budget: int, reward: Optional[RewardModel] = None,
                       seed: int = 0,
                       engine_batch: Optional[int] = None,
                       fault_plan: Optional[FaultPlan] = None,
                       deadline_steps: Optional[float] = None
                       ) -> BestOfNResult:
    """Run Best-of-N over a dataset and report selection accuracy.

    ``budget`` is the number of parallel samples N — the decode batch
    size on the NPU.  ``budget == 1`` degenerates to conventional
    single-sample decoding (the "base" markers of Fig. 10).

    ``engine_batch`` routes budgets larger than the physical decode
    batch through the continuous-batching discipline: each problem's
    sampled solution lengths are wave-planned (:func:`plan_waves`) and
    the makespans accumulated on the result.  The sampling RNG stream
    is untouched, so accuracy is bit-identical with or without routing.

    ``fault_plan`` / ``deadline_steps`` apply chaos-mode degradation:
    each problem's wave schedule is replayed under the plan
    (:func:`~repro.resilience.recovery.degraded_schedule` — the plan
    applies to *every* problem's decode, modelling a persistently faulty
    NPU), evicted and deadline-dropped candidates are excluded from the
    reward pass, and selection runs over the survivors (at least one per
    problem, so an answer is always returned).  The sampling RNG stream
    is untouched; when no candidate is dropped the reward stream is also
    untouched, so an empty plan with no deadline is bitwise identical to
    the non-chaos path.
    """
    if budget <= 0:
        raise ScalingError(f"budget must be positive, got {budget}")
    if engine_batch is not None and engine_batch <= 0:
        raise ScalingError(
            f"engine_batch must be positive, got {engine_batch}")
    chaos = ((fault_plan is not None and len(fault_plan) > 0)
             or deadline_steps is not None)
    chaos_batch = engine_batch if engine_batch is not None else budget
    reward = reward if reward is not None else RewardModel(seed=seed + 1)
    rng = np.random.default_rng(seed)
    probabilities = profile.solve_probabilities(dataset)
    tokens_per_step = dataset.profile.tokens_per_step

    n_correct = 0
    n_oracle = 0
    total_tokens = 0
    scheduled_steps = 0
    lockstep_steps = 0
    n_dropped = 0
    deadline_hits = 0
    degraded_problems = 0
    degraded_steps = 0.0
    retry_steps = 0.0
    throttled = 0
    for problem, p in zip(dataset.problems, probabilities):
        with obs_trace.span("tts.best_of_n.problem", category="tts",
                            problem=problem.problem_id,
                            n_candidates=budget) as sp:
            solutions = sample_solutions(problem, float(p), budget, rng,
                                         tokens_per_step=tokens_per_step)
            problem_tokens = sum(s.n_tokens for s in solutions)
            total_tokens += problem_tokens
            pool = solutions
            if chaos:
                schedule = degraded_schedule(
                    [s.n_tokens for s in solutions], batch=chaos_batch,
                    plan=fault_plan, deadline_steps=deadline_steps)
                pool = [solutions[i] for i in schedule.survivors]
                n_dropped += len(solutions) - len(pool)
                deadline_hits += int(schedule.n_deadline_dropped > 0)
                degraded_problems += int(schedule.degraded)
                degraded_steps += schedule.makespan_steps
                retry_steps += schedule.n_retry_steps
                throttled += schedule.throttled_steps
                if schedule.degraded and obs_trace.enabled():
                    with obs_trace.span(
                            "resilience.tts_degrade", category="resilience",
                            problem=problem.problem_id,
                            survivors=len(pool),
                            evicted=schedule.n_evicted,
                            deadline_dropped=schedule.n_deadline_dropped,
                            makespan_steps=schedule.makespan_steps):
                        pass
            if any(s.correct for s in pool):
                n_oracle += 1
            chosen = best_of_n_single(pool, reward)
            if chosen.correct:
                n_correct += 1
            sp.set(tokens=problem_tokens, correct=chosen.correct)
            if engine_batch is not None:
                plan = plan_waves([s.n_tokens for s in solutions],
                                  batch=engine_batch)
                scheduled_steps += plan.continuous_steps
                lockstep_steps += plan.lockstep_steps
                sp.set(scheduled_steps=plan.continuous_steps,
                       lockstep_steps=plan.lockstep_steps)
    n = len(dataset.problems)
    return BestOfNResult(dataset=dataset.name, model=profile.name, budget=budget,
                         accuracy=n_correct / n, oracle_accuracy=n_oracle / n,
                         mean_tokens_per_problem=total_tokens / n,
                         engine_batch=engine_batch,
                         scheduled_decode_steps=scheduled_steps,
                         lockstep_decode_steps=lockstep_steps,
                         fault_spec=(fault_plan.spec() if chaos
                                     and fault_plan is not None else None),
                         deadline_steps=deadline_steps if chaos else None,
                         n_dropped_candidates=n_dropped,
                         deadline_hits=deadline_hits,
                         degraded_problems=degraded_problems,
                         degraded_decode_steps=degraded_steps,
                         fault_retry_steps=retry_steps,
                         throttled_steps=throttled)
