"""Step-level Beam Search with a process reward model (Fig. 1 right, §2.1).

The lookahead-free beam search the paper runs on device: maintain ``W``
beams; at each reasoning step expand every live beam into ``N / W``
continuations (``N`` is the parallel budget — the decode batch size),
score each prefix with the PRM, and keep the top ``W``.  Wrong prefixes
get pruned early, which is how beam search converts the same batch
budget into higher accuracy than Best-of-N on hard problems.

Chain dynamics: a continuation of an error-free prefix stays correct for
one more step with probability ``p ** (1 / n_steps)`` (so a single
unguided rollout solves the problem with probability exactly ``p``,
matching the Best-of-N sampling model); an erroneous prefix never
recovers — the monotone-error assumption process rewards rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..errors import ScalingError
from .reward import RewardModel
from .tasks import (
    ModelProfile,
    ReasoningProblem,
    SampledSolution,
    TaskDataset,
    _wrong_answer,
)

__all__ = ["BeamSearchResult", "beam_search_single", "evaluate_beam_search"]


@dataclass
class BeamSearchResult:
    dataset: str
    model: str
    budget: int
    beam_width: int
    accuracy: float
    mean_tokens_per_problem: float


@dataclass(frozen=True)
class _Candidate:
    """A partial reasoning chain inside the beam."""

    first_error_step: int   # n_steps if error-free so far
    steps_done: int

    def as_solution(self, problem: ReasoningProblem) -> SampledSolution:
        correct = self.first_error_step >= problem.n_steps
        return SampledSolution(
            answer=problem.answer if correct else -1, correct=correct,
            first_error_step=self.first_error_step, n_steps=problem.n_steps,
            n_tokens=0)


def beam_search_single(problem: ReasoningProblem, solve_probability: float,
                       budget: int, beam_width: int, reward: RewardModel,
                       rng: np.random.Generator) -> "tuple[bool, int]":
    """Run one beam search; returns (answered correctly, tokens generated)."""
    if budget <= 0 or beam_width <= 0 or beam_width > budget:
        raise ScalingError(
            f"invalid beam geometry: budget {budget}, width {beam_width}")
    expansion = max(1, budget // beam_width)
    step_success = float(solve_probability) ** (1.0 / problem.n_steps)

    beams: List[_Candidate] = [_Candidate(first_error_step=problem.n_steps,
                                          steps_done=0)] * beam_width
    tokens = 0
    for step in range(1, problem.n_steps + 1):
        candidates: List[_Candidate] = []
        scores: List[float] = []
        for beam in beams:
            for _ in range(expansion):
                if beam.first_error_step >= step:  # prefix error-free so far
                    ok = bool(rng.random() < step_success)
                    first_error = problem.n_steps if ok else step - 1
                else:
                    first_error = beam.first_error_step
                cand = _Candidate(first_error_step=first_error, steps_done=step)
                candidates.append(cand)
                scores.append(reward.prefix_score(cand.as_solution(problem), step))
        tokens += len(candidates) * 60
        order = np.argsort(scores)[::-1]
        beams = [candidates[int(i)] for i in order[:beam_width]]

    final_scores = [reward.prefix_score(b.as_solution(problem), problem.n_steps)
                    for b in beams]
    best = beams[int(np.argmax(final_scores))]
    correct = best.first_error_step >= problem.n_steps
    if not correct:
        _wrong_answer(problem, rng)  # a wrong final answer is still emitted
    return correct, tokens


def evaluate_beam_search(dataset: TaskDataset, profile: ModelProfile,
                         budget: int, beam_width: Optional[int] = None,
                         reward: Optional[RewardModel] = None,
                         seed: int = 0) -> BeamSearchResult:
    """Step-level beam search over a dataset.

    ``beam_width`` defaults to ``max(1, budget // 4)``, the common
    "keep a quarter, expand by four" configuration.
    """
    if budget <= 0:
        raise ScalingError(f"budget must be positive, got {budget}")
    width = beam_width if beam_width is not None else max(1, budget // 4)
    reward = reward if reward is not None else RewardModel(seed=seed + 1)
    rng = np.random.default_rng(seed)
    probabilities = profile.solve_probabilities(dataset)

    n_correct = 0
    total_tokens = 0
    for problem, p in zip(dataset.problems, probabilities):
        correct, tokens = beam_search_single(problem, float(p), budget, width,
                                             reward, rng)
        n_correct += int(correct)
        total_tokens += tokens
    n = len(dataset.problems)
    return BeamSearchResult(dataset=dataset.name, model=profile.name,
                            budget=budget, beam_width=width,
                            accuracy=n_correct / n,
                            mean_tokens_per_problem=total_tokens / n)
