"""Mapping quantization damage to reasoning-task accuracy (Table 1).

Table 1 shows that QNN-style per-channel W4 quantization collapses
Llama3.2-1B's MATH500 accuracy from 15.9 to 2.1 while AWQ per-group
quantization preserves it.  We reproduce the *mechanism* with real
arithmetic — quantize the synthetic-weight transformer both ways and
measure the KL divergence of its predictive distribution from the FP16
reference — and then map that divergence to task accuracy with a single
calibrated exponential:

    accuracy(quant) = base_accuracy * exp(-KL / KL_SCALE)

The exponential form follows from treating a reasoning chain as a
sequence of decisions whose per-step success degrades with distribution
drift; ``KL_SCALE`` is calibrated once so the per-channel measurement
lands at the paper's collapsed accuracy, and *the same constant* is then
applied to every other scheme — so the ordering and relative magnitudes
are measurements, not fits.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScalingError

__all__ = ["KL_SCALE", "accuracy_under_quantization", "calibrate_kl_scale"]

# Calibrated against the tiny-model measurement harness (see
# benchmarks/test_table1_quant_accuracy.py): per-channel W4 KL measured
# there maps 15.9 -> ~2, group W4 KL keeps accuracy within a point.
KL_SCALE = 0.48


def accuracy_under_quantization(base_accuracy: float, kl_divergence: float,
                                kl_scale: float = KL_SCALE) -> float:
    """Predicted task accuracy after quantization-induced drift."""
    if not 0.0 <= base_accuracy <= 1.0:
        raise ScalingError(f"base accuracy must be in [0,1], got {base_accuracy}")
    if kl_divergence < 0:
        raise ScalingError(f"KL divergence must be >= 0, got {kl_divergence}")
    if kl_scale <= 0:
        raise ScalingError(f"KL scale must be positive, got {kl_scale}")
    return float(base_accuracy * np.exp(-kl_divergence / kl_scale))


def calibrate_kl_scale(base_accuracy: float, target_accuracy: float,
                       measured_kl: float) -> float:
    """Solve the KL scale that maps one (KL, accuracy) anchor exactly."""
    if not 0 < target_accuracy < base_accuracy <= 1.0:
        raise ScalingError(
            f"need 0 < target < base <= 1, got {target_accuracy}, {base_accuracy}")
    if measured_kl <= 0:
        raise ScalingError(f"anchor KL must be positive, got {measured_kl}")
    return float(measured_kl / np.log(base_accuracy / target_accuracy))
