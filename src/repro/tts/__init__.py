"""Test-time scaling: tasks, reward models, and selection algorithms.

* :mod:`repro.tts.tasks` — synthetic reasoning benchmark + model profiles.
* :mod:`repro.tts.reward` — ORM/PRM simulators (Skywork-PRM stand-in).
* :mod:`repro.tts.best_of_n` / :mod:`repro.tts.beam_search` /
  :mod:`repro.tts.self_consistency` — the three parallel methods.
* :mod:`repro.tts.scaling` — budget sweeps (Fig. 5, Fig. 10 accuracy axis).
* :mod:`repro.tts.accuracy_model` — quantization damage -> accuracy map.
"""

from .accuracy_model import KL_SCALE, accuracy_under_quantization, calibrate_kl_scale
from .beam_search import BeamSearchResult, beam_search_single, evaluate_beam_search
from .best_of_n import BestOfNResult, best_of_n_single, evaluate_best_of_n
from .mcts import MCTSResult, evaluate_mcts, mcts_single
from .reward import RewardModel, reward_auc
from .scaling import DEFAULT_BUDGETS, SCALING_METHODS, ScalingCurve, budget_sweep
from .self_consistency import (
    SelfConsistencyResult,
    evaluate_self_consistency,
    majority_vote,
    weighted_majority_vote,
)
from .tasks import (
    DATASET_PROFILES,
    MODEL_PROFILES,
    ModelProfile,
    ReasoningProblem,
    SampledSolution,
    TaskDataset,
    analytic_pass_at_n,
    get_model_profile,
    sample_solutions,
)

__all__ = [
    "KL_SCALE",
    "accuracy_under_quantization",
    "calibrate_kl_scale",
    "BeamSearchResult",
    "beam_search_single",
    "evaluate_beam_search",
    "BestOfNResult",
    "best_of_n_single",
    "evaluate_best_of_n",
    "MCTSResult",
    "evaluate_mcts",
    "mcts_single",
    "RewardModel",
    "reward_auc",
    "DEFAULT_BUDGETS",
    "SCALING_METHODS",
    "ScalingCurve",
    "budget_sweep",
    "SelfConsistencyResult",
    "evaluate_self_consistency",
    "majority_vote",
    "weighted_majority_vote",
    "DATASET_PROFILES",
    "MODEL_PROFILES",
    "ModelProfile",
    "ReasoningProblem",
    "SampledSolution",
    "TaskDataset",
    "analytic_pass_at_n",
    "get_model_profile",
    "sample_solutions",
]
