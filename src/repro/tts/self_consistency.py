"""Self-Consistency / majority voting (§2.1).

The verifier-free baseline: sample N solutions and answer with the most
frequent final answer.  Works when correct generations agree and wrong
ones scatter; our wrong-answer mode distribution (mistakes cluster on
common slips) reproduces its characteristic saturation below Best-of-N.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ScalingError
from .tasks import ModelProfile, SampledSolution, TaskDataset, sample_solutions

__all__ = ["SelfConsistencyResult", "majority_vote", "evaluate_self_consistency"]


@dataclass
class SelfConsistencyResult:
    dataset: str
    model: str
    budget: int
    accuracy: float
    mean_tokens_per_problem: float


def majority_vote(solutions: Sequence[SampledSolution]) -> int:
    """Most frequent final answer; ties break toward the first seen."""
    if not solutions:
        raise ScalingError("majority vote needs at least one solution")
    counts = Counter(s.answer for s in solutions)
    return counts.most_common(1)[0][0]


def weighted_majority_vote(solutions: Sequence[SampledSolution],
                           scores: Sequence[float]) -> int:
    """Reward-weighted voting (the Best-of-N / Self-Consistency hybrid).

    Each vote is weighted by the softmax of its outcome-reward score, so
    a confident verifier concentrates mass on its favourites while a
    useless one degrades gracefully to plain majority voting.
    """
    if not solutions:
        raise ScalingError("weighted vote needs at least one solution")
    if len(solutions) != len(scores):
        raise ScalingError(
            f"{len(solutions)} solutions but {len(scores)} scores")
    import numpy as np
    weights = np.exp(np.asarray(scores, dtype=np.float64)
                     - max(float(s) for s in scores))
    totals: dict = {}
    for solution, weight in zip(solutions, weights):
        totals[solution.answer] = totals.get(solution.answer, 0.0) + weight
    return max(totals, key=totals.get)


def evaluate_self_consistency(dataset: TaskDataset, profile: ModelProfile,
                              budget: int, seed: int = 0,
                              reward=None) -> SelfConsistencyResult:
    """Majority voting over ``budget`` parallel samples per problem.

    Passing a reward model switches to reward-weighted voting (the
    hybrid variant).
    """
    if budget <= 0:
        raise ScalingError(f"budget must be positive, got {budget}")
    rng = np.random.default_rng(seed)
    probabilities = profile.solve_probabilities(dataset)
    tokens_per_step = dataset.profile.tokens_per_step

    n_correct = 0
    total_tokens = 0
    for problem, p in zip(dataset.problems, probabilities):
        solutions = sample_solutions(problem, float(p), budget, rng,
                                     tokens_per_step=tokens_per_step)
        total_tokens += sum(s.n_tokens for s in solutions)
        if reward is not None:
            scores = reward.outcome_scores(solutions)
            chosen = weighted_majority_vote(solutions, scores.tolist())
        else:
            chosen = majority_vote(solutions)
        if chosen == problem.answer:
            n_correct += 1
    n = len(dataset.problems)
    return SelfConsistencyResult(dataset=dataset.name, model=profile.name,
                                 budget=budget, accuracy=n_correct / n,
                                 mean_tokens_per_problem=total_tokens / n)
