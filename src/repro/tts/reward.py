"""Outcome and process reward model simulators (Skywork-1.5B-PRM stand-in).

The paper scores Best-of-N with an outcome reward and step-level Beam
Search with a process reward, both provided by Skywork-1.5B-PRM (§7.1).
We model a reward model as a noisy observer of ground truth:

* the **outcome** scorer sees a completed chain and emits a score drawn
  from ``N(1, sigma)`` when the final answer is correct and ``N(0,
  sigma)`` otherwise — ``sigma`` sets the scorer's AUC
  (``Phi(1 / (sigma * sqrt(2)))``);
* the **process** scorer sees a chain prefix and emits a per-step score
  around 1 while the prefix is error-free and around 0 after the first
  error, with the same noise scale.  Prefix scores are averaged into a
  path score, as step-level beam search implementations do.

``sigma = 0.4`` (AUC ≈ 0.96) matches a strong small PRM; tests sweep
sigma to show the algorithms degrade gracefully to random selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import erf, sqrt
from typing import List, Sequence

import numpy as np

from ..errors import ScalingError
from .tasks import SampledSolution

__all__ = ["RewardModel", "reward_auc"]


def reward_auc(sigma: float) -> float:
    """Theoretical AUC of a reward model with noise scale ``sigma``."""
    if sigma <= 0:
        return 1.0
    return 0.5 * (1.0 + erf(1.0 / (sigma * sqrt(2.0) * sqrt(2.0))))


@dataclass
class RewardModel:
    """Noisy outcome/process scorer with a private RNG."""

    sigma: float = 0.4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ScalingError(f"reward noise must be >= 0, got {self.sigma}")
        self._rng = np.random.default_rng(self.seed)

    def reseed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # outcome reward (Best-of-N)
    # ------------------------------------------------------------------
    def outcome_score(self, solution: SampledSolution) -> float:
        mu = 1.0 if solution.correct else 0.0
        return float(self._rng.normal(mu, self.sigma))

    def outcome_scores(self, solutions: Sequence[SampledSolution]) -> np.ndarray:
        return np.array([self.outcome_score(s) for s in solutions])

    # ------------------------------------------------------------------
    # process reward (step-level Beam Search)
    # ------------------------------------------------------------------
    def step_score(self, solution: SampledSolution, step: int) -> float:
        """Score of reasoning step ``step`` (1-based) of a chain."""
        if not 1 <= step <= solution.n_steps:
            raise ScalingError(
                f"step {step} outside chain of {solution.n_steps} steps")
        mu = 1.0 if solution.prefix_correct(step) else 0.0
        return float(self._rng.normal(mu, self.sigma))

    def prefix_score(self, solution: SampledSolution, step: int) -> float:
        """Score of a chain prefix of ``step`` steps.

        The mean of the true per-step indicators plus a *single* noise
        draw.  Real PRM errors are systematic per chain (a bad chain
        fools the PRM consistently), so averaging per-step draws would
        overstate the scorer: the noise must not shrink with prefix
        length.
        """
        if not 1 <= step <= solution.n_steps:
            raise ScalingError(
                f"step {step} outside chain of {solution.n_steps} steps")
        n_good = min(step, solution.first_error_step)
        mu = n_good / step
        return float(mu + self._rng.normal(0.0, self.sigma))
