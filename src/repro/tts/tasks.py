"""Synthetic reasoning-task environment (substitution S3 in DESIGN.md).

The paper evaluates parallel test-time scaling on MATH500 and GSM8K with
real model generations scored by Skywork-1.5B-PRM.  Without trained
checkpoints, we model the *statistical structure* those algorithms
operate on:

* a dataset is a set of problems with heterogeneous difficulty drawn
  from a dataset-specific Beta distribution (MATH500 skews hard, GSM8K
  easy);
* a model has a scalar capability per dataset; its probability of
  solving problem ``i`` in one independent sample is a logistic function
  of (capability - difficulty), calibrated so that the *mean* single-
  sample accuracy matches the published base accuracy of that model;
* a sampled solution is a chain of reasoning steps: a correct solution
  has all steps correct; an incorrect one goes wrong at some step and
  cannot recover (the monotone-error model behind process rewards);
* incorrect solutions produce wrong final answers that cluster on
  "common mistakes", which is what limits majority voting.

Everything downstream — Best-of-N, Beam Search, Self-Consistency —
operates only on these (answer, step-correctness, score) tuples, exactly
as the real algorithms operate on (generation, PRM score) pairs.

The pass@N identity ``E[1 - (1 - p)^N]`` over the per-problem solve
probabilities gives a closed form the property tests verify against the
Monte-Carlo implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScalingError

__all__ = [
    "ReasoningProblem",
    "TaskDataset",
    "DATASET_PROFILES",
    "ModelProfile",
    "MODEL_PROFILES",
    "get_model_profile",
    "SampledSolution",
    "sample_solutions",
    "analytic_pass_at_n",
]


@dataclass(frozen=True)
class ReasoningProblem:
    """One synthetic reasoning problem."""

    problem_id: int
    difficulty: float       # in [0, 1]; higher is harder
    n_steps: int            # reasoning chain length
    answer: int             # ground-truth answer id
    n_answer_modes: int     # distinct plausible wrong answers


@dataclass(frozen=True)
class _DatasetProfile:
    """Difficulty and chain-length statistics of one benchmark."""

    name: str
    difficulty_alpha: float
    difficulty_beta: float
    min_steps: int
    max_steps: int
    tokens_per_step: int
    n_answer_modes: int


DATASET_PROFILES: Dict[str, _DatasetProfile] = {
    # MATH500 skews hard and has long multi-step solutions.
    "math500": _DatasetProfile("math500", difficulty_alpha=2.4,
                               difficulty_beta=1.6, min_steps=6, max_steps=12,
                               tokens_per_step=60, n_answer_modes=8),
    # GSM8K is grade-school arithmetic: easier, shorter chains.
    "gsm8k": _DatasetProfile("gsm8k", difficulty_alpha=1.6,
                             difficulty_beta=2.4, min_steps=3, max_steps=8,
                             tokens_per_step=45, n_answer_modes=6),
}


@dataclass
class TaskDataset:
    """A reproducible set of synthetic problems."""

    name: str
    problems: List[ReasoningProblem]

    @classmethod
    def generate(cls, name: str, n_problems: int = 500,
                 seed: int = 0) -> "TaskDataset":
        if name not in DATASET_PROFILES:
            raise ScalingError(
                f"unknown dataset {name!r}; known: {sorted(DATASET_PROFILES)}")
        if n_problems <= 0:
            raise ScalingError(f"need a positive problem count, got {n_problems}")
        profile = DATASET_PROFILES[name]
        rng = np.random.default_rng(seed)
        difficulties = rng.beta(profile.difficulty_alpha,
                                profile.difficulty_beta, n_problems)
        steps = rng.integers(profile.min_steps, profile.max_steps + 1, n_problems)
        problems = [
            ReasoningProblem(problem_id=i, difficulty=float(difficulties[i]),
                             n_steps=int(steps[i]), answer=0,
                             n_answer_modes=profile.n_answer_modes)
            for i in range(n_problems)
        ]
        return cls(name=name, problems=problems)

    @property
    def profile(self) -> _DatasetProfile:
        return DATASET_PROFILES[self.name]

    def __len__(self) -> int:
        return len(self.problems)


# ----------------------------------------------------------------------
# model capability profiles
# ----------------------------------------------------------------------
_LOGISTIC_STEEPNESS = 14.0


def _solve_probability(capability: float, difficulty: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-_LOGISTIC_STEEPNESS * (capability - difficulty)))


def _calibrate_capability(target_accuracy: float, difficulties: np.ndarray) -> float:
    """Bisect the capability whose mean solve probability hits the target."""
    lo, hi = -2.0, 3.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if float(_solve_probability(mid, difficulties).mean()) < target_accuracy:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass
class ModelProfile:
    """Per-dataset capability of one evaluated model.

    ``base_accuracy`` entries are single-sample (pass@1, budget 1)
    accuracies consistent with the paper's baselines (Table 1, Fig. 10
    "base" markers); capabilities are calibrated lazily per dataset
    against a reference difficulty sample.
    """

    name: str
    base_accuracy: Dict[str, float]
    _capability_cache: Dict[tuple, float] = field(default_factory=dict)

    def capability(self, dataset: TaskDataset) -> float:
        difficulties = np.array([p.difficulty for p in dataset.problems])
        # fingerprint the concrete problem set: different instances of the
        # same benchmark calibrate independently
        key = (dataset.name, difficulties.size,
               round(float(difficulties.sum()), 9))
        if key not in self._capability_cache:
            target = self.base_accuracy.get(dataset.name)
            if target is None:
                raise ScalingError(
                    f"model {self.name!r} has no base accuracy for "
                    f"{dataset.name!r}")
            self._capability_cache[key] = _calibrate_capability(target,
                                                                difficulties)
        return self._capability_cache[key]

    def solve_probabilities(self, dataset: TaskDataset) -> np.ndarray:
        cap = self.capability(dataset)
        difficulties = np.array([p.difficulty for p in dataset.problems])
        return _solve_probability(cap, difficulties)


# Single-sample accuracies consistent with the paper's reported baselines
# (Table 1 for Llama3.2-1B; Fig. 10 "base" markers for the rest).
MODEL_PROFILES: Dict[str, ModelProfile] = {
    "qwen2.5-1.5b": ModelProfile("qwen2.5-1.5b",
                                 {"math500": 0.24, "gsm8k": 0.58}),
    "qwen2.5-3b": ModelProfile("qwen2.5-3b",
                               {"math500": 0.42, "gsm8k": 0.74}),
    "qwen2.5-7b": ModelProfile("qwen2.5-7b",
                               {"math500": 0.52, "gsm8k": 0.82}),
    "llama3.2-1b": ModelProfile("llama3.2-1b",
                                {"math500": 0.159, "gsm8k": 0.326}),
    "llama3.2-3b": ModelProfile("llama3.2-3b",
                                {"math500": 0.36, "gsm8k": 0.60}),
}


def get_model_profile(name: str) -> ModelProfile:
    key = name.lower()
    if key not in MODEL_PROFILES:
        raise ScalingError(
            f"unknown model profile {name!r}; known: {sorted(MODEL_PROFILES)}")
    return MODEL_PROFILES[key]


# ----------------------------------------------------------------------
# sampling generations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SampledSolution:
    """One sampled reasoning chain for one problem."""

    answer: int
    correct: bool
    first_error_step: int   # == n_steps when the chain is fully correct
    n_steps: int
    n_tokens: int

    def prefix_correct(self, step: int) -> bool:
        """Is the chain still error-free after ``step`` steps (1-based)?"""
        return step <= self.first_error_step


def _wrong_answer(problem: ReasoningProblem, rng: np.random.Generator) -> int:
    """Sample a wrong answer id; mistakes cluster on common modes.

    Mode ``m`` (1-based) is chosen with probability proportional to
    ``1/m``, reproducing the fact that many wrong generations agree on
    the same slip — the failure mode of majority voting.
    """
    modes = np.arange(1, problem.n_answer_modes + 1, dtype=np.float64)
    weights = 1.0 / modes
    weights /= weights.sum()
    return int(rng.choice(problem.n_answer_modes, p=weights) + 1)


def sample_solutions(problem: ReasoningProblem, solve_probability: float, n: int,
                     rng: np.random.Generator,
                     tokens_per_step: int = 60) -> List[SampledSolution]:
    """Draw ``n`` independent solution chains for one problem.

    A correct chain has all ``n_steps`` steps correct; an incorrect one
    fails at a step drawn uniformly (earlier failures are as likely as
    late ones, matching PRM error-position statistics in ProcessBench).
    """
    if not 0.0 <= solve_probability <= 1.0:
        raise ScalingError(f"solve probability must be in [0,1], got {solve_probability}")
    if n <= 0:
        raise ScalingError(f"sample count must be positive, got {n}")
    out = []
    for _ in range(n):
        correct = bool(rng.random() < solve_probability)
        if correct:
            first_error = problem.n_steps
            answer = problem.answer
        else:
            first_error = int(rng.integers(0, problem.n_steps))
            answer = _wrong_answer(problem, rng)
        n_tokens = int(problem.n_steps * tokens_per_step
                       * (0.8 + 0.4 * rng.random()))
        out.append(SampledSolution(answer=answer, correct=correct,
                                   first_error_step=first_error,
                                   n_steps=problem.n_steps, n_tokens=n_tokens))
    return out


def analytic_pass_at_n(solve_probabilities: Sequence[float], n: int) -> float:
    """Closed-form pass@N: ``mean(1 - (1 - p)^N)`` over problems."""
    p = np.asarray(solve_probabilities, dtype=np.float64)
    if n <= 0:
        raise ScalingError(f"N must be positive, got {n}")
    return float(np.mean(1.0 - (1.0 - p) ** n))
