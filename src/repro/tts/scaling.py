"""Budget sweeps: accuracy as a function of parallel generation budget.

Drives the Fig. 5 budget-scaling curves and the accuracy axis of the
Fig. 10 Pareto plots.  A sweep fixes (method, model, dataset) and runs
the selection algorithm at each budget with a shared reward model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ScalingError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.faults import FaultPlan
from .beam_search import evaluate_beam_search
from .best_of_n import evaluate_best_of_n
from .mcts import evaluate_mcts
from .reward import RewardModel
from .self_consistency import evaluate_self_consistency
from .tasks import ModelProfile, TaskDataset, get_model_profile

__all__ = ["SCALING_METHODS", "ScalingCurve", "budget_sweep"]

SCALING_METHODS = ("best_of_n", "beam_search", "self_consistency",
                   "weighted_sc", "mcts")

DEFAULT_BUDGETS = (1, 2, 4, 8, 16)


@dataclass
class ScalingCurve:
    """Accuracy (and token cost) across generation budgets."""

    method: str
    model: str
    dataset: str
    budgets: List[int]
    accuracies: List[float]
    tokens_per_problem: List[float]

    def as_dict(self) -> Dict[int, float]:
        return dict(zip(self.budgets, self.accuracies))

    @property
    def base_accuracy(self) -> float:
        """Accuracy at budget 1 (conventional sampling)."""
        try:
            return self.accuracies[self.budgets.index(1)]
        except ValueError:
            raise ScalingError("sweep did not include budget 1") from None


def budget_sweep(method: str, dataset: TaskDataset, profile: ModelProfile,
                 budgets: Sequence[int] = DEFAULT_BUDGETS,
                 reward_sigma: float = 0.4, seed: int = 0,
                 engine_batch: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 deadline_steps: Optional[float] = None) -> ScalingCurve:
    """Evaluate one scaling method across budgets.

    The reward model is reseeded per budget so curves are independent
    draws; the task sampling seed also varies per budget to avoid
    correlated noise across the sweep.

    ``engine_batch`` (Best-of-N only) wave-plans budgets that exceed
    the physical decode batch through the continuous-batching
    scheduler discipline; the accuracy RNG stream is untouched, so the
    curve is identical with the routing on or off.

    ``fault_plan`` / ``deadline_steps`` (Best-of-N only) run every
    budget point in chaos mode — see
    :func:`~repro.tts.best_of_n.evaluate_best_of_n`.
    """
    if method not in SCALING_METHODS:
        raise ScalingError(
            f"unknown method {method!r}; expected one of {SCALING_METHODS}")
    if method != "best_of_n" and (
            (fault_plan is not None and len(fault_plan) > 0)
            or deadline_steps is not None):
        raise ScalingError(
            f"chaos mode (fault plan / deadline) only supports best_of_n, "
            f"got method {method!r}")
    budgets = list(budgets)
    if not budgets or any(b <= 0 for b in budgets):
        raise ScalingError(f"budgets must be positive, got {budgets}")

    accuracies: List[float] = []
    tokens: List[float] = []
    sweep_span = obs_trace.span("tts.budget_sweep", category="tts",
                                method=method, model=profile.name,
                                dataset=dataset.name, n_budgets=len(budgets))
    with sweep_span:
        for i, budget in enumerate(budgets):
            with obs_trace.span("tts.budget", category="tts",
                                method=method, budget=budget):
                _run_budget(method, dataset, profile, budget, reward_sigma,
                            seed, i, accuracies, tokens,
                            engine_batch=engine_batch,
                            fault_plan=fault_plan,
                            deadline_steps=deadline_steps)
            obs_metrics.get_metrics().counter(
                "repro.tts.budgets_evaluated").inc()
    return ScalingCurve(method=method, model=profile.name, dataset=dataset.name,
                        budgets=budgets, accuracies=accuracies,
                        tokens_per_problem=tokens)


def _run_budget(method: str, dataset: TaskDataset, profile: ModelProfile,
                budget: int, reward_sigma: float, seed: int, i: int,
                accuracies: List[float], tokens: List[float],
                engine_batch: Optional[int] = None,
                fault_plan: Optional[FaultPlan] = None,
                deadline_steps: Optional[float] = None) -> None:
    """Evaluate one budget point of a sweep, appending to the curves."""
    run_seed = seed + 1000 * i
    reward = RewardModel(sigma=reward_sigma, seed=run_seed + 1)
    if method == "best_of_n":
        result = evaluate_best_of_n(dataset, profile, budget, reward,
                                    seed=run_seed, engine_batch=engine_batch,
                                    fault_plan=fault_plan,
                                    deadline_steps=deadline_steps)
        accuracies.append(result.accuracy)
        tokens.append(result.mean_tokens_per_problem)
    elif method == "beam_search":
        result = evaluate_beam_search(dataset, profile, budget,
                                      reward=reward, seed=run_seed)
        accuracies.append(result.accuracy)
        tokens.append(result.mean_tokens_per_problem)
    elif method == "mcts":
        result = evaluate_mcts(dataset, profile, budget, reward=reward,
                               seed=run_seed)
        accuracies.append(result.accuracy)
        tokens.append(result.mean_rollouts_per_problem
                      * dataset.profile.tokens_per_step
                      * dataset.profile.max_steps)
    elif method == "weighted_sc":
        result = evaluate_self_consistency(dataset, profile, budget,
                                           seed=run_seed, reward=reward)
        accuracies.append(result.accuracy)
        tokens.append(result.mean_tokens_per_problem)
    else:
        result = evaluate_self_consistency(dataset, profile, budget,
                                           seed=run_seed)
        accuracies.append(result.accuracy)
        tokens.append(result.mean_tokens_per_problem)
