"""Monte-Carlo Tree Search over reasoning steps (§2.1).

The paper's background lists MCTS-style lookahead as the third parallel
test-time-scaling family: "through lookahead rollouts, methods similar
to MCTS can select optimal paths from partially generated sequences".
This module implements a step-level MCTS on the synthetic task
environment:

* a tree node is a sampled reasoning prefix (its hidden correctness
  state is tracked by the simulator but never revealed to the search —
  the algorithm only observes noisy reward scores, like a real PRM
  consumer);
* **selection** walks the tree by UCT;
* **expansion** samples one new continuation step of the selected node;
* **rollout** completes the chain stochastically and scores the finished
  solution with the outcome reward model;
* **backpropagation** updates mean values along the path.

The final answer comes from the best-scoring completed rollout beneath
the most-visited root child — lookahead statistics concentrate the
budget on prefixes that keep scoring well, which is how MCTS converts
the same rollout budget into higher accuracy than independent sampling
on hard problems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ScalingError
from .reward import RewardModel
from .tasks import ModelProfile, ReasoningProblem, SampledSolution, TaskDataset

__all__ = ["MCTSResult", "mcts_single", "evaluate_mcts"]

_UCT_C = 1.2


@dataclass
class _Node:
    """One sampled reasoning prefix."""

    depth: int                     # steps taken so far
    first_error_step: int          # hidden state: n_steps if clean so far
    parent: Optional["_Node"] = None
    children: List["_Node"] = field(default_factory=list)
    visits: int = 0
    value_sum: float = 0.0
    best_rollout_score: float = -math.inf
    best_rollout_correct: bool = False

    @property
    def mean_value(self) -> float:
        return self.value_sum / self.visits if self.visits else 0.0

    def uct(self, total_visits: int) -> float:
        if self.visits == 0:
            return math.inf
        return self.mean_value + _UCT_C * math.sqrt(
            math.log(max(total_visits, 1)) / self.visits)


@dataclass
class MCTSResult:
    dataset: str
    model: str
    budget: int
    accuracy: float
    mean_rollouts_per_problem: float


def _extend_prefix(node: _Node, step_success: float, n_steps: int,
                   rng: np.random.Generator) -> _Node:
    """Sample one more reasoning step from a prefix."""
    if node.first_error_step >= node.depth + 1:
        # prefix clean so far: the next step succeeds with probability q
        ok = bool(rng.random() < step_success)
        first_error = node.first_error_step if ok else node.depth
    else:
        first_error = node.first_error_step
    child = _Node(depth=node.depth + 1,
                  first_error_step=min(first_error, n_steps),
                  parent=node)
    node.children.append(child)
    return child


def _rollout(node: _Node, step_success: float, problem: ReasoningProblem,
             rng: np.random.Generator) -> SampledSolution:
    """Complete the chain from a prefix and materialize a solution."""
    first_error = node.first_error_step
    if first_error >= node.depth:  # still clean: simulate remaining steps
        for step in range(node.depth, problem.n_steps):
            if rng.random() >= step_success:
                first_error = step
                break
        else:
            first_error = problem.n_steps
    correct = first_error >= problem.n_steps
    from .tasks import _wrong_answer
    answer = problem.answer if correct else _wrong_answer(problem, rng)
    return SampledSolution(answer=answer, correct=correct,
                           first_error_step=first_error,
                           n_steps=problem.n_steps, n_tokens=0)


def mcts_single(problem: ReasoningProblem, solve_probability: float,
                budget: int, reward: RewardModel,
                rng: np.random.Generator,
                expansion_limit: int = 4) -> "tuple[bool, int]":
    """Run MCTS with ``budget`` rollouts; returns (correct, rollouts)."""
    if budget <= 0:
        raise ScalingError(f"budget must be positive, got {budget}")
    step_success = float(solve_probability) ** (1.0 / problem.n_steps)
    root = _Node(depth=0, first_error_step=problem.n_steps)

    for _ in range(budget):
        # --- selection -------------------------------------------------
        node = root
        while node.children and (len(node.children) >= expansion_limit
                                 or node.depth >= problem.n_steps):
            node = max(node.children, key=lambda c: c.uct(node.visits))
        # --- expansion ---------------------------------------------------
        if node.depth < problem.n_steps:
            node = _extend_prefix(node, step_success, problem.n_steps, rng)
        # --- rollout + scoring -------------------------------------------
        solution = _rollout(node, step_success, problem, rng)
        score = reward.outcome_score(solution)
        # --- backpropagation ----------------------------------------------
        walker: Optional[_Node] = node
        while walker is not None:
            walker.visits += 1
            walker.value_sum += score
            if score > walker.best_rollout_score:
                walker.best_rollout_score = score
                walker.best_rollout_correct = solution.correct
            walker = walker.parent

    if not root.children:
        return False, budget
    best_child = max(root.children, key=lambda c: c.visits)
    return best_child.best_rollout_correct, budget


def evaluate_mcts(dataset: TaskDataset, profile: ModelProfile, budget: int,
                  reward: Optional[RewardModel] = None,
                  seed: int = 0) -> MCTSResult:
    """MCTS over a dataset at ``budget`` rollouts per problem."""
    if budget <= 0:
        raise ScalingError(f"budget must be positive, got {budget}")
    reward = reward if reward is not None else RewardModel(seed=seed + 1)
    rng = np.random.default_rng(seed)
    probabilities = profile.solve_probabilities(dataset)
    n_correct = 0
    for problem, p in zip(dataset.problems, probabilities):
        correct, _ = mcts_single(problem, float(p), budget, reward, rng)
        n_correct += int(correct)
    n = len(dataset.problems)
    return MCTSResult(dataset=dataset.name, model=profile.name, budget=budget,
                      accuracy=n_correct / n, mean_rollouts_per_problem=budget)
