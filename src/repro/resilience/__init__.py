"""Resilience layer: deterministic fault injection + graceful degradation.

The reproduction's serving stack must keep answering Best-of-N queries
through the hazards the paper's deployment hit (§7.2): FastRPC session
aborts, rpcmem/TCM allocation failures, DMA stalls, and DVFS/thermal
throttling.  This package provides:

* :mod:`repro.resilience.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`: seeded, fully deterministic fault schedules
  consumed by hooks in the NPU memory model, the FastRPC session, the
  KV block pool and the continuous-batching scheduler;
* :mod:`repro.resilience.recovery` — :class:`RetryPolicy` (capped
  exponential backoff), :class:`ResilientSession` (retry/reopen around
  FastRPC), and :func:`degraded_schedule` (fault + deadline arithmetic
  for the statistical TTS path).

Core invariants (enforced by ``tests/differential`` and
``tests/test_determinism.py``):

* an **empty plan is a bitwise no-op**: behaviour, step costs, and the
  accuracy RNG stream match a build without the resilience layer;
* **chaos is reproducible**: same (seed, plan) ⇒ identical tokens,
  retries, evictions, and simulated makespan;
* **an answer always comes back**: under any plan, Best-of-N returns a
  selected answer (best-so-far under deadlines and evictions) instead
  of crashing or hanging.
"""

from .faults import (
    FAULT_KINDS,
    FLEET_FAULT_KINDS,
    INJECTION_SITES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRecord,
)
from .recovery import (
    DegradedSchedule,
    ResilientSession,
    RetryPolicy,
    degraded_schedule,
)

__all__ = [
    "FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "INJECTION_SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "DegradedSchedule",
    "ResilientSession",
    "RetryPolicy",
    "degraded_schedule",
]
