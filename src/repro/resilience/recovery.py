"""Recovery policies: retries, backoff, and graceful degradation.

Three layers consume this module:

* :class:`ResilientSession` wraps a
  :class:`~repro.npu.soc.FastRPCSession`: transient faults (DMA
  timeouts) retry after capped exponential backoff; a session abort
  additionally reopens the session before retrying.  Backoff is charged
  to a :class:`~repro.sim.SimClock`, never to the host clock, so
  recovery timing is deterministic and visible in the simulated
  makespan.
* the continuous-batching scheduler uses :class:`RetryPolicy` directly
  for its step-retry loop and the degradation ladder (see
  docs/ARCHITECTURE.md §9): retry -> rebuild-from-snapshot -> evict ->
  deadline-stop.
* the TTS layer uses :func:`degraded_schedule` to apply a fault plan
  and a deadline to an already-sampled Best-of-N wave schedule without
  touching the accuracy RNG stream: surviving candidates are a pure
  function of (candidate lengths, batch, plan, deadline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import (
    FaultError,
    RetryExhaustedError,
    SessionAbortError,
    TransientFaultError,
)
from ..npu.power_mgmt import GOVERNORS
from ..sim import SimClock
from ..obs import metrics as obs_metrics
from ..obs import timeline as obs_timeline
from ..obs import trace as obs_trace
from .faults import FaultPlan

__all__ = ["RetryPolicy", "ResilientSession", "DegradedSchedule",
           "degraded_schedule"]

# Whole-batch stall, in decode-step equivalents, charged by the TTS
# statistical path per fault: an abort pays backoff + session reopen +
# KV rebuild from the prompt snapshot; a DMA timeout pays backoff only.
# The engine-level scheduler charges the *actual* simulated seconds of
# these recoveries; the statistical path uses fixed step-equivalents so
# it stays a pure function of the plan.
_ABORT_PENALTY_STEPS = 3.0
_DMA_PENALTY_STEPS = 1.0


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient NPU faults.

    ``backoff(attempt)`` for attempt 0, 1, 2, ... is
    ``min(base_seconds * 2**attempt, cap_seconds)`` — deterministic (no
    jitter: the simulator has no competing clients, and determinism is
    the framework's core invariant).  ``reopen_seconds`` models the
    FastRPC session re-initialization cost (§6: remote session start +
    mailbox mapping), charged on top of backoff after a session abort.
    """

    max_retries: int = 3
    base_seconds: float = 0.002
    cap_seconds: float = 0.05
    reopen_seconds: float = 0.010

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_seconds < 0 or self.cap_seconds < self.base_seconds:
            raise FaultError(
                f"need 0 <= base <= cap, got base={self.base_seconds}, "
                f"cap={self.cap_seconds}")
        if self.reopen_seconds < 0:
            raise FaultError(
                f"reopen_seconds must be >= 0, got {self.reopen_seconds}")

    def backoff(self, attempt: int) -> float:
        if attempt < 0:
            raise FaultError(f"attempt must be >= 0, got {attempt}")
        return min(self.base_seconds * (2.0 ** attempt), self.cap_seconds)


class ResilientSession:
    """Retry/reopen wrapper around a FastRPC session.

    Mirrors what a production libcdsprpc client does: transient faults
    are retried with backoff; a dead session is reopened (tearing down
    and re-mapping the mailbox) and the request re-submitted.  When the
    retry budget is exhausted the last fault is wrapped in
    :class:`~repro.errors.RetryExhaustedError` so callers can
    distinguish "NPU is gone" from a single unlucky request.
    """

    def __init__(self, session, policy: Optional[RetryPolicy] = None,
                 clock: Optional[SimClock] = None) -> None:
        self.session = session
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else SimClock()
        self.retries = 0
        self.reopens = 0

    def _note_retry(self, attempt: int, error: Exception,
                    reopened: bool) -> None:
        self.retries += 1
        if obs_trace.enabled():
            obs_metrics.get_metrics().counter(
                "repro.resilience.session_retries").inc()
            with obs_trace.span("resilience.retry", category="resilience",
                                attempt=attempt, reopened=reopened,
                                error=type(error).__name__):
                pass
        if obs_timeline.timeline_enabled():
            obs_timeline.emit("retry", self.clock.total_seconds,
                              attempt=attempt, reopened=reopened,
                              error=type(error).__name__)

    def submit(self, opcode: int, payload: np.ndarray) -> np.ndarray:
        """Submit with retry; see :meth:`FastRPCSession.submit`."""
        attempt = 0
        while True:
            try:
                return self.session.submit(opcode, payload)
            except SessionAbortError as error:
                if attempt >= self.policy.max_retries:
                    raise RetryExhaustedError(
                        f"FastRPC submit failed after {attempt} retries: "
                        f"{error}") from error
                self.clock.advance(self.policy.backoff(attempt)
                                   + self.policy.reopen_seconds)
                self.session.reopen()
                self.reopens += 1
                self._note_retry(attempt, error, reopened=True)
                attempt += 1
            except TransientFaultError as error:
                if attempt >= self.policy.max_retries:
                    raise RetryExhaustedError(
                        f"FastRPC submit failed after {attempt} retries: "
                        f"{error}") from error
                self.clock.advance(self.policy.backoff(attempt))
                self._note_retry(attempt, error, reopened=False)
                attempt += 1


# ----------------------------------------------------------------------
# TTS-layer degradation (statistical Best-of-N path)
# ----------------------------------------------------------------------
@dataclass
class DegradedSchedule:
    """Outcome of applying a fault plan + deadline to one wave schedule.

    ``survivors`` indexes the candidates (in admission order) whose
    decode completed within the deadline under the faulted schedule —
    the set Best-of-N may select from.  At least one candidate always
    survives (best-answer-so-far, never an empty answer).
    """

    survivors: List[int] = field(default_factory=list)
    finish_steps: List[float] = field(default_factory=list)
    makespan_steps: float = 0.0
    n_evicted: int = 0
    n_deadline_dropped: int = 0
    n_aborts: int = 0
    n_retry_steps: float = 0.0
    throttled_steps: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.n_evicted or self.n_deadline_dropped
                    or self.n_aborts or self.throttled_steps)


def degraded_schedule(candidate_steps: Sequence[int], batch: int,
                      plan: Optional[FaultPlan] = None,
                      deadline_steps: Optional[float] = None
                      ) -> DegradedSchedule:
    """List-schedule candidates under faults and an optional deadline.

    The faultless baseline is the greedy earliest-free-slot schedule of
    :func:`~repro.llm.scheduler.plan_waves`.  On top of it:

    * ``thermal_throttle`` events stretch every step in their window by
      ``1 / clock_scale`` of the target governor (timing honesty: a
      throttled step does less work per second);
    * ``session_abort`` events stall the whole batch for
      ``_ABORT_PENALTY_STEPS`` step-equivalents (backoff + session
      reopen + snapshot rebuild); ``dma_timeout`` stalls for
      ``_DMA_PENALTY_STEPS`` (backoff only);
    * ``alloc_fail`` events evict the in-flight candidate with the
      least progress (lowest sunk cost) — it finishes early with the
      tokens it has, and is excluded from the survivor set;
    * candidates whose finish time exceeds ``deadline_steps`` are
      dropped, except that the earliest finisher always survives.

    Pure arithmetic over already-sampled lengths: no RNG, so the
    accuracy stream is untouched and an empty plan with no deadline
    returns every candidate with the baseline makespan.
    """
    lengths = [int(n) for n in candidate_steps]
    if not lengths or any(n <= 0 for n in lengths):
        raise FaultError(
            f"candidate step counts must be positive, got {lengths}")
    if batch <= 0:
        raise FaultError(f"batch must be positive, got {batch}")
    if deadline_steps is not None and deadline_steps <= 0:
        raise FaultError(
            f"deadline must be positive, got {deadline_steps}")
    events = [] if plan is None else [e for e in plan
                                      if e.site == "scheduler.step"]
    throttles = [e for e in events if e.kind == "thermal_throttle"]
    aborts = {e.at for e in events if e.kind == "session_abort"}
    dmas = {e.at for e in events if e.kind == "dma_timeout"}
    evicts = sorted(e.at for e in events if e.kind == "alloc_fail")

    def step_scale(step: int) -> float:
        scale = 1.0
        for event in throttles:
            end = (float("inf") if event.duration_steps is None
                   else event.at + event.duration_steps)
            if event.at <= step < end:
                gov = GOVERNORS.get(event.governor)
                if gov is None:
                    raise FaultError(
                        f"unknown governor {event.governor!r} in fault plan")
                scale = max(scale, 1.0 / gov.clock_scale)
        return scale

    # greedy earliest-free-slot schedule in integer step space
    slots = [0] * min(batch, len(lengths))
    heapq.heapify(slots)
    starts: List[int] = []
    for n in lengths:
        start = heapq.heappop(slots)
        heapq.heappush(slots, start + n)
        starts.append(start)

    out = DegradedSchedule()
    evicted: Dict[int, int] = {}  # victim index -> eviction step
    for at in evicts:
        in_flight = [(at - starts[i], i) for i in range(len(lengths))
                     if i not in evicted
                     and starts[i] < at < starts[i] + lengths[i]]
        if not in_flight:
            continue
        _, victim = min(in_flight)
        evicted[victim] = at
        out.n_evicted += 1

    # map integer steps onto the faulted timeline: cumulative[k] is the
    # scaled time at which integer step k begins
    horizon = max(s + n for s, n in zip(starts, lengths))
    cumulative = [0.0] * (horizon + 1)
    for step in range(horizon):
        scale = step_scale(step)
        penalty = 0.0
        if step in aborts:
            penalty += _ABORT_PENALTY_STEPS
            out.n_aborts += 1
            out.n_retry_steps += _ABORT_PENALTY_STEPS
        if step in dmas:
            penalty += _DMA_PENALTY_STEPS
            out.n_retry_steps += _DMA_PENALTY_STEPS
        if scale > 1.0:
            out.throttled_steps += 1
        cumulative[step + 1] = cumulative[step] + scale + penalty

    def finish_time(i: int) -> float:
        end_step = evicted.get(i, starts[i] + lengths[i])
        return cumulative[min(max(end_step, starts[i] + 1), horizon)]

    out.finish_steps = [finish_time(i) for i in range(len(lengths))]
    out.makespan_steps = max(out.finish_steps)

    survivors = [i for i in range(len(lengths)) if i not in evicted]
    if deadline_steps is not None:
        within = [i for i in survivors
                  if out.finish_steps[i] <= deadline_steps]
        out.n_deadline_dropped = len(survivors) - len(within)
        survivors = within
    if not survivors:
        # best-answer-so-far: the earliest finisher always survives
        survivors = [int(np.argmin(out.finish_steps))]
    out.survivors = sorted(survivors)
    return out
