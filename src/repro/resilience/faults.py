"""Deterministic fault injection for the NPU serving stack.

The paper's deployment story (§7.2) is dominated by failure modes the
happy path never sees: the 32-bit rpcmem VA-space wall (§7.2.1/§7.2.2),
DVFS/thermal throttling (§7.2.3), and FastRPC session plumbing (§6).
This module schedules those hazards as *data*: a :class:`FaultPlan` is
an immutable list of :class:`FaultEvent` records, each naming a fault
kind, an injection site, and the operation index at that site where it
fires.  A :class:`FaultInjector` consumes the plan during a run.

Determinism is the design invariant:

* building a plan may use a seeded RNG (:meth:`FaultPlan.random`), but
  *injecting* from a plan never draws randomness — events fire by
  site-local operation counting, so the same (seed, plan) always yields
  the same faults, retries and degradations;
* an empty plan injects nothing and touches no RNG stream, so runs with
  an empty plan are bitwise identical to runs without the resilience
  layer at all (``tests/differential/test_fault_plan_noop.py``).

Fault kinds and the layers that recover from them:

=================  =====================================================
``session_abort``  FastRPC session dies; NPU-side state is lost.
                   Recovery: reopen + rebuild KV from snapshots.
``dma_timeout``    A DMA transfer stalls.  Transient: capped backoff
                   and retry, no state rebuild.
``alloc_fail``     TCM / rpcmem / KV-pool allocation fails (memory
                   pressure).  Recovery: evict the lowest-value
                   candidate, shrink the live batch, retry.
``thermal_throttle``  The DVFS governor is forced down via
                   :mod:`repro.npu.power_mgmt`; step costs rescale so
                   simulated timing stays honest.
=================  =====================================================

Fleet-level fault kinds (PR 8) extend the grammar to whole devices in a
:class:`~repro.fleet.simulation.FleetSimulation`.  They are addressed
per device (``dev#K``) and indexed by **simulated seconds** on the
shared event loop, not by operation count:

=================  =====================================================
``device_crash``   ``dev#K:crash@T[:D]`` — device K goes offline at
                   sim-time T; with D set it reboots D seconds later.
                   Recovery: in-flight dispatches fail over through the
                   admission controller.
``straggle``       ``dev#K:straggle@T:F:D`` — device K's service times
                   stretch by factor F for D seconds (thermal stall,
                   background app, bad radio).
``dispatch_drop``  ``dev#K:drop@T`` — the dispatch in flight on device
                   K at time T is lost; the request fails over.
``battery_drain``  ``dev#K:battery@T`` — device K's battery rail is
                   pulled to depleted; it leaves the rotation once its
                   current request completes.
=================  =====================================================

The recovery side (circuit breakers, failover budgets, hedging) lives
in :mod:`repro.fleet.health`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    AddressSpaceError,
    DMATimeoutError,
    FaultError,
    KVPoolExhausted,
    SessionAbortError,
    TCMAllocationError,
)
from ..obs import metrics as obs_metrics
from ..obs import timeline as obs_timeline
from ..obs import trace as obs_trace

__all__ = [
    "FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "INJECTION_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
]

FAULT_KINDS = ("session_abort", "dma_timeout", "alloc_fail",
               "thermal_throttle", "device_crash", "straggle",
               "dispatch_drop", "battery_drain")

#: Fault kinds that target a whole fleet device (time-indexed, consumed
#: by :class:`~repro.fleet.simulation.FleetSimulation`, never by the
#: per-run :class:`FaultInjector`).
FLEET_FAULT_KINDS = ("device_crash", "straggle", "dispatch_drop",
                     "battery_drain")

#: Known injection sites.  ``scheduler.step`` events fire by decode step
#: number; ``fleet.device`` events fire at an absolute simulated time on
#: the fleet event loop; the remaining sites fire by per-site operation
#: index (the N-th allocation / submit observed at that site).
INJECTION_SITES = ("scheduler.step", "fastrpc.submit", "tcm.alloc",
                   "rpcmem.alloc", "kv_pool.alloc", "fleet.device")

# kinds that make sense per site (spec validation)
_SITE_KINDS = {
    "scheduler.step": {"session_abort", "dma_timeout", "alloc_fail",
                       "thermal_throttle"},
    "fastrpc.submit": {"session_abort", "dma_timeout"},
    "tcm.alloc": {"alloc_fail"},
    "rpcmem.alloc": {"alloc_fail"},
    "kv_pool.alloc": {"alloc_fail"},
    "fleet.device": set(FLEET_FAULT_KINDS),
}


def _fmt(value: float) -> str:
    """Canonical numeric rendering for spec strings (``1.5`` not ``1.50``)."""
    text = format(float(value), "g")
    return text


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is the decode step number for ``site="scheduler.step"``
    events and the zero-based operation index for every other site.
    ``governor``/``duration_steps`` only apply to thermal throttling:
    the governor the DVFS ladder is forced down to, and for how many
    decode steps (``None`` = the rest of the run).

    Fleet events (``site="fleet.device"``) instead carry ``device``
    (the target device id), ``time_seconds`` (when the fault fires on
    the fleet event loop), and for ``straggle``/``device_crash`` a
    ``factor`` / ``duration_seconds`` pair (service-time multiplier and
    how long the condition lasts; a crash without a duration never
    reboots).
    """

    kind: str
    site: str = "scheduler.step"
    at: int = 0
    governor: str = "efficiency"
    duration_steps: Optional[int] = None
    device: Optional[int] = None
    time_seconds: float = 0.0
    factor: float = 1.0
    duration_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.site not in INJECTION_SITES:
            raise FaultError(
                f"unknown injection site {self.site!r}; "
                f"known: {INJECTION_SITES}")
        if self.kind not in _SITE_KINDS[self.site]:
            raise FaultError(
                f"fault kind {self.kind!r} cannot fire at site "
                f"{self.site!r} (allowed: {sorted(_SITE_KINDS[self.site])})")
        if self.at < 0:
            raise FaultError(f"event index must be >= 0, got {self.at}")
        if self.kind == "thermal_throttle":
            from ..npu.power_mgmt import GOVERNORS
            if self.governor not in GOVERNORS:
                raise FaultError(
                    f"unknown governor {self.governor!r}; "
                    f"known: {sorted(GOVERNORS)}")
        if self.duration_steps is not None and self.duration_steps <= 0:
            raise FaultError(
                f"throttle duration must be positive, got "
                f"{self.duration_steps}")
        if self.site == "fleet.device":
            if self.device is None or self.device < 0:
                raise FaultError(
                    f"fleet fault {self.kind!r} needs a device id >= 0, "
                    f"got {self.device}")
            if self.time_seconds < 0.0:
                raise FaultError(
                    f"fleet fault time must be >= 0 seconds, got "
                    f"{self.time_seconds}")
            if self.kind == "straggle":
                if self.factor <= 1.0:
                    raise FaultError(
                        f"straggle factor must exceed 1, got {self.factor}")
                if self.duration_seconds is None:
                    raise FaultError("straggle needs a duration in seconds")
            if (self.duration_seconds is not None
                    and self.duration_seconds <= 0.0):
                raise FaultError(
                    f"fleet fault duration must be positive, got "
                    f"{self.duration_seconds}")
            if (self.kind in ("dispatch_drop", "battery_drain")
                    and self.duration_seconds is not None):
                raise FaultError(
                    f"{self.kind} faults are instantaneous; drop the "
                    f"duration")
        elif self.device is not None:
            raise FaultError(
                f"only fleet.device faults address a device; "
                f"{self.kind!r} at {self.site!r} must not set one")

    def spec(self) -> str:
        """Canonical single-event spec string (see :meth:`FaultPlan.parse`)."""
        if self.site == "fleet.device":
            head = f"dev#{self.device}"
            if self.kind == "device_crash":
                base = f"{head}:crash@{_fmt(self.time_seconds)}"
                if self.duration_seconds is not None:
                    base += f":{_fmt(self.duration_seconds)}"
                return base
            if self.kind == "straggle":
                return (f"{head}:straggle@{_fmt(self.time_seconds)}"
                        f":{_fmt(self.factor)}"
                        f":{_fmt(self.duration_seconds)}")
            short = {"dispatch_drop": "drop",
                     "battery_drain": "battery"}[self.kind]
            return f"{head}:{short}@{_fmt(self.time_seconds)}"
        if self.site == "scheduler.step":
            if self.kind == "thermal_throttle":
                base = f"throttle@{self.at}:{self.governor}"
                if self.duration_steps is not None:
                    base += f":{self.duration_steps}"
                return base
            short = {"session_abort": "abort", "dma_timeout": "dma",
                     "alloc_fail": "alloc"}[self.kind]
            return f"{short}@{self.at}"
        short = {"tcm.alloc": "tcm", "rpcmem.alloc": "rpcmem",
                 "kv_pool.alloc": "kvpool",
                 "fastrpc.submit": "rpc"}[self.site]
        if self.site == "fastrpc.submit":
            suffix = "abort" if self.kind == "session_abort" else "dma"
            return f"{short}#{self.at}:{suffix}"
        return f"{short}#{self.at}"


class FaultPlan:
    """An immutable, deterministic schedule of fault events.

    Plans compare equal by their events, render to a canonical ``spec``
    string, and are safe to share across runs: injectors copy the event
    schedule and never mutate the plan.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        # the trailing fleet fields are constants for non-fleet events,
        # so the ordering of pre-existing plans is unchanged
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (
                e.site, e.at, e.time_seconds,
                -1 if e.device is None else e.device, e.kind)))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (bitwise no-op by construction)."""
        return cls(())

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact comma-separated spec.

        Step-indexed events (fire at decode step N of the scheduler)::

            abort@N                  FastRPC session abort
            dma@N                    DMA timeout (transient)
            alloc@N                  KV pool allocation failure
            throttle@N:GOV[:D]       force governor GOV for D steps
                                     (D omitted = rest of run)

        Operation-indexed events (fire at the K-th operation of a
        site)::

            tcm#K                    K-th TCM allocation fails
            rpcmem#K                 K-th rpcmem mapping fails
            kvpool#K                 K-th KV block allocation fails
            rpc#K[:abort|:dma]       K-th FastRPC submit faults

        Fleet events (fire at simulated second T on device K of a
        :class:`~repro.fleet.simulation.FleetSimulation`)::

            dev#K:crash@T[:D]        device K offline at T; with D set
                                     it reboots D seconds later
            dev#K:straggle@T:F:D     device K serves F-times slower for
                                     D seconds
            dev#K:drop@T             the dispatch in flight on K at T
                                     is lost
            dev#K:battery@T          device K's battery rail depletes

        ``random:SEED`` generates a small mixed plan from a dedicated
        seeded RNG (see :meth:`random`).  Example chaos spec::

            abort@2,alloc@5,throttle@3:efficiency:4,dma@7
        """
        spec = spec.strip()
        if not spec:
            return cls.empty()
        if spec.startswith("random:"):
            try:
                seed = int(spec.split(":", 1)[1])
            except ValueError:
                raise FaultError(
                    f"bad random plan spec {spec!r}; expected random:SEED"
                ) from None
            return cls.random(seed)
        events: List[FaultEvent] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            events.append(cls._parse_token(token))
        return cls(events)

    @staticmethod
    def _parse_token(token: str) -> FaultEvent:
        try:
            if token.startswith("dev#"):
                head, rest = token.split(":", 1)
                device = int(head[len("dev#"):])
                verb, args = rest.split("@", 1)
                parts = args.split(":")
                time_seconds = float(parts[0])
                if verb == "crash":
                    duration = (float(parts[1]) if len(parts) > 1 else None)
                    return FaultEvent("device_crash", "fleet.device",
                                      device=device,
                                      time_seconds=time_seconds,
                                      duration_seconds=duration)
                if verb == "straggle":
                    return FaultEvent("straggle", "fleet.device",
                                      device=device,
                                      time_seconds=time_seconds,
                                      factor=float(parts[1]),
                                      duration_seconds=float(parts[2]))
                kind = {"drop": "dispatch_drop",
                        "battery": "battery_drain"}[verb]
                if len(parts) > 1:
                    raise FaultError(
                        f"{verb} faults take no duration: {token!r}")
                return FaultEvent(kind, "fleet.device", device=device,
                                  time_seconds=time_seconds)
            if "@" in token:
                head, rest = token.split("@", 1)
                if head == "throttle":
                    parts = rest.split(":")
                    at = int(parts[0])
                    governor = parts[1] if len(parts) > 1 else "efficiency"
                    duration = int(parts[2]) if len(parts) > 2 else None
                    return FaultEvent("thermal_throttle", "scheduler.step",
                                      at, governor=governor,
                                      duration_steps=duration)
                kind = {"abort": "session_abort", "dma": "dma_timeout",
                        "alloc": "alloc_fail"}[head]
                return FaultEvent(kind, "scheduler.step", int(rest))
            if "#" in token:
                head, rest = token.split("#", 1)
                if head == "rpc":
                    parts = rest.split(":")
                    kind = {"abort": "session_abort", "dma": "dma_timeout"}[
                        parts[1] if len(parts) > 1 else "abort"]
                    return FaultEvent(kind, "fastrpc.submit", int(parts[0]))
                site = {"tcm": "tcm.alloc", "rpcmem": "rpcmem.alloc",
                        "kvpool": "kv_pool.alloc"}[head]
                return FaultEvent("alloc_fail", site, int(rest))
        except (KeyError, ValueError, IndexError):
            pass
        raise FaultError(
            f"cannot parse fault spec token {token!r}; see FaultPlan.parse")

    @classmethod
    def random(cls, seed: int, n_aborts: int = 1, n_dma: int = 1,
               n_allocs: int = 1, n_throttles: int = 1,
               horizon_steps: int = 16, n_crashes: int = 0,
               n_straggles: int = 0, n_drops: int = 0,
               n_battery: int = 0, n_devices: int = 1,
               horizon_seconds: Optional[float] = None) -> "FaultPlan":
        """A seeded random chaos plan over the first ``horizon_steps``.

        Uses its own :func:`numpy.random.default_rng` stream so plan
        generation never perturbs the accuracy RNG; two calls with the
        same arguments produce identical plans.

        Fleet-level kinds are opt-in: the crash/straggle/drop/battery
        counts default to zero and their draws happen *after* every
        scheduler-level draw, so plans for pre-existing seeds and
        arguments are bitwise-stable (pinned by
        ``tests/test_fleet_chaos.py::test_random_seed0_spec_pinned``).
        Fleet fault times land on a centisecond grid inside
        ``horizon_seconds`` (default: ``horizon_steps`` seconds) across
        ``n_devices`` devices.
        """
        if horizon_steps <= 0:
            raise FaultError(
                f"horizon must be positive, got {horizon_steps}")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for kind, count in (("session_abort", n_aborts),
                            ("dma_timeout", n_dma),
                            ("alloc_fail", n_allocs)):
            for _ in range(max(count, 0)):
                events.append(FaultEvent(
                    kind, "scheduler.step",
                    int(rng.integers(0, horizon_steps))))
        governors = ("balanced", "efficiency")
        for _ in range(max(n_throttles, 0)):
            events.append(FaultEvent(
                "thermal_throttle", "scheduler.step",
                int(rng.integers(0, horizon_steps)),
                governor=governors[int(rng.integers(0, len(governors)))],
                duration_steps=int(rng.integers(2, horizon_steps + 1))))
        n_fleet = max(n_crashes, 0) + max(n_straggles, 0) \
            + max(n_drops, 0) + max(n_battery, 0)
        if n_fleet:
            if n_devices <= 0:
                raise FaultError(
                    f"fleet faults need n_devices >= 1, got {n_devices}")
            horizon = (float(horizon_seconds) if horizon_seconds is not None
                       else float(horizon_steps))
            if horizon <= 0:
                raise FaultError(
                    f"fleet horizon must be positive, got {horizon}")
            # centisecond grid: spec strings round-trip exactly through
            # float parsing, keeping replay strings canonical
            ticks = max(1, int(horizon * 100))

            def _time() -> float:
                return int(rng.integers(0, ticks)) / 100.0

            def _device() -> int:
                return int(rng.integers(0, n_devices))

            for _ in range(max(n_crashes, 0)):
                reboot = int(rng.integers(0, 2))
                duration = (int(rng.integers(50, ticks + 50)) / 100.0
                            if reboot else None)
                events.append(FaultEvent(
                    "device_crash", "fleet.device", device=_device(),
                    time_seconds=_time(), duration_seconds=duration))
            for _ in range(max(n_straggles, 0)):
                events.append(FaultEvent(
                    "straggle", "fleet.device", device=_device(),
                    time_seconds=_time(),
                    factor=1.0 + int(rng.integers(1, 8)) / 2.0,
                    duration_seconds=int(rng.integers(50, ticks + 50))
                    / 100.0))
            for _ in range(max(n_drops, 0)):
                events.append(FaultEvent(
                    "dispatch_drop", "fleet.device", device=_device(),
                    time_seconds=_time()))
            for _ in range(max(n_battery, 0)):
                events.append(FaultEvent(
                    "battery_drain", "fleet.device", device=_device(),
                    time_seconds=_time()))
        return cls(events)

    # ------------------------------------------------------------------
    def spec(self) -> str:
        """Canonical spec string round-tripping through :meth:`parse`."""
        return ",".join(e.spec() for e in self.events)

    def counts(self) -> Dict[str, int]:
        """Event count per fault kind (chaos report headers)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def fleet_events(self) -> Tuple[FaultEvent, ...]:
        """The ``fleet.device`` events, in firing order.

        Consumed by :class:`~repro.fleet.simulation.FleetSimulation`,
        which schedules each on the shared event loop at its
        ``time_seconds``; the per-run :class:`FaultInjector` skips them
        entirely, so one plan can mix device-level chaos with the
        scheduler-level faults an engine-backed device arms per run.
        """
        return tuple(sorted(
            (e for e in self.events if e.site == "fleet.device"),
            key=lambda e: (e.time_seconds, e.device, e.kind)))

    def scheduler_plan(self) -> "FaultPlan":
        """This plan minus its fleet-level events (injector's share)."""
        return FaultPlan([e for e in self.events
                          if e.site != "fleet.device"])

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r})"


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired during a run."""

    kind: str
    site: str
    at: int
    step: Optional[int] = None   # decode step when the scheduler saw it
    detail: str = ""


# exception raised per (site, kind) for raising sites; messages carry the
# allocation context the caller passes so injected OOMs are debuggable
# from the exception alone.
_RAISES = {
    ("tcm.alloc", "alloc_fail"): TCMAllocationError,
    ("rpcmem.alloc", "alloc_fail"): AddressSpaceError,
    ("kv_pool.alloc", "alloc_fail"): KVPoolExhausted,
    ("fastrpc.submit", "dma_timeout"): DMATimeoutError,
    ("fastrpc.submit", "session_abort"): SessionAbortError,
    ("scheduler.step", "dma_timeout"): DMATimeoutError,
    ("scheduler.step", "session_abort"): SessionAbortError,
    ("scheduler.step", "alloc_fail"): KVPoolExhausted,
}


class FaultInjector:
    """Consumes a :class:`FaultPlan` during one run.

    Operation-indexed sites call :meth:`maybe_raise` (or :meth:`take`)
    once per operation; the injector counts calls per site and fires
    the events whose index matches.  Step-indexed scheduler events are
    pulled with :meth:`step_events`.  Every fired event is appended to
    :attr:`injected` and recorded as a ``resilience.fault`` span plus
    the ``repro.resilience.faults_injected`` counter, so chaos runs are
    auditable from the trace alone.

    Each event fires exactly once; :attr:`remaining` counts the events
    still pending, which chaos tests assert reaches zero.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._by_site: Dict[str, Dict[int, List[FaultEvent]]] = {}
        for event in plan:
            if event.site == "fleet.device":
                # device-level events belong to the fleet layer; they
                # never fire through per-run operation counting
                continue
            self._by_site.setdefault(event.site, {}).setdefault(
                event.at, []).append(event)
        self._counters: Dict[str, int] = {}
        self.injected: List[FaultRecord] = []
        #: Optional :class:`~repro.sim.SimClock` the owning run charges
        #: recovery time to; when set, fired faults also land on the
        #: structured event log (:mod:`repro.obs.timeline`) with their
        #: simulated timestamp.  Under the fleet layer this is the
        #: device-local clock of the shared event-loop kernel, so fault
        #: timestamps line up with the fleet timeline.
        self.clock = None

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        return sum(len(evs) for site in self._by_site.values()
                   for evs in site.values())

    def site_index(self, site: str) -> int:
        """Operations observed so far at ``site``."""
        return self._counters.get(site, 0)

    def _record(self, event: FaultEvent, index: int,
                step: Optional[int] = None, detail: str = "") -> FaultRecord:
        record = FaultRecord(kind=event.kind, site=event.site, at=index,
                             step=step, detail=detail)
        self.injected.append(record)
        if obs_trace.enabled():
            reg = obs_metrics.get_metrics()
            reg.counter("repro.resilience.faults_injected").inc()
            reg.counter("repro.resilience.faults_injected",
                        labels={"kind": event.kind,
                                "site": event.site}).inc()
            with obs_trace.span("resilience.fault", category="resilience",
                                kind=event.kind, site=event.site,
                                at=index, step=step if step is not None
                                else -1):
                pass
        if self.clock is not None and obs_timeline.timeline_enabled():
            obs_timeline.emit("fault", self.clock.total_seconds, step=step,
                              fault_kind=event.kind, site=event.site,
                              at=index)
        return record

    # ------------------------------------------------------------------
    def take(self, site: str, index: Optional[int] = None
             ) -> List[FaultEvent]:
        """Pop the events firing at this operation of ``site``.

        With ``index=None`` the injector's per-site call counter is
        used (and advanced); pass an explicit index for step-indexed
        sites where retried steps must not re-count.
        """
        if index is None:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
        pending = self._by_site.get(site)
        if not pending:
            return []
        return pending.pop(index, [])

    def maybe_raise(self, site: str, index: Optional[int] = None,
                    detail: str = "") -> None:
        """Fire any event scheduled for this operation by raising.

        Used by the operation-indexed hooks in :class:`~repro.npu.memory.TCM`,
        :class:`~repro.npu.memory.RpcMemHeap`,
        :class:`~repro.llm.block_pool.BlockPool` and
        :class:`~repro.npu.soc.FastRPCSession`.  ``detail`` is embedded
        in the exception message (requested vs. free bytes etc.).
        """
        events = self.take(site, index)
        if not events:
            return
        event = events[0]
        fired_at = (index if index is not None
                    else self._counters.get(site, 1) - 1)
        self._record(event, fired_at, detail=detail)
        exc = _RAISES.get((site, event.kind), FaultError)
        message = (f"injected {event.kind} at {site}[{fired_at}]")
        if detail:
            message += f": {detail}"
        raise exc(message)

    def step_events(self, step: int) -> List[FaultEvent]:
        """Scheduler-step events for decode step ``step`` (recorded)."""
        events = self.take("scheduler.step", step)
        for event in events:
            self._record(event, step, step=step,
                         detail=f"governor={event.governor}"
                         if event.kind == "thermal_throttle" else "")
        return events
