"""Activation-aware weight quantization (AWQ), simplified (§3.3, Table 1).

The paper's Table 1 contrasts QNN's per-channel quantization with AWQ
per-group 4-bit quantization to show that fine-grained, activation-aware
scaling is what preserves reasoning ability.  This module implements the
core AWQ mechanism on top of our group quantizers:

1. estimate per-input-channel activation magnitudes from a calibration
   batch;
2. grid-search a smoothing exponent ``alpha`` so that weights are scaled
   by ``s_c = act_mag_c ** alpha`` before quantization (and activations
   by ``1 / s_c`` at runtime, folded into the previous op);
3. pick the ``alpha`` minimizing the output-reconstruction error of the
   layer on the calibration batch.

This is the published AWQ search reduced to its essentials — enough to
demonstrate the accuracy ordering of Table 1 with real arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import QuantizationError
from .schemes import Q4_GROUP_SIZE
from .tile_quant import QuantizedWeight, dequantize_weight, quantize_tile_group

__all__ = ["AWQResult", "awq_quantize", "activation_channel_scales"]


@dataclass
class AWQResult:
    """Outcome of the AWQ search for one linear layer."""

    quantized: QuantizedWeight
    channel_scales: np.ndarray  # per-input-channel weight multiplier s_c
    alpha: float
    reconstruction_error: float

    def dequantized_weight(self) -> np.ndarray:
        """Effective FP16 weight after undoing the channel scaling."""
        scaled = dequantize_weight(self.quantized).astype(np.float32)
        return (scaled / self.channel_scales[:, None]).astype(np.float16)


def activation_channel_scales(calibration: np.ndarray) -> np.ndarray:
    """Mean absolute activation magnitude per input channel."""
    acts = np.asarray(calibration, dtype=np.float32)
    if acts.ndim != 2:
        raise QuantizationError(
            f"calibration batch must be (tokens, channels), got {acts.shape}")
    mags = np.abs(acts).mean(axis=0)
    return np.maximum(mags, 1e-8)


def _layer_error(weight: np.ndarray, quantized_effective: np.ndarray,
                 calibration: np.ndarray) -> float:
    reference = calibration @ weight
    approx = calibration @ quantized_effective.astype(np.float32)
    return float(np.mean((reference - approx) ** 2))


def awq_quantize(weight: np.ndarray, calibration: np.ndarray, bits: int = 4,
                 group_size: int = Q4_GROUP_SIZE,
                 alpha_grid: Optional[np.ndarray] = None) -> AWQResult:
    """AWQ-style quantization of one ``(in, out)`` weight matrix.

    ``calibration`` is a ``(tokens, in)`` activation sample.  For each
    candidate ``alpha`` the weight rows are multiplied by
    ``mag ** alpha``, tile-group quantized, rescaled back, and scored by
    output reconstruction MSE on the calibration batch; the best
    candidate wins.  ``alpha = 0`` reduces to plain RTN group
    quantization, so AWQ can never lose to it on the calibration batch.
    """
    w = np.asarray(weight, dtype=np.float32)
    if w.ndim != 2:
        raise QuantizationError(f"expected a weight matrix, got shape {w.shape}")
    acts = np.asarray(calibration, dtype=np.float32)
    if acts.shape[1] != w.shape[0]:
        raise QuantizationError(
            f"calibration channels {acts.shape[1]} != weight input dim {w.shape[0]}")
    if alpha_grid is None:
        alpha_grid = np.linspace(0.0, 1.0, 11)

    magnitudes = activation_channel_scales(acts)
    best: Optional[Tuple[float, float, QuantizedWeight, np.ndarray]] = None
    for alpha in alpha_grid:
        scales = magnitudes ** float(alpha)
        scales = scales / np.exp(np.mean(np.log(scales)))  # normalize geometric mean
        quantized = quantize_tile_group(w * scales[:, None], bits=bits,
                                        group_size=group_size)
        effective = dequantize_weight(quantized).astype(np.float32) / scales[:, None]
        error = _layer_error(w, effective, acts)
        if best is None or error < best[0]:
            best = (error, float(alpha), quantized, scales)

    error, alpha, quantized, scales = best
    return AWQResult(quantized=quantized, channel_scales=scales, alpha=alpha,
                     reconstruction_error=error)
