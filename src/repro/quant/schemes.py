"""Base quantization schemes: Q4_0, Q8_0, per-channel and per-tensor RTN.

These are the reference schemes the paper builds on:

* ``Q4_0`` — llama.cpp's symmetric 4-bit scheme: groups of 32 weights
  share one FP16 scale; 16 bytes of packed nibbles + 2 bytes of scale
  give 4.5 bits per weight (Section 7.1);
* ``Q8_0`` — symmetric 8-bit, 8.5 BPW, used for the FFN down projection
  to protect accuracy (Section 7.1);
* per-channel / per-tensor round-to-nearest — the coarse-grained schemes
  native to mobile NPUs and QNN, whose accuracy collapse on reasoning
  tasks motivates the whole design (Table 1, Section 3.3).

All quantizers are round-to-nearest (RTN); scales are stored in FP16 as
on device, so quantization error measurements include scale rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import GroupSizeError, QuantizationError

__all__ = [
    "Q4_GROUP_SIZE",
    "Q4_0_BPW",
    "Q8_0_BPW",
    "quantize_q4_0",
    "dequantize_q4_0",
    "quantize_q8_0",
    "dequantize_q8_0",
    "quantize_per_channel",
    "quantize_per_tensor",
    "QuantizedGroups",
    "quantization_mse",
    "bits_per_weight",
]

Q4_GROUP_SIZE = 32
Q4_0_BPW = (16 + 2) * 8 / 32  # 4.5 bits per weight
Q8_0_BPW = (32 + 2) * 8 / 32  # 8.5 bits per weight


@dataclass
class QuantizedGroups:
    """Group-quantized values: integer codes plus per-group FP16 scales.

    ``codes`` has shape ``(n_groups, group_size)`` holding *unsigned*
    codes (bias already added for 4-bit), ``scales`` has one FP16 entry
    per group.  ``bits`` distinguishes 4- and 8-bit payloads.
    """

    codes: np.ndarray
    scales: np.ndarray
    bits: int
    group_size: int

    def __post_init__(self) -> None:
        if self.codes.ndim != 2 or self.codes.shape[1] != self.group_size:
            raise QuantizationError(
                f"codes must be (n_groups, {self.group_size}), got {self.codes.shape}")
        if self.scales.shape != (self.codes.shape[0],):
            raise QuantizationError(
                f"scales must be ({self.codes.shape[0]},), got {self.scales.shape}")

    @property
    def n_groups(self) -> int:
        return self.codes.shape[0]

    @property
    def n_elements(self) -> int:
        return self.codes.size


def _validate_group_shape(values: np.ndarray, group_size: int) -> np.ndarray:
    flat = np.asarray(values, dtype=np.float32).ravel()
    if group_size <= 0:
        raise GroupSizeError(f"group size must be positive, got {group_size}")
    if flat.size == 0:
        raise GroupSizeError("cannot quantize an empty tensor")
    if flat.size % group_size != 0:
        raise GroupSizeError(
            f"{flat.size} elements do not divide into groups of {group_size}")
    return flat.reshape(-1, group_size)


def quantize_q4_0(values: np.ndarray, group_size: int = Q4_GROUP_SIZE) -> QuantizedGroups:
    """Symmetric 4-bit RTN group quantization (llama.cpp Q4_0 convention).

    Per group the scale is ``absmax / 8``; codes are
    ``clip(round(x / scale) + 8, 0, 15)`` so dequantized values span
    ``[-8, 7] * scale`` — the range the vlut16 dequantization table in
    Fig. 9 reproduces.
    """
    groups = _validate_group_shape(values, group_size)
    absmax = np.abs(groups).max(axis=1)
    scales = (absmax / 8.0).astype(np.float16)
    safe = np.where(scales.astype(np.float32) > 0, scales.astype(np.float32), 1.0)
    q = np.rint(groups / safe[:, None]).astype(np.int32)
    codes = np.clip(q + 8, 0, 15).astype(np.uint8)
    return QuantizedGroups(codes=codes, scales=scales, bits=4, group_size=group_size)


def dequantize_q4_0(quantized: QuantizedGroups) -> np.ndarray:
    """Dequantize Q4_0 codes back to FP16 values, flat in group order."""
    if quantized.bits != 4:
        raise QuantizationError(f"expected 4-bit payload, got {quantized.bits}-bit")
    centred = quantized.codes.astype(np.float32) - 8.0
    out = centred * quantized.scales.astype(np.float32)[:, None]
    return out.astype(np.float16).ravel()


def quantize_q8_0(values: np.ndarray, group_size: int = Q4_GROUP_SIZE) -> QuantizedGroups:
    """Symmetric 8-bit RTN group quantization (llama.cpp Q8_0 convention)."""
    groups = _validate_group_shape(values, group_size)
    absmax = np.abs(groups).max(axis=1)
    scales = (absmax / 127.0).astype(np.float16)
    safe = np.where(scales.astype(np.float32) > 0, scales.astype(np.float32), 1.0)
    q = np.clip(np.rint(groups / safe[:, None]), -127, 127).astype(np.int32)
    codes = (q + 128).astype(np.uint8)
    return QuantizedGroups(codes=codes, scales=scales, bits=8, group_size=group_size)


def dequantize_q8_0(quantized: QuantizedGroups) -> np.ndarray:
    """Dequantize Q8_0 codes back to FP16 values, flat in group order."""
    if quantized.bits != 8:
        raise QuantizationError(f"expected 8-bit payload, got {quantized.bits}-bit")
    centred = quantized.codes.astype(np.float32) - 128.0
    out = centred * quantized.scales.astype(np.float32)[:, None]
    return out.astype(np.float16).ravel()


def quantize_per_channel(weight: np.ndarray, bits: int = 4,
                         axis: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """Coarse per-channel symmetric quantization (QNN-style).

    One scale per output channel.  Returns the *dequantized* weight and
    the scales; this is the scheme whose reasoning-task collapse is shown
    in Table 1.
    """
    w = np.asarray(weight, dtype=np.float32)
    if w.ndim != 2:
        raise QuantizationError(f"per-channel quantization expects a matrix, got {w.shape}")
    if bits not in (4, 8):
        raise QuantizationError(f"unsupported bit width {bits}")
    qmax = 2 ** (bits - 1) - 1 if bits == 8 else 8
    reduce_axis = 1 - axis
    absmax = np.abs(w).max(axis=reduce_axis, keepdims=True)
    scales = (absmax / qmax).astype(np.float16).astype(np.float32)
    safe = np.where(scales > 0, scales, 1.0)
    lo, hi = (-8, 7) if bits == 4 else (-127, 127)
    q = np.clip(np.rint(w / safe), lo, hi)
    return (q * safe).astype(np.float16), scales.squeeze(reduce_axis)


def quantize_per_tensor(weight: np.ndarray, bits: int = 4) -> Tuple[np.ndarray, float]:
    """Coarsest scheme: one scale for the whole tensor."""
    w = np.asarray(weight, dtype=np.float32)
    if bits not in (4, 8):
        raise QuantizationError(f"unsupported bit width {bits}")
    qmax = 8 if bits == 4 else 127
    scale = float(np.float16(np.abs(w).max() / qmax)) or 1.0
    lo, hi = (-8, 7) if bits == 4 else (-127, 127)
    q = np.clip(np.rint(w / scale), lo, hi)
    return (q * scale).astype(np.float16), scale


def quantization_mse(original: np.ndarray, dequantized: np.ndarray) -> float:
    """Mean squared quantization error between two equal-size tensors."""
    a = np.asarray(original, dtype=np.float64).ravel()
    b = np.asarray(dequantized, dtype=np.float64).ravel()
    if a.size != b.size:
        raise QuantizationError(f"size mismatch: {a.size} vs {b.size}")
    return float(np.mean((a - b) ** 2))


def bits_per_weight(quantized: QuantizedGroups) -> float:
    """Effective storage cost in bits per weight (codes + FP16 scales)."""
    payload_bits = quantized.bits * quantized.group_size + 16
    return payload_bits / quantized.group_size
