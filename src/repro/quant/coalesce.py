"""Super-group coalescing of quantization groups (§5.1.2, Fig. 7).

Quantized weights default to an Array-of-Structures (AoS) layout: each
Q4_0 group is 16 bytes of packed INT4 codes followed by a 2-byte FP16
scale.  A single group is far too small to fill a 128-byte HVX register,
so register loads are mostly wasted.

The paper coalesces 8 groups into a *super-group* and reorganizes its
content so that the INT4 codes of 256 consecutive elements occupy exactly
one full HVX vector register, followed by the 8 scales (16 bytes).  This
module implements nibble packing, both layouts, and the register
utilization metric that quantifies the win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import QuantizationError
from ..npu.hvx import VECTOR_BYTES
from .schemes import QuantizedGroups

__all__ = [
    "SUPER_GROUP_FACTOR",
    "pack_nibbles",
    "unpack_nibbles",
    "pack_aos_q4",
    "unpack_aos_q4",
    "pack_supergroups_q4",
    "unpack_supergroups_q4",
    "register_utilization",
    "PackedWeight",
]

SUPER_GROUP_FACTOR = 8  # 8 groups of 32 -> 256 INT4 values = 128 bytes


@dataclass(frozen=True)
class PackedWeight:
    """A packed quantized byte stream plus its layout descriptor."""

    data: np.ndarray  # uint8
    layout: str       # "aos" or "supergroup"
    n_groups: int
    group_size: int
    coalesce: int = 1


def pack_nibbles(codes: np.ndarray) -> np.ndarray:
    """Pack unsigned 4-bit codes pairwise into bytes (low nibble first)."""
    flat = np.asarray(codes, dtype=np.uint8).ravel()
    if flat.size % 2 != 0:
        raise QuantizationError(f"nibble packing needs an even count, got {flat.size}")
    if np.any(flat > 15):
        raise QuantizationError("codes exceed 4-bit range")
    return (flat[0::2] | (flat[1::2] << np.uint8(4))).astype(np.uint8)


def unpack_nibbles(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_nibbles`."""
    data = np.asarray(packed, dtype=np.uint8).ravel()
    out = np.empty(data.size * 2, dtype=np.uint8)
    out[0::2] = data & np.uint8(0x0F)
    out[1::2] = data >> np.uint8(4)
    return out


def _require_q4(groups: QuantizedGroups) -> None:
    if groups.bits != 4:
        raise QuantizationError(f"expected 4-bit groups, got {groups.bits}-bit")
    if groups.group_size % 2 != 0:
        raise QuantizationError("group size must be even for nibble packing")


def pack_aos_q4(groups: QuantizedGroups) -> PackedWeight:
    """Conventional AoS layout: [codes(16B) | scale(2B)] per group."""
    _require_q4(groups)
    code_bytes = groups.group_size // 2
    record = code_bytes + 2
    out = np.empty(groups.n_groups * record, dtype=np.uint8)
    scale_bytes = groups.scales.astype(np.float16).view(np.uint8).reshape(-1, 2)
    for i in range(groups.n_groups):
        base = i * record
        out[base:base + code_bytes] = pack_nibbles(groups.codes[i])
        out[base + code_bytes:base + record] = scale_bytes[i]
    return PackedWeight(data=out, layout="aos", n_groups=groups.n_groups,
                        group_size=groups.group_size)


def unpack_aos_q4(packed: PackedWeight) -> QuantizedGroups:
    """Inverse of :func:`pack_aos_q4`."""
    if packed.layout != "aos":
        raise QuantizationError(f"expected aos layout, got {packed.layout!r}")
    code_bytes = packed.group_size // 2
    record = code_bytes + 2
    data = packed.data.reshape(packed.n_groups, record)
    codes = np.stack([unpack_nibbles(row[:code_bytes]) for row in data])
    scales = np.ascontiguousarray(data[:, code_bytes:]).view(np.float16).ravel()
    return QuantizedGroups(codes=codes, scales=scales.copy(), bits=4,
                           group_size=packed.group_size)


def pack_supergroups_q4(groups: QuantizedGroups,
                        coalesce: int = SUPER_GROUP_FACTOR) -> PackedWeight:
    """Coalesced super-group layout (Fig. 7).

    Each super-group stores the packed codes of ``coalesce`` groups
    contiguously (one full HVX register for the default 8x32 = 256
    elements), followed by the ``coalesce`` FP16 scales.
    """
    _require_q4(groups)
    if coalesce <= 0:
        raise QuantizationError(f"coalesce factor must be positive, got {coalesce}")
    if groups.n_groups % coalesce != 0:
        raise QuantizationError(
            f"{groups.n_groups} groups do not divide into super-groups of {coalesce}")
    code_bytes = coalesce * groups.group_size // 2
    record = code_bytes + 2 * coalesce
    n_super = groups.n_groups // coalesce
    out = np.empty(n_super * record, dtype=np.uint8)
    scale_bytes = groups.scales.astype(np.float16).view(np.uint8).reshape(-1, 2)
    for s in range(n_super):
        base = s * record
        block = groups.codes[s * coalesce:(s + 1) * coalesce].ravel()
        out[base:base + code_bytes] = pack_nibbles(block)
        scales = scale_bytes[s * coalesce:(s + 1) * coalesce].ravel()
        out[base + code_bytes:base + record] = scales
    return PackedWeight(data=out, layout="supergroup", n_groups=groups.n_groups,
                        group_size=groups.group_size, coalesce=coalesce)


def unpack_supergroups_q4(packed: PackedWeight) -> QuantizedGroups:
    """Inverse of :func:`pack_supergroups_q4`."""
    if packed.layout != "supergroup":
        raise QuantizationError(f"expected supergroup layout, got {packed.layout!r}")
    coalesce = packed.coalesce
    code_bytes = coalesce * packed.group_size // 2
    record = code_bytes + 2 * coalesce
    n_super = packed.n_groups // coalesce
    data = packed.data.reshape(n_super, record)
    codes = np.empty((packed.n_groups, packed.group_size), dtype=np.uint8)
    scales = np.empty(packed.n_groups, dtype=np.float16)
    for s in range(n_super):
        block = unpack_nibbles(data[s, :code_bytes])
        codes[s * coalesce:(s + 1) * coalesce] = block.reshape(coalesce,
                                                               packed.group_size)
        raw = np.ascontiguousarray(data[s, code_bytes:]).view(np.float16)
        scales[s * coalesce:(s + 1) * coalesce] = raw
    return QuantizedGroups(codes=codes, scales=scales, bits=4,
                           group_size=packed.group_size)


def register_utilization(packed: PackedWeight) -> float:
    """Fraction of each 128-byte register load holding INT4 codes.

    For the AoS layout a register load aligned to a group start covers
    the 16-byte code chunk plus the trailing scale and the next groups'
    mixed content; the *useful contiguous* code run is one group's codes.
    For the super-group layout it is ``coalesce`` groups' codes, a full
    register at the default factor — the quantity Fig. 7 maximizes.
    """
    if packed.layout == "aos":
        contiguous = packed.group_size // 2
    else:
        contiguous = packed.coalesce * packed.group_size // 2
    return min(contiguous, VECTOR_BYTES) / VECTOR_BYTES
