"""Patch-geometry group quantization (ablation of §5.1.1).

The paper quantizes in 2x16 patches because that is what 32 consecutive
elements of the HMX memory layout cover, and argues the statistics match
conventional 1x32 column runs for zero-mean Gaussian weights.  This
module generalizes the grouping to an arbitrary ``rows x cols`` patch so
the claim can be ablated: for i.i.d.-ish weights every geometry of equal
area should quantize equally well, while for weights with structured
row/column magnitude the geometry starts to matter.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import QuantizationError
from .schemes import quantization_mse

__all__ = ["quantize_patch_group", "patch_geometry_mse"]


def quantize_patch_group(weight: np.ndarray,
                         patch: Tuple[int, int]) -> np.ndarray:
    """Quantize-dequantize with Q4_0 groups shaped as ``rows x cols`` patches.

    The weight must tile exactly into patches.  Returns the dequantized
    FP16 matrix (the quantity accuracy experiments compare).
    """
    w = np.asarray(weight, dtype=np.float32)
    rows, cols = patch
    if rows <= 0 or cols <= 0:
        raise QuantizationError(f"patch dims must be positive, got {patch}")
    if w.ndim != 2 or w.shape[0] % rows or w.shape[1] % cols:
        raise QuantizationError(
            f"matrix {w.shape} does not tile into {rows}x{cols} patches")
    r_tiles = w.shape[0] // rows
    c_tiles = w.shape[1] // cols
    blocks = w.reshape(r_tiles, rows, c_tiles, cols).transpose(0, 2, 1, 3)
    flat = blocks.reshape(r_tiles * c_tiles, rows * cols)

    absmax = np.abs(flat).max(axis=1)
    scales = (absmax / 8.0).astype(np.float16).astype(np.float32)
    safe = np.where(scales > 0, scales, 1.0)
    q = np.clip(np.rint(flat / safe[:, None]), -8, 7)
    back = (q * safe[:, None]).astype(np.float32)

    blocks_back = back.reshape(r_tiles, c_tiles, rows, cols).transpose(0, 2, 1, 3)
    return blocks_back.reshape(w.shape).astype(np.float16)


def patch_geometry_mse(weight: np.ndarray,
                       patch: Tuple[int, int]) -> float:
    """Quantization MSE of one patch geometry on a weight matrix."""
    back = quantize_patch_group(weight, patch)
    return quantization_mse(weight, back)
