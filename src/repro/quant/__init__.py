"""Quantization subsystem: schemes, layouts, codebooks, AWQ.

* :mod:`repro.quant.schemes` — Q4_0 / Q8_0 group RTN, per-channel,
  per-tensor (the QNN-style baselines of Table 1).
* :mod:`repro.quant.tile_quant` — the paper's hardware-aware tile-group
  quantization (§5.1.1) and its conventional counterpart.
* :mod:`repro.quant.coalesce` — AoS vs super-group packing (§5.1.2).
* :mod:`repro.quant.codebooks` — Q4_0 / NF4 / FP4 / IQ4_NL tables for the
  vlut16 dequantization path (§5.2.2).
* :mod:`repro.quant.awq` — simplified activation-aware quantization.
"""

from .awq import AWQResult, awq_quantize
from .codebooks import (
    CODEBOOKS,
    Codebook,
    dequantize_with_codebook,
    get_codebook,
    quantize_with_codebook,
)
from .coalesce import (
    SUPER_GROUP_FACTOR,
    PackedWeight,
    pack_aos_q4,
    pack_nibbles,
    pack_supergroups_q4,
    register_utilization,
    unpack_aos_q4,
    unpack_nibbles,
    unpack_supergroups_q4,
)
from .patch_quant import patch_geometry_mse, quantize_patch_group
from .schemes import (
    Q4_GROUP_SIZE,
    Q4_0_BPW,
    Q8_0_BPW,
    QuantizedGroups,
    bits_per_weight,
    dequantize_q4_0,
    dequantize_q8_0,
    quantization_mse,
    quantize_per_channel,
    quantize_per_tensor,
    quantize_q4_0,
    quantize_q8_0,
)
from .tile_quant import (
    QuantizedWeight,
    dequantize_weight,
    quantize_conventional_group,
    quantize_tile_group,
    tile_group_geometry,
)

__all__ = [
    "AWQResult",
    "awq_quantize",
    "CODEBOOKS",
    "Codebook",
    "dequantize_with_codebook",
    "get_codebook",
    "quantize_with_codebook",
    "SUPER_GROUP_FACTOR",
    "PackedWeight",
    "pack_aos_q4",
    "pack_nibbles",
    "pack_supergroups_q4",
    "register_utilization",
    "unpack_aos_q4",
    "unpack_nibbles",
    "unpack_supergroups_q4",
    "patch_geometry_mse",
    "quantize_patch_group",
    "Q4_GROUP_SIZE",
    "Q4_0_BPW",
    "Q8_0_BPW",
    "QuantizedGroups",
    "bits_per_weight",
    "dequantize_q4_0",
    "dequantize_q8_0",
    "quantization_mse",
    "quantize_per_channel",
    "quantize_per_tensor",
    "quantize_q4_0",
    "quantize_q8_0",
    "QuantizedWeight",
    "dequantize_weight",
    "quantize_conventional_group",
    "quantize_tile_group",
    "tile_group_geometry",
]
