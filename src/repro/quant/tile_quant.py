"""Tile-group quantization — the paper's hardware-aware scheme (§5.1.1).

Conventional group quantization forms groups of 32 *along the
accumulation axis* of a column-major weight matrix.  On the HMX unit this
layout is hostile: elements contiguous in the quantization group land
scattered across the permuted tile layout (Fig. 6), forcing expensive
vector scatter operations at dequantization time.

The paper's scheme instead:

1. permutes the weights into the HMX memory layout *first* (column-major
   32x32 tiles, paired-row shuffle — Fig. 4);
2. applies round-to-nearest group quantization over *contiguous runs of
   32 elements in the new memory order*, which correspond to 2x16
   rectangular tiles of the original matrix;
3. stores codes and scales in that order, so runtime dequantization
   writes FP16 weights to TCM purely sequentially.

Because pretrained weights are approximately zero-mean Gaussian, the
statistics inside a reshaped 2x16 tile group match those of a
conventional 1x32 run, so quantization error is comparable — the claim
Table 4 verifies and our benchmarks re-measure.

This module provides both quantizers behind one interface so accuracy
(Table 4) and layout/performance (Fig. 15) experiments share code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import QuantizationError
from ..npu.hmx import TILE_DIM, hmx_layout_order, pad_to_tiles
from .schemes import (
    Q4_GROUP_SIZE,
    QuantizedGroups,
    dequantize_q4_0,
    dequantize_q8_0,
    quantize_q4_0,
    quantize_q8_0,
)

__all__ = [
    "QuantizedWeight",
    "quantize_tile_group",
    "quantize_conventional_group",
    "dequantize_weight",
    "tile_group_geometry",
]


@dataclass
class QuantizedWeight:
    """A quantized weight matrix plus the metadata to reconstruct it.

    ``layout`` is ``"hmx_tile"`` for the paper's scheme (codes stored in
    HMX memory order) or ``"column_major"`` for the conventional scheme
    (codes stored column-by-column in original order).
    """

    groups: QuantizedGroups
    layout: str
    original_shape: Tuple[int, int]
    padded_shape: Tuple[int, int]

    _LAYOUTS = ("hmx_tile", "column_major")

    def __post_init__(self) -> None:
        if self.layout not in self._LAYOUTS:
            raise QuantizationError(f"unknown layout {self.layout!r}")

    @property
    def storage_bytes(self) -> int:
        """On-device storage: packed codes plus FP16 scales."""
        code_bytes = self.groups.n_elements * self.groups.bits // 8
        return code_bytes + self.groups.n_groups * 2


def _dequant_flat(groups: QuantizedGroups) -> np.ndarray:
    if groups.bits == 4:
        return dequantize_q4_0(groups)
    if groups.bits == 8:
        return dequantize_q8_0(groups)
    raise QuantizationError(f"unsupported bit width {groups.bits}")


def _quant_flat(flat: np.ndarray, bits: int, group_size: int) -> QuantizedGroups:
    if bits == 4:
        return quantize_q4_0(flat, group_size)
    if bits == 8:
        return quantize_q8_0(flat, group_size)
    raise QuantizationError(f"unsupported bit width {bits}")


def quantize_tile_group(weight: np.ndarray, bits: int = 4,
                        group_size: int = Q4_GROUP_SIZE) -> QuantizedWeight:
    """Quantize with the paper's HMX-layout tile groups (§5.1.1).

    The weight is zero-padded to whole 32x32 tiles, permuted into HMX
    memory order, then group-quantized over contiguous runs of
    ``group_size`` elements of that order (2x16 tiles for groups of 32).
    """
    w = np.asarray(weight, dtype=np.float32)
    if w.ndim != 2:
        raise QuantizationError(f"expected a weight matrix, got shape {w.shape}")
    padded = pad_to_tiles(w)
    order = hmx_layout_order(*padded.shape)
    layout_values = padded.ravel()[order]
    groups = _quant_flat(layout_values, bits, group_size)
    return QuantizedWeight(groups=groups, layout="hmx_tile",
                           original_shape=w.shape, padded_shape=padded.shape)


def quantize_conventional_group(weight: np.ndarray, bits: int = 4,
                                group_size: int = Q4_GROUP_SIZE) -> QuantizedWeight:
    """Quantize with conventional column-major accumulation-axis groups.

    This is the llama.cpp CPU-backend layout the paper uses as the
    mismatch example (Fig. 6): groups of 32 run down each column.
    The column length must divide into whole groups, which holds for all
    transformer projection shapes (multiples of 32).
    """
    w = np.asarray(weight, dtype=np.float32)
    if w.ndim != 2:
        raise QuantizationError(f"expected a weight matrix, got shape {w.shape}")
    if w.shape[0] % group_size != 0:
        raise QuantizationError(
            f"column length {w.shape[0]} does not divide into groups of {group_size}")
    column_major = w.T.ravel()  # column-by-column traversal of the matrix
    groups = _quant_flat(column_major, bits, group_size)
    return QuantizedWeight(groups=groups, layout="column_major",
                           original_shape=w.shape, padded_shape=w.shape)


def dequantize_weight(quantized: QuantizedWeight) -> np.ndarray:
    """Reconstruct the FP16 weight matrix in its original shape."""
    flat = _dequant_flat(quantized.groups).astype(np.float32)
    rows, cols = quantized.padded_shape
    if quantized.layout == "hmx_tile":
        order = hmx_layout_order(rows, cols)
        out = np.empty(rows * cols, dtype=np.float32)
        out[order] = flat
        matrix = out.reshape(rows, cols)
    else:
        matrix = flat.reshape(cols, rows).T
    o_rows, o_cols = quantized.original_shape
    return matrix[:o_rows, :o_cols].astype(np.float16)


def dequantize_layout_stream(quantized: QuantizedWeight) -> np.ndarray:
    """Dequantize codes *in storage order* (what the NPU kernel streams).

    For the HMX-tile layout the result is directly the FP16 weight bytes
    in the order the matrix unit consumes them — no scatter needed.  For
    the conventional layout the stream is in column-major original order
    and still requires scatter into the tile layout (the Fig. 15
    baseline).
    """
    return _dequant_flat(quantized.groups)


def tile_group_geometry(group_size: int = Q4_GROUP_SIZE) -> Tuple[int, int]:
    """Shape of the original-matrix patch one tile group covers.

    With the paired-row shuffle, ``group_size`` consecutive layout
    elements cover 2 rows x ``group_size // 2`` columns — the "2x16
    tiles" of Section 5.1.1 for groups of 32.
    """
    if group_size % 2 != 0 or group_size > 2 * TILE_DIM:
        raise QuantizationError(
            f"group size must be even and at most {2 * TILE_DIM}, got {group_size}")
    return 2, group_size // 2
