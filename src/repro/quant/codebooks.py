"""4-bit codebooks for LUT-centric dequantization (§5.2.2).

The vlut16-based dequantization path converts 4-bit codes to FP16 values
with a single table lookup, so supporting a different 4-bit encoding is
"simply adjusting the table contents".  This module defines the
codebooks the paper names:

* ``Q4_0`` — the uniform integer grid ``[-8, 7]`` (scaled per group);
* ``NF4`` — the NormalFloat-4 quantile grid of QLoRA (Dettmers et al.);
* ``FP4`` — a 4-bit floating-point grid (1 sign, 2 exponent, 1 mantissa);
* ``IQ4_NL`` — llama.cpp's non-linear INT4 grid.

Each codebook is a 16-entry FP16 table indexed by the raw code, plus a
round-to-nearest encoder, so the GEMM kernels can be parameterized by
codebook without changing any data movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import CodebookError
from .schemes import QuantizedGroups, _validate_group_shape

__all__ = [
    "Codebook",
    "Q4_0_CODEBOOK",
    "NF4_CODEBOOK",
    "FP4_CODEBOOK",
    "IQ4_NL_CODEBOOK",
    "CODEBOOKS",
    "get_codebook",
    "quantize_with_codebook",
    "dequantize_with_codebook",
]


@dataclass(frozen=True)
class Codebook:
    """A named 16-entry reconstruction table for 4-bit codes."""

    name: str
    values: np.ndarray  # 16 FP16 entries, code -> value (unit scale)

    def __post_init__(self) -> None:
        vals = np.asarray(self.values, dtype=np.float16)
        if vals.shape != (16,):
            raise CodebookError(f"codebook {self.name!r} must have 16 entries")
        object.__setattr__(self, "values", vals)

    @property
    def max_abs(self) -> float:
        return float(np.abs(self.values.astype(np.float32)).max())


Q4_0_CODEBOOK = Codebook("q4_0", np.arange(16, dtype=np.float32) - 8.0)

# QLoRA NF4 quantiles (normalized to [-1, 1]).
NF4_CODEBOOK = Codebook("nf4", np.array([
    -1.0, -0.6961928009986877, -0.5250730514526367, -0.39491748809814453,
    -0.28444138169288635, -0.18477343022823334, -0.09105003625154495, 0.0,
    0.07958029955625534, 0.16093020141124725, 0.24611230194568634,
    0.33791524171829224, 0.44070982933044434, 0.5626170039176941,
    0.7229568362236023, 1.0,
], dtype=np.float32))

# 4-bit float: sign | 2-bit exponent | 1-bit mantissa, values for codes 0..15.
FP4_CODEBOOK = Codebook("fp4", np.array([
    0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0,
    -0.0, -0.5, -1.0, -1.5, -2.0, -3.0, -4.0, -6.0,
], dtype=np.float32))

# llama.cpp IQ4_NL non-linear kernel values.
IQ4_NL_CODEBOOK = Codebook("iq4_nl", np.array([
    -127, -104, -83, -65, -49, -35, -22, -10,
    1, 13, 25, 38, 53, 69, 89, 113,
], dtype=np.float32) / 127.0)

CODEBOOKS: Dict[str, Codebook] = {
    cb.name: cb for cb in (Q4_0_CODEBOOK, NF4_CODEBOOK, FP4_CODEBOOK, IQ4_NL_CODEBOOK)
}


def get_codebook(name: str) -> Codebook:
    try:
        return CODEBOOKS[name]
    except KeyError:
        raise CodebookError(
            f"unknown codebook {name!r}; known: {sorted(CODEBOOKS)}") from None


def quantize_with_codebook(values: np.ndarray, codebook: Codebook,
                           group_size: int = 32) -> QuantizedGroups:
    """Group quantization against an arbitrary 16-entry codebook.

    Per group the scale maps the group's absmax onto the codebook's
    largest magnitude; each value is encoded as the nearest codebook
    entry.  Dequantized values are ``codebook[code] * scale``.
    """
    groups = _validate_group_shape(values, group_size)
    absmax = np.abs(groups).max(axis=1)
    scales = (absmax / codebook.max_abs).astype(np.float16)
    safe = np.where(scales.astype(np.float32) > 0, scales.astype(np.float32), 1.0)
    normalized = groups / safe[:, None]
    table = codebook.values.astype(np.float32)
    # nearest-entry encode: distance to each of the 16 entries
    distance = np.abs(normalized[:, :, None] - table[None, None, :])
    codes = distance.argmin(axis=2).astype(np.uint8)
    return QuantizedGroups(codes=codes, scales=scales, bits=4, group_size=group_size)


def dequantize_with_codebook(quantized: QuantizedGroups,
                             codebook: Codebook) -> np.ndarray:
    """Reconstruct FP16 values from codebook-encoded groups."""
    if quantized.bits != 4:
        raise CodebookError(f"expected 4-bit codes, got {quantized.bits}-bit")
    table = codebook.values.astype(np.float32)
    out = table[quantized.codes] * quantized.scales.astype(np.float32)[:, None]
    return out.astype(np.float16).ravel()
