"""Observability: span tracing, metrics, and Perfetto trace export.

* :mod:`repro.obs.trace` — nested spans with a no-op fast path, the
  instrumentation hooks threaded through engine/model/kernel hot paths.
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  under the ``repro.<layer>.<name>`` naming convention.
* :mod:`repro.obs.export` — ``chrome://tracing`` JSON (opens in
  Perfetto) with HMX/HVX/DMA/CPU engine lanes, plus a flamegraph-style
  text report.

Tracing is disabled by default; enable it for a run with::

    from repro import obs
    tracer = obs.Tracer()
    obs.set_tracer(tracer)
    ...                                  # run the instrumented workload
    obs.write_chrome_trace("trace.json", tracer, timing=TimingModel(V75))

or use the ``python -m repro profile`` CLI, which wires this up around a
generation or TTS sweep.
"""

from .bench import (
    BenchError,
    BenchRecord,
    BenchScenario,
    BenchSnapshot,
    ComparisonReport,
    SCENARIOS,
    Threshold,
    bench_scenario,
    compare_snapshots,
    run_scenario,
    run_suite,
)
from .export import (
    ENGINE_LANES,
    chrome_trace,
    engine_utilization,
    report_data,
    text_report,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_metrics,
    histogram,
    set_metrics,
)
from .slo import SLOTracker, hdr_buckets, slo_summary
from .trace import NULL_SPAN, Span, Tracer, enabled, get_tracer, set_tracer, span

__all__ = [
    "BenchError",
    "BenchRecord",
    "BenchScenario",
    "BenchSnapshot",
    "ComparisonReport",
    "SCENARIOS",
    "Threshold",
    "bench_scenario",
    "compare_snapshots",
    "run_scenario",
    "run_suite",
    "ENGINE_LANES",
    "chrome_trace",
    "engine_utilization",
    "report_data",
    "text_report",
    "write_chrome_trace",
    "SLOTracker",
    "hdr_buckets",
    "slo_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_metrics",
    "histogram",
    "set_metrics",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "enabled",
    "get_tracer",
    "set_tracer",
    "span",
]
