"""Observability: span tracing, metrics, and Perfetto trace export.

* :mod:`repro.obs.trace` — nested spans with a no-op fast path, the
  instrumentation hooks threaded through engine/model/kernel hot paths.
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  under the ``repro.<layer>.<name>`` naming convention.
* :mod:`repro.obs.export` — ``chrome://tracing`` JSON (opens in
  Perfetto) with HMX/HVX/DMA/CPU engine lanes plus per-request timeline
  lanes, and a flamegraph-style text report.
* :mod:`repro.obs.timeline` — the structured event log: typed causal
  events (admit/wave_assign/decode_step/fault/retry/evict/...) keyed by
  request id.
* :mod:`repro.obs.stream` — windowed metric streams folding events into
  fixed sim-time windows of counters/gauges/histograms.
* :mod:`repro.obs.anomaly` — deterministic online detectors (EWMA,
  median/MAD z-score, rate-of-change) over stream series.
* :mod:`repro.obs.energy` — simulated-joule attribution per step,
  request, and wave, from the :mod:`repro.perf.power` budget.
* :mod:`repro.obs.monitor` — the ``repro monitor`` replay + report
  (imported lazily by the CLI; not re-exported here).
* :mod:`repro.obs.critical_path` — per-request critical-path
  reconstruction and bitwise latency/energy blame attribution from a
  recorded timeline, plus the lifecycle completeness validator.
* :mod:`repro.obs.blame` — fleet-wide blame aggregation (percentile
  cohorts, per-device/per-tenant splits, exemplar waterfalls) and the
  ``repro explain`` report (schema ``repro.explain/v1``).

Tracing is disabled by default; enable it for a run with::

    from repro import obs
    tracer = obs.Tracer()
    obs.set_tracer(tracer)
    ...                                  # run the instrumented workload
    obs.write_chrome_trace("trace.json", tracer, timing=TimingModel(V75))

or use the ``python -m repro profile`` CLI, which wires this up around a
generation or TTS sweep.
"""

from .bench import (
    BenchError,
    BenchRecord,
    BenchScenario,
    BenchSnapshot,
    ComparisonReport,
    SCENARIOS,
    Threshold,
    bench_scenario,
    compare_snapshots,
    run_scenario,
    run_suite,
)
from .export import (
    ENGINE_LANES,
    chrome_trace,
    engine_utilization,
    report_data,
    text_report,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_metrics,
    histogram,
    set_metrics,
)
from .anomaly import (
    AnomalyEvent,
    EwmaDetector,
    MadDetector,
    RateOfChangeDetector,
    default_detectors,
    detect_series,
)
from .blame import (
    EXPLAIN_SCHEMA,
    ExplainReport,
    aggregate_blame,
    explain_section,
    render_waterfall,
    run_explain,
)
from .critical_path import (
    FLEET_PHASES,
    PhaseSlice,
    RequestExplanation,
    SCHEDULER_PHASES,
    assert_lifecycle,
    explain_fleet_log,
    explain_log,
    explain_scheduler_log,
    quantize_ns,
    validate_lifecycle,
)
from .energy import (
    EnergyAccountant,
    EnergyBreakdown,
    EnergyModel,
    ZERO_ENERGY,
    quantize_nj,
    tokens_per_joule,
)
from .slo import SLOTracker, hdr_buckets, percentile_cutoff, slo_summary
from .stream import (
    DEFAULT_WINDOW_SECONDS,
    MetricStream,
    MetricWindow,
    stream_from_log,
)
from .timeline import (
    EVENT_KINDS,
    EventLog,
    TimelineEvent,
    emit,
    get_event_log,
    set_event_log,
    timeline_enabled,
)
from .trace import NULL_SPAN, Span, Tracer, enabled, get_tracer, set_tracer, span

__all__ = [
    "BenchError",
    "BenchRecord",
    "BenchScenario",
    "BenchSnapshot",
    "ComparisonReport",
    "SCENARIOS",
    "Threshold",
    "bench_scenario",
    "compare_snapshots",
    "run_scenario",
    "run_suite",
    "ENGINE_LANES",
    "chrome_trace",
    "engine_utilization",
    "report_data",
    "text_report",
    "write_chrome_trace",
    "SLOTracker",
    "hdr_buckets",
    "percentile_cutoff",
    "slo_summary",
    "EXPLAIN_SCHEMA",
    "ExplainReport",
    "aggregate_blame",
    "explain_section",
    "render_waterfall",
    "run_explain",
    "FLEET_PHASES",
    "PhaseSlice",
    "RequestExplanation",
    "SCHEDULER_PHASES",
    "assert_lifecycle",
    "explain_fleet_log",
    "explain_log",
    "explain_scheduler_log",
    "quantize_ns",
    "quantize_nj",
    "validate_lifecycle",
    "AnomalyEvent",
    "EwmaDetector",
    "MadDetector",
    "RateOfChangeDetector",
    "default_detectors",
    "detect_series",
    "EnergyAccountant",
    "EnergyBreakdown",
    "EnergyModel",
    "ZERO_ENERGY",
    "tokens_per_joule",
    "DEFAULT_WINDOW_SECONDS",
    "MetricStream",
    "MetricWindow",
    "stream_from_log",
    "EVENT_KINDS",
    "EventLog",
    "TimelineEvent",
    "emit",
    "get_event_log",
    "set_event_log",
    "timeline_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_metrics",
    "histogram",
    "set_metrics",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "enabled",
    "get_tracer",
    "set_tracer",
    "span",
]
