"""Continuous benchmark telemetry: scenario registry, snapshots, gating.

The paper's core claims are throughput/latency numbers, so performance
must be an *observed, regression-gated artifact* of every change — the
continuous-benchmarking discipline of serving systems like vLLM and
SGLang.  This module provides the whole bench→snapshot→compare→gate
loop on top of :mod:`repro.obs`:

* a **registry** of canonical scenarios (greedy decode, prefill, paged
  Best-of-N waves, chaos Best-of-N under a fixed fault plan, greedy
  speculative decode, GEMM/attention kernel microbenches), each run
  under a fresh :class:`~repro.obs.trace.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry` and returning a
  structured :class:`BenchRecord`;
* a **snapshot writer** that serializes a suite run to
  ``BENCH_<n>.json`` with an environment fingerprint (git sha,
  python/numpy versions, seed) so the bench history is machine
  readable;
* a **comparator** that diffs two snapshots with noise-aware,
  direction-aware per-metric thresholds (throughput dropping is bad,
  latency rising is bad, wall clock is informational) and renders a
  text/markdown regression report the ``repro bench --check`` CLI exits
  2 on.

Every metric derived from the *simulated* timeline (``sim_seconds``,
``tokens_per_second``, utilizations, KV bytes, SLO percentiles) is a
deterministic function of the seeds, so snapshots diff bitwise across
machines; host wall clock is recorded but never gated.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from . import metrics as obs_metrics
from . import trace as obs_trace
from .export import chrome_trace, engine_utilization
from .slo import slo_summary

__all__ = [
    "BenchError",
    "BenchContext",
    "BenchRecord",
    "BenchScenario",
    "BenchSnapshot",
    "SCENARIOS",
    "bench_scenario",
    "run_scenario",
    "run_suite",
    "render_profile_table",
    "PROFILE_TOP_N",
    "next_snapshot_path",
    "validate_snapshot",
    "Threshold",
    "MetricDelta",
    "ComparisonReport",
    "compare_snapshots",
    "classify_metric",
    "DEFAULT_BASELINE_PATH",
]

SNAPSHOT_SCHEMA = "repro.bench/v1"
DEFAULT_DEVICE = "oneplus_12"
DEFAULT_SEED = 0
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "baseline.json")


class BenchError(ObservabilityError):
    """Malformed snapshot, unknown scenario, or a broken bench run."""


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclass
class BenchContext:
    """Everything a scenario needs: device, timing and fresh obs state."""

    device: Any
    timing: Any
    tracer: obs_trace.Tracer
    registry: obs_metrics.MetricsRegistry
    seed: int


@dataclass
class BenchRecord:
    """Structured result of one scenario run.

    ``metrics`` maps flat metric names to floats — the values the
    comparator gates on.  ``info`` carries non-gated context (shapes,
    plan specs, counts) for humans reading the snapshot.
    """

    name: str
    metrics: Dict[str, float] = field(default_factory=dict)
    info: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name,
                "metrics": {k: float(v) for k, v in self.metrics.items()},
                "info": self.info}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "BenchRecord":
        if "name" not in data or "metrics" not in data:
            raise BenchError(f"bench record missing name/metrics: {data!r}")
        return cls(name=str(data["name"]),
                   metrics={str(k): float(v)
                            for k, v in data["metrics"].items()},
                   info=dict(data.get("info", {})))


@dataclass(frozen=True)
class BenchScenario:
    """A registered benchmark: a named, deterministic workload."""

    name: str
    description: str
    fast: bool
    fn: Callable[[BenchContext], BenchRecord]


SCENARIOS: Dict[str, BenchScenario] = {}


def bench_scenario(name: str, description: str, fast: bool = True):
    """Register a scenario function ``fn(ctx) -> BenchRecord``."""

    def decorate(fn: Callable[[BenchContext], BenchRecord]):
        if name in SCENARIOS:
            raise BenchError(f"bench scenario {name!r} already registered")
        SCENARIOS[name] = BenchScenario(name=name, description=description,
                                        fast=fast, fn=fn)
        return fn

    return decorate


# ----------------------------------------------------------------------
# scenario implementations
# ----------------------------------------------------------------------
def _tiny_engine(ctx: BenchContext, batch: int, max_context: int,
                 kv_backend: str = "contiguous"):
    from ..llm import InferenceEngine, NPUTransformer, TransformerWeights
    from ..llm.config import tiny_config

    weights = TransformerWeights.generate(tiny_config(), seed=ctx.seed)
    return InferenceEngine(NPUTransformer(weights), batch=batch,
                           max_context=max_context, device=ctx.device,
                           kv_backend=kv_backend)


def _heap_peak_bytes(engine) -> float:
    if engine.heap is None:
        return 0.0
    return float(sum(s.peak_mapped_bytes for s in engine.heap.sessions))


def _slo_metrics(ctx: BenchContext) -> Dict[str, float]:
    """Token-latency percentiles of the run, flattened for gating."""
    summary = slo_summary(ctx.registry)
    out: Dict[str, float] = {}
    token = summary.get("repro.slo.token_latency_seconds")
    if token is not None:
        for key in ("p50", "p95", "p99"):
            out[f"token_latency_{key}_seconds"] = token[key]
    return out


_BENCH_PROMPT = [3, 1, 4, 1, 5, 9, 2, 6]


@bench_scenario("decode.greedy",
                "lock-step batched decode on the tiny simulator model")
def _bench_decode(ctx: BenchContext) -> BenchRecord:
    from ..llm.sampler import Sampler

    engine = _tiny_engine(ctx, batch=4, max_context=32)
    result = engine.generate(_BENCH_PROMPT, max_new_tokens=8,
                             sampler=Sampler(temperature=0.8, seed=ctx.seed))
    tokens = result.total_generated_tokens
    return BenchRecord("decode.greedy", metrics={
        "sim_seconds": result.sim_seconds,
        "tokens_per_second": tokens / result.sim_seconds,
        "tokens_per_joule": result.tokens_per_joule,
        "decode_steps": float(result.n_decode_steps),
    }, info={"batch": 4, "prompt_tokens": len(_BENCH_PROMPT),
             "new_tokens": 8, "generated_tokens": tokens})


@bench_scenario("prefill",
                "single-sequence prompt prefill on the tiny model")
def _bench_prefill(ctx: BenchContext) -> BenchRecord:
    engine = _tiny_engine(ctx, batch=1, max_context=80)
    prompt = [(i % 500) + 1 for i in range(64)]
    wall = time.perf_counter()
    _, cost = engine.prefill(prompt)
    sim = engine._step_seconds(cost, time.perf_counter() - wall)
    return BenchRecord("prefill", metrics={
        "sim_seconds": sim,
        "tokens_per_second": len(prompt) / sim,
    }, info={"prompt_tokens": len(prompt)})


def _bench_waves(ctx: BenchContext, name: str, n_candidates: int,
                 length_schedule: Optional[Sequence[int]],
                 fault_spec: Optional[str] = None) -> BenchRecord:
    from ..llm import ContinuousBatchingScheduler
    from ..llm.sampler import Sampler

    plan = None
    if fault_spec is not None:
        from ..resilience import FaultPlan
        plan = FaultPlan.parse(fault_spec)
    engine = _tiny_engine(ctx, batch=4, max_context=64, kv_backend="paged")
    scheduler = ContinuousBatchingScheduler(engine)
    result = scheduler.generate(
        _BENCH_PROMPT, n_candidates=n_candidates, max_new_tokens=12,
        sampler=Sampler(temperature=0.8, seed=ctx.seed),
        length_schedule=length_schedule, fault_plan=plan)
    tokens = result.total_generated_tokens
    metrics = {
        "sim_seconds": result.sim_seconds,
        "tokens_per_second": tokens / result.sim_seconds,
        "tokens_per_joule": (tokens / result.joules
                             if result.joules > 0.0 else 0.0),
        "mean_live_batch": result.mean_live_batch,
        "peak_kv_bytes": float(result.peak_kv_bytes),
        "rpcmem_peak_bytes": _heap_peak_bytes(engine),
        "decode_steps": float(result.n_steps),
    }
    metrics.update(_slo_metrics(ctx))
    if plan is not None:
        metrics.update({
            "faults": float(result.n_faults),
            "retries": float(result.n_retries),
            "evictions": float(result.n_evictions),
            "rebuilt_tokens": float(result.rebuilt_tokens),
        })
    return BenchRecord(name, metrics=metrics, info={
        "batch": 4, "n_candidates": n_candidates,
        "length_schedule": list(length_schedule) if length_schedule else None,
        "fault_plan": fault_spec, "generated_tokens": tokens})


@bench_scenario("waves.n4",
                "paged Best-of-N, N=4 filling the batch exactly")
def _bench_waves_n4(ctx: BenchContext) -> BenchRecord:
    return _bench_waves(ctx, "waves.n4", n_candidates=4,
                        length_schedule=None)


@bench_scenario("waves.n16",
                "paged Best-of-N, N=16 waved over batch 4 with "
                "heterogeneous lengths")
def _bench_waves_n16(ctx: BenchContext) -> BenchRecord:
    return _bench_waves(ctx, "waves.n16", n_candidates=16,
                        length_schedule=[3, 12, 5, 8])


@bench_scenario("mixed.prefill_decode",
                "long-prompt admission chunk-interleaved into a waved "
                "Best-of-16 decode, stage dispatch live")
def _bench_mixed_prefill_decode(ctx: BenchContext) -> BenchRecord:
    from ..llm import (
        BackendSelector,
        ContinuousBatchingScheduler,
        PromptAdmission,
    )
    from ..llm.sampler import Sampler

    engine = _tiny_engine(ctx, batch=4, max_context=64, kv_backend="paged")
    scheduler = ContinuousBatchingScheduler(engine)
    late_prompt = [(i % 500) + 1 for i in range(20)]
    result = scheduler.generate(
        _BENCH_PROMPT, n_candidates=16, max_new_tokens=12,
        sampler=Sampler(temperature=0.8, seed=ctx.seed),
        length_schedule=[3, 12, 5, 8], prefill_chunk=4,
        dispatch=BackendSelector(ctx.device, engine.model.config),
        admissions=[PromptAdmission(late_prompt, n_candidates=4,
                                    max_new_tokens=8, at_step=6)])
    tokens = result.total_generated_tokens
    metrics = {
        "sim_seconds": result.sim_seconds,
        "tokens_per_second": tokens / result.sim_seconds,
        "tokens_per_joule": (tokens / result.joules
                             if result.joules > 0.0 else 0.0),
        "mean_live_batch": result.mean_live_batch,
        "peak_kv_bytes": float(result.peak_kv_bytes),
        "decode_steps": float(result.n_steps),
        "prefill_chunks": float(result.n_prefill_chunks),
        "backend_switches": float(result.n_backend_switches),
        "migration_seconds": result.migration_seconds,
        "prefill_joules": result.prefill_joules,
    }
    metrics.update(_slo_metrics(ctx))
    summary = slo_summary(ctx.registry)
    chunk = summary.get("repro.slo.prefill_chunk_seconds")
    if chunk is not None:
        metrics["prefill_chunk_p99_seconds"] = chunk["p99"]
    return BenchRecord("mixed.prefill_decode", metrics=metrics, info={
        "batch": 4, "n_candidates": 16, "prefill_chunk": 4,
        "admitted_prompt_tokens": len(late_prompt),
        "admitted_candidates": 4, "admitted_at_step": 6,
        "generated_tokens": tokens})


@bench_scenario("chaos.waves",
                "Best-of-8 under a fixed fault plan (abort+dma+alloc+"
                "throttle)")
def _bench_chaos(ctx: BenchContext) -> BenchRecord:
    return _bench_waves(ctx, "chaos.waves", n_candidates=8,
                        length_schedule=None,
                        fault_spec="abort@2,dma@4,alloc@3,"
                                   "throttle@1:efficiency:4")


@bench_scenario("speculative.greedy",
                "greedy draft-then-verify decode (draft shares the "
                "target vocab)")
def _bench_speculative(ctx: BenchContext) -> BenchRecord:
    from ..llm import NPUTransformer, TransformerWeights
    from ..llm.config import tiny_config
    from ..llm.speculative import SpeculativeDecoder

    target = NPUTransformer(TransformerWeights.generate(
        tiny_config(vocab_size=512), seed=ctx.seed, embedding_std=0.1))
    draft = NPUTransformer(TransformerWeights.generate(
        tiny_config(n_layers=1, hidden_dim=32, n_heads=2, n_kv_heads=1,
                    intermediate_dim=64, vocab_size=512),
        seed=ctx.seed + 1, embedding_std=0.1))
    decoder = SpeculativeDecoder(target, draft, draft_len=4)
    result = decoder.generate([1, 2, 3, 4, 5], 16, temperature=0.0,
                              seed=ctx.seed)
    sim = (ctx.timing.seconds(result.target_cost.npu)
           + ctx.timing.seconds(result.draft_cost.npu))
    return BenchRecord("speculative.greedy", metrics={
        "sim_seconds": sim,
        "tokens_per_second": len(result.tokens) / sim,
        "acceptance_rate": result.acceptance_rate,
        "tokens_per_target_pass": result.tokens_per_target_pass,
    }, info={"draft_len": 4, "new_tokens": len(result.tokens),
             "target_passes": result.target_forward_passes})


@bench_scenario("kernel.gemm",
                "W4A16 mixed-precision GEMM microbench (strategy 'ours')")
def _bench_gemm(ctx: BenchContext) -> BenchRecord:
    import numpy as np

    from ..kernels.gemm import MixedPrecisionGemm

    rng = np.random.default_rng(ctx.seed)
    m, k, n = 32, 256, 256
    kernel = MixedPrecisionGemm(strategy="ours", bits=4)
    prepared = kernel.prepare_weight(
        rng.standard_normal((k, n)).astype(np.float32) * 0.05)
    acts = rng.standard_normal((m, k)).astype(np.float16)
    _, cost = kernel(acts, prepared)
    sim = ctx.timing.seconds(cost)
    flops = 2.0 * m * k * n
    return BenchRecord("kernel.gemm", metrics={
        "sim_seconds": sim,
        "effective_gflops": ctx.timing.effective_gflops(flops, sim),
        "dma_seconds": ctx.timing.dma_seconds(cost),
    }, info={"m": m, "k": k, "n": n, "strategy": "ours", "bits": 4})


@bench_scenario("kernel.attention",
                "FP16 FlashAttention microbench (LUT softmax)")
def _bench_attention(ctx: BenchContext) -> BenchRecord:
    import numpy as np

    from ..kernels.flash_attention import FlashAttention
    from ..npu.memory import TCM

    rng = np.random.default_rng(ctx.seed)
    n_q, n_kv, d = 64, 64, 64
    q = rng.standard_normal((n_q, d)).astype(np.float16)
    kv = rng.standard_normal((n_kv, d)).astype(np.float16)
    attention = FlashAttention(method="lut", tcm=TCM())
    _, breakdown = attention(q, kv, kv)
    cost = breakdown.total()
    sim = ctx.timing.seconds(cost)
    return BenchRecord("kernel.attention", metrics={
        "sim_seconds": sim,
        "hvx_seconds": ctx.timing.hvx_seconds(cost),
    }, info={"n_q": n_q, "n_kv": n_kv, "head_dim": d, "method": "lut"})


@bench_scenario("fleet.small",
                "25-device fleet serving a seeded poisson trace "
                "(capacity plan off)")
def _bench_fleet(ctx: BenchContext) -> BenchRecord:
    from ..fleet import run_fleet

    report = run_fleet(25, 5.0, horizon_seconds=20.0, seed=ctx.seed,
                       pattern="poisson", with_capacity_plan=False)
    token = report.latency["token"]
    return BenchRecord("fleet.small", metrics={
        "sim_seconds": report.throughput["makespan_seconds"],
        "tokens_per_second": report.throughput["tokens_per_second"],
        "token_latency_p50_seconds": token["p50"],
        "token_latency_p95_seconds": token["p95"],
        "token_latency_p99_seconds": token["p99"],
        "busy_fraction": report.throughput["busy_fraction"],
    }, info={"devices": 25, "qps": 5.0, "horizon_seconds": 20.0,
             "completed": report.requests["completed"],
             "shed": report.requests["shed"]})


_CHAOS_FAULT_SPEC = ("dev#0:crash@3:6,dev#1:straggle@2:3:10,"
                     "dev#2:drop@5,dev#3:battery@8,dev#4:crash@12")


@bench_scenario("fleet.chaos",
                "8-device saturated fleet under a fixed fault schedule "
                "with failover and hedging armed")
def _bench_fleet_chaos(ctx: BenchContext) -> BenchRecord:
    from ..fleet import run_fleet

    # saturated on purpose: the queue must back up for crashes to catch
    # dispatches in flight and for the p99 wait tail to trigger hedges
    report = run_fleet(8, 10.0, horizon_seconds=20.0, seed=ctx.seed,
                       pattern="poisson", with_capacity_plan=False,
                       fault_spec=_CHAOS_FAULT_SPEC, hedge=True)
    token = report.latency["token"]
    chaos = report.chaos
    assert chaos is not None
    # completed_requests gates higher and token_latency_p99 lower; the
    # recovery counters and makespan are informational — a chaos run's
    # clock stretches with the fault schedule, not with regressions
    return BenchRecord("fleet.chaos", metrics={
        "completed_requests": float(report.requests["completed"]),
        "token_latency_p99_seconds": token["p99"],
        "makespan_seconds": report.throughput["makespan_seconds"],
        "failed_permanently": float(
            chaos["recovery"]["failed_permanently"]),
        "failovers": float(chaos["recovery"]["failovers"]),
        "hedges": float(chaos["recovery"]["hedges"]),
        "breaker_opens": float(chaos["recovery"]["breaker_opens"]),
    }, info={"devices": 8, "qps": 10.0, "horizon_seconds": 20.0,
             "fault_spec": _CHAOS_FAULT_SPEC, "hedge": True,
             "shed": report.requests["shed"],
             "conservation": chaos["conservation"]})


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
#: Rows kept per scenario in a ``--self-profile`` table.
PROFILE_TOP_N = 25


def _profile_rows(profiler: Any, top_n: int = PROFILE_TOP_N
                  ) -> List[Dict[str, Any]]:
    """Top-``top_n`` cumulative-time rows from a cProfile run.

    Host wall clock, so the rows are informational (never gated, never
    fingerprinted) — they answer ROADMAP's "where does the *simulator*
    spend its host time" question, not a paper claim.
    """
    import pstats

    stats = pstats.Stats(profiler)
    rows: List[Dict[str, Any]] = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, lineno, name = func
        where = name if filename == "~" \
            else f"{os.path.basename(filename)}:{lineno}:{name}"
        rows.append({"function": where, "ncalls": int(nc),
                     "tottime": float(tottime), "cumtime": float(cumtime)})
    rows.sort(key=lambda r: (-r["cumtime"], r["function"]))
    return rows[:max(top_n, 0)]


def render_profile_table(profiles: Dict[str, List[Dict[str, Any]]]) -> str:
    """Per-scenario top-N cumulative-time tables as one text artifact."""
    lines: List[str] = []
    for name in sorted(profiles):
        lines.append(f"== self-profile: {name} "
                     f"(top {len(profiles[name])} by cumulative time) ==")
        lines.append(f"{'function':<56s} {'ncalls':>8s} {'tottime s':>10s} "
                     f"{'cumtime s':>10s}")
        for row in profiles[name]:
            lines.append(f"{row['function']:<56.56s} {row['ncalls']:>8d} "
                         f"{row['tottime']:>10.4f} {row['cumtime']:>10.4f}")
        lines.append("")
    return "\n".join(lines) + ("\n" if lines and lines[-1] else "")


def run_scenario(name: str, device_key: str = DEFAULT_DEVICE,
                 seed: int = DEFAULT_SEED,
                 self_profile: bool = False) -> BenchRecord:
    """Run one registered scenario under fresh tracer/metrics state.

    The record is augmented with the scenario's wall clock
    (informational) and, when the traced run carries kernel costs, the
    per-engine HMX/HVX/DMA/CPU busy fractions of the simulated timeline.
    With ``self_profile`` the scenario body runs under :mod:`cProfile`
    and the top cumulative-time rows are attached as a non-serialized
    ``profile`` attribute on the record (host-side data stays out of
    the snapshot so fingerprints and byte-diffs are unaffected).
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise BenchError(
            f"unknown bench scenario {name!r}; known: {sorted(SCENARIOS)}")
    from ..npu import DEVICES
    from ..npu.timing import TimingModel

    if device_key not in DEVICES:
        raise BenchError(
            f"unknown device {device_key!r}; known: {sorted(DEVICES)}")
    device = DEVICES[device_key]
    ctx = BenchContext(device=device, timing=TimingModel(device.npu),
                       tracer=obs_trace.Tracer(enabled=True),
                       registry=obs_metrics.MetricsRegistry(), seed=seed)
    prev_tracer = obs_trace.set_tracer(ctx.tracer)
    prev_metrics = obs_metrics.set_metrics(ctx.registry)
    profiler = None
    if self_profile:
        import cProfile
        profiler = cProfile.Profile()
    wall = time.perf_counter()
    try:
        if profiler is not None:
            record = profiler.runcall(scenario.fn, ctx)
        else:
            record = scenario.fn(ctx)
    finally:
        obs_trace.set_tracer(prev_tracer)
        obs_metrics.set_metrics(prev_metrics)
    record.metrics["wall_seconds"] = time.perf_counter() - wall
    record.profile = _profile_rows(profiler) if profiler is not None \
        else None
    try:
        util = engine_utilization(chrome_trace(ctx.tracer,
                                               timing=ctx.timing))
    except ObservabilityError:
        util = None
    if util is not None:
        for lane, fraction in util.items():
            record.metrics[f"util_{lane.lower()}"] = fraction
    record.info.setdefault("device", device_key)
    return record


def environment_fingerprint(seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """Git sha + toolchain versions + seed: enough to reproduce a run."""
    import numpy

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "git_sha": sha or "unknown",
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "seed": seed,
    }


@dataclass
class BenchSnapshot:
    """One full suite run: fingerprinted, serializable, comparable."""

    fingerprint: Dict[str, Any]
    records: Dict[str, BenchRecord]
    schema: str = SNAPSHOT_SCHEMA

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "records": {name: record.to_json()
                        for name, record in sorted(self.records.items())},
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "BenchSnapshot":
        validate_snapshot(data)
        return cls(
            fingerprint=dict(data["fingerprint"]),
            records={name: BenchRecord.from_json(rec)
                     for name, rec in data["records"].items()},
            schema=str(data["schema"]))

    def write(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "BenchSnapshot":
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as error:
            raise BenchError(f"cannot read bench snapshot {path}: {error}")
        except json.JSONDecodeError as error:
            raise BenchError(f"bench snapshot {path} is not JSON: {error}")
        return cls.from_json(data)


def validate_snapshot(data: Any) -> None:
    """Schema check; raises :class:`BenchError` naming what's wrong."""
    if not isinstance(data, dict):
        raise BenchError(f"bench snapshot must be an object, got "
                         f"{type(data).__name__}")
    missing = [key for key in ("schema", "fingerprint", "records")
               if key not in data]
    if missing:
        raise BenchError(f"bench snapshot missing keys: {missing}")
    if data["schema"] != SNAPSHOT_SCHEMA:
        raise BenchError(
            f"unsupported bench snapshot schema {data['schema']!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})")
    if not isinstance(data["records"], dict) or not data["records"]:
        raise BenchError("bench snapshot has no records")
    for key in ("git_sha", "seed"):
        if key not in data["fingerprint"]:
            raise BenchError(f"bench fingerprint missing {key!r}")
    for name, record in data["records"].items():
        if "metrics" not in record:
            raise BenchError(f"record {name!r} has no metrics")


def run_suite(only: Optional[Sequence[str]] = None,
              device_key: str = DEFAULT_DEVICE,
              seed: int = DEFAULT_SEED,
              fast_only: bool = False,
              self_profile: bool = False) -> BenchSnapshot:
    """Run the registered scenarios and return a fingerprinted snapshot.

    With ``self_profile`` each scenario runs under :mod:`cProfile` and
    the snapshot carries a non-serialized ``profiles`` attribute
    (scenario name -> top cumulative rows) for the CLI's profile
    artifact; ``to_json`` and the fingerprint are unchanged.
    """
    names = list(only) if only else sorted(SCENARIOS)
    if fast_only:
        names = [n for n in names
                 if n not in SCENARIOS or SCENARIOS[n].fast]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise BenchError(
            f"unknown bench scenario(s) {unknown}; known: {sorted(SCENARIOS)}")
    records = {name: run_scenario(name, device_key=device_key, seed=seed,
                                  self_profile=self_profile)
               for name in names}
    snapshot = BenchSnapshot(fingerprint=environment_fingerprint(seed),
                             records=records)
    snapshot.profiles = {name: record.profile
                         for name, record in records.items()
                         if getattr(record, "profile", None)} \
        if self_profile else None
    return snapshot


def next_snapshot_path(directory: str) -> str:
    """Next free ``BENCH_<n>.json`` path in ``directory``."""
    os.makedirs(directory, exist_ok=True)
    taken = set()
    for entry in os.listdir(directory):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            stem = entry[len("BENCH_"):-len(".json")]
            if stem.isdigit():
                taken.add(int(stem))
    index = max(taken) + 1 if taken else 0
    return os.path.join(directory, f"BENCH_{index}.json")


# ----------------------------------------------------------------------
# comparator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Threshold:
    """Noise tolerance: a change regresses only past BOTH bounds."""

    rel: float = 0.05
    abs: float = 1e-9


#: Metric-name fragments that decide gating direction.  Anything not
#: matched is informational: recorded, diffed, never gated.
_HIGHER_IS_BETTER = ("tokens_per_second", "acceptance_rate",
                     "tokens_per_target_pass", "mean_live_batch",
                     "effective_gflops", "tokens_per_joule",
                     "completed_requests")
_LOWER_SUFFIXES = ("_bytes",)
_LOWER_EXACT = ("sim_seconds", "dma_seconds", "hvx_seconds")
_LOWER_PREFIXES = ("token_latency_",)


def classify_metric(name: str) -> str:
    """Gating direction of a metric: ``higher``, ``lower`` or ``info``."""
    if name in _HIGHER_IS_BETTER or name.startswith("util_"):
        return "higher"
    if (name in _LOWER_EXACT or name.endswith(_LOWER_SUFFIXES)
            or name.startswith(_LOWER_PREFIXES)):
        return "lower"
    return "info"


@dataclass
class MetricDelta:
    """One metric's movement between baseline and candidate."""

    scenario: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    direction: str  # "higher" | "lower" | "info"
    status: str  # "ok" | "regression" | "improvement" | "new" | "skipped"

    @property
    def rel_change(self) -> float:
        if self.baseline is None or self.candidate is None:
            return 0.0
        if self.baseline == 0.0:
            return 0.0 if self.candidate == 0.0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)


@dataclass
class ComparisonReport:
    """Every metric delta of a snapshot diff, plus the gate verdict."""

    deltas: List[MetricDelta] = field(default_factory=list)
    missing_scenarios: List[str] = field(default_factory=list)
    new_scenarios: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, markdown: bool = False) -> str:
        sep = " | " if markdown else "  "
        lines: List[str] = []
        if markdown:
            lines.append("| scenario | metric | baseline | candidate "
                         "| change | status |")
            lines.append("|---|---|---|---|---|---|")
        else:
            lines.append(f"{'scenario':<20s}{sep}{'metric':<28s}{sep}"
                         f"{'baseline':>14s}{sep}{'candidate':>14s}{sep}"
                         f"{'change':>9s}{sep}status")
        ordered = sorted(
            self.deltas,
            key=lambda d: ({"regression": 0, "improvement": 1, "new": 2,
                            "skipped": 2, "ok": 3}[d.status],
                           d.scenario, d.metric))
        for delta in ordered:
            if delta.status == "ok" and delta.direction == "info":
                continue  # keep the report readable
            base = "-" if delta.baseline is None else f"{delta.baseline:.6g}"
            cand = "-" if delta.candidate is None else f"{delta.candidate:.6g}"
            change = ("-" if delta.baseline is None or delta.candidate is None
                      else f"{100.0 * delta.rel_change:+.1f}%")
            if markdown:
                lines.append(f"| {delta.scenario} | {delta.metric} | {base} "
                             f"| {cand} | {change} | {delta.status} |")
            else:
                lines.append(f"{delta.scenario:<20s}{sep}"
                             f"{delta.metric:<28s}{sep}{base:>14s}{sep}"
                             f"{cand:>14s}{sep}{change:>9s}{sep}"
                             f"{delta.status}")
        for name in self.missing_scenarios:
            lines.append(f"scenario {name}: in baseline only (skipped)")
        for name in self.new_scenarios:
            lines.append(f"scenario {name}: new (no baseline)")
        verdict = ("OK" if self.ok
                   else f"REGRESSION ({len(self.regressions)} metric(s))")
        lines.append("")
        lines.append(f"verdict: {verdict}; {len(self.improvements)} "
                     f"improvement(s)")
        return "\n".join(lines)


def _threshold_for(scenario: str, metric: str,
                   thresholds: Optional[Dict[str, Threshold]],
                   default: Threshold) -> Threshold:
    if thresholds:
        for key in (f"{scenario}.{metric}", metric):
            if key in thresholds:
                return thresholds[key]
    return default


def compare_snapshots(baseline: BenchSnapshot, candidate: BenchSnapshot,
                      thresholds: Optional[Dict[str, Threshold]] = None,
                      default_threshold: Threshold = Threshold()
                      ) -> ComparisonReport:
    """Direction-aware diff of two snapshots.

    Scenarios present only in one snapshot are listed but never gate
    (so a ``--only``/``--fast`` run can still be checked against a full
    baseline).  ``thresholds`` overrides the default per metric, keyed
    by ``"scenario.metric"`` or bare ``"metric"``.
    """
    report = ComparisonReport()
    report.missing_scenarios = sorted(
        set(baseline.records) - set(candidate.records))
    report.new_scenarios = sorted(
        set(candidate.records) - set(baseline.records))
    for name in sorted(set(baseline.records) & set(candidate.records)):
        base_metrics = baseline.records[name].metrics
        cand_metrics = candidate.records[name].metrics
        for metric in sorted(set(base_metrics) | set(cand_metrics)):
            direction = classify_metric(metric)
            base = base_metrics.get(metric)
            cand = cand_metrics.get(metric)
            if base is None:
                status = "new"
            elif cand is None:
                status = "skipped"
            elif direction == "info":
                status = "ok"
            else:
                thr = _threshold_for(name, metric, thresholds,
                                     default_threshold)
                delta = cand - base
                bad = delta > 0 if direction == "lower" else delta < 0
                rel = (abs(delta) / abs(base) if base != 0.0
                       else (0.0 if delta == 0.0 else float("inf")))
                if abs(delta) <= thr.abs or rel <= thr.rel:
                    status = "ok"
                else:
                    status = "regression" if bad else "improvement"
            report.deltas.append(MetricDelta(
                scenario=name, metric=metric, baseline=base, candidate=cand,
                direction=direction, status=status))
    return report
