"""Counters, gauges and fixed-bucket histograms for the simulator.

Metric names follow the convention ``repro.<layer>.<name>`` —
``repro.llm.tokens_generated``, ``repro.npu.dma_bytes``,
``repro.kernels.gemm_flops`` — so snapshots group naturally by subsystem.

A global default :class:`MetricsRegistry` backs module-level access
(:func:`get_metrics`), and every instrument is injectable: code that
wants isolated measurement constructs its own registry and installs it
with :func:`set_metrics` (the ``repro profile`` CLI does exactly this so
a profiled run starts from zero).

Histograms use fixed buckets so recording is O(log buckets) with no
stored samples; quantiles (p50/p95/p99) are estimated by linear
interpolation within the landing bucket — the standard
Prometheus-histogram trade-off, plenty for per-step latency summaries.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "counter",
    "gauge",
    "histogram",
]


def _default_buckets() -> List[float]:
    """Exponential buckets covering 1 microsecond .. ~70 seconds."""
    return [1e-6 * (2.0 ** i) for i in range(27)]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; tracks the maximum it has seen."""

    __slots__ = ("name", "value", "max_value", "_seen")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._seen = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max_value = value if not self._seen else max(self.max_value, value)
        self._seen = True

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries.

    Values above the last bucket bound land in an implicit +inf bucket
    and are additionally counted in ``overflow`` — a saturated histogram
    is visible in every snapshot instead of silently degrading its upper
    quantiles to a single ``max``-anchored estimate.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min",
                 "max", "overflow")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        bounds = list(buckets) if buckets is not None else _default_buckets()
        if not bounds or sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"histogram {name} needs strictly increasing bucket bounds, "
                f"got {bounds}")
        self.name = name
        self.buckets = bounds                    # upper bounds; +inf implicit
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.overflow = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += 1
        if index == len(self.buckets):
            self.overflow += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by intra-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if seen + n >= rank and n > 0:
                lo = self.buckets[i - 1] if i > 0 else self.min
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                fraction = (rank - seen) / n
                return lo + fraction * (hi - lo)
            seen += n
        return self.max

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` in [0, 100]).

        Accuracy caveat: with fixed buckets the estimate interpolates
        linearly inside the landing bucket, so the error is bounded by
        that bucket's width (relative error bounded by the bucket ratio
        for geometric schemes such as :func:`~repro.obs.slo.hdr_buckets`).
        Percentiles that land in the overflow bucket (beyond the last
        bound) interpolate between the last bound and the observed
        ``max`` — check ``overflow`` before trusting the tail.
        """
        if not 0.0 <= p <= 100.0:
            raise ObservabilityError(
                f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "overflow": self.overflow,
        }

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "histogram"}
        out.update(self.summary())
        return out


class MetricsRegistry:
    """Named instrument registry with get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind, *args):
        if not name or " " in name:
            raise ObservabilityError(f"invalid metric name {name!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ObservabilityError(
                    f"metric {name} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-value snapshot of every instrument, sorted by name."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# global default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return _default_registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global default; returns the previous."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def counter(name: str) -> Counter:
    return _default_registry.counter(name)


def gauge(name: str) -> Gauge:
    return _default_registry.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
    return _default_registry.histogram(name, buckets)
