"""Counters, gauges and fixed-bucket histograms for the simulator.

Metric names follow the convention ``repro.<layer>.<name>`` —
``repro.llm.tokens_generated``, ``repro.npu.dma_bytes``,
``repro.kernels.gemm_flops`` — so snapshots group naturally by subsystem.

A global default :class:`MetricsRegistry` backs module-level access
(:func:`get_metrics`), and every instrument is injectable: code that
wants isolated measurement constructs its own registry and installs it
with :func:`set_metrics` (the ``repro profile`` CLI does exactly this so
a profiled run starts from zero).

Histograms use fixed buckets so recording is O(log buckets) with no
stored samples; quantiles (p50/p95/p99) are estimated by linear
interpolation within the landing bucket — the standard
Prometheus-histogram trade-off, plenty for per-step latency summaries.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EMPTY_PERCENTILE",
    "labeled_name",
    "parse_labels",
    "get_metrics",
    "set_metrics",
    "counter",
    "gauge",
    "histogram",
]

#: Sentinel returned by :meth:`Histogram.percentile`/:meth:`Histogram.quantile`
#: on a histogram with no observations.  0.0 (not NaN) so summaries stay
#: JSON-clean and comparisons stay total; callers that must distinguish
#: "no data" from "zero latency" check ``count`` first.
EMPTY_PERCENTILE = 0.0


def labeled_name(name: str, labels: Optional[Mapping[str, Any]] = None) -> str:
    """Canonical instrument name for a (base name, labels) pair.

    Labels render as ``name{k=v,k2=v2}`` with keys sorted, so the same
    label set always produces the same instrument.  Label keys/values
    may not contain the ``{ } = ,`` delimiters or whitespace.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        for token in (key, value):
            if any(c in token for c in "{}=, \t\n") or not token:
                raise ObservabilityError(
                    f"invalid metric label {key}={value!r} on {name}: labels "
                    "may not be empty or contain '{', '}', '=', ',' or "
                    "whitespace")
        parts.append(f"{key}={value}")
    return f"{name}{{{','.join(parts)}}}"


def parse_labels(full_name: str) -> "Tuple[str, Dict[str, str]]":
    """Split a canonical instrument name back into (base name, labels)."""
    if not full_name.endswith("}") or "{" not in full_name:
        return full_name, {}
    base, _, body = full_name[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in body.split(","):
        key, sep, value = part.partition("=")
        if not sep or not key or not value:
            raise ObservabilityError(
                f"malformed labeled metric name {full_name!r}")
        labels[key] = value
    return base, labels


def _default_buckets() -> List[float]:
    """Exponential buckets covering 1 microsecond .. ~70 seconds."""
    return [1e-6 * (2.0 ** i) for i in range(27)]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "base_name", "labels", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.base_name, self.labels = parse_labels(name)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "counter", "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Gauge:
    """A point-in-time value; tracks the maximum it has seen."""

    __slots__ = ("name", "base_name", "labels", "value", "max_value", "_seen")

    def __init__(self, name: str) -> None:
        self.name = name
        self.base_name, self.labels = parse_labels(name)
        self.value = 0.0
        self.max_value = 0.0
        self._seen = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max_value = value if not self._seen else max(self.max_value, value)
        self._seen = True

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "gauge", "value": self.value,
                               "max": self.max_value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries.

    Values above the last bucket bound land in an implicit +inf bucket
    and are additionally counted in ``overflow`` — a saturated histogram
    is visible in every snapshot instead of silently degrading its upper
    quantiles to a single ``max``-anchored estimate.
    """

    __slots__ = ("name", "base_name", "labels", "buckets", "counts", "count",
                 "total", "min", "max", "overflow")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        bounds = list(buckets) if buckets is not None else _default_buckets()
        if not bounds or sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"histogram {name} needs strictly increasing bucket bounds, "
                f"got {bounds}")
        self.name = name
        self.base_name, self.labels = parse_labels(name)
        self.buckets = bounds                    # upper bounds; +inf implicit
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.overflow = 0

    def observe(self, value: float) -> None:
        self.observe_many(value, 1)

    def observe_many(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in O(log buckets).

        The fleet layer records one value per generated token; folding
        a request's tokens in one call keeps million-token simulations
        linear in *requests*, not tokens.
        """
        if n <= 0:
            raise ObservabilityError(
                f"histogram {self.name} needs a positive observation "
                f"count, got {n}")
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += n
        if index == len(self.buckets):
            self.overflow += n
        self.count += n
        self.total += value * n
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        Identical bucket bounds fold count-for-count.  Differing bounds
        — per-device SLO trackers use resolution matched to the device
        generation (:func:`~repro.obs.slo.hdr_buckets` bit widths) —
        re-bucket each of ``other``'s buckets by its **upper bound**
        into this histogram: finer-resolution observations land exactly
        when the coarse bounds are a subset of the fine bounds (the
        hdr_buckets family over a shared range), and conservatively (at
        most one bucket high) otherwise.  ``other``'s overflow bucket
        merges by its +inf bound, so overflow counts are preserved, not
        dropped.  Merging an empty histogram is a no-op; names and
        labels may differ — this is the cross-window and cross-device
        aggregation primitive of :class:`~repro.obs.stream.MetricStream`
        and the fleet layer.  Returns ``self`` so merges chain like
        :meth:`~repro.npu.timing.KernelCost.merge`.
        """
        if not isinstance(other, Histogram):
            raise ObservabilityError(
                f"cannot merge {type(other).__name__} into histogram "
                f"{self.name}")
        if other.buckets == self.buckets:
            for i, n in enumerate(other.counts):
                self.counts[i] += n
            self.overflow += other.overflow
        else:
            overflow_index = len(self.buckets)
            for i, n in enumerate(other.counts):
                if n == 0:
                    continue
                bound = (other.buckets[i] if i < len(other.buckets)
                         else math.inf)
                index = bisect.bisect_left(self.buckets, bound)
                self.counts[index] += n
                if index == overflow_index:
                    self.overflow += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by intra-bucket interpolation.

        Edge behavior (documented, never raising for ``q`` in range):

        * an **empty** histogram returns :data:`EMPTY_PERCENTILE` (0.0)
          — check ``count`` to distinguish "no data" from "zero";
        * an **overflow-only** histogram (every observation beyond the
          last bucket bound) interpolates between the observed ``min``
          and ``max``, clamped to that range.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return EMPTY_PERCENTILE
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if seen + n >= rank and n > 0:
                lo = self.buckets[i - 1] if i > 0 else self.min
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                fraction = (rank - seen) / n
                return lo + fraction * (hi - lo)
            seen += n
        return self.max

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` in [0, 100]).

        Accuracy caveat: with fixed buckets the estimate interpolates
        linearly inside the landing bucket, so the error is bounded by
        that bucket's width (relative error bounded by the bucket ratio
        for geometric schemes such as :func:`~repro.obs.slo.hdr_buckets`).
        Percentiles that land in the overflow bucket (beyond the last
        bound) interpolate between the last bound and the observed
        ``max`` — check ``overflow`` before trusting the tail.  An empty
        histogram returns :data:`EMPTY_PERCENTILE` instead of raising
        (see :meth:`quantile` for the full edge-case contract).
        """
        if not 0.0 <= p <= 100.0:
            raise ObservabilityError(
                f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "overflow": self.overflow,
        }

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "histogram"}
        out.update(self.summary())
        return out


class MetricsRegistry:
    """Named instrument registry with get-or-create semantics.

    Instruments may carry **labels** (``labels={"kind": "dma"}``): the
    registry canonicalizes the (name, labels) pair via
    :func:`labeled_name`, so ``counter("faults", labels={"kind": "dma"})``
    always returns the same instrument, and :meth:`labeled` returns
    every instrument sharing a base name without any string parsing at
    the consumer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str,
                       labels: Optional[Mapping[str, Any]], kind, *args):
        if not name or " " in name or "{" in name or "}" in name:
            raise ObservabilityError(f"invalid metric name {name!r}")
        name = labeled_name(name, labels)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ObservabilityError(
                    f"metric {name} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}")
            return metric

    def counter(self, name: str,
                labels: Optional[Mapping[str, Any]] = None) -> Counter:
        return self._get_or_create(name, labels, Counter)

    def gauge(self, name: str,
              labels: Optional[Mapping[str, Any]] = None) -> Gauge:
        return self._get_or_create(name, labels, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  labels: Optional[Mapping[str, Any]] = None) -> Histogram:
        return self._get_or_create(name, labels, Histogram, buckets)

    def labeled(self, base_name: str) -> List[Any]:
        """Every instrument registered under ``base_name``, sorted by
        full name (the unlabeled instrument first, when present)."""
        with self._lock:
            return [metric for name, metric in sorted(self._metrics.items())
                    if metric.base_name == base_name]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-value snapshot of every instrument, sorted by name."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# global default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return _default_registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global default; returns the previous."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def counter(name: str,
            labels: Optional[Mapping[str, Any]] = None) -> Counter:
    return _default_registry.counter(name, labels)


def gauge(name: str, labels: Optional[Mapping[str, Any]] = None) -> Gauge:
    return _default_registry.gauge(name, labels)


def histogram(name: str, buckets: Optional[Sequence[float]] = None,
              labels: Optional[Mapping[str, Any]] = None) -> Histogram:
    return _default_registry.histogram(name, buckets, labels)
