"""SLO observability: HDR-style latency histograms for the serving path.

The paper's serving claims are latency-shaped — tokens/s at a batch
size, makespan of a Best-of-N wave — but means hide exactly the tail
behavior a serving SLO cares about.  This module gives the scheduler hot
path cheap streaming percentiles:

* :func:`hdr_buckets` builds HdrHistogram-style bucket bounds: each
  power-of-two range ("octave") is split into ``2**precision_bits``
  linear sub-buckets, so the relative width of every bucket — and hence
  the relative error of an interpolated percentile — is bounded by
  ``1 / 2**precision_bits`` regardless of where in the range a value
  lands.
* :class:`SLOTracker` owns the token-latency histograms the
  continuous-batching scheduler records into: per decode step, per
  token, per admission wave, and per candidate lifetime.  All of them
  are plain :class:`~repro.obs.metrics.Histogram` instruments living in
  a :class:`~repro.obs.metrics.MetricsRegistry`, so they appear in every
  metrics snapshot, the ``repro profile`` report and the bench
  snapshots without extra plumbing.

Naming: everything lives under ``repro.slo.*``; per-wave instruments
are ``repro.slo.wave<k>.token_latency_seconds`` (wave ``k`` =
``candidate_id // engine_batch``, the lock-step wave the candidate
would have belonged to).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Union

from ..errors import ObservabilityError
from .metrics import Histogram, MetricsRegistry, get_metrics

__all__ = ["hdr_buckets", "SLOTracker", "slo_summary", "SLO_PERCENTILES",
           "histogram_summary", "percentile_cutoff"]


def percentile_cutoff(values: "List[int]", q: float) -> int:
    """Nearest-rank percentile over exact integer samples.

    The HDR histograms above trade exactness for streaming; the blame
    aggregator (:mod:`repro.obs.blame`) works on *finite, exact*
    integer-nanosecond latencies and conditions cohorts on them (every
    request at or above the p99 cutoff), so it needs the textbook
    nearest-rank cutoff, not an interpolated estimate — and an integer
    result keeps the explain report byte-stable.
    """
    if not values:
        raise ObservabilityError("percentile_cutoff needs samples")
    if not 0.0 < q <= 100.0:
        raise ObservabilityError(
            f"percentile q must be in (0, 100], got {q}")
    ranked = sorted(values)
    rank = math.ceil(q / 100.0 * len(ranked))
    return ranked[max(rank - 1, 0)]

SLO_PERCENTILES = (50.0, 95.0, 99.0)

#: Cap on distinct per-wave histograms; waves beyond it aggregate into
#: the last tracked wave's instrument so metric cardinality stays
#: bounded even for huge candidate budgets.
MAX_TRACKED_WAVES = 32


def hdr_buckets(min_value: float, max_value: float,
                precision_bits: int = 2) -> List[float]:
    """HdrHistogram-style bounds from ``min_value`` to >= ``max_value``.

    Every power-of-two octave ``[v, 2v)`` is split into
    ``2**precision_bits`` equal-width sub-buckets, bounding the relative
    quantile-interpolation error at ``2**-precision_bits``.  The default
    (4 sub-buckets per octave) keeps the scheduler's latency histograms
    at a few dozen buckets across nine decades.
    """
    if min_value <= 0.0 or max_value <= min_value:
        raise ObservabilityError(
            f"hdr_buckets needs 0 < min < max, got [{min_value}, {max_value}]")
    if not 0 <= precision_bits <= 8:
        raise ObservabilityError(
            f"precision_bits must be in [0, 8], got {precision_bits}")
    sub = 2 ** precision_bits
    bounds: List[float] = []
    base = float(min_value)
    while base < max_value:
        width = base / sub
        for i in range(1, sub + 1):
            bound = base + i * width
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        base *= 2.0
    return bounds


def _default_latency_buckets() -> List[float]:
    """1 microsecond .. ~134 simulated seconds, 4 sub-buckets/octave."""
    return hdr_buckets(1e-6, 134.0, precision_bits=2)


class SLOTracker:
    """Records serving-path latency histograms into a metrics registry.

    One tracker is created per scheduler run (it binds instruments from
    whatever registry is installed at construction), so a profiled or
    benched run that installs a fresh registry starts its percentiles
    from zero.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 engine_batch: int = 1,
                 buckets: Optional[List[float]] = None) -> None:
        if engine_batch <= 0:
            raise ObservabilityError(
                f"engine_batch must be positive, got {engine_batch}")
        self._registry = registry if registry is not None else get_metrics()
        self._engine_batch = engine_batch
        self._buckets = buckets if buckets is not None \
            else _default_latency_buckets()
        self._step = self._histogram("repro.slo.step_latency_seconds")
        self._token = self._histogram("repro.slo.token_latency_seconds")
        self._candidate = self._histogram(
            "repro.slo.candidate_latency_seconds")
        self._waves: Dict[int, Histogram] = {}
        # created lazily: runs without chunked prefill keep their
        # metrics snapshot free of the instrument
        self._prefill_chunk: Optional[Histogram] = None

    def _histogram(self, name: str) -> Histogram:
        return self._registry.histogram(name, self._buckets)

    def _wave_histogram(self, wave: int) -> Histogram:
        wave = min(wave, MAX_TRACKED_WAVES - 1)
        hist = self._waves.get(wave)
        if hist is None:
            hist = self._histogram(
                f"repro.slo.wave{wave}.token_latency_seconds")
            self._waves[wave] = hist
        return hist

    # ------------------------------------------------------------------
    def wave_of(self, candidate_id: int) -> int:
        """Lock-step wave index a candidate would have belonged to."""
        return candidate_id // self._engine_batch

    def observe_step(self, sim_seconds: float,
                     live_candidate_ids: "List[int]") -> None:
        """Record one decode step: step latency plus one token latency
        per live candidate (each live candidate commits one token per
        step, so the step's simulated latency *is* its token latency)."""
        self._step.observe(sim_seconds)
        for candidate_id in live_candidate_ids:
            self._token.observe(sim_seconds)
            self._wave_histogram(self.wave_of(candidate_id)).observe(
                sim_seconds)

    def observe_candidate(self, candidate_id: int,
                          latency_seconds: float) -> None:
        """Record one candidate's admission-to-retire simulated latency."""
        self._candidate.observe(latency_seconds)

    def observe_prefill_chunk(self, sim_seconds: float) -> None:
        """Record the simulated latency of one prefill chunk — the
        prefill SLO of a prompt admitted into a running decode."""
        if self._prefill_chunk is None:
            self._prefill_chunk = self._histogram(
                "repro.slo.prefill_chunk_seconds")
        self._prefill_chunk.observe(sim_seconds)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Percentile summary of every SLO instrument recorded so far."""
        return slo_summary(self._registry)


def histogram_summary(hist: Histogram) -> Dict[str, float]:
    """The canonical SLO percentile summary of one histogram.

    The same shape :func:`slo_summary` extracts from a registry
    snapshot, plus ``overflow`` — callers aggregating per-device
    histograms (the fleet layer) need saturation to stay visible after
    a mixed-resolution :meth:`~repro.obs.metrics.Histogram.merge`.
    Empty histograms summarize to zeros rather than raising, so report
    shapes stay total.
    """
    if hist.count == 0:
        return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0, "overflow": 0.0}
    return {
        "count": float(hist.count),
        "mean": hist.mean,
        "p50": hist.percentile(50.0),
        "p95": hist.percentile(95.0),
        "p99": hist.percentile(99.0),
        "max": hist.max,
        "overflow": float(hist.overflow),
    }


def slo_summary(source: Union[MetricsRegistry, Dict[str, Dict[str, Any]]]
                ) -> Dict[str, Dict[str, float]]:
    """Extract ``repro.slo.*`` histogram summaries from a registry or a
    registry snapshot, keyed by metric name.

    The engine's lock-step decode histogram
    (``repro.engine.decode_step_seconds``) is included too so
    non-scheduler runs still report token-latency percentiles.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) \
        else source
    out: Dict[str, Dict[str, float]] = {}
    for name, entry in sorted(snapshot.items()):
        if entry.get("type") != "histogram":
            continue
        if not (name.startswith("repro.slo.")
                or name == "repro.engine.decode_step_seconds"):
            continue
        if not entry.get("count"):
            continue
        out[name] = {
            "count": float(entry["count"]),
            "mean": float(entry["mean"]),
            "p50": float(entry["p50"]),
            "p95": float(entry["p95"]),
            "p99": float(entry["p99"]),
            "max": float(entry["max"]),
        }
    return out
