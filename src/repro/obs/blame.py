"""Fleet-wide latency blame aggregation and the ``repro explain`` report.

:mod:`repro.obs.critical_path` answers "where did *this* request's time
go"; this module answers the operator's question — "where does the
fleet's p99 go, and which phase do I fix first".  It folds per-request
:class:`~repro.obs.critical_path.RequestExplanation` records into:

* an overall blame breakdown (integer nanoseconds per phase, plus
  fractions),
* percentile-conditioned cohorts — the p50 and p99 tails get their own
  breakdowns, because the phase that dominates the median is routinely
  not the one that dominates the tail (queue wait and failover backoff
  live almost entirely in the p99 cohort),
* per-device and per-tenant-class splits (fleet logs),
* a top-K exemplar drill-down: the slowest requests rendered as
  annotated waterfalls.

Everything serializes under schema ``repro.explain/v1`` with sorted
keys and integer ledgers, so a double run of the same (scenario,
device, seed) — or the same fleet config — produces byte-identical
JSON; the explain-smoke CI job diffs exactly that.  Conservation is
asserted while aggregating: a report cannot be built from explanations
whose blame does not sum to their latency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ObservabilityError
from .critical_path import (RequestExplanation, explain_log,
                            validate_lifecycle)
from .slo import percentile_cutoff
from .timeline import EventLog

__all__ = ["EXPLAIN_SCHEMA", "BLAME_PERCENTILES", "aggregate_blame",
           "render_waterfall", "ExplainReport", "run_explain",
           "explain_section"]

EXPLAIN_SCHEMA = "repro.explain/v1"

#: Cohort cutoffs the aggregate conditions blame on.
BLAME_PERCENTILES = (50.0, 99.0)

#: Exemplar waterfalls kept in reports.
DEFAULT_TOP_K = 5


def _dominant(blame_ns: Dict[str, int]) -> str:
    if not blame_ns:
        return "none"
    return max(sorted(blame_ns), key=lambda p: blame_ns[p])


def _fold(into: Dict[str, int], blame_ns: Dict[str, int]) -> None:
    for phase, ns in blame_ns.items():
        into[phase] = into.get(phase, 0) + ns


def aggregate_blame(explanations: List[RequestExplanation],
                    top_k: int = DEFAULT_TOP_K) -> Dict[str, Any]:
    """Fold per-request explanations into the fleet-wide blame section.

    Conservation is asserted per request before anything folds; the
    returned dict is JSON-ready (integers, strings, floats only) and
    deterministic for a deterministic input list.
    """
    for expl in explanations:
        expl.check_conservation()
    outcomes: Dict[str, int] = {}
    blame_total: Dict[str, int] = {}
    energy_total: Dict[str, int] = {}
    total_latency = 0
    total_nj = 0
    for expl in explanations:
        outcomes[expl.outcome] = outcomes.get(expl.outcome, 0) + 1
        _fold(blame_total, expl.blame_ns)
        _fold(energy_total, expl.energy_nj)
        total_latency += expl.latency_ns
        total_nj += expl.total_nj

    out: Dict[str, Any] = {
        "n_requests": len(explanations),
        "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
        "total_latency_ns": total_latency,
        "blame_ns": {k: blame_total[k] for k in sorted(blame_total)},
        "blame_fraction": {
            k: blame_total[k] / total_latency if total_latency else 0.0
            for k in sorted(blame_total)},
        "dominant_phase": _dominant(blame_total),
        "total_nj": total_nj,
        "energy_nj": {k: energy_total[k] for k in sorted(energy_total)},
    }

    latencies = [e.latency_ns for e in explanations]
    cohorts: Dict[str, Any] = {}
    if latencies:
        for q in BLAME_PERCENTILES:
            cutoff = percentile_cutoff(latencies, q)
            members = [e for e in explanations if e.latency_ns >= cutoff]
            blame: Dict[str, int] = {}
            for member in members:
                _fold(blame, member.blame_ns)
            cohorts[f"p{q:g}"] = {
                "cutoff_ns": cutoff,
                "n_requests": len(members),
                "blame_ns": {k: blame[k] for k in sorted(blame)},
                "dominant_phase": _dominant(blame),
            }
    out["cohorts"] = cohorts

    fleet = [e for e in explanations if e.kind == "fleet"]
    if fleet:
        out["per_device"] = _split(fleet, lambda e: e.device)
        out["per_tenant"] = _split(fleet, lambda e: e.tenant)

    ranked = sorted(explanations,
                    key=lambda e: (-e.latency_ns, e.request_id))
    out["exemplars"] = [e.to_json() for e in ranked[:max(top_k, 0)]]
    return out


def _split(explanations: List[RequestExplanation],
           key) -> Dict[str, Any]:
    groups: Dict[str, List[RequestExplanation]] = {}
    for expl in explanations:
        k = key(expl)
        if k is None:
            continue
        groups.setdefault(str(k), []).append(expl)
    out: Dict[str, Any] = {}
    for name in sorted(groups):
        blame: Dict[str, int] = {}
        for expl in groups[name]:
            _fold(blame, expl.blame_ns)
        out[name] = {
            "n_requests": len(groups[name]),
            "blame_ns": {k: blame[k] for k in sorted(blame)},
            "dominant_phase": _dominant(blame),
        }
    return out


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_waterfall(expl: RequestExplanation, width: int = 40) -> str:
    """One request's phases as an annotated text waterfall."""
    lines = [
        f"request {expl.request_id}  latency "
        f"{expl.latency_ns / 1e6:.3f} ms  outcome {expl.outcome}  "
        f"dominant {expl.dominant_phase()}"]
    span = max(expl.latency_ns, 1)
    for s in expl.slices:
        offset = s.start_ns - expl.start_ns
        pad = int(round(offset / span * width))
        bar = max(int(round(s.duration_ns / span * width)), 1)
        lines.append(
            f"  [{offset / 1e6:>10.3f} .. "
            f"{(s.end_ns - expl.start_ns) / 1e6:>10.3f} ms] "
            f"{s.phase:<16s} {' ' * pad}{'#' * bar}")
    return "\n".join(lines)


def _blame_table(blame_ns: Dict[str, int], total_ns: int) -> List[str]:
    lines = [f"{'phase':<18s} {'ms':>12s} {'share':>7s}"]
    for phase in sorted(blame_ns, key=lambda p: -blame_ns[p]):
        ns = blame_ns[phase]
        share = ns / total_ns if total_ns else 0.0
        lines.append(f"{phase:<18s} {ns / 1e6:>12.3f} {share:>6.1%}")
    return lines


# ----------------------------------------------------------------------
# the explain report (single recorded run)
# ----------------------------------------------------------------------
@dataclass
class ExplainReport:
    """Critical-path blame for one recorded scenario replay."""

    scenario: str
    device: str
    seed: int
    kind: str                  # "scheduler" | "fleet"
    n_events: int
    aggregate: Dict[str, Any]
    lifecycle_problems: List[str] = field(default_factory=list)
    explanations: List[RequestExplanation] = field(default_factory=list)
    # run artifacts for trace export; never serialized
    log: Any = None
    tracer: Any = None
    timing: Any = None

    def critical_paths(self) -> Dict[int, Any]:
        """Request id -> phase slices, the shape the trace exporter takes."""
        return {e.request_id: e.slices for e in self.explanations}

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": EXPLAIN_SCHEMA,
            "scenario": self.scenario,
            "device": self.device,
            "seed": self.seed,
            "kind": self.kind,
            "n_events": self.n_events,
            "lifecycle_problems": list(self.lifecycle_problems),
            "aggregate": self.aggregate,
            "requests": [e.to_json() for e in self.explanations],
        }

    def to_json_text(self) -> str:
        """Canonical serialization (sorted keys) for byte-wise diffing."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def render(self, top_k: int = DEFAULT_TOP_K) -> str:
        agg = self.aggregate
        lines = [f"== explain: {self.scenario} on {self.device} "
                 f"(seed {self.seed}, {self.kind} log) =="]
        lines.append(f"requests explained {agg['n_requests']}")
        outcomes = " ".join(f"{k}={v}"
                            for k, v in agg["outcomes"].items())
        lines.append(f"outcomes           {outcomes}")
        lines.append(f"attributed time    "
                     f"{agg['total_latency_ns'] / 1e6:.3f} ms")
        lines.append(f"attributed energy  {agg['total_nj'] / 1e9:.6f} J")
        if self.lifecycle_problems:
            lines.append(f"lifecycle problems {len(self.lifecycle_problems)}")
            for problem in self.lifecycle_problems:
                lines.append(f"  ! {problem}")
        lines.append("")
        lines.append("== blame (all requests) ==")
        lines.extend(_blame_table(agg["blame_ns"],
                                  agg["total_latency_ns"]))
        for name, cohort in agg.get("cohorts", {}).items():
            lines.append("")
            lines.append(
                f"== blame ({name} cohort: {cohort['n_requests']} "
                f"requests >= {cohort['cutoff_ns'] / 1e6:.3f} ms, "
                f"dominant {cohort['dominant_phase']}) ==")
            total = sum(cohort["blame_ns"].values())
            lines.extend(_blame_table(cohort["blame_ns"], total))
        exemplars = [e for e in
                     sorted(self.explanations,
                            key=lambda e: (-e.latency_ns, e.request_id))
                     ][:max(top_k, 0)]
        if exemplars:
            lines.append("")
            lines.append(f"== slowest {len(exemplars)} requests ==")
            for expl in exemplars:
                lines.append(render_waterfall(expl))
        return "\n".join(lines) + "\n"


def run_explain(scenario: str = "chaos.waves",
                device_key: Optional[str] = None,
                seed: Optional[int] = None,
                top_k: int = DEFAULT_TOP_K) -> ExplainReport:
    """Replay ``scenario`` with the event log armed; explain every request.

    Reuses the :func:`~repro.obs.monitor.run_monitor` replay (same
    scenario registry, same deterministic arming), then reconstructs
    the critical path of every request the log saw.  The report is a
    pure function of (scenario, device, seed) — byte-identical JSON on
    a double run.
    """
    from .bench import DEFAULT_DEVICE, DEFAULT_SEED
    from .monitor import run_monitor

    device_key = device_key if device_key is not None else DEFAULT_DEVICE
    seed = seed if seed is not None else DEFAULT_SEED
    monitor = run_monitor(scenario, device_key=device_key, seed=seed)
    log: EventLog = monitor.log
    kind, explanations = explain_log(log)
    return ExplainReport(
        scenario=scenario, device=device_key, seed=seed, kind=kind,
        n_events=len(log),
        aggregate=aggregate_blame(explanations, top_k=top_k),
        lifecycle_problems=validate_lifecycle(log),
        explanations=explanations, log=log,
        tracer=monitor.tracer, timing=monitor.timing)


def explain_section(log: EventLog,
                    top_k: int = DEFAULT_TOP_K) -> Dict[str, Any]:
    """The embeddable blame section a fleet report carries.

    Validates lifecycle completeness first — a fleet run whose log
    cannot be fully reconstructed should fail loudly, not report a
    partial blame ledger.
    """
    problems = validate_lifecycle(log)
    if problems:
        raise ObservabilityError(
            "cannot explain an incomplete timeline:\n  "
            + "\n  ".join(problems))
    kind, explanations = explain_log(log)
    return {
        "schema": EXPLAIN_SCHEMA,
        "kind": kind,
        "n_events": len(log),
        "aggregate": aggregate_blame(explanations, top_k=top_k),
    }
