"""Online anomaly detection over windowed metric series.

Three detector families, all pure arithmetic over a
:class:`~repro.obs.stream.MetricStream` series (no RNG, no host clock),
so a given run flags the *same* anomalies every replay — alerts are as
reproducible as the fault plan that caused them:

* :class:`EwmaDetector` — exponentially weighted moving average with a
  companion EWM variance (West's recurrence).  Cheap, smooth, catches
  sustained level shifts; the classic first-line production detector.
* :class:`MadDetector` — robust z-score against the rolling median,
  scaled by the median absolute deviation (the 1.4826 consistency
  constant makes MAD estimate sigma for normal data).  Resists the
  exact outliers it is trying to flag, so one fault spike does not
  inflate the baseline the way it inflates an EWMA's variance.
* :class:`RateOfChangeDetector` — relative step change between
  consecutive windows.  Throttle cliffs (governor drops from
  performance to efficiency) show up as a single ~1.8x jump in step
  latency that level-based detectors need several windows to trust;
  this one fires on the edge itself.

Detectors score **windows**, not raw events: feed them
``stream.series(metric, stat)`` points.  Each firing yields a typed
:class:`AnomalyEvent` carrying the window of evidence (the trailing
values the decision was based on), so a report can show *why* a window
was flagged, not just that it was.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

__all__ = [
    "AnomalyEvent",
    "EwmaDetector",
    "MadDetector",
    "RateOfChangeDetector",
    "detect_series",
    "default_detectors",
]

#: Consistency constant: MAD * 1.4826 estimates sigma for normal data.
_MAD_SIGMA = 1.4826

#: Absolute floor on every score denominator, so a perfectly flat
#: baseline (variance exactly zero) yields huge-but-finite scores and
#: the JSON report never contains inf.
_DENOM_FLOOR = 1e-12


@dataclass(frozen=True)
class AnomalyEvent:
    """One detector firing on one window of one metric series.

    ``evidence`` is the trailing window of values the decision used
    (EWMA state or the MAD rolling window, plus the flagged value), in
    series order — enough to re-derive ``score`` by hand.
    """

    metric: str
    detector: str
    window_index: int
    sim_time: float
    value: float
    score: float
    threshold: float
    evidence: Tuple[float, ...] = field(default_factory=tuple)

    def to_json(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "detector": self.detector,
            "window_index": self.window_index,
            "sim_time": self.sim_time,
            "value": self.value,
            "score": self.score,
            "threshold": self.threshold,
            "evidence": list(self.evidence),
        }


def _check_positive(name: str, value: float) -> None:
    if not value > 0.0:
        raise ObservabilityError(f"{name} must be positive, got {value}")


class EwmaDetector:
    """EWMA level + EWM variance z-score detector.

    Maintains mean and variance with West's recurrence; a point whose
    deviation from the pre-update mean exceeds ``threshold`` estimated
    sigmas fires.  ``min_rel`` floors sigma at a fraction of the larger
    of the mean's and the point's magnitude, so a near-constant series
    (sigma ~ 0) only flags deviations that are also *relatively* large
    — without it, float noise on a flat baseline would alert, and a
    spike off an exactly-zero baseline would score ~1e12 instead of
    ``1 / min_rel``.  The first ``warmup`` points only train the state.
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.3, threshold: float = 4.0,
                 warmup: int = 3, min_rel: float = 0.1) -> None:
        _check_positive("alpha", alpha)
        if alpha > 1.0:
            raise ObservabilityError(f"alpha must be <= 1, got {alpha}")
        _check_positive("threshold", threshold)
        if warmup < 1:
            raise ObservabilityError(f"warmup must be >= 1, got {warmup}")
        if min_rel < 0.0:
            raise ObservabilityError(
                f"min_rel must be >= 0, got {min_rel}")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.min_rel = min_rel
        self._mean = 0.0
        self._var = 0.0
        self._n = 0

    def reset(self) -> None:
        self._mean = 0.0
        self._var = 0.0
        self._n = 0

    def observe(self, value: float) -> Optional[Tuple[float, Tuple[float, ...]]]:
        """Score ``value``; returns (score, evidence) when it fires."""
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(
                f"{self.name} detector fed NaN at point {self._n}")
        fired: Optional[Tuple[float, Tuple[float, ...]]] = None
        if self._n >= self.warmup:
            sigma = math.sqrt(max(self._var, 0.0))
            denom = max(sigma,
                        self.min_rel * max(abs(self._mean), abs(value)),
                        _DENOM_FLOOR)
            score = abs(value - self._mean) / denom
            if score > self.threshold:
                fired = (score, (self._mean, sigma, value))
        # West's EWM mean/variance update
        if self._n == 0:
            self._mean = value
        else:
            delta = value - self._mean
            incr = self.alpha * delta
            self._mean += incr
            self._var = (1.0 - self.alpha) * (self._var + delta * incr)
        self._n += 1
        return fired


class MadDetector:
    """Robust z-score against a rolling median, scaled by MAD.

    Keeps the last ``window`` values; a new point whose deviation from
    their median exceeds ``threshold`` robust sigmas
    (``MAD * 1.4826``) fires.  Because median and MAD ignore the tails,
    the baseline is not dragged by the very spikes being detected —
    the reason this detector exists alongside the EWMA.
    """

    name = "mad"

    def __init__(self, window: int = 8, threshold: float = 3.5,
                 warmup: int = 4, min_rel: float = 0.1) -> None:
        if window < 3:
            raise ObservabilityError(f"window must be >= 3, got {window}")
        _check_positive("threshold", threshold)
        if warmup < 2:
            raise ObservabilityError(f"warmup must be >= 2, got {warmup}")
        if min_rel < 0.0:
            raise ObservabilityError(
                f"min_rel must be >= 0, got {min_rel}")
        self.window = window
        self.threshold = threshold
        self.warmup = warmup
        self.min_rel = min_rel
        self._values: List[float] = []

    def reset(self) -> None:
        self._values = []

    @staticmethod
    def _median(values: Sequence[float]) -> float:
        ordered = sorted(values)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def observe(self, value: float) -> Optional[Tuple[float, Tuple[float, ...]]]:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(
                f"{self.name} detector fed NaN at point {len(self._values)}")
        fired: Optional[Tuple[float, Tuple[float, ...]]] = None
        if len(self._values) >= self.warmup:
            center = self._median(self._values)
            mad = self._median([abs(v - center) for v in self._values])
            denom = max(mad * _MAD_SIGMA,
                        self.min_rel * max(abs(center), abs(value)),
                        _DENOM_FLOOR)
            score = abs(value - center) / denom
            if score > self.threshold:
                fired = (score, tuple(self._values) + (value,))
        self._values.append(value)
        if len(self._values) > self.window:
            self._values.pop(0)
        return fired


class RateOfChangeDetector:
    """Fires on a large *relative* step between consecutive windows.

    Score is ``|v - prev| / max(|prev|, floor)``; a throttle from the
    performance to the efficiency governor stretches step latency by
    ``1/0.55 - 1 ~ 0.8``, comfortably above the default 0.5 threshold,
    while steady-state window noise sits far below it.  ``floor``
    guards the first-nonzero transition of count-like series (0 -> 1
    faults would otherwise score ~1e9).
    """

    name = "rate_of_change"

    def __init__(self, threshold: float = 0.5, floor: float = 1e-9) -> None:
        _check_positive("threshold", threshold)
        _check_positive("floor", floor)
        self.threshold = threshold
        self.floor = floor
        self._prev: Optional[float] = None

    def reset(self) -> None:
        self._prev = None

    def observe(self, value: float) -> Optional[Tuple[float, Tuple[float, ...]]]:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(f"{self.name} detector fed NaN")
        fired: Optional[Tuple[float, Tuple[float, ...]]] = None
        prev = self._prev
        if prev is not None:
            denom = max(abs(prev), self.floor)
            score = abs(value - prev) / denom
            if score > self.threshold and abs(prev) > self.floor:
                fired = (score, (prev, value))
        self._prev = value
        return fired


def default_detectors() -> List[Any]:
    """Fresh instances of the standard detector set."""
    return [EwmaDetector(), MadDetector(), RateOfChangeDetector()]


def detect_series(metric: str,
                  points: Sequence[Tuple[int, float, float]],
                  detectors: Optional[Sequence[Any]] = None
                  ) -> List[AnomalyEvent]:
    """Run detectors over one series; returns firings in series order.

    ``points`` are ``(window_index, sim_time, value)`` triples (a
    :meth:`MetricStream.series` result zipped with window start times).
    Each detector is reset first, then fed every point in order, so the
    result is a pure function of (points, detector parameters).
    """
    if detectors is None:
        detectors = default_detectors()
    out: List[AnomalyEvent] = []
    for detector in detectors:
        detector.reset()
        for window_index, sim_time, value in points:
            fired = detector.observe(value)
            if fired is not None:
                score, evidence = fired
                out.append(AnomalyEvent(
                    metric=metric, detector=detector.name,
                    window_index=int(window_index),
                    sim_time=float(sim_time), value=float(value),
                    score=float(score),
                    threshold=float(detector.threshold),
                    evidence=tuple(float(v) for v in evidence)))
    out.sort(key=lambda a: (a.window_index, a.metric, a.detector))
    return out
