"""Chrome-trace (Perfetto) export and text reporting for traced runs.

Converts a :class:`~repro.obs.trace.Tracer`'s spans into the
``chrome://tracing`` JSON event format, which Perfetto
(https://ui.perfetto.dev) opens directly.  Two timelines are emitted in
one process:

* **host threads** — the wall-clock span hierarchy as recorded, one
  Chrome thread per Python thread;
* **engine lanes** — ``HMX`` / ``HVX`` / ``DMA`` / ``CPU`` occupancy on
  a *simulated* timeline.  Every cost-bearing span (kernels attach their
  :class:`~repro.npu.timing.KernelCost`) becomes one bar per engine,
  all bars starting at the span's simulated start and each lasting that
  engine's component time.  The gap between an engine's bar and the
  span's critical-path time is idle capacity — the HMX lane during
  batched decode shows exactly the Fig. 8 / §4 headroom the paper's
  test-time scaling rides on.

The module deliberately imports nothing from :mod:`repro.npu`: the
timing model is passed in by the caller and used duck-typed
(``hmx_seconds`` / ``hvx_seconds`` / ``dma_seconds`` / ``seconds``), so
the observability layer sits below every subsystem without cycles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ObservabilityError
from .trace import Span, Tracer

__all__ = [
    "ENGINE_LANES",
    "chrome_trace",
    "write_chrome_trace",
    "engine_utilization",
    "text_report",
    "report_data",
]

_PID = 1
_HOST_TID_BASE = 1
ENGINE_LANES = ("HMX", "HVX", "DMA", "CPU")
_ENGINE_TIDS = {"HMX": 100, "HVX": 101, "DMA": 102, "CPU": 103}
#: Run-level timeline events (no request id) land on this lane; request
#: lanes are ``_REQUEST_TID_BASE + request_id``.
_RUN_EVENTS_TID = 199
_REQUEST_TID_BASE = 200


def _spans_of(source: Union[Tracer, Sequence[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return source.finished_spans()
    return list(source)


def _engine_seconds(timing: Any, cost: Any) -> Dict[str, float]:
    """Per-engine component times of one cost record (duck-typed)."""
    return {
        "HMX": float(timing.hmx_seconds(cost)),
        "HVX": float(timing.hvx_seconds(cost)),
        "DMA": float(timing.dma_seconds(cost)),
    }


def _leaf_cost_spans(spans: List[Span]) -> List[Span]:
    """Cost-bearing spans with no cost-bearing descendants.

    Costs are attached at several nesting levels (``model.forward``
    carries the whole step, its kernel children carry the pieces);
    pricing every level would double-count engine time, so only the
    deepest attribution is used.
    """
    costed = [s for s in spans if s.costs]
    has_cost_descendant = set()
    costed_indices = {s.index for s in costed}
    by_index = {s.index: s for s in spans}
    for span in costed:
        parent = span.parent
        while parent is not None:
            if parent in costed_indices:
                has_cost_descendant.add(parent)
            parent = by_index[parent].parent if parent in by_index else None
    return [s for s in costed if s.index not in has_cost_descendant]


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _events_of(events: Any) -> List[Any]:
    """Normalize an EventLog-or-sequence argument (duck-typed)."""
    if events is None:
        return []
    if hasattr(events, "events"):
        return list(events.events())
    return list(events)


def _request_lane_events(timeline_events: List[Any]) -> List[Dict[str, Any]]:
    """Per-request Perfetto lanes from structured timeline events.

    Each request gets its own Chrome thread: one ``X`` bar spanning
    admit -> complete on the *simulated* timeline, with the causal
    events in between (decode steps are elided — they are the engine
    lanes' job) rendered as instant markers.  Run-level events (faults,
    throttles, deadlines with no request id) land on a shared
    ``events`` lane, so the Perfetto view correlates "request 3
    stalled" with "DMA fault fired" by eye.
    """
    out: List[Dict[str, Any]] = []
    by_request: Dict[int, List[Any]] = {}
    run_level: List[Any] = []
    for event in timeline_events:
        if event.request_id is None:
            run_level.append(event)
        else:
            by_request.setdefault(event.request_id, []).append(event)
    if not by_request and not run_level:
        return out
    if run_level:
        out.append({"name": "thread_name", "ph": "M", "pid": _PID,
                    "tid": _RUN_EVENTS_TID, "args": {"name": "events"}})
    for request_id in sorted(by_request):
        tid = _REQUEST_TID_BASE + request_id
        out.append({"name": "thread_name", "ph": "M", "pid": _PID,
                    "tid": tid, "args": {"name": f"request {request_id}"}})
        chain = by_request[request_id]
        starts = [e.sim_time for e in chain if e.kind in ("admit", "queue")]
        ends = [e.sim_time for e in chain if e.kind == "complete"]
        start = min(starts) if starts else min(e.sim_time for e in chain)
        end = max(ends) if ends else max(e.sim_time for e in chain)
        completes = [e for e in chain if e.kind == "complete"]
        args: Dict[str, Any] = {"request_id": request_id}
        if completes:
            args.update({k: _json_safe(v)
                         for k, v in completes[-1].attrs.items()})
        out.append({"name": f"request {request_id}", "cat": "sim.request",
                    "ph": "X", "ts": start * 1e6,
                    "dur": max(end - start, 0.0) * 1e6,
                    "pid": _PID, "tid": tid, "args": args})
        for event in chain:
            if event.kind in ("decode_step", "complete"):
                continue
            out.append({"name": event.kind, "cat": "sim.request",
                        "ph": "i", "s": "t", "ts": event.sim_time * 1e6,
                        "pid": _PID, "tid": tid,
                        "args": {k: _json_safe(v)
                                 for k, v in event.attrs.items()}})
    for event in run_level:
        if event.kind == "decode_step":
            continue
        out.append({"name": event.kind, "cat": "sim.request",
                    "ph": "i", "s": "t", "ts": event.sim_time * 1e6,
                    "pid": _PID, "tid": _RUN_EVENTS_TID,
                    "args": {k: _json_safe(v)
                             for k, v in event.attrs.items()}})
    return out


def _critical_path_events(critical_paths: Any) -> List[Dict[str, Any]]:
    """Critical-path highlighting bars for the per-request lanes.

    ``critical_paths`` maps request id -> phase slices (anything with
    ``phase``/``start_ns``/``end_ns``, or ``[phase, start_ns, end_ns]``
    triples — the :class:`~repro.obs.critical_path.PhaseSlice` JSON
    shape).  Each slice becomes an ``X`` bar on the request's lane,
    named by its blame phase, so Perfetto shows *why* each stretch of
    the admit-to-complete bar existed, not just that it did.
    """
    out: List[Dict[str, Any]] = []
    if not critical_paths:
        return out
    for request_id in sorted(critical_paths):
        tid = _REQUEST_TID_BASE + int(request_id)
        for entry in critical_paths[request_id]:
            if hasattr(entry, "phase"):
                phase, start_ns, end_ns = (entry.phase, entry.start_ns,
                                           entry.end_ns)
            else:
                phase, start_ns, end_ns = entry
            out.append({
                "name": str(phase), "cat": "sim.blame", "ph": "X",
                "ts": start_ns * 1e-3, "dur": max(end_ns - start_ns, 0)
                * 1e-3,
                "pid": _PID, "tid": tid,
                "args": {"phase": str(phase),
                         "request_id": int(request_id)},
            })
    return out


def chrome_trace(source: Union[Tracer, Sequence[Span]],
                 timing: Optional[Any] = None,
                 process_name: str = "repro",
                 events: Optional[Any] = None,
                 critical_paths: Optional[Any] = None) -> Dict[str, Any]:
    """Build a ``chrome://tracing`` JSON object from finished spans.

    ``timing`` (a :class:`~repro.npu.timing.TimingModel`) prices each
    span's attached kernel costs onto the four engine lanes; without it
    only the host-thread timeline is emitted.  ``events`` (a
    :class:`~repro.obs.timeline.EventLog` or its event list) adds one
    lane per request on the simulated timeline — admit-to-complete bars
    with fault/retry/evict markers.  ``critical_paths`` (request id ->
    phase slices, the :mod:`repro.obs.critical_path` waterfall) overlays
    blame-phase bars on those lanes.  The result round-trips through
    :func:`json.dumps` and loads in Perfetto.
    """
    spans = _spans_of(source)
    timeline_events = _events_of(events)  # before the local list shadows it
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": process_name},
    }]

    # host-thread lanes
    threads = sorted({s.thread for s in spans})
    host_tids = {name: _HOST_TID_BASE + i for i, name in enumerate(threads)}
    for name, tid in host_tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": _PID,
                       "tid": tid, "args": {"name": f"host:{name}"}})
    for lane in ENGINE_LANES:
        events.append({"name": "thread_name", "ph": "M", "pid": _PID,
                       "tid": _ENGINE_TIDS[lane], "args": {"name": lane}})

    t0 = min((s.start for s in spans), default=0.0)
    for span in spans:
        args = {k: _json_safe(v) for k, v in span.attrs.items()
                if not k.startswith("_")}
        events.append({
            "name": span.name, "cat": span.category, "ph": "X",
            "ts": (span.start - t0) * 1e6,
            "dur": max(span.duration, 0.0) * 1e6,
            "pid": _PID, "tid": host_tids[span.thread], "args": args,
        })

    # engine lanes on the simulated timeline (deepest attribution only).
    # The span forest is walked depth-first in start order: each leaf
    # cost span contributes concurrent HMX/HVX/DMA bars at the current
    # simulated cursor, and a span's ``cpu_seconds`` attr (the lm_head on
    # the CPU) is emitted *after* its descendants — the CPU consumes the
    # NPU's final hidden states, so it serializes behind them.
    if timing is not None:
        by_index = {s.index: s for s in spans}
        children: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            parent = span.parent if span.parent in by_index else None
            children.setdefault(parent, []).append(span)
        for siblings in children.values():
            siblings.sort(key=lambda s: s.start)
        leaves = {s.index for s in _leaf_cost_spans(spans)}
        cursor_us = [0.0]

        def emit_engine(span: Span) -> None:
            cost = span.total_cost() if span.index in leaves else None
            if cost is not None:
                step_us = float(timing.seconds(cost)) * 1e6
                for lane, seconds in _engine_seconds(timing, cost).items():
                    if seconds <= 0.0:
                        continue
                    events.append({
                        "name": span.name, "cat": "sim.engine", "ph": "X",
                        "ts": cursor_us[0], "dur": seconds * 1e6,
                        "pid": _PID, "tid": _ENGINE_TIDS[lane],
                        "args": {"engine": lane},
                    })
                cursor_us[0] += step_us
            for child in children.get(span.index, []):
                emit_engine(child)
            cpu_seconds = float(span.attrs.get("cpu_seconds", 0.0))
            if cpu_seconds > 0.0:
                events.append({
                    "name": span.name, "cat": "sim.engine", "ph": "X",
                    "ts": cursor_us[0], "dur": cpu_seconds * 1e6,
                    "pid": _PID, "tid": _ENGINE_TIDS["CPU"],
                    "args": {"engine": "CPU"},
                })
                cursor_us[0] += cpu_seconds * 1e6

        for root in children.get(None, []):
            emit_engine(root)

    events.extend(_request_lane_events(timeline_events))
    events.extend(_critical_path_events(critical_paths))

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs"}}


def write_chrome_trace(path: str, source: Union[Tracer, Sequence[Span]],
                       timing: Optional[Any] = None,
                       process_name: str = "repro",
                       events: Optional[Any] = None,
                       critical_paths: Optional[Any] = None) -> Dict[str, Any]:
    """Write the Chrome-trace JSON to ``path``; returns the trace dict."""
    trace = chrome_trace(source, timing=timing, process_name=process_name,
                         events=events, critical_paths=critical_paths)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return trace


def engine_utilization(trace: Dict[str, Any]) -> Dict[str, float]:
    """Busy fraction per engine lane over the simulated timeline.

    ``1 - engine_utilization(trace)["HMX"]`` is the HMX-idle fraction —
    the quantity §4 of the paper builds its whole argument on.
    """
    events = [e for e in trace.get("traceEvents", [])
              if e.get("cat") == "sim.engine" and e.get("ph") == "X"]
    if not events:
        raise ObservabilityError(
            "trace has no engine-lane events; was it exported with a "
            "TimingModel?")
    span_us = max(e["ts"] + e["dur"] for e in events)
    tid_to_lane = {tid: lane for lane, tid in _ENGINE_TIDS.items()}
    busy: Dict[str, float] = {lane: 0.0 for lane in ENGINE_LANES}
    for event in events:
        lane = tid_to_lane.get(event["tid"])
        if lane is not None:
            busy[lane] += event["dur"]
    if span_us <= 0:
        raise ObservabilityError("engine timeline has zero extent")
    return {lane: busy[lane] / span_us for lane in ENGINE_LANES}


# ----------------------------------------------------------------------
# text report
# ----------------------------------------------------------------------
def _aggregate_tree(spans: List[Span]) -> Dict[tuple, Dict[str, float]]:
    """Aggregate spans by their name path (flamegraph folding)."""
    by_index = {s.index: s for s in spans}
    paths: Dict[tuple, Dict[str, float]] = {}
    for span in spans:
        names = [span.name]
        parent = span.parent
        while parent is not None and parent in by_index:
            names.append(by_index[parent].name)
            parent = by_index[parent].parent
        path = tuple(reversed(names))
        entry = paths.setdefault(path, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += span.duration
    return paths


def _scheduler_stats(spans: List[Span]) -> Optional[Dict[str, float]]:
    """Continuous-batching stats from scheduler spans, or ``None``."""
    steps = [s for s in spans
             if s.category == "scheduler" and s.name == "scheduler.step"]
    if not steps:
        return None
    live = [int(s.attrs.get("live_batch", 0)) for s in steps]
    blocks = [int(s.attrs.get("blocks_in_use", 0)) for s in steps]
    admits = sum(1 for s in spans if s.name == "scheduler.admit")
    return {
        "decode_steps": len(steps),
        "admissions": admits,
        "mean_live_batch": sum(live) / len(live),
        "peak_kv_blocks": max(blocks),
    }


def _resilience_stats(spans: List[Span]) -> Optional[Dict[str, Any]]:
    """Chaos-mode counters from resilience spans, or ``None``."""
    resilience = [s for s in spans if s.category == "resilience"]
    if not resilience:
        return None
    by_name: Dict[str, int] = {}
    for span in resilience:
        by_name[span.name] = by_name.get(span.name, 0) + 1
    fault_kinds: Dict[str, int] = {}
    for span in resilience:
        if span.name == "resilience.fault":
            kind = str(span.attrs.get("kind", "?"))
            fault_kinds[kind] = fault_kinds.get(kind, 0) + 1
    governors = sorted({str(s.attrs["governor"]) for s in resilience
                        if s.name == "resilience.throttle"
                        and "governor" in s.attrs})
    return {
        "faults": by_name.get("resilience.fault", 0),
        "fault_kinds": fault_kinds,
        "retries": by_name.get("resilience.retry", 0),
        "rebuilds": by_name.get("resilience.rebuild", 0),
        "evictions": by_name.get("resilience.evict", 0),
        "throttles": by_name.get("resilience.throttle", 0),
        "deadline_hits": by_name.get("resilience.deadline", 0),
        "degradations": (by_name.get("resilience.degrade", 0)
                         + by_name.get("resilience.tts_degrade", 0)),
        "governors": governors,
    }


def _kernel_attribution(spans: List[Span],
                        timing: Any) -> Dict[str, Dict[str, float]]:
    """Per-kernel simulated engine seconds (deepest attribution only)."""
    costed: Dict[str, Dict[str, float]] = {}
    for span in _leaf_cost_spans(spans):
        cost = span.total_cost()
        if cost is None:
            continue
        entry = costed.setdefault(span.name, {
            "count": 0, "sim": 0.0, "hmx": 0.0, "hvx": 0.0, "dma": 0.0})
        entry["count"] += 1
        entry["sim"] += float(timing.seconds(cost))
        engines = _engine_seconds(timing, cost)
        entry["hmx"] += engines["HMX"]
        entry["hvx"] += engines["HVX"]
        entry["dma"] += engines["DMA"]
    return costed


def _metrics_snapshot(metrics: Optional[Any]) -> Dict[str, Dict[str, Any]]:
    """Normalize a registry-or-snapshot argument to a snapshot dict."""
    if metrics is None:
        return {}
    if hasattr(metrics, "snapshot"):
        return metrics.snapshot()
    return dict(metrics)


def _slo_sections(metrics: Optional[Any]) -> Dict[str, Dict[str, float]]:
    from .slo import slo_summary

    snapshot = _metrics_snapshot(metrics)
    if not snapshot:
        return {}
    return slo_summary(snapshot)


def _energy_section(energy: Optional[Any]) -> Optional[Dict[str, Any]]:
    """Normalize an EnergyAccountant-or-dict argument (duck-typed)."""
    if energy is None:
        return None
    data = energy.to_json() if hasattr(energy, "to_json") else dict(energy)
    if not data.get("total_j"):
        return None
    return data


def _blame_section(blame: Optional[Any]) -> Optional[Dict[str, Any]]:
    """Normalize a blame argument to an aggregate dict (duck-typed).

    Accepts the :func:`~repro.obs.blame.aggregate_blame` dict directly,
    or anything carrying one under an ``aggregate`` attribute/key (an
    :class:`~repro.obs.blame.ExplainReport` or its ``to_json`` dict).
    """
    if blame is None:
        return None
    if hasattr(blame, "aggregate"):
        return blame.aggregate
    data = dict(blame)
    if "aggregate" in data:
        return data["aggregate"]
    return data


def text_report(source: Union[Tracer, Sequence[Span]],
                timing: Optional[Any] = None,
                metrics: Optional[Any] = None,
                energy: Optional[Any] = None,
                blame: Optional[Any] = None) -> str:
    """Flamegraph-style text report: span tree plus kernel attribution.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry` or its
    snapshot dict) adds the SLO section — p50/p95/p99 token-latency
    percentiles recorded by the scheduler/engine hot paths.  ``energy``
    (an :class:`~repro.obs.energy.EnergyAccountant` or its ``to_json``
    dict, optionally carrying ``tokens``) adds the simulated-joule
    attribution section.  ``blame`` (an
    :class:`~repro.obs.blame.ExplainReport` or its aggregate dict) adds
    the critical-path latency blame section.
    """
    spans = _spans_of(source)
    lines: List[str] = []
    if not spans:
        return "trace is empty (was the tracer enabled?)\n"

    paths = _aggregate_tree(spans)
    total = sum(s.duration for s in spans if s.parent is None) or 1e-12

    lines.append("== span tree (host wall clock) ==")
    lines.append(f"{'span':<52s} {'count':>6s} {'ms':>10s} {'%':>6s}")

    def emit(prefix: tuple, indent: int) -> None:
        children = sorted(
            (p for p in paths if len(p) == len(prefix) + 1
             and p[:len(prefix)] == prefix),
            key=lambda p: -paths[p]["seconds"])
        for path in children:
            entry = paths[path]
            label = "  " * indent + path[-1]
            lines.append(f"{label:<52s} {int(entry['count']):>6d} "
                         f"{entry['seconds'] * 1e3:>10.3f} "
                         f"{100.0 * entry['seconds'] / total:>6.1f}")
            emit(path, indent + 1)

    emit((), 0)

    scheduler = _scheduler_stats(spans)
    if scheduler is not None:
        lines.append("")
        lines.append("== continuous-batching scheduler ==")
        lines.append(f"decode steps       {scheduler['decode_steps']}")
        lines.append(f"admissions         {scheduler['admissions']}")
        lines.append(f"mean live batch    {scheduler['mean_live_batch']:.2f}")
        lines.append(f"peak KV blocks     {scheduler['peak_kv_blocks']}")

    resilience = _resilience_stats(spans)
    if resilience is not None:
        lines.append("")
        lines.append("== resilience (chaos mode) ==")
        lines.append(f"faults injected    {resilience['faults']}")
        for kind in sorted(resilience["fault_kinds"]):
            lines.append(f"  {kind:<17s}{resilience['fault_kinds'][kind]}")
        lines.append(f"retries            {resilience['retries']}")
        lines.append(f"KV rebuilds        {resilience['rebuilds']}")
        lines.append(f"evictions          {resilience['evictions']}")
        lines.append(f"throttle events    {resilience['throttles']}")
        lines.append(f"deadline hits      {resilience['deadline_hits']}")
        lines.append(f"degradations       {resilience['degradations']}")
        if resilience["governors"]:
            lines.append(
                f"governors hit      {', '.join(resilience['governors'])}")

    energy_data = _energy_section(energy)
    if energy_data is not None:
        lines.append("")
        lines.append("== energy attribution (simulated joules) ==")
        lines.append(f"total joules       {energy_data['total_j']:.6f}")
        for key, label in (("prefill_j", "prefill"), ("decode_j", "decode"),
                           ("idle_j", "idle (backoff)")):
            if key in energy_data:
                lines.append(f"  {label:<17s}{energy_data[key]:.6f}")
        tokens = energy_data.get("tokens")
        if tokens:
            tpj = tokens / energy_data["total_j"]
            lines.append(f"tokens per joule   {tpj:.1f}")

    blame_data = _blame_section(blame)
    if blame_data is not None and blame_data.get("blame_ns"):
        total_ns = blame_data.get("total_latency_ns", 0)
        lines.append("")
        lines.append("== latency blame (critical path) ==")
        lines.append(f"requests explained {blame_data.get('n_requests', 0)}")
        lines.append(f"attributed time    {total_ns / 1e6:.3f} ms")
        lines.append(f"{'phase':<18s} {'ms':>12s} {'share':>7s}")
        blame_ns = blame_data["blame_ns"]
        for phase in sorted(blame_ns, key=lambda p: -blame_ns[p]):
            share = blame_ns[phase] / total_ns if total_ns else 0.0
            lines.append(f"{phase:<18s} {blame_ns[phase] / 1e6:>12.3f} "
                         f"{share:>6.1%}")
        for name, cohort in blame_data.get("cohorts", {}).items():
            lines.append(f"{name} dominant       {cohort['dominant_phase']} "
                         f"({cohort['n_requests']} requests >= "
                         f"{cohort['cutoff_ns'] / 1e6:.3f} ms)")

    slo = _slo_sections(metrics)
    if slo:
        lines.append("")
        lines.append("== SLO token-latency percentiles (simulated) ==")
        lines.append(f"{'histogram':<44s} {'count':>7s} {'p50 us':>10s} "
                     f"{'p95 us':>10s} {'p99 us':>10s}")
        for name, entry in slo.items():
            lines.append(f"{name:<44s} {int(entry['count']):>7d} "
                         f"{entry['p50'] * 1e6:>10.1f} "
                         f"{entry['p95'] * 1e6:>10.1f} "
                         f"{entry['p99'] * 1e6:>10.1f}")

    if timing is not None:
        costed = _kernel_attribution(spans, timing)
        if costed:
            sim_total = sum(e["sim"] for e in costed.values()) or 1e-12
            lines.append("")
            lines.append("== per-kernel simulated time attribution ==")
            lines.append(f"{'kernel':<28s} {'count':>6s} {'sim us':>12s} "
                         f"{'%':>6s} {'hmx us':>10s} {'hvx us':>10s} "
                         f"{'dma us':>10s}")
            for name in sorted(costed, key=lambda n: -costed[n]["sim"]):
                entry = costed[name]
                lines.append(
                    f"{name:<28s} {int(entry['count']):>6d} "
                    f"{entry['sim'] * 1e6:>12.1f} "
                    f"{100.0 * entry['sim'] / sim_total:>6.1f} "
                    f"{entry['hmx'] * 1e6:>10.1f} "
                    f"{entry['hvx'] * 1e6:>10.1f} "
                    f"{entry['dma'] * 1e6:>10.1f}")
    return "\n".join(lines) + "\n"


def report_data(source: Union[Tracer, Sequence[Span]],
                timing: Optional[Any] = None,
                metrics: Optional[Any] = None,
                energy: Optional[Any] = None,
                blame: Optional[Any] = None) -> Dict[str, Any]:
    """Structured counterpart of :func:`text_report` for ``--json``.

    Returns a JSON-serializable dict with the same information the text
    report renders: the folded span tree, scheduler/resilience stats,
    per-kernel simulated attribution (when ``timing`` is given), SLO
    percentiles, the full metrics snapshot (when ``metrics`` is given)
    and the critical-path blame aggregate (when ``blame`` is given).
    Empty sections are ``None``/empty rather than absent, so consumers
    can rely on the schema.
    """
    spans = _spans_of(source)
    paths = _aggregate_tree(spans)
    span_tree = [
        {"path": list(path), "count": int(entry["count"]),
         "seconds": entry["seconds"]}
        for path, entry in sorted(
            paths.items(), key=lambda kv: (len(kv[0]), -kv[1]["seconds"]))]
    kernels: List[Dict[str, Any]] = []
    if timing is not None:
        costed = _kernel_attribution(spans, timing)
        kernels = [
            {"kernel": name, "count": int(entry["count"]),
             "sim_seconds": entry["sim"], "hmx_seconds": entry["hmx"],
             "hvx_seconds": entry["hvx"], "dma_seconds": entry["dma"]}
            for name in sorted(costed, key=lambda n: -costed[n]["sim"])
            for entry in [costed[name]]]
    return {
        "schema": "repro.profile/v1",
        "n_spans": len(spans),
        "span_tree": span_tree,
        "scheduler": _scheduler_stats(spans),
        "resilience": _resilience_stats(spans),
        "kernels": kernels,
        "slo": _slo_sections(metrics),
        "metrics": _metrics_snapshot(metrics),
        "energy": _energy_section(energy),
        "blame": _blame_section(blame),
    }
