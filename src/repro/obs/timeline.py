"""Structured per-request event log on the *simulated* timeline.

Spans (:mod:`repro.obs.trace`) answer "where did host time go"; the
event log answers the serving question "what happened to request 17,
when, and why".  Every request admitted by the continuous-batching
scheduler (or a lock-step ``engine.generate`` run) carries a causal
chain of typed events::

    queue -> admit -> wave_assign -> prefill/decode_step* ->
        [fault -> retry -> rebuild | evict | throttle | deadline]* ->
        complete

Each :class:`TimelineEvent` carries the **simulated** clock time it
occurred at (a :class:`~repro.npu.timing.SimClock` reading, never host
wall clock), so a recorded timeline is a deterministic function of the
run's seeds and fault plan — byte-identical across machines, which is
what lets ``repro monitor`` diff two runs and what the anomaly layer
(:mod:`repro.obs.anomaly`) depends on for reproducible alerts.

Like the tracer, the default global log is **disabled** and the
module-level :func:`emit` is a cheap guard-and-return, so the scheduler
hot loop pays one function call per site when nobody is monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ObservabilityError

__all__ = [
    "EVENT_KINDS",
    "TimelineEvent",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "emit",
    "timeline_enabled",
]

#: The typed event vocabulary.  ``queue`` marks a request entering the
#: pending set; ``admit``/``wave_assign`` its scheduling decision;
#: ``prefill``/``decode_step`` forward progress; ``fault``/``retry``/
#: ``rebuild``/``evict``/``throttle``/``deadline`` the resilience path;
#: ``complete`` retirement (with its finish reason).  The fleet layer
#: adds ``shed`` (admission control dropped the request on a full
#: queue) and ``dispatch`` (a queued request started service on a
#: device, with its queue wait), plus the chaos/recovery vocabulary:
#: ``device_down``/``device_up`` (a device crashed / rebooted),
#: ``failover`` (a lost dispatch re-offered, or its retry budget
#: exhausted), ``hedge`` (a second copy dispatched, or the losing leg
#: cancelled first-completion-wins), and ``breaker_open``/
#: ``breaker_close`` (a device's circuit breaker tripped / recovered).
#: Stage-level dispatch adds ``prefill_chunk`` (one chunk of a chunked
#: or admitted prompt forwarded) and ``backend_switch`` (the stage
#: dispatcher migrated between CPU/GPU/NPU, paying an rpcmem crossing).
#: ``wave_start``/``wave_end`` bracket a scheduler wave's population:
#: the first admit of wave ``k`` opens it, the last retirement closes
#: it — the run-level boundaries the critical-path reconstructor
#: (:mod:`repro.obs.critical_path`) uses to scope decode cohorts.
EVENT_KINDS = (
    "queue",
    "admit",
    "wave_assign",
    "wave_start",
    "wave_end",
    "prefill",
    "prefill_chunk",
    "decode_step",
    "backend_switch",
    "fault",
    "retry",
    "rebuild",
    "evict",
    "throttle",
    "deadline",
    "complete",
    "shed",
    "dispatch",
    "device_down",
    "device_up",
    "failover",
    "hedge",
    "breaker_open",
    "breaker_close",
)

_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(frozen=True)
class TimelineEvent:
    """One typed event on the simulated timeline.

    ``seq`` is the log-global emission index (total order even when two
    events share a ``sim_time``); ``request_id`` is the candidate the
    event belongs to, or ``None`` for run-level events (a batch decode
    step, a throttle, a deadline).
    """

    seq: int
    kind: str
    sim_time: float
    request_id: Optional[int] = None
    step: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"seq": self.seq, "kind": self.kind,
                               "sim_time": self.sim_time}
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.step is not None:
            out["step"] = self.step
        if self.attrs:
            out["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        return out


class EventLog:
    """Append-only, queryable log of :class:`TimelineEvent` records."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TimelineEvent] = []

    # ------------------------------------------------------------------
    def emit(self, kind: str, sim_time: float,
             request_id: Optional[int] = None, step: Optional[int] = None,
             **attrs: Any) -> Optional[TimelineEvent]:
        """Append one event; returns it, or ``None`` while disabled."""
        if not self.enabled:
            return None
        if kind not in _KIND_SET:
            raise ObservabilityError(
                f"unknown timeline event kind {kind!r}; known: {EVENT_KINDS}")
        sim_time = float(sim_time)
        if not sim_time >= 0.0:  # also rejects NaN
            raise ObservabilityError(
                f"timeline event {kind} needs a non-negative simulated "
                f"time, got {sim_time}")
        event = TimelineEvent(seq=len(self._events), kind=kind,
                              sim_time=sim_time, request_id=request_id,
                              step=step, attrs=attrs)
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    def events(self) -> List[TimelineEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def timeline(self, request_id: int) -> List[TimelineEvent]:
        """The causal chain of one request, in emission order."""
        return [e for e in self._events if e.request_id == request_id]

    def by_kind(self, kind: str) -> List[TimelineEvent]:
        if kind not in _KIND_SET:
            raise ObservabilityError(
                f"unknown timeline event kind {kind!r}; known: {EVENT_KINDS}")
        return [e for e in self._events if e.kind == kind]

    def request_ids(self) -> List[int]:
        """Distinct request ids seen, ascending."""
        return sorted({e.request_id for e in self._events
                       if e.request_id is not None})

    def span(self) -> Tuple[float, float]:
        """(first, last) simulated time covered; (0, 0) when empty."""
        if not self._events:
            return 0.0, 0.0
        times = [e.sim_time for e in self._events]
        return min(times), max(times)

    def reset(self) -> None:
        self._events.clear()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False


# ----------------------------------------------------------------------
# global default log (disabled: serving runs pay only the guard)
# ----------------------------------------------------------------------
_default_log = EventLog(enabled=False)


def get_event_log() -> EventLog:
    return _default_log


def set_event_log(log: EventLog) -> EventLog:
    """Install ``log`` as the global default; returns the previous one."""
    global _default_log
    previous = _default_log
    _default_log = log
    return previous


def emit(kind: str, sim_time: float, request_id: Optional[int] = None,
         step: Optional[int] = None, **attrs: Any) -> Optional[TimelineEvent]:
    """Emit on the global default log (no-op while disabled)."""
    log = _default_log
    if not log.enabled:
        return None
    return log.emit(kind, sim_time, request_id=request_id, step=step, **attrs)


def timeline_enabled() -> bool:
    return _default_log.enabled
