"""Simulated energy attribution for the serving path.

:mod:`repro.perf.power` answers the *modeling* question — what does a
decode configuration draw in steady state (Fig. 12)?  This module
answers the *accounting* question — which request, wave and engine did
each simulated joule go to?  Every scheduler/engine step computes an
:class:`EnergyBreakdown` from the step's per-engine utilizations and a
:class:`~repro.perf.power.PowerBudget`, and an :class:`EnergyAccountant`
rolls the joules up per request and per wave, so timelines, reports and
bench metrics can surface tokens-per-joule — the battery-life currency
the paper's mobile setting trades in.

Layering: like :mod:`repro.obs.export`, this module imports nothing
from :mod:`repro.npu` or :mod:`repro.perf` — ``budget`` and ``timing``
are duck-typed (anything with ``base_w``/``dram_w``/... watts and
``hmx_seconds``/``hvx_seconds``/``dma_seconds`` methods works), so obs
stays a leaf package with no import cycles.

Energy model per step (matching :class:`~repro.perf.power.PowerModel`):

    E = P_base * t_step
      + scale * (P_dram * t_dma + P_hmx * t_hmx + P_hvx * t_hvx)
      + P_cpu * t_cpu

where ``scale`` is the active governor's ``power_scale`` — dynamic NPU
power drops superlinearly with the DVFS clock while the CPU (not
governed by the NPU ladder) and the baseline do not.  Engine-seconds
are capped at the step duration, mirroring the utilization clamp in
``PowerModel._utilizations``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ObservabilityError

__all__ = ["EnergyBreakdown", "ZERO_ENERGY", "EnergyModel",
           "EnergyAccountant", "tokens_per_joule", "quantize_nj"]


def quantize_nj(joules: float) -> int:
    """Quantize one energy charge to integer nanojoules.

    The blame ledger (:mod:`repro.obs.critical_path`) quantizes every
    individual charge exactly once and then only ever adds integers, so
    per-phase attributions sum *bitwise* to the per-request total — the
    float path cannot promise that (addition order changes the ulps).
    One nanojoule of granularity is ~9 orders below a single decode
    step's budget, so the rounding is far under measurement noise.
    """
    return int(round(float(joules) * 1e9))


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules of one step, split by component rail."""

    joules: float
    base_j: float = 0.0
    dram_j: float = 0.0
    hmx_j: float = 0.0
    hvx_j: float = 0.0
    cpu_j: float = 0.0

    def to_json(self) -> Dict[str, float]:
        return {
            "joules": self.joules,
            "base_j": self.base_j,
            "dram_j": self.dram_j,
            "hmx_j": self.hmx_j,
            "hvx_j": self.hvx_j,
            "cpu_j": self.cpu_j,
        }


ZERO_ENERGY = EnergyBreakdown(joules=0.0)


def tokens_per_joule(tokens: float, joules: float) -> float:
    """Tokens-per-joule, 0.0 when no energy was accrued."""
    return tokens / joules if joules > 0.0 else 0.0


def _check_finite(name: str, value: float) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value) or value < 0.0:
        raise ObservabilityError(
            f"energy model needs finite non-negative {name}, got {value}")
    return value


class EnergyModel:
    """Per-step joule attribution from a power budget + timing model.

    ``budget`` supplies component watts (``base_w``/``dram_w``/``hmx_w``
    /``hvx_w``/``cpu_w``); ``timing`` (optional) converts a step's NPU
    kernel cost into per-engine seconds.  Without a timing model only
    the baseline and CPU terms accrue — honest for device-less runs,
    where there is no NPU latency model to attribute against.
    """

    def __init__(self, budget: Any, timing: Optional[Any] = None) -> None:
        for attr in ("base_w", "dram_w", "hmx_w", "hvx_w", "cpu_w"):
            watts = getattr(budget, attr, None)
            if watts is None:
                raise ObservabilityError(
                    f"power budget {budget!r} lacks {attr}")
            _check_finite(attr, watts)
        self.budget = budget
        self.timing = timing

    def step_energy(self, npu_cost: Any, cpu_seconds: float,
                    step_seconds: float,
                    power_scale: float = 1.0) -> EnergyBreakdown:
        """Joules of one step of duration ``step_seconds``.

        ``power_scale`` is the active governor's dynamic-power factor;
        it scales the NPU engine terms (DRAM/HMX/HVX) but not the
        baseline or the CPU.  A zero-duration step (empty live set,
        coalesced retirement) costs exactly :data:`ZERO_ENERGY` — no
        division ever happens, so there is no 0/0 hazard.
        """
        step_seconds = _check_finite("step_seconds", step_seconds)
        cpu_seconds = _check_finite("cpu_seconds", cpu_seconds)
        power_scale = _check_finite("power_scale", power_scale)
        if step_seconds == 0.0:
            return ZERO_ENERGY
        b = self.budget
        if self.timing is not None and npu_cost is not None:
            dma = min(self.timing.dma_seconds(npu_cost), step_seconds)
            hmx = min(self.timing.hmx_seconds(npu_cost), step_seconds)
            hvx = min(self.timing.hvx_seconds(npu_cost), step_seconds)
        else:
            dma = hmx = hvx = 0.0
        cpu = min(cpu_seconds, step_seconds)
        base_j = b.base_w * step_seconds
        dram_j = power_scale * b.dram_w * dma
        hmx_j = power_scale * b.hmx_w * hmx
        hvx_j = power_scale * b.hvx_w * hvx
        cpu_j = b.cpu_w * cpu
        return EnergyBreakdown(
            joules=base_j + dram_j + hmx_j + hvx_j + cpu_j,
            base_j=base_j, dram_j=dram_j, hmx_j=hmx_j, hvx_j=hvx_j,
            cpu_j=cpu_j)

    def idle_energy(self, seconds: float) -> EnergyBreakdown:
        """Baseline-only joules (retry backoff, session reopen waits)."""
        seconds = _check_finite("seconds", seconds)
        if seconds == 0.0:
            return ZERO_ENERGY
        base_j = self.budget.base_w * seconds
        return EnergyBreakdown(joules=base_j, base_j=base_j)


class EnergyAccountant:
    """Rolls step energy up per request and per wave.

    A lock-step decode is one forward pass shared by the live batch, so
    its joules split **equally** across the live candidates — the same
    attribution rule the paper uses for per-token energy (power times
    step latency over batch).  Prefill/rebuild joules go to the owning
    request; idle joules (backoff) stay run-level.
    """

    def __init__(self) -> None:
        self.total_j = 0.0
        self.prefill_j = 0.0
        self.decode_j = 0.0
        self.idle_j = 0.0
        self.per_request: Dict[int, float] = {}
        self.per_wave: Dict[int, float] = {}

    def charge_prefill(self, breakdown: EnergyBreakdown,
                       request_id: Optional[int] = None,
                       wave: Optional[int] = None) -> None:
        self.total_j += breakdown.joules
        self.prefill_j += breakdown.joules
        if request_id is not None:
            self.per_request[request_id] = (
                self.per_request.get(request_id, 0.0) + breakdown.joules)
        if wave is not None:
            self.per_wave[wave] = (self.per_wave.get(wave, 0.0)
                                   + breakdown.joules)

    def charge_step(self, breakdown: EnergyBreakdown,
                    request_ids: Optional[Any] = None,
                    waves: Optional[Any] = None) -> float:
        """Charge one decode step, split equally across ``request_ids``.

        Returns the per-request share (0.0 for an empty live set).
        """
        self.total_j += breakdown.joules
        self.decode_j += breakdown.joules
        ids = list(request_ids) if request_ids else []
        share = breakdown.joules / len(ids) if ids else 0.0
        for rid in ids:
            self.per_request[rid] = self.per_request.get(rid, 0.0) + share
        for wave in set(waves) if waves else ():
            self.per_wave[wave] = self.per_wave.get(wave, 0.0)
        if waves:
            for rid, wave in zip(ids, waves):
                self.per_wave[wave] = self.per_wave.get(wave, 0.0) + share
        return share

    def charge_idle(self, breakdown: EnergyBreakdown) -> None:
        self.total_j += breakdown.joules
        self.idle_j += breakdown.joules

    def request_joules(self, request_id: int) -> float:
        return self.per_request.get(request_id, 0.0)

    def to_json(self) -> Dict[str, Any]:
        return {
            "total_j": self.total_j,
            "prefill_j": self.prefill_j,
            "decode_j": self.decode_j,
            "idle_j": self.idle_j,
            "per_request": {str(k): self.per_request[k]
                            for k in sorted(self.per_request)},
            "per_wave": {str(k): self.per_wave[k]
                         for k in sorted(self.per_wave)},
        }
