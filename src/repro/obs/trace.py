"""Span-based tracer for the simulator's hot paths.

The paper's analysis lives or dies on *where time goes* — HMX idle
capacity during decode (§4), vgather-dominated softmax (§5.2.1), DMA vs
core-path bandwidth (Table 2).  This module provides the measurement
substrate: nested spans opened as context managers around engine steps,
model layers and kernels, each optionally carrying the
:class:`~repro.npu.timing.KernelCost` it produced so the exporter
(:mod:`repro.obs.export`) can reconstruct per-engine occupancy lanes.

Design constraints, in order:

1. **Disabled must be nearly free.**  The default tracer is disabled;
   ``Tracer.span`` then returns a shared no-op singleton whose
   ``__enter__``/``__exit__`` do nothing, so instrumented code pays only
   a method call and an attribute check per site.  The benchmark guard
   (``benchmarks/test_obs_overhead.py``) holds this to < 5% of a small
   generation run.
2. **Exception safe.**  A span closes (and is recorded, flagged with
   ``error``) even when its body raises; the exception propagates.
3. **Thread safe.**  The open-span stack is thread-local; the finished
   list is lock-protected, so kernels running on a thread pool can trace
   concurrently.

Span names follow the dotted convention ``<layer>.<operation>``
(``engine.prefill``, ``model.layer``, ``kernel.gemm``); metric names use
``repro.<layer>.<name>`` (see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer", "span", "enabled"]


@dataclass
class Span:
    """One finished span: a named interval with attributes and costs.

    ``start``/``end`` are host-clock seconds (``time.perf_counter``
    epoch); ``costs`` holds the kernel cost records attached while the
    span was open, from which the exporter derives *simulated* engine
    time.  ``parent`` is the index of the enclosing span in the tracer's
    finished list, or ``None`` for roots.
    """

    name: str
    category: str
    start: float
    end: float = 0.0
    parent: Optional[int] = None
    depth: int = 0
    thread: str = "main"
    attrs: Dict[str, Any] = field(default_factory=dict)
    costs: List[Any] = field(default_factory=list)
    index: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start

    def total_cost(self):
        """Sum of attached costs (`None` when none were attached)."""
        if not self.costs:
            return None
        total = self.costs[0] + type(self.costs[0])()
        for cost in self.costs[1:]:
            total = total + cost
        return total


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def add_cost(self, cost: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """An open span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set(self, **attrs: Any) -> "_ActiveSpan":
        self._span.attrs.update(attrs)
        return self

    def add_cost(self, cost: Any) -> "_ActiveSpan":
        self._span.costs.append(cost)
        return self

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._finish(self._span)
        return False  # never swallow the exception


class Tracer:
    """Collects nested spans; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True, clock=time.perf_counter) -> None:
        self.enabled = enabled
        self.clock = clock
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, category: str = "repro", **attrs: Any):
        """Open a span as a context manager.

        Returns the shared :data:`NULL_SPAN` when disabled, so call
        sites can instrument unconditionally.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = Span(name=name, category=category, start=self.clock(),
                      parent=None, depth=len(stack),
                      thread=threading.current_thread().name, attrs=attrs)
        # parent is resolved at finish time (parents finish after children,
        # so indices are unknown here); keep the object reference for now
        record.attrs["_parent_obj"] = parent
        stack.append(record)
        return _ActiveSpan(self, record)

    def _finish(self, record: Span) -> None:
        record.end = self.clock()
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        with self._lock:
            record.index = len(self.spans)
            self.spans.append(record)

    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Finished spans with ``parent`` resolved to list indices."""
        with self._lock:
            spans = list(self.spans)
        for record in spans:
            parent = record.attrs.pop("_parent_obj", None)
            if parent is not None:
                record.parent = parent.index if parent.index >= 0 else None
        return spans

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
        self._local = threading.local()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False


# ----------------------------------------------------------------------
# global default tracer (disabled: production runs pay only no-op costs)
# ----------------------------------------------------------------------
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global default; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, category: str = "repro", **attrs: Any):
    """Open a span on the global default tracer."""
    return _default_tracer.span(name, category, **attrs)


def enabled() -> bool:
    return _default_tracer.enabled
