"""``repro monitor``: replay a scenario and render live-style telemetry.

Production monitoring watches a serving fleet; the simulator's
equivalent replays a registered bench scenario (:mod:`repro.obs.bench`)
with the structured event log armed, then folds the recorded timeline
into the full streaming stack:

* per-request causal timelines (:mod:`repro.obs.timeline`),
* windowed metric streams (:mod:`repro.obs.stream`) — tokens/s, p95
  step latency, fault rate, governor level, KV occupancy, watts,
* online anomaly detection (:mod:`repro.obs.anomaly`) over the latency
  /fault/governor series,
* energy attribution (:mod:`repro.obs.energy`) — joules per phase and
  tokens-per-joule.

Everything in the report derives from the **simulated** clock, so the
``--json`` output (schema ``repro.monitor/v1``) is byte-identical
across runs and machines for a fixed (scenario, device, seed) — the CI
monitor-smoke job asserts exactly that, and asserts that the chaos
scenario's planned throttle/fault windows are flagged while the
fault-free greedy scenario flags nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from . import metrics as obs_metrics
from . import trace as obs_trace
from .anomaly import AnomalyEvent, default_detectors, detect_series
from .bench import DEFAULT_DEVICE, DEFAULT_SEED, SCENARIOS, BenchError
from .stream import MetricStream, stream_from_log
from .timeline import EventLog, set_event_log

__all__ = ["MONITOR_SCHEMA", "MonitorReport", "run_monitor",
           "WATCHED_SERIES"]

MONITOR_SCHEMA = "repro.monitor/v1"

#: (metric, stat, detector names, require samples) series the anomaly
#: detectors watch.  Latency catches throttle cliffs but is only
#: meaningful in windows that actually ran steps (idle backoff windows
#: carry no latency measurement, not a zero); the fault/retry counters
#: catch injected chaos as spikes (rate-of-change is excluded there —
#: a counter falling back to zero is recovery, not an anomaly);
#: governor level catches DVFS transitions.  Volume series (tokens/s,
#: KV blocks) are deliberately excluded: they drift with admission
#: waves and context growth, which is load, not anomaly.
WATCHED_SERIES: Tuple[Tuple[str, str, Tuple[str, ...], bool], ...] = (
    ("step_latency_seconds", "mean",
     ("ewma", "mad", "rate_of_change"), True),
    ("step_latency_seconds", "p95",
     ("ewma", "mad", "rate_of_change"), True),
    ("faults", "value", ("ewma", "mad"), False),
    ("retries", "value", ("ewma", "mad"), False),
    ("governor_level", "value", ("ewma", "mad", "rate_of_change"), False),
)


@dataclass
class MonitorReport:
    """Rendered result of one monitored scenario replay."""

    scenario: str
    device: str
    seed: int
    window_seconds: float
    n_events: int
    span_seconds: float
    requests: List[Dict[str, Any]] = field(default_factory=list)
    windows: List[Dict[str, Any]] = field(default_factory=list)
    anomalies: List[AnomalyEvent] = field(default_factory=list)
    energy: Dict[str, float] = field(default_factory=dict)
    tokens: float = 0.0
    bench_metrics: Dict[str, float] = field(default_factory=dict)
    # run artifacts for trace export; never serialized into to_json()
    tracer: Any = None
    log: Any = None
    timing: Any = None

    @property
    def tokens_per_joule(self) -> float:
        total = self.energy.get("total_j", 0.0)
        return self.tokens / total if total > 0.0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": MONITOR_SCHEMA,
            "scenario": self.scenario,
            "device": self.device,
            "seed": self.seed,
            "window_seconds": self.window_seconds,
            "n_events": self.n_events,
            "span_seconds": self.span_seconds,
            "requests": self.requests,
            "windows": self.windows,
            "anomalies": [a.to_json() for a in self.anomalies],
            "energy": {k: self.energy[k] for k in sorted(self.energy)},
            "tokens": self.tokens,
            "tokens_per_joule": self.tokens_per_joule,
            "bench_metrics": {k: self.bench_metrics[k]
                              for k in sorted(self.bench_metrics)},
        }

    def to_json_text(self) -> str:
        """Canonical serialization (sorted keys) for byte-wise diffing."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        lines: List[str] = []
        lines.append(f"== monitor: {self.scenario} on {self.device} "
                     f"(seed {self.seed}) ==")
        lines.append(f"events             {self.n_events}")
        lines.append(f"simulated span     {self.span_seconds * 1e3:.3f} ms")
        lines.append(f"window width       "
                     f"{self.window_seconds * 1e3:.3f} ms")
        lines.append(f"requests           {len(self.requests)}")
        lines.append(f"total joules       "
                     f"{self.energy.get('total_j', 0.0):.6f}")
        if self.tokens_per_joule > 0.0:
            lines.append(f"tokens per joule   {self.tokens_per_joule:.1f}")

        if self.windows:
            lines.append("")
            lines.append("== windows (simulated time) ==")
            lines.append(f"{'#':>3s} {'start ms':>9s} {'tok/s':>10s} "
                         f"{'p95 us':>9s} {'faults':>6s} {'retries':>7s} "
                         f"{'gov':>4s} {'kv':>4s} {'watts':>7s}")
            for w in self.windows:
                lines.append(
                    f"{w['index']:>3d} {w['start'] * 1e3:>9.3f} "
                    f"{w['tokens_per_second']:>10.0f} "
                    f"{w['token_latency_p95'] * 1e6:>9.1f} "
                    f"{int(w['faults']):>6d} {int(w['retries']):>7d} "
                    f"{int(w['governor_level']):>4d} "
                    f"{int(w['kv_blocks']):>4d} {w['watts']:>7.3f}")

        lines.append("")
        if self.anomalies:
            lines.append(f"== anomalies ({len(self.anomalies)}) ==")
            for a in self.anomalies:
                lines.append(
                    f"window {a.window_index:>3d}  {a.metric:<24s} "
                    f"{a.detector:<15s} value={a.value:.6g} "
                    f"score={a.score:.2f} (threshold {a.threshold:g})")
        else:
            lines.append("== anomalies (0) ==")
            lines.append("no anomalies detected")

        if self.requests:
            lines.append("")
            lines.append("== request timelines ==")
            lines.append(f"{'id':>3s} {'admit ms':>9s} {'done ms':>9s} "
                         f"{'tokens':>6s} {'joules':>10s} {'reason':<9s} "
                         f"events")
            for r in self.requests:
                lines.append(
                    f"{r['request_id']:>3d} "
                    f"{r['admitted_seconds'] * 1e3:>9.3f} "
                    f"{r['completed_seconds'] * 1e3:>9.3f} "
                    f"{int(r['tokens']):>6d} {r['joules']:>10.6f} "
                    f"{r['reason']:<9s} {r['chain']}")
        return "\n".join(lines) + "\n"


def _request_summaries(log: EventLog) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for request_id in log.request_ids():
        chain = log.timeline(request_id)
        admits = [e for e in chain if e.kind == "admit"]
        completes = [e for e in chain if e.kind == "complete"]
        last = completes[-1] if completes else chain[-1]
        admitted = admits[0].sim_time if admits else chain[0].sim_time
        kinds: List[str] = []
        for event in chain:
            if not kinds or kinds[-1] != event.kind:
                kinds.append(event.kind)
        out.append({
            "request_id": request_id,
            "admitted_seconds": admitted,
            "completed_seconds": last.sim_time,
            "tokens": float(last.attrs.get("tokens", 0)),
            "latency_seconds": float(
                last.attrs.get("latency_seconds",
                               last.sim_time - admitted)),
            "joules": float(last.attrs.get("joules", 0.0)),
            "reason": str(last.attrs.get("reason", "")),
            "n_events": len(chain),
            "chain": "->".join(kinds),
        })
    return out


def _window_rows(stream: MetricStream) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for window in stream.windows():
        joules = window.value("joules")
        rows.append({
            "index": window.index,
            "start": window.start,
            "end": window.end,
            "tokens": window.value("tokens"),
            "tokens_per_second": window.value("tokens", "rate"),
            "token_latency_p95": window.value("step_latency_seconds", "p95"),
            "token_latency_mean": window.value("step_latency_seconds",
                                               "mean"),
            "steps": window.value("step_latency_seconds", "count"),
            "faults": window.value("faults"),
            "retries": window.value("retries"),
            "evictions": window.value("evictions"),
            "rebuilds": window.value("rebuilds"),
            "completions": window.value("completions"),
            "sheds": window.value("sheds"),
            "dispatches": window.value("dispatches"),
            "failovers": window.value("failovers"),
            "hedges": window.value("hedges"),
            "device_downs": window.value("device_downs"),
            "breaker_opens": window.value("breaker_opens"),
            "queue_wait_p95": window.value("queue_wait_seconds", "p95"),
            "governor_level": window.value("governor_level"),
            "kv_blocks": window.value("kv_blocks"),
            "live_batch": window.value("live_batch"),
            "joules": joules,
            "watts": (joules / window.seconds
                      if window.seconds > 0.0 else 0.0),
        })
    return rows


def _energy_totals(log: EventLog) -> Tuple[Dict[str, float], float]:
    """(phase joules, total tokens) folded straight from the event log."""
    totals = {"total_j": 0.0, "prefill_j": 0.0, "decode_j": 0.0,
              "rebuild_j": 0.0, "idle_j": 0.0}
    tokens = 0.0
    for event in log.events():
        joules = float(event.attrs.get("joules", 0.0))
        if event.kind == "prefill":
            totals["prefill_j"] += joules
        elif event.kind == "decode_step":
            totals["decode_j"] += joules
            tokens += float(event.attrs.get("live_batch", 0))
        elif event.kind == "rebuild":
            totals["rebuild_j"] += joules
        elif event.kind == "retry":
            totals["idle_j"] += joules
        else:
            continue
        totals["total_j"] += joules
    return totals, tokens


def run_monitor(scenario: str = "chaos.waves",
                device_key: str = DEFAULT_DEVICE,
                seed: int = DEFAULT_SEED,
                n_windows: int = 8,
                window_seconds: Optional[float] = None) -> MonitorReport:
    """Replay ``scenario`` with the event log armed; build the report.

    The scenario function runs directly (not through
    :func:`~repro.obs.bench.run_scenario`) so nothing wall-clock-shaped
    enters the report; with a simulated device every value is a pure
    function of (scenario, device, seed).  ``window_seconds`` defaults
    to the recorded span divided into ``n_windows`` equal windows.
    """
    registered = SCENARIOS.get(scenario)
    if registered is None:
        raise BenchError(
            f"unknown bench scenario {scenario!r}; known: "
            f"{sorted(SCENARIOS)}")
    if n_windows <= 0:
        raise ObservabilityError(
            f"n_windows must be positive, got {n_windows}")
    if window_seconds is not None and window_seconds <= 0.0:
        raise ObservabilityError(
            f"window_seconds must be positive, got {window_seconds}")
    from ..npu import DEVICES
    from ..npu.timing import TimingModel
    from .bench import BenchContext

    if device_key not in DEVICES:
        raise BenchError(
            f"unknown device {device_key!r}; known: {sorted(DEVICES)}")
    device = DEVICES[device_key]
    ctx = BenchContext(device=device, timing=TimingModel(device.npu),
                       tracer=obs_trace.Tracer(enabled=True),
                       registry=obs_metrics.MetricsRegistry(), seed=seed)
    log = EventLog(enabled=True)
    prev_tracer = obs_trace.set_tracer(ctx.tracer)
    prev_metrics = obs_metrics.set_metrics(ctx.registry)
    prev_log = set_event_log(log)
    try:
        record = registered.fn(ctx)
    finally:
        obs_trace.set_tracer(prev_tracer)
        obs_metrics.set_metrics(prev_metrics)
        set_event_log(prev_log)

    start, end = log.span()
    span = max(end - start, 0.0)
    if window_seconds is None:
        window_seconds = (span / n_windows if span > 0.0
                          else 1e-3)
        # nudge past the last event so it does not open window n_windows
        window_seconds *= 1.0 + 1e-9
    stream = stream_from_log(log, window_seconds=window_seconds)

    anomalies: List[AnomalyEvent] = []
    windows = stream.windows()
    for metric, stat, detector_names, require_samples in WATCHED_SERIES:
        points = [(w.index, w.start, w.value(metric, stat))
                  for w in windows
                  if not require_samples
                  or w.value(metric, "count") > 0.0]
        label = metric if stat == "value" else f"{metric}.{stat}"
        detectors = [d for d in default_detectors()
                     if d.name in detector_names]
        anomalies.extend(detect_series(label, points, detectors))
    anomalies.sort(key=lambda a: (a.window_index, a.metric, a.detector))

    energy, tokens = _energy_totals(log)
    return MonitorReport(
        scenario=scenario, device=device_key, seed=seed,
        window_seconds=window_seconds, n_events=len(log),
        span_seconds=span,
        requests=_request_summaries(log),
        windows=_window_rows(stream),
        anomalies=anomalies,
        energy=energy,
        tokens=tokens,
        bench_metrics={k: float(v) for k, v in record.metrics.items()},
        tracer=ctx.tracer, log=log, timing=ctx.timing)
