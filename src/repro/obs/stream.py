"""Windowed metric streams over the simulated timeline.

The event log (:mod:`repro.obs.timeline`) is the raw causal record; a
:class:`MetricStream` folds it into **fixed sim-time windows** the way a
production monitoring pipeline folds a firehose into 10-second buckets:
per window it keeps counters (tokens, faults, retries), last-write-wins
gauges (live batch, governor level, KV occupancy) and
:class:`~repro.obs.metrics.Histogram` samples (step latency), so a
controller — or the anomaly layer (:mod:`repro.obs.anomaly`) — sees
tokens/s, p95 token latency, fault rate and governor state *as series*,
window by window, instead of one run-level aggregate.

Windows are half-open ``[start, start + window_seconds)`` intervals of
**simulated** time and gap-filled: a window with no events still
appears (zero counters, carried-forward gauges), so series have one
point per window and rate math never divides by a missing interval.
Cross-window aggregation uses :meth:`Histogram.merge`, the satellite
primitive this stream exists to exercise.

Everything here is pure arithmetic over an already-recorded log — no
RNG, no host clock — so two replays of the same scenario produce
byte-identical streams.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from .metrics import Histogram, labeled_name
from .slo import hdr_buckets
from .timeline import EventLog

__all__ = ["MetricWindow", "MetricStream", "stream_from_log",
           "DEFAULT_WINDOW_SECONDS"]

#: Default fold width.  Chaos/greedy scenario runs span a few hundred
#: milliseconds of simulated time; 25 ms windows give them ~8-20 points
#: per series — enough for the MAD detector's rolling window.
DEFAULT_WINDOW_SECONDS = 0.025


def _default_sample_buckets() -> List[float]:
    """1 microsecond .. ~134 simulated seconds, 4 sub-buckets/octave."""
    return hdr_buckets(1e-6, 134.0, precision_bits=2)


class MetricWindow:
    """One fixed sim-time window of folded metrics.

    ``counters`` accumulate within the window; ``gauges`` are
    last-write-wins (the value the quantity had at window close);
    ``samples`` are histograms of per-event observations.
    """

    def __init__(self, index: int, start: float, end: float) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.samples: Dict[str, Histogram] = {}

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def value(self, name: str, stat: str = "value") -> float:
        """One scalar for ``name`` in this window.

        ``stat`` selects the reduction: ``value`` (counter sum or gauge
        level; counters win on a name collision), ``rate`` (counter sum
        divided by window seconds), or a histogram statistic
        (``mean``/``p50``/``p95``/``p99``/``max``/``count``) for sample
        series.  Missing names read as 0.0 so series stay total.
        """
        if stat == "value":
            if name in self.counters:
                return self.counters[name]
            return self.gauges.get(name, 0.0)
        if stat == "rate":
            if self.seconds <= 0.0:
                return 0.0
            return self.counters.get(name, 0.0) / self.seconds
        hist = self.samples.get(name)
        if hist is None:
            return 0.0
        if stat == "mean":
            return hist.mean
        if stat == "count":
            return float(hist.count)
        if stat == "max":
            return hist.max if hist.count else 0.0
        if stat.startswith("p"):
            try:
                q = float(stat[1:])
            except ValueError:
                raise ObservabilityError(f"unknown window stat {stat!r}")
            return hist.percentile(q)
        raise ObservabilityError(f"unknown window stat {stat!r}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "samples": {k: self.samples[k].summary()
                        for k in sorted(self.samples)},
        }


class MetricStream:
    """Folds timestamped observations into contiguous sim-time windows."""

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 start_time: float = 0.0,
                 sample_buckets: Optional[Sequence[float]] = None) -> None:
        if not window_seconds > 0.0:
            raise ObservabilityError(
                f"window_seconds must be positive, got {window_seconds}")
        if start_time < 0.0:
            raise ObservabilityError(
                f"start_time must be >= 0, got {start_time}")
        self.window_seconds = float(window_seconds)
        self.start_time = float(start_time)
        self._buckets = (list(sample_buckets) if sample_buckets is not None
                         else _default_sample_buckets())
        self._windows: Dict[int, MetricWindow] = {}
        self._max_index = -1

    # ------------------------------------------------------------------
    def _window_for(self, sim_time: float) -> MetricWindow:
        if sim_time < self.start_time:
            raise ObservabilityError(
                f"observation at t={sim_time} precedes stream start "
                f"{self.start_time}")
        index = int((sim_time - self.start_time) / self.window_seconds)
        window = self._windows.get(index)
        if window is None:
            start = self.start_time + index * self.window_seconds
            window = MetricWindow(index, start, start + self.window_seconds)
            self._windows[index] = window
            self._max_index = max(self._max_index, index)
        return window

    def record_counter(self, name: str, sim_time: float,
                       amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"stream counter {name} cannot decrease (got {amount})")
        window = self._window_for(sim_time)
        window.counters[name] = window.counters.get(name, 0.0) + amount

    def record_gauge(self, name: str, sim_time: float, value: float) -> None:
        self._window_for(sim_time).gauges[name] = float(value)

    def record_sample(self, name: str, sim_time: float, value: float) -> None:
        window = self._window_for(sim_time)
        hist = window.samples.get(name)
        if hist is None:
            hist = Histogram(name, buckets=self._buckets)
            window.samples[name] = hist
        hist.observe(value)

    # ------------------------------------------------------------------
    def windows(self) -> List[MetricWindow]:
        """All windows, contiguous from index 0 to the last observed.

        Gap windows are materialized with zero counters and gauges
        carried forward from the nearest earlier window (a quantity like
        governor level keeps its value while nothing reports it).
        """
        out: List[MetricWindow] = []
        carried: Dict[str, float] = {}
        for index in range(self._max_index + 1):
            window = self._windows.get(index)
            if window is None:
                start = self.start_time + index * self.window_seconds
                window = MetricWindow(index, start,
                                      start + self.window_seconds)
                window.gauges = dict(carried)
            else:
                merged = dict(carried)
                merged.update(window.gauges)
                window.gauges = merged
            carried = dict(window.gauges)
            out.append(window)
        return out

    def __len__(self) -> int:
        return self._max_index + 1

    def series(self, name: str, stat: str = "value"
               ) -> List[Tuple[int, float]]:
        """(window_index, value) pairs for one metric across all windows."""
        return [(w.index, w.value(name, stat)) for w in self.windows()]

    def merged_histogram(self, name: str) -> Histogram:
        """All windows' ``name`` samples folded into one histogram."""
        merged = Histogram(name, buckets=self._buckets)
        for window in self.windows():
            hist = window.samples.get(name)
            if hist is not None:
                merged.merge(hist)
        return merged

    def to_json(self) -> Dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "start_time": self.start_time,
            "windows": [w.to_json() for w in self.windows()],
        }


# ----------------------------------------------------------------------
# event-log folding
# ----------------------------------------------------------------------
def stream_from_log(log: EventLog,
                    window_seconds: float = DEFAULT_WINDOW_SECONDS,
                    sample_buckets: Optional[Sequence[float]] = None
                    ) -> MetricStream:
    """Fold a recorded event log into a :class:`MetricStream`.

    Mapping (see :data:`~repro.obs.timeline.EVENT_KINDS`):

    * ``decode_step`` -> sample ``step_latency_seconds``; counter
      ``tokens`` incremented by the step's live batch (one token per
      live candidate per lock step); counter ``joules`` when the step
      carries energy; gauges ``live_batch``, ``kv_blocks``,
      ``governor_level``;
    * ``prefill``/``rebuild``/``retry`` -> their ``joules`` also fold
      into the ``joules`` counter, so window watts cover recovery and
      prompt processing, not just decode;
    * ``fault`` -> counter ``faults`` plus a labeled sibling
      ``faults{kind=...}`` via :func:`~repro.obs.metrics.labeled_name`,
      so windows slice by fault kind without string parsing;
    * ``retry``/``evict``/``rebuild`` -> counters ``retries`` /
      ``evictions`` / ``rebuilds``;
    * ``complete`` -> counter ``completions``; sample
      ``candidate_latency_seconds`` when the event carries
      ``latency_seconds``;
    * ``prefill_chunk`` -> counter ``prefill_chunks``, sample
      ``prefill_chunk_seconds`` and its ``joules``;
      ``backend_switch`` -> counter ``backend_switches``;
    * ``shed`` -> counter ``sheds`` (fleet admission control dropped
      the request); ``dispatch`` -> counter ``dispatches`` plus sample
      ``queue_wait_seconds`` when the event carries ``wait_seconds``;
    * chaos/recovery events -> counters ``failovers``, ``hedges``
      (hedge dispatches only, not the losing leg's cancellation),
      ``device_downs``/``device_ups`` and ``breaker_opens``/
      ``breaker_closes``.
    """
    stream = MetricStream(window_seconds=window_seconds,
                          sample_buckets=sample_buckets)
    for event in log.events():
        t = event.sim_time
        attrs = event.attrs
        if event.kind == "decode_step":
            seconds = attrs.get("seconds")
            if seconds is not None:
                stream.record_sample("step_latency_seconds", t,
                                     float(seconds))
            live = attrs.get("live_batch")
            if live:
                stream.record_counter("tokens", t, float(live))
                stream.record_gauge("live_batch", t, float(live))
            joules = attrs.get("joules")
            if joules:
                stream.record_counter("joules", t, float(joules))
            if "kv_blocks" in attrs:
                stream.record_gauge("kv_blocks", t,
                                    float(attrs["kv_blocks"]))
            if "governor_level" in attrs:
                stream.record_gauge("governor_level", t,
                                    float(attrs["governor_level"]))
        elif event.kind == "fault":
            stream.record_counter("faults", t)
            kind = attrs.get("fault_kind")
            if kind:
                stream.record_counter(
                    labeled_name("faults", {"kind": kind}), t)
        elif event.kind == "retry":
            stream.record_counter("retries", t)
            joules = attrs.get("joules")
            if joules:
                stream.record_counter("joules", t, float(joules))
        elif event.kind == "evict":
            stream.record_counter("evictions", t)
        elif event.kind == "rebuild":
            stream.record_counter("rebuilds", t)
            joules = attrs.get("joules")
            if joules:
                stream.record_counter("joules", t, float(joules))
        elif event.kind == "prefill":
            joules = attrs.get("joules")
            if joules:
                stream.record_counter("joules", t, float(joules))
        elif event.kind == "prefill_chunk":
            stream.record_counter("prefill_chunks", t)
            seconds = attrs.get("seconds")
            if seconds is not None:
                stream.record_sample("prefill_chunk_seconds", t,
                                     float(seconds))
            joules = attrs.get("joules")
            if joules:
                stream.record_counter("joules", t, float(joules))
        elif event.kind == "backend_switch":
            stream.record_counter("backend_switches", t)
        elif event.kind == "complete":
            stream.record_counter("completions", t)
            latency = attrs.get("latency_seconds")
            if latency is not None:
                stream.record_sample("candidate_latency_seconds", t,
                                     float(latency))
        elif event.kind == "shed":
            stream.record_counter("sheds", t)
        elif event.kind == "dispatch":
            stream.record_counter("dispatches", t)
            wait = attrs.get("wait_seconds")
            if wait is not None:
                stream.record_sample("queue_wait_seconds", t, float(wait))
        elif event.kind == "failover":
            stream.record_counter("failovers", t)
        elif event.kind == "hedge":
            if not attrs.get("cancelled"):
                stream.record_counter("hedges", t)
        elif event.kind in ("device_down", "device_up",
                            "breaker_open", "breaker_close"):
            stream.record_counter(f"{event.kind}s", t)
    return stream
