"""Per-request critical-path reconstruction from the timeline log.

The event log (:mod:`repro.obs.timeline`) records *that* things
happened; this module turns one recorded run into *why each request
took as long as it did*.  For every request it rebuilds the causal
chain, slices the request's lifetime into contiguous phases, and
attributes every simulated nanosecond (and nanojoule, replaying
:class:`~repro.obs.energy.EnergyAccountant`'s charging rules) to a
phase taxonomy:

* scheduler runs — ``queue_wait`` (no slot yet), ``prefill`` (chunked
  or monolithic prompt forwards), ``decode`` / ``decode_throttled``
  (lock-step decode, split by governor state), ``migration`` (rpcmem
  KV crossings on backend switches), ``rebuild`` (post-abort KV
  reconstruction), ``retry_backoff`` (fault backoff + session reopen),
* fleet runs — ``queue_wait`` (admission queue), ``service`` (a live
  dispatch leg, hedge launches included), ``service_lost`` (work
  destroyed by a crash/drop), ``failover_backoff`` (jittered re-offer
  delay).

**Conservation is bitwise, by construction.**  Every event timestamp
is quantized exactly once to integer nanoseconds (:func:`quantize_ns`)
and each phase gets the integer span between consecutive events, so
per-phase blame telescopes to ``end_ns - start_ns`` with no float
re-association anywhere.  Energy charges are quantized per charge
(:func:`~repro.obs.energy.quantize_nj`) and only ever summed as
integers, so phase energy partitions the per-request total exactly.
The float replay (same operations, same order as the accountant) is
kept alongside and must reproduce the ``complete`` event's ``joules``
attribute bit-for-bit — the differential suite asserts both.

:func:`validate_lifecycle` is the completeness validator the ISSUE's
reconstructor audit demanded: it rejects orphaned phases (a
``complete`` without an ``admit``), overlapping legs (a second
non-hedged dispatch while one is in flight), time regressions, and
unclosed dispatch legs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from .energy import quantize_nj
from .timeline import EventLog, TimelineEvent

__all__ = [
    "SCHEDULER_PHASES",
    "FLEET_PHASES",
    "SCHEDULER_ENERGY_PHASES",
    "FLEET_ENERGY_PHASES",
    "quantize_ns",
    "PhaseSlice",
    "RequestExplanation",
    "classify_log",
    "explain_scheduler_log",
    "explain_fleet_log",
    "explain_log",
    "validate_lifecycle",
    "assert_lifecycle",
]

#: Scheduler-side latency taxonomy (one engine, one run).
SCHEDULER_PHASES = ("queue_wait", "prefill", "decode", "decode_throttled",
                    "migration", "rebuild", "retry_backoff", "other")

#: Fleet-side latency taxonomy (admission queue + device legs).
FLEET_PHASES = ("queue_wait", "service", "service_lost",
                "failover_backoff", "other")

#: Energy phases the scheduler accountant attributes per candidate.
SCHEDULER_ENERGY_PHASES = ("decode", "decode_throttled", "rebuild")

#: Energy phases of fleet dispatch legs.
FLEET_ENERGY_PHASES = ("service", "service_lost", "hedge_wasted", "other")

#: Fleet-level event vocabulary (scheduler kinds are ignored when a
#: fleet log also carries per-device engine events).
_FLEET_KINDS = frozenset(
    ("queue", "shed", "dispatch", "complete", "failover", "hedge"))

_TERMINAL_OUTCOMES = ("completed", "shed", "failed", "unserved")


def quantize_ns(seconds: float) -> int:
    """Quantize one simulated timestamp to integer nanoseconds.

    Applied exactly once per event; all blame arithmetic downstream is
    integer, so spans between consecutive events telescope exactly.
    """
    return int(round(float(seconds) * 1e9))


@dataclass(frozen=True)
class PhaseSlice:
    """One contiguous same-phase span of a request's waterfall."""

    phase: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_json(self) -> List[Any]:
        return [self.phase, self.start_ns, self.end_ns]


@dataclass
class RequestExplanation:
    """Where one request's simulated time (and energy) went.

    ``blame_ns`` partitions ``latency_ns = end_ns - start_ns`` exactly;
    ``energy_nj`` partitions ``total_nj`` exactly.  ``joules`` is the
    float the run itself reported (the ``complete`` event attribute)
    and ``replayed_joules`` the float replay of the accountant's
    charging order — the two must match bitwise on a faithful log.
    """

    request_id: int
    kind: str                      # "scheduler" | "fleet"
    outcome: str                   # terminal state (reason or ledger class)
    start_ns: int
    end_ns: int
    blame_ns: Dict[str, int] = field(default_factory=dict)
    slices: List[PhaseSlice] = field(default_factory=list)
    energy_nj: Dict[str, int] = field(default_factory=dict)
    total_nj: int = 0
    joules: float = 0.0
    replayed_joules: float = 0.0
    device: Optional[int] = None
    tenant: Optional[str] = None
    wave: Optional[int] = None
    tokens: int = 0
    n_legs: int = 0

    @property
    def latency_ns(self) -> int:
        return self.end_ns - self.start_ns

    def dominant_phase(self) -> str:
        """Largest blame phase (ties to the taxonomy-stable name)."""
        if not self.blame_ns:
            return "none"
        return max(sorted(self.blame_ns), key=lambda p: self.blame_ns[p])

    def check_conservation(self) -> None:
        """Raise unless blame/energy partition latency/total exactly."""
        blame = sum(self.blame_ns.values())
        if blame != self.latency_ns:
            raise ObservabilityError(
                f"request {self.request_id}: blame sums to {blame} ns but "
                f"end-to-end latency is {self.latency_ns} ns")
        energy = sum(self.energy_nj.values())
        if energy != self.total_nj:
            raise ObservabilityError(
                f"request {self.request_id}: energy blame sums to "
                f"{energy} nJ but attributed total is {self.total_nj} nJ")

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "request_id": self.request_id,
            "kind": self.kind,
            "outcome": self.outcome,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "latency_ns": self.latency_ns,
            "blame_ns": {k: self.blame_ns[k]
                         for k in sorted(self.blame_ns)},
            "dominant_phase": self.dominant_phase(),
            "energy_nj": {k: self.energy_nj[k]
                          for k in sorted(self.energy_nj)},
            "total_nj": self.total_nj,
            "tokens": self.tokens,
            "slices": [s.to_json() for s in self.slices],
        }
        if self.device is not None:
            out["device"] = self.device
        if self.tenant is not None:
            out["tenant"] = self.tenant
        if self.wave is not None:
            out["wave"] = self.wave
        if self.n_legs:
            out["n_legs"] = self.n_legs
        return out


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def classify_log(log: EventLog) -> str:
    """``"fleet"`` when the log carries dispatch events, else scheduler."""
    for event in log.events():
        if event.kind == "dispatch":
            return "fleet"
    return "scheduler"


def _charge(bucket: Dict[str, int], phase: str, amount: int) -> None:
    if amount:
        bucket[phase] = bucket.get(phase, 0) + amount


def _push_slice(slices: List[PhaseSlice], phase: str, start_ns: int,
                end_ns: int) -> None:
    if end_ns <= start_ns:
        return
    if slices and slices[-1].phase == phase \
            and slices[-1].end_ns == start_ns:
        slices[-1] = PhaseSlice(phase, slices[-1].start_ns, end_ns)
    else:
        slices.append(PhaseSlice(phase, start_ns, end_ns))


def _classify_scheduler_segment(event: TimelineEvent) -> str:
    kind = event.kind
    if kind == "decode_step":
        if event.attrs.get("governor_level", 0):
            return "decode_throttled"
        return "decode"
    if kind in ("prefill", "prefill_chunk"):
        return "prefill"
    if kind == "rebuild":
        return "rebuild"
    if kind == "retry":
        return "retry_backoff"
    if kind == "backend_switch":
        return "migration"
    return "other"


# ----------------------------------------------------------------------
# scheduler-side reconstruction
# ----------------------------------------------------------------------
def explain_scheduler_log(log: EventLog) -> List[RequestExplanation]:
    """Per-candidate blame for one recorded scheduler run.

    The global event walk yields the run's segment list (consecutive
    event timestamps, each segment classified by its *terminating*
    event — the thing the run was doing until that boundary).  A
    candidate's window is ``[queue, complete]``: segments before its
    ``admit`` are queue wait (no slot held yet), segments after are
    charged to the phase that consumed them.  Lock-step decode is
    concurrent across the live batch, so every live candidate
    experiences the full segment as latency — exactly the latency the
    SLO histograms measure.
    """
    events = log.events()
    if not events:
        return []
    segments: List[Tuple[int, int, TimelineEvent]] = []
    prev_ns = quantize_ns(events[0].sim_time)
    for event in events:
        t_ns = quantize_ns(event.sim_time)
        if t_ns < prev_ns:
            raise ObservabilityError(
                f"timeline regresses at seq {event.seq} ({event.kind}): "
                f"{t_ns} ns < {prev_ns} ns — explain one run at a time")
        if t_ns > prev_ns:
            segments.append((prev_ns, t_ns, event))
        prev_ns = t_ns

    energy = _replay_scheduler_energy(events)
    out: List[RequestExplanation] = []
    for cid in log.request_ids():
        chain = log.timeline(cid)
        queue = next((e for e in chain if e.kind == "queue"), None)
        admit = next((e for e in chain if e.kind == "admit"), None)
        complete = next((e for e in chain if e.kind == "complete"), None)
        if queue is None:
            # fleet events mixed in, or a partial log; skip gracefully
            continue
        start_ns = quantize_ns(queue.sim_time)
        expl = RequestExplanation(
            request_id=cid, kind="scheduler",
            outcome=(str(complete.attrs.get("reason", "completed"))
                     if complete is not None else "unserved"),
            start_ns=start_ns, end_ns=start_ns,
            wave=queue.attrs.get("wave"))
        if complete is not None:
            end_ns = quantize_ns(complete.sim_time)
            admit_ns = (quantize_ns(admit.sim_time) if admit is not None
                        else end_ns)
            expl.end_ns = end_ns
            expl.tokens = int(complete.attrs.get("tokens", 0))
            expl.joules = float(complete.attrs.get("joules", 0.0))
            for seg_start, seg_end, terminator in segments:
                if seg_end <= start_ns or seg_start >= end_ns:
                    continue
                phase = ("queue_wait" if seg_end <= admit_ns
                         else _classify_scheduler_segment(terminator))
                _charge(expl.blame_ns, phase, seg_end - seg_start)
                _push_slice(expl.slices, phase, seg_start, seg_end)
        per_cid = energy.get(cid)
        if per_cid is not None:
            expl.energy_nj, expl.total_nj, expl.replayed_joules = per_cid
        out.append(expl)
    return out


def _replay_scheduler_energy(
        events: List[TimelineEvent],
) -> Dict[int, Tuple[Dict[str, int], int, float]]:
    """Replay the accountant's per-candidate charges from the log.

    ``decode_step`` events are run-level (no ``request_id``) and split
    equally across their ``live_ids`` — the accountant's rule;
    ``rebuild`` charges the owning candidate in full.  Each charge is
    quantized once; the float replay mirrors the accountant's op order
    so it must equal the ``complete`` event's joules bitwise.
    """
    by_cid: Dict[int, Tuple[Dict[str, int], int, float]] = {}

    def charge(cid: int, phase: str, joules: float) -> None:
        buckets, total, replayed = by_cid.get(cid, ({}, 0, 0.0))
        nj = quantize_nj(joules)
        _charge(buckets, phase, nj)
        by_cid[cid] = (buckets, total + nj, replayed + joules)

    for event in events:
        if event.kind == "decode_step":
            live_ids = event.attrs.get("live_ids")
            if not live_ids:
                continue
            share = float(event.attrs.get("joules", 0.0)) / len(live_ids)
            phase = ("decode_throttled"
                     if event.attrs.get("governor_level", 0) else "decode")
            for cid in live_ids:
                charge(cid, phase, share)
        elif event.kind == "rebuild" and event.request_id is not None:
            charge(event.request_id, "rebuild",
                   float(event.attrs.get("joules", 0.0)))
    return by_cid


# ----------------------------------------------------------------------
# fleet-side reconstruction
# ----------------------------------------------------------------------
@dataclass
class _Leg:
    device: int
    joules: float
    nj: int


def explain_fleet_log(log: EventLog) -> List[RequestExplanation]:
    """Per-request blame for one recorded fleet run.

    Each request's own chain is walked; the span ending at each event
    is classified by what the request was doing until then: waiting in
    the admission queue (ends at ``dispatch``/``shed``), in service on
    a leg (ends at ``complete``, a hedge launch, or a hedge-leg
    cancellation), losing work to a fault (ends at ``failover`` or a
    reasoned hedge cancellation), or sleeping out a failover backoff
    (ends at a re-offer ``queue``).  Dispatch legs carry their energy:
    the winning leg's joules are ``service``, legs destroyed by faults
    ``service_lost``, losing hedge legs ``hedge_wasted``.
    """
    out: List[RequestExplanation] = []
    for rid in log.request_ids():
        chain = [e for e in log.timeline(rid) if e.kind in _FLEET_KINDS]
        if not chain or chain[0].kind != "queue":
            continue
        start_ns = quantize_ns(chain[0].sim_time)
        expl = RequestExplanation(
            request_id=rid, kind="fleet", outcome="unserved",
            start_ns=start_ns, end_ns=start_ns,
            tenant=chain[0].attrs.get("tenant"))
        legs: List[_Leg] = []

        def close_leg(device: Optional[int], phase: str) -> None:
            for i, leg in enumerate(legs):
                if device is None or leg.device == device:
                    _charge(expl.energy_nj, phase, leg.nj)
                    expl.total_nj += leg.nj
                    legs.pop(i)
                    return

        prev_ns = start_ns
        for event in chain:
            t_ns = quantize_ns(event.sim_time)
            if t_ns < prev_ns:
                raise ObservabilityError(
                    f"request {rid} chain regresses at seq {event.seq}")
            kind = event.kind
            attrs = event.attrs
            if kind == "dispatch":
                phase = "service" if attrs.get("hedged") else "queue_wait"
                joules = float(attrs.get("joules", 0.0))
                legs.append(_Leg(device=int(attrs.get("device", -1)),
                                 joules=joules, nj=quantize_nj(joules)))
                expl.n_legs += 1
            elif kind == "complete":
                phase = "service"
                expl.outcome = "completed"
                expl.tokens = int(attrs.get("tokens", 0))
                expl.joules = float(attrs.get("joules", 0.0))
                expl.device = attrs.get("device")
                winner = attrs.get("device")
                for leg in legs:
                    if winner is None or leg.device == winner:
                        expl.replayed_joules = leg.joules
                        break
                close_leg(winner, "service")
            elif kind == "shed":
                phase = "queue_wait"
                expl.outcome = "shed"
            elif kind == "failover":
                phase = "service_lost"
                close_leg(attrs.get("from_device"), "service_lost")
                if attrs.get("outcome") == "exhausted":
                    expl.outcome = "failed"
            elif kind == "queue":
                phase = ("failover_backoff" if attrs.get("reoffer")
                         else "queue_wait")
            elif kind == "hedge":
                phase = "service"
                if attrs.get("cancelled"):
                    close_leg(attrs.get("loser"),
                              "service_lost" if "reason" in attrs
                              else "hedge_wasted")
            else:  # pragma: no cover — _FLEET_KINDS filter forbids this
                phase = "other"
            _charge(expl.blame_ns, phase, t_ns - prev_ns)
            _push_slice(expl.slices, phase, prev_ns, t_ns)
            prev_ns = t_ns
            expl.end_ns = t_ns
        for leg in legs:  # unclosed legs: flagged by validate_lifecycle
            _charge(expl.energy_nj, "other", leg.nj)
            expl.total_nj += leg.nj
        out.append(expl)
    return out


def explain_log(log: EventLog) -> Tuple[str, List[RequestExplanation]]:
    """Auto-detect the log's layer and reconstruct every request."""
    kind = classify_log(log)
    if kind == "fleet":
        return kind, explain_fleet_log(log)
    return kind, explain_scheduler_log(log)


# ----------------------------------------------------------------------
# lifecycle completeness validation
# ----------------------------------------------------------------------
def validate_lifecycle(log: EventLog) -> List[str]:
    """Audit a recorded log for reconstruction-breaking gaps.

    Returns a list of human-readable problems (empty when the log is
    complete): global/per-chain time regressions, orphaned phases
    (``complete``/``admit`` without a ``queue``, ``complete`` without
    an ``admit`` on scheduler logs), duplicated terminals, overlapping
    non-hedged dispatch legs, dispatch legs never closed by a
    completion/failover/cancellation, and ``wave_end`` events with no
    matching ``wave_start``.
    """
    problems: List[str] = []
    events = log.events()
    prev = None
    for event in events:
        if prev is not None and event.sim_time < prev.sim_time:
            problems.append(
                f"time regresses at seq {event.seq}: {event.kind} at "
                f"{event.sim_time} after {prev.kind} at {prev.sim_time}")
        prev = event

    kind = classify_log(log)
    if kind == "fleet":
        for rid in log.request_ids():
            chain = [e for e in log.timeline(rid)
                     if e.kind in _FLEET_KINDS]
            if not chain:
                continue
            if chain[0].kind != "queue":
                problems.append(
                    f"request {rid}: chain starts with "
                    f"{chain[0].kind!r}, not 'queue'")
            open_legs: List[int] = []
            terminal = None
            for event in chain:
                if terminal is not None and event.kind in (
                        "dispatch", "complete", "shed"):
                    problems.append(
                        f"request {rid}: {event.kind} at seq {event.seq} "
                        f"after terminal {terminal}")
                if event.kind == "dispatch":
                    device = event.attrs.get("device")
                    if open_legs and not event.attrs.get("hedged"):
                        problems.append(
                            f"request {rid}: overlapping non-hedged "
                            f"dispatch at seq {event.seq}")
                    open_legs.append(device)
                elif event.kind == "complete":
                    if terminal is not None:
                        problems.append(
                            f"request {rid}: duplicate complete at seq "
                            f"{event.seq}")
                    terminal = "complete"
                    _close(open_legs, event.attrs.get("device"))
                elif event.kind == "shed":
                    terminal = "shed"
                elif event.kind == "failover":
                    _close(open_legs, event.attrs.get("from_device"))
                    if event.attrs.get("outcome") == "exhausted":
                        terminal = "failover:exhausted"
                elif event.kind == "hedge" \
                        and event.attrs.get("cancelled"):
                    _close(open_legs, event.attrs.get("loser"))
            if open_legs:
                problems.append(
                    f"request {rid}: {len(open_legs)} dispatch leg(s) "
                    f"never closed (devices {open_legs})")
    else:
        wave_starts = {e.attrs.get("wave")
                       for e in log.by_kind("wave_start")}
        for e in log.by_kind("wave_end"):
            if e.attrs.get("wave") not in wave_starts:
                problems.append(
                    f"wave_end for wave {e.attrs.get('wave')} at seq "
                    f"{e.seq} has no wave_start")
        for cid in log.request_ids():
            chain = log.timeline(cid)
            kinds = [e.kind for e in chain]
            if kinds and kinds[0] != "queue":
                problems.append(
                    f"candidate {cid}: chain starts with {kinds[0]!r}, "
                    f"not 'queue'")
            n_admits = kinds.count("admit")
            n_completes = kinds.count("complete")
            if n_admits > 1:
                problems.append(
                    f"candidate {cid}: admitted {n_admits} times")
            if n_completes > 1:
                problems.append(
                    f"candidate {cid}: completed {n_completes} times")
            if n_completes and not n_admits:
                problems.append(
                    f"candidate {cid}: complete without an admit")
            if n_admits and n_completes:
                admit_seq = chain[kinds.index("admit")].seq
                complete_seq = chain[kinds.index("complete")].seq
                if complete_seq < admit_seq:
                    problems.append(
                        f"candidate {cid}: complete (seq {complete_seq}) "
                        f"precedes admit (seq {admit_seq})")
            if n_completes:
                tail = kinds[kinds.index("complete") + 1:]
                if tail:
                    problems.append(
                        f"candidate {cid}: events {tail} after complete")
    return problems


def _close(open_legs: List[int], device: Optional[int]) -> None:
    for i, d in enumerate(open_legs):
        if device is None or d == device:
            open_legs.pop(i)
            return


def assert_lifecycle(log: EventLog) -> None:
    """Raise :class:`ObservabilityError` listing every lifecycle gap."""
    problems = validate_lifecycle(log)
    if problems:
        raise ObservabilityError(
            "timeline lifecycle validation failed:\n  "
            + "\n  ".join(problems))
