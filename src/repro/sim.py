"""Shared discrete-event simulation kernel.

Every layer of the simulator that reasons about *when* something
happens — the continuous-batching scheduler, the fault injector's
recovery backoff, and the fleet serving layer — advances the same two
primitives defined here:

* :class:`SimClock` — the monotone accumulator of simulated seconds
  that used to live in :mod:`repro.npu.timing`.  One clock is one
  execution timeline; ``total_seconds`` is a makespan on the modelled
  device, never host wall clock.
* :class:`EventLoop` — a deterministic event loop over a ``SimClock``:
  callbacks scheduled at absolute sim-times fire in non-decreasing
  time order with FIFO tie-breaking (insertion sequence), and the loop
  advances its clock to each event's timestamp before invoking it.

Determinism contract: given the same sequence of ``at``/``after``/
``cancel`` calls, the loop fires the same callbacks at the same
simulated times in the same order — there is no randomness, no host
clock, and no hash/iteration-order dependence anywhere in the kernel.
The hypothesis suite in ``tests/test_fleet_clock_property.py`` pins
this contract (monotone firing order, cancellation never resurrects a
handle, identical seed → identical event sequence).

:mod:`repro.npu.timing` re-exports :class:`SimClock` so existing
imports (``from repro.npu.timing import SimClock``) keep working;
:mod:`repro.fleet.clock` re-exports both names for the fleet layer.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from .errors import FleetError, NPUError

__all__ = ["SimClock", "EventHandle", "EventLoop"]


class SimClock:
    """Accumulator for simulated seconds along one execution timeline.

    Schedulers advance the clock once per step with the step's simulated
    latency; ``total_seconds`` is then the makespan of the run on the
    modelled device, independent of host wall clock.  Negative advances
    are rejected — simulated time is monotone.
    """

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.n_advances = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds (alias of ``total_seconds``)."""
        return self.total_seconds

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise NPUError(
                f"cannot advance simulated time by {seconds} seconds")
        self.total_seconds += seconds
        self.n_advances += 1
        return self.total_seconds

    def advance_to(self, seconds: float) -> float:
        """Advance to an absolute sim-time; rejects travel into the past.

        Assigns the target exactly instead of accumulating a delta:
        ``t + (T - t)`` can round *past* ``T`` in float arithmetic, and
        a subsequent event at exactly ``T`` would then see a negative
        delta.  Two events at the same timestamp must both observe it.
        """
        if seconds < self.total_seconds:
            raise NPUError(
                f"cannot advance simulated time backwards to {seconds} "
                f"(already at {self.total_seconds})")
        self.total_seconds = seconds
        self.n_advances += 1
        return self.total_seconds


class EventHandle:
    """One scheduled callback; returned by :meth:`EventLoop.at`.

    A handle moves through at most three states: *pending* →
    (*fired* | *cancelled*).  ``cancel()`` on a pending handle returns
    True exactly once; cancelling a fired handle — or firing a
    cancelled one — is impossible (cancellation never resurrects).
    """

    __slots__ = ("seq", "time", "callback", "args", "cancelled", "fired")

    def __init__(self, seq: int, time: float,
                 callback: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self.seq = seq
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    @property
    def pending(self) -> bool:
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:
        state = ("cancelled" if self.cancelled
                 else "fired" if self.fired else "pending")
        return f"EventHandle(seq={self.seq}, time={self.time:.6g}, {state})"


class EventLoop:
    """Deterministic discrete-event loop over a :class:`SimClock`.

    Events are held in a heap keyed ``(time, seq)`` where ``seq`` is
    the insertion sequence number, so simultaneous events fire in the
    order they were scheduled.  Cancelled handles stay in the heap and
    are skipped lazily at pop time — O(1) cancellation without
    disturbing heap order.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self.n_fired = 0
        self.n_cancelled = 0

    @property
    def now(self) -> float:
        return self.clock.total_seconds

    def __len__(self) -> int:
        """Number of pending (not yet fired, not cancelled) events."""
        return sum(1 for _, _, h in self._heap if h.pending)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[..., Any],
           *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute sim-time ``time``."""
        if time < self.now:
            raise FleetError(
                f"cannot schedule an event at t={time:.6g}s, "
                f"already at t={self.now:.6g}s")
        handle = EventHandle(self._seq, time, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def after(self, delay: float, callback: Callable[..., Any],
              *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise FleetError(
                f"cannot schedule an event {delay:.6g} seconds in the past")
        return self.at(self.now + delay, callback, *args)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a pending handle; returns False if fired/cancelled."""
        if not handle.pending:
            return False
        handle.cancelled = True
        self.n_cancelled += 1
        return True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Sim-time of the next pending event, or None when drained."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> Optional[EventHandle]:
        """Fire the next pending event; None when the loop is drained.

        Advances the clock to the event's timestamp before invoking the
        callback, so callbacks observe ``loop.now == handle.time`` and
        may schedule further events at or after that instant.
        """
        while self._heap:
            _, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(handle.time)
            handle.fired = True
            self.n_fired += 1
            handle.callback(*handle.args)
            return handle
        return None

    def run(self, until: Optional[float] = None) -> int:
        """Fire events until drained (or past ``until``); returns count.

        With ``until`` set, events scheduled strictly after it stay
        pending and the clock is left at the last fired event.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or (until is not None and next_time > until):
                return fired
            self.step()
            fired += 1
