"""Regeneration of the paper's tables (Tables 1-5).

Each ``run_tableN`` function re-measures the table's content on the
simulation stack and returns an :class:`ExperimentResult` carrying the
measured rows plus the paper's reported values for side-by-side
comparison.  The heavyweight shared fixtures (the small-model harnesses)
are cached at module level so a benchmark session pays for them once.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..npu.hmx import HMXUnit
from ..npu.soc import DEVICES
from ..npu.timing import GENERATIONS, TimingModel, V75
from ..tts.accuracy_model import accuracy_under_quantization, calibrate_kl_scale
from ..tts.tasks import get_model_profile
from .report import ExperimentResult
from .smallmodel import ACCURACY_MODEL_CONFIG, QUANT_PROBE_CONFIG, SmallModelHarness

__all__ = ["run_table1", "run_table2", "run_table3", "run_table4", "run_table5"]

_HARNESS_CACHE: Dict[str, SmallModelHarness] = {}


def _quant_harness() -> SmallModelHarness:
    if "quant" not in _HARNESS_CACHE:
        _HARNESS_CACHE["quant"] = SmallModelHarness(
            QUANT_PROBE_CONFIG, embedding_std=0.07, n_eval_tokens=128)
    return _HARNESS_CACHE["quant"]


def _accuracy_harness() -> SmallModelHarness:
    if "accuracy" not in _HARNESS_CACHE:
        _HARNESS_CACHE["accuracy"] = SmallModelHarness(ACCURACY_MODEL_CONFIG)
    return _HARNESS_CACHE["accuracy"]


# ----------------------------------------------------------------------
# Table 1 — per-channel (QNN) vs per-group (AWQ) W4A16 accuracy
# ----------------------------------------------------------------------
def run_table1() -> ExperimentResult:
    """Measure the quantization-scheme accuracy gap of Table 1.

    The KL divergence of each scheme from the FP32 reference is a real
    measurement on the wide quantization probe; task accuracies are the
    calibrated mapping of those KLs (one anchor: per-channel MATH500 ->
    2.1; everything else follows from the measured KL ratios).
    """
    harness = _quant_harness()
    group = harness.evaluate_weights(
        harness.quantized_projection_weights("awq_group"))
    per_channel = harness.evaluate_weights(
        harness.quantized_projection_weights("per_channel"))
    reference = harness.evaluate_reference()

    profile = get_model_profile("llama3.2-1b")
    base_math = profile.base_accuracy["math500"]
    base_gsm = profile.base_accuracy["gsm8k"]
    kl_scale = calibrate_kl_scale(base_math, 0.021, per_channel.kl_vs_reference)

    math_awq = 100 * accuracy_under_quantization(base_math,
                                                 group.kl_vs_reference, kl_scale)
    math_qnn = 100 * accuracy_under_quantization(base_math,
                                                 per_channel.kl_vs_reference,
                                                 kl_scale)
    gsm_awq = 100 * accuracy_under_quantization(base_gsm,
                                                group.kl_vs_reference, kl_scale)
    gsm_qnn = 100 * accuracy_under_quantization(base_gsm,
                                                per_channel.kl_vs_reference,
                                                kl_scale)
    rows = [
        ["MATH500 (up)", round(math_awq, 1), round(math_qnn, 1)],
        ["GSM8K (up)", round(gsm_awq, 1), round(gsm_qnn, 1)],
        ["PPL (down, synthetic)", round(group.ppl, 2), round(per_channel.ppl, 2)],
        ["KL vs FP32 (down)", round(group.kl_vs_reference, 4),
         round(per_channel.kl_vs_reference, 4)],
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Llama3.2-1B accuracy: AWQ per-group vs QNN per-channel (W4A16)",
        headers=["metric", "AWQ (W4A16)", "QNN per-channel (W4A16)"],
        rows=rows,
        paper_claims={
            "MATH500": "15.9 vs 2.1",
            "GSM8K": "32.6 vs 3.4",
            "Wiki PPL": "19.42 vs 28.99 (1.49x worse)",
        },
        measured_claims={
            "MATH500": f"{math_awq:.1f} vs {math_qnn:.1f}",
            "GSM8K": f"{gsm_awq:.1f} vs {gsm_qnn:.1f}",
            "Wiki PPL": f"{group.ppl:.2f} vs {per_channel.ppl:.2f} "
                        f"({per_channel.ppl / group.ppl:.2f}x worse, synthetic)",
        },
        notes=[
            f"reference (FP32) synthetic PPL: {reference.ppl:.2f}",
            "per-channel quantization collapses reasoning-task accuracy; "
            "fine-grained groups preserve it (the paper's motivating gap)",
        ],
    )


# ----------------------------------------------------------------------
# Table 2 — HVX vs HMX unit performance
# ----------------------------------------------------------------------
def run_table2() -> ExperimentResult:
    """Regenerate the HVX/HMX microbenchmark numbers on V75."""
    timing = TimingModel(V75)
    m = k = n = 1024
    flops = 2.0 * m * k * n
    hvx_seconds = timing.gemm_seconds_hvx_thread(m, k, n)
    hmx_seconds = timing.gemm_seconds_hmx_peak(m, k, n)
    hvx_gflops = timing.effective_gflops(flops, hvx_seconds)
    hmx_gflops = timing.effective_gflops(flops, hmx_seconds)
    rows = [
        ["FP16 GEMM GFLOPs", round(hvx_gflops, 2), round(hmx_gflops, 2)],
        ["memory read bw (GB/s)", V75.hvx_mem_read_gbps,
         f"{V75.dma_read_gbps:.0f} (DMA)"],
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="HVX (1 thread) vs HMX performance on Hexagon V75",
        headers=["metric", "HVX (1 thread)", "HMX"],
        rows=rows,
        paper_claims={
            "HVX GEMM": "32.93 GFLOPs",
            "HMX GEMM": "12032.54 GFLOPs (>300x a vector thread)",
            "bandwidth": "26 GB/s core path vs 60 GB/s DMA",
        },
        measured_claims={
            "HVX GEMM": f"{hvx_gflops:.2f} GFLOPs",
            "HMX GEMM": f"{hmx_gflops:.2f} GFLOPs "
                        f"({hmx_gflops / hvx_gflops:.0f}x a vector thread)",
            "bandwidth": f"{V75.hvx_mem_read_gbps:.0f} GB/s core path vs "
                         f"{V75.dma_read_gbps:.0f} GB/s DMA",
        },
    )


# ----------------------------------------------------------------------
# Table 3 — evaluation devices
# ----------------------------------------------------------------------
def run_table3() -> ExperimentResult:
    """The device registry (Table 3), plus the modelled NPU parameters."""
    rows = []
    for device in DEVICES.values():
        gen = device.npu
        rows.append([device.name, device.soc, gen.name,
                     round(gen.hmx_fp16_gflops / 1000, 1),
                     gen.npu_va_space_bytes // 2**30])
    return ExperimentResult(
        experiment_id="table3",
        title="Mobile devices used in evaluation",
        headers=["device", "SoC", "NPU arch", "HMX TFLOPS (modelled)",
                 "NPU VA space (GiB)"],
        rows=rows,
        paper_claims={"devices": "OnePlus Ace3 (8 Gen 2, V73), OnePlus 12 "
                                 "(8 Gen 3, V75), OnePlus Ace5 Pro (8 Elite, V79)"},
        measured_claims={"devices": ", ".join(
            f"{d.name} ({d.soc}, {d.npu.name})" for d in DEVICES.values())},
    )


# ----------------------------------------------------------------------
# Table 4 — tile quantization groups vs conventional groups vs F16
# ----------------------------------------------------------------------
def run_table4() -> ExperimentResult:
    """Measure tile-group vs conventional-group quantization quality.

    KL/PPL are measured on the quantization probe; the WinoGrande/MMLU
    rows map each variant's measured KL onto the paper's F16 baseline
    values through the calibrated accuracy model.
    """
    harness = _quant_harness()
    tile = harness.evaluate_weights(
        harness.quantized_projection_weights("tile_group"))
    conventional = harness.evaluate_weights(
        harness.quantized_projection_weights("conventional_group"))
    reference = harness.evaluate_reference()

    # paper F16 baselines for Qwen2.5-1.5B
    wino_f16, mmlu_f16 = 64.613, 34.819

    def mapped(base: float, kl: float) -> float:
        return round(100 * accuracy_under_quantization(base / 100, kl, 2.0), 3)

    rows = [
        ["WinoGrande (up, mapped)", mapped(wino_f16, tile.kl_vs_reference),
         mapped(wino_f16, conventional.kl_vs_reference), wino_f16],
        ["MMLU (up, mapped)", mapped(mmlu_f16, tile.kl_vs_reference),
         mapped(mmlu_f16, conventional.kl_vs_reference), mmlu_f16],
        ["PPL (down, synthetic)", round(tile.ppl, 3),
         round(conventional.ppl, 3), round(reference.ppl, 3)],
        ["KL vs FP32 (down)", round(tile.kl_vs_reference, 4),
         round(conventional.kl_vs_reference, 4), 0.0],
    ]
    ratio = tile.kl_vs_reference / max(conventional.kl_vs_reference, 1e-12)
    return ExperimentResult(
        experiment_id="table4",
        title="Tile quantization groups (HMX layout) vs conventional groups",
        headers=["metric", "Tile group", "Common group", "F16"],
        rows=rows,
        paper_claims={
            "WinoGrande": "62.559 vs 63.349 (F16 64.613)",
            "MMLU": "35.465 vs 35.271 (F16 34.819)",
            "Wiki PPL": "10.206 vs 10.190 (F16 9.798)",
            "conclusion": "tile groups are comparable to conventional groups; "
                          "both differences are far smaller than the "
                          "quantization loss itself",
        },
        measured_claims={
            "WinoGrande": f"{rows[0][1]} vs {rows[0][2]} (F16 {wino_f16})",
            "MMLU": f"{rows[1][1]} vs {rows[1][2]} (F16 {mmlu_f16})",
            "Wiki PPL": f"{tile.ppl:.3f} vs {conventional.ppl:.3f} "
                        f"(F16 {reference.ppl:.3f}, synthetic)",
            "conclusion": f"tile/common KL ratio {ratio:.2f}x; both KLs are a "
                          "small fraction of the quantization-vs-F16 gap",
        },
        notes=[
            "the tile/common difference is a small fraction of the "
            "quantization-vs-F16 gap, matching the paper's conclusion",
        ],
    )


# ----------------------------------------------------------------------
# Table 5 — FP16 LUT FlashAttention vs conventional FP32 attention
# ----------------------------------------------------------------------
def run_table5() -> ExperimentResult:
    """Measure the accuracy effect of the FP16 LUT attention path.

    Both variants run with identical quantized weights; the only
    difference is the attention implementation (Algorithm 1 FP16 +
    LUT softmax versus conventional FP32), so the measured deltas
    isolate exactly what Table 5 isolates.
    """
    harness = _accuracy_harness()
    lut_fa = harness.evaluate_npu_forward(attention_method="lut")
    f32_attn = harness.evaluate_weights(
        harness.quantized_projection_weights("tile_group"))
    reference = harness.evaluate_reference()

    wino_f32, mmlu_f32 = 62.559, 35.465

    def mapped(base: float, extra_kl: float) -> float:
        return round(100 * accuracy_under_quantization(base / 100,
                                                       max(extra_kl, 0.0), 2.0), 3)

    attention_kl = abs(lut_fa.kl_vs_reference - f32_attn.kl_vs_reference)
    rows = [
        ["WinoGrande (up, mapped)", mapped(wino_f32, attention_kl), wino_f32],
        ["MMLU (up, mapped)", mapped(mmlu_f32, attention_kl), mmlu_f32],
        ["PPL (down, synthetic)", round(lut_fa.ppl, 3), round(f32_attn.ppl, 3)],
        ["KL vs FP32 model (down)", round(lut_fa.kl_vs_reference, 4),
         round(f32_attn.kl_vs_reference, 4)],
    ]
    return ExperimentResult(
        experiment_id="table5",
        title="FP16 LUT FlashAttention vs conventional FP32 attention",
        headers=["metric", "Our LUT16 FA", "F32 Attention"],
        rows=rows,
        paper_claims={
            "WinoGrande": "62.796 vs 62.559",
            "MMLU": "35.207 vs 35.465",
            "Wiki PPL": "10.205 vs 10.206",
            "conclusion": "FP16 LUT attention has no noticeable end-to-end "
                          "accuracy impact",
        },
        measured_claims={
            "WinoGrande": f"{rows[0][1]} vs {wino_f32}",
            "MMLU": f"{rows[1][1]} vs {mmlu_f32}",
            "Wiki PPL": f"{lut_fa.ppl:.3f} vs {f32_attn.ppl:.3f} (rel diff "
                        f"{abs(lut_fa.ppl - f32_attn.ppl) / f32_attn.ppl:.2%}, "
                        "synthetic)",
            "conclusion": f"attention-only KL {attention_kl:.5f} nats",
        },
        notes=[
            f"reference (FP32 weights+attention) PPL: {reference.ppl:.3f}",
            "the attention-implementation delta is far below the "
            "quantization delta, matching Table 5",
        ],
    )
