"""Shared scaled-down model harness for the accuracy experiments.

Tables 1, 4 and 5 compare model quality under different quantization and
attention implementations.  The full checkpoints cannot run here, so the
accuracy experiments use scaled-down transformers with the real
architecture (GQA + RoPE + RMSNorm + SwiGLU), synthetic weights with the
realistic magnitude structure of :meth:`TransformerWeights.generate`,
and *self-generated* token streams (the model's own samples play the
role of in-distribution evaluation text, so quantization damage shows up
as a perplexity increase, as it does on Wikitext-2).

Two probe sizes:

* :data:`QUANT_PROBE_CONFIG` — wide (hidden 1024) and shallow, for the
  quantization experiments: per-channel scales must span input columns
  that are 32x larger than a quantization group, as on real models,
  for the Table 1 failure mode to appear;
* :data:`ACCURACY_MODEL_CONFIG` — small enough to push the evaluation
  stream through the *full functional NPU path* (Table 5's FP16 LUT
  FlashAttention versus FP32 attention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..llm.config import ModelConfig, tiny_config
from ..llm.model import NPUTransformer, TransformerWeights, reference_forward
from ..llm.perplexity import mean_kl_divergence, perplexity, top1_agreement

__all__ = ["SmallModelHarness", "ACCURACY_MODEL_CONFIG", "QUANT_PROBE_CONFIG",
           "EvalMetrics"]

# Full-NPU-path probe (FlashAttention comparison, engine integration).
ACCURACY_MODEL_CONFIG = tiny_config(
    name="accuracy-probe", n_layers=4, hidden_dim=256, n_heads=8,
    n_kv_heads=4, intermediate_dim=512, vocab_size=512, max_position=256)

# Quantization probe: wide hidden dimension so one per-channel scale
# spans 32 quantization groups, as on the evaluated checkpoints.
QUANT_PROBE_CONFIG = tiny_config(
    name="quant-probe", n_layers=2, hidden_dim=1024, n_heads=8,
    n_kv_heads=4, intermediate_dim=2048, vocab_size=512, max_position=256)


@dataclass
class EvalMetrics:
    """Quality metrics of one weight/attention variant."""

    ppl: float
    kl_vs_reference: float
    top1_agreement: float


class SmallModelHarness:
    """One synthetic model + token stream, evaluated under variants."""

    def __init__(self, config: Optional[ModelConfig] = None, seed: int = 0,
                 n_eval_tokens: int = 160, embedding_std: float = 0.12) -> None:
        self.config = config if config is not None else ACCURACY_MODEL_CONFIG
        self.weights = TransformerWeights.generate(self.config, seed=seed,
                                                   embedding_std=embedding_std)
        self.tokens = self._generate_stream(seed + 1, n_eval_tokens)
        self._npu_model: Optional[NPUTransformer] = None
        self._reference_logits: Optional[np.ndarray] = None

    def _generate_stream(self, seed: int, n_tokens: int) -> np.ndarray:
        """Sample an evaluation stream *from the reference model itself*.

        Self-generated text is the synthetic analogue of in-distribution
        evaluation data: the reference model assigns it low perplexity,
        so quantization damage shows up as a PPL increase, exactly as on
        Wikitext-2 with a trained checkpoint.
        """
        rng = np.random.default_rng(seed)
        tokens = [int(rng.integers(0, self.config.vocab_size))]
        while len(tokens) < n_tokens:
            logits = reference_forward(self.weights, np.array(tokens))[-1]
            sharpened = logits / 0.8
            probs = np.exp(sharpened - sharpened.max())
            probs /= probs.sum()
            tokens.append(int(rng.choice(probs.size, p=probs)))
        return np.array(tokens, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def reference_logits(self) -> np.ndarray:
        """FP32 full-precision logits over the evaluation stream."""
        if self._reference_logits is None:
            self._reference_logits = reference_forward(self.weights, self.tokens)
        return self._reference_logits

    def _metrics(self, logits: np.ndarray) -> EvalMetrics:
        targets = self.tokens[1:]
        return EvalMetrics(
            ppl=perplexity(logits[:-1], targets),
            kl_vs_reference=mean_kl_divergence(self.reference_logits, logits),
            top1_agreement=top1_agreement(self.reference_logits, logits),
        )

    # ------------------------------------------------------------------
    def evaluate_reference(self) -> EvalMetrics:
        """The F16/FP32 baseline row."""
        return self._metrics(self.reference_logits)

    def evaluate_weights(self, layer_weights: List[Dict[str, np.ndarray]]
                         ) -> EvalMetrics:
        """Evaluate an alternative projection-weight set (FP32 attention)."""
        logits = reference_forward(self.weights, self.tokens, layer_weights)
        return self._metrics(logits)

    def evaluate_npu_forward(self, attention_method: str = "lut",
                             strategy: str = "ours") -> EvalMetrics:
        """Evaluate the full NPU path (quantized weights + FP16 attention)."""
        model = NPUTransformer(self.weights, strategy=strategy,
                               attention_method=attention_method)
        cache = model.new_cache(1, self.tokens.size + 1)
        logits, _ = model.forward(self.tokens[np.newaxis, :], cache)
        return self._metrics(logits[0])

    def quantized_projection_weights(self, scheme: str,
                                     default_bits: int = 4
                                     ) -> List[Dict[str, np.ndarray]]:
        """Quantize-dequantize every projection with one scheme.

        Schemes: ``tile_group`` (§5.1.1), ``conventional_group`` (llama.cpp
        column groups), ``per_channel`` (QNN-style), ``awq_group`` (AWQ
        scale search on top of tile groups).
        """
        from ..quant.awq import awq_quantize
        from ..quant.schemes import quantize_per_channel
        from ..quant.tile_quant import (
            dequantize_weight,
            quantize_conventional_group,
            quantize_tile_group,
        )

        rng = np.random.default_rng(7)
        out: List[Dict[str, np.ndarray]] = []
        for layer in self.weights.layers:
            variant: Dict[str, np.ndarray] = {}
            for name, matrix in layer.items():
                if name.startswith("norm"):
                    continue
                # the system keeps the FFN down projection in Q8_0 (§7.1);
                # QNN-style per-channel is W4 throughout (Table 1)
                bits = default_bits
                if name == "w_down" and scheme != "per_channel":
                    bits = 8
                if scheme == "tile_group":
                    variant[name] = dequantize_weight(
                        quantize_tile_group(matrix, bits=bits)).astype(np.float32)
                elif scheme == "conventional_group":
                    variant[name] = dequantize_weight(
                        quantize_conventional_group(matrix, bits=bits)
                    ).astype(np.float32)
                elif scheme == "per_channel":
                    dequantized, _ = quantize_per_channel(matrix, bits=bits)
                    variant[name] = dequantized.astype(np.float32)
                elif scheme == "awq_group":
                    calibration = rng.normal(0.0, 1.0, (32, matrix.shape[0]))
                    result = awq_quantize(matrix, calibration, bits=bits)
                    variant[name] = result.dequantized_weight().astype(np.float32)
                else:
                    raise ValueError(f"unknown quantization scheme {scheme!r}")
            out.append(variant)
        return out
