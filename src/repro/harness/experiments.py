"""Experiment registry: one entry per table and figure of the paper.

``run_experiment(id)`` regenerates any single artifact;
``run_all_experiments()`` produces the full EXPERIMENTS.md content.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import HarnessError
from ..obs import metrics as obs_metrics
from .figures import (
    run_fig5,
    run_fig8,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
)
from .report import ExperimentResult
from .tables import run_table1, run_table2, run_table3, run_table4, run_table5

__all__ = ["EXPERIMENTS", "run_experiment", "run_all_experiments"]

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig5": run_fig5,
    "fig8": run_fig8,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Regenerate one table/figure by id (e.g. ``"fig15"``).

    Each experiment runs against a fresh metrics registry; the snapshot
    is attached to the result so rendered figures carry the resource
    counters (DMA bytes, generated tokens, ...) they were produced with.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise HarnessError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}") from None
    previous = obs_metrics.get_metrics()
    registry = obs_metrics.MetricsRegistry()
    obs_metrics.set_metrics(registry)
    try:
        result = runner()
    finally:
        obs_metrics.set_metrics(previous)
    result.metrics = registry.snapshot()
    return result


def run_all_experiments() -> List[ExperimentResult]:
    """Regenerate every table and figure, in paper order."""
    return [run_experiment(eid) for eid in EXPERIMENTS]
