"""Experiment harness: one regeneration entry per paper table/figure.

* :mod:`repro.harness.report` — text-table rendering, claim comparison.
* :mod:`repro.harness.smallmodel` — shared accuracy-probe models.
* :mod:`repro.harness.tables` / :mod:`repro.harness.figures` — the
  per-artifact regeneration functions.
* :mod:`repro.harness.experiments` — the registry and batch runner.
"""

from .experiments import EXPERIMENTS, run_all_experiments, run_experiment
from .report import ExperimentResult, render_table
from .smallmodel import (
    ACCURACY_MODEL_CONFIG,
    QUANT_PROBE_CONFIG,
    SmallModelHarness,
)

__all__ = [
    "EXPERIMENTS",
    "run_all_experiments",
    "run_experiment",
    "ExperimentResult",
    "render_table",
    "ACCURACY_MODEL_CONFIG",
    "QUANT_PROBE_CONFIG",
    "SmallModelHarness",
]
