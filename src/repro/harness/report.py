"""Plain-text rendering of experiment tables.

Every experiment in the registry returns an :class:`ExperimentResult`;
this module renders them as aligned text tables (the same rows/series the
paper's tables and figures report) and records paper-expected values next
to measured ones for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "render_table", "render_metrics",
           "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly scalar formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentResult:
    """Structured output of one table/figure regeneration."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: List[str] = field(default_factory=list)
    paper_claims: Dict[str, str] = field(default_factory=dict)
    measured_claims: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def render(self) -> str:
        rendered = render_table(f"{self.experiment_id}: {self.title}",
                                self.headers, self.rows, self.notes,
                                self.paper_claims, self.measured_claims)
        if self.metrics:
            rendered += "\n" + render_metrics(self.metrics)
        return rendered

    def column(self, name: str) -> List[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 notes: Optional[Sequence[str]] = None,
                 paper_claims: Optional[Dict[str, str]] = None,
                 measured_claims: Optional[Dict[str, str]] = None) -> str:
    """Render an aligned text table with optional claim comparison."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    out = [f"== {title} ==", line(headers),
           line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    if paper_claims:
        out.append("")
        out.append("paper vs measured:")
        for key, expected in paper_claims.items():
            measured = (measured_claims or {}).get(key, "?")
            out.append(f"  {key}: paper={expected}  measured={measured}")
    for note in notes or []:
        out.append(f"note: {note}")
    return "\n".join(out)


def render_metrics(metrics: Dict[str, Dict[str, Any]]) -> str:
    """Compact one-line-per-metric rendering of a registry snapshot."""
    out = ["metrics:"]
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("type", "?")
        if kind == "histogram":
            detail = (f"count={format_value(entry['count'])} "
                      f"mean={format_value(entry['mean'])} "
                      f"p95={format_value(entry['p95'])}")
        else:
            detail = f"value={format_value(entry.get('value'))}"
        out.append(f"  {name} ({kind}): {detail}")
    return "\n".join(out)
