"""Regeneration of the paper's figures (Figs. 5, 8, 10-17).

Each ``run_figN`` function recomputes the series the corresponding
figure plots and returns an :class:`ExperimentResult` whose rows are the
figure's data points, with the paper's qualitative claims recorded next
to what we measure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import AddressSpaceError
from ..kernels.gemm import MixedPrecisionGemm
from ..kernels.softmax import OnChipSoftmax
from ..llm.config import MODEL_CONFIGS, get_model_config
from ..npu.hvx import HVXContext
from ..npu.memory import TCM
from ..npu.soc import DEVICES, get_device
from ..npu.timing import KernelCost, TimingModel, V75
from ..perf.baselines import AdrenoGPUModel, QNNReferenceModel
from ..perf.latency import DecodePerformanceModel, attention_phase_costs, gemm_cost
from ..perf.memory import MemoryModel
from ..perf.power import PowerModel
from ..tts.scaling import budget_sweep
from ..tts.tasks import TaskDataset, get_model_profile
from .report import ExperimentResult

__all__ = [
    "run_fig5", "run_fig8", "run_fig10", "run_fig11", "run_fig12",
    "run_fig13", "run_fig14", "run_fig15", "run_fig16", "run_fig17",
]

_DATASET_CACHE: Dict[str, TaskDataset] = {}


def _dataset(name: str, n_problems: int = 400) -> TaskDataset:
    key = f"{name}-{n_problems}"
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = TaskDataset.generate(name, n_problems, seed=0)
    return _DATASET_CACHE[key]


# ----------------------------------------------------------------------
# Fig. 5 — accuracy vs generation budget (Best-of-N, two models)
# ----------------------------------------------------------------------
def run_fig5(budgets=(1, 2, 4, 8, 16)) -> ExperimentResult:
    """MATH500 accuracy vs generation budget (Best-of-N, two models)."""
    dataset = _dataset("math500")
    rows = []
    curves = {}
    for model in ("llama3.2-1b", "qwen2.5-1.5b"):
        curve = budget_sweep("best_of_n", dataset, get_model_profile(model),
                             budgets=budgets, seed=11)
        curves[model] = curve
        for budget, acc in zip(curve.budgets, curve.accuracies):
            rows.append([model, budget, round(100 * acc, 1)])
    monotone = all(
        curves[m].accuracies[-1] > curves[m].accuracies[0] for m in curves)
    return ExperimentResult(
        experiment_id="fig5",
        title="MATH500 accuracy vs generation budget (Best-of-N)",
        headers=["model", "budget N", "accuracy (%)"],
        rows=rows,
        paper_claims={"trend": "accuracy improves significantly as the "
                               "generation budget increases"},
        measured_claims={"trend": "monotone improvement confirmed"
                         if monotone else "NOT monotone"},
    )


# ----------------------------------------------------------------------
# Fig. 8 — FlashAttention latency breakdown on the NPU
# ----------------------------------------------------------------------
def run_fig8(prompt_len: int = 4096,
             query_lengths=(1, 2, 4, 8, 16, 32)) -> ExperimentResult:
    """Latency composition of FP16 FlashAttention (Qwen2.5-1.5B geometry)."""
    cfg = get_model_config("qwen2.5-1.5b")
    timing = TimingModel(V75)
    rows = []
    softmax_shares = []
    for n_q in query_lengths:
        phases = attention_phase_costs(n_q * cfg.gqa_group, prompt_len,
                                       cfg.head_dim, method="lut")
        seconds = {name: timing.seconds(cost) for name, cost in phases.items()}
        matmul = seconds["qk_matmul"] + seconds["pv_matmul"]
        # Fig. 8 decomposes *on-chip* execution; KV streaming overlaps via
        # DMA and is reported separately
        total = matmul + seconds["softmax"] + seconds["rescale"]
        share = seconds["softmax"] / total
        softmax_shares.append(share)
        rows.append([n_q, round(1e6 * matmul, 1),
                     round(1e6 * seconds["softmax"], 1),
                     round(1e6 * seconds["rescale"], 1),
                     round(100 * share, 1)])
    return ExperimentResult(
        experiment_id="fig8",
        title=f"FlashAttention latency breakdown (prompt {prompt_len}, "
              "per KV head, V75)",
        headers=["query len", "matmul (us)", "softmax (us)", "rescale (us)",
                 "softmax share (%)"],
        rows=rows,
        paper_claims={"bottleneck": "matrix multiplication contributes little; "
                                    "Softmax dominates as query length grows"},
        measured_claims={"bottleneck": f"softmax share grows "
                                       f"{100 * softmax_shares[0]:.0f}% -> "
                                       f"{100 * softmax_shares[-1]:.0f}%"},
    )


# ----------------------------------------------------------------------
# Fig. 10 — accuracy-latency trade-off (Pareto)
# ----------------------------------------------------------------------
def run_fig10(device_key: str = "oneplus_12", dataset_name: str = "math500",
              budgets=(1, 2, 4, 8, 16)) -> ExperimentResult:
    """Accuracy vs per-step decode latency for BoN and Beam Search."""
    device = get_device(device_key)
    dataset = _dataset(dataset_name, n_problems=800)
    rows = []
    summary: Dict[str, Dict[int, "tuple[float, float]"]] = {}
    for model in ("qwen2.5-1.5b", "qwen2.5-3b", "llama3.2-1b", "llama3.2-3b"):
        cfg = get_model_config(model)
        perf = DecodePerformanceModel(cfg, device)
        profile = get_model_profile(model)
        for method in ("best_of_n", "beam_search"):
            curve = budget_sweep(method, dataset, profile, budgets=budgets,
                                 seed=23)
            for budget, acc in zip(curve.budgets, curve.accuracies):
                latency_ms = 1e3 * perf.decode_latency(budget, 1024)
                rows.append([model, method, budget, round(100 * acc, 1),
                             round(latency_ms, 1)])
                summary.setdefault(f"{model}/{method}", {})[budget] = \
                    (acc, latency_ms)

    # Pareto claim: small model + TTS beats the larger model's base point
    q15 = summary["qwen2.5-1.5b/best_of_n"]
    q3 = summary["qwen2.5-3b/best_of_n"]
    q15_beats_3b = any(acc > q3[1][0] and lat < q3[1][1]
                       for acc, lat in q15.values())
    q3_beats_7b = max(acc for acc, _ in q3.values()) > \
        get_model_profile("qwen2.5-7b").base_accuracy[dataset_name]
    return ExperimentResult(
        experiment_id="fig10",
        title=f"Accuracy-latency trade-off ({dataset_name}, "
              f"{device.short_name})",
        headers=["model", "method", "budget", "accuracy (%)",
                 "decode latency/step (ms)"],
        rows=rows,
        paper_claims={
            "pareto": "Best-of-N with Qwen2.5-1.5B/3B outperforms the base "
                      "accuracies of the 3B/7B models; test-time scaling "
                      "yields a superior Pareto frontier",
        },
        measured_claims={
            "pareto": f"1.5B+TTS dominates the 3B base point: {q15_beats_3b}; "
                      f"3B+TTS exceeds the 7B base accuracy: {q3_beats_7b}",
        },
        notes=["8 Gen 2 rows are omitted for >=3B models (NPU VA-space "
               "limitation, §7.2.1)"],
    )


# ----------------------------------------------------------------------
# Fig. 11 — decode throughput vs batch size
# ----------------------------------------------------------------------
def run_fig11(batches=(1, 2, 4, 8, 16), context: int = 1024) -> ExperimentResult:
    """End-to-end decode throughput vs batch size, all devices."""
    rows = []
    scaling: Dict[str, float] = {}
    models = ("qwen2.5-1.5b", "llama3.2-1b", "qwen2.5-3b", "llama3.2-3b")
    for device in DEVICES.values():
        for model in models:
            cfg = get_model_config(model)
            # the 2 GiB VA space of 8 Gen 2 rejects >= 3B models
            try:
                heap = device.rpcmem_heap()
                heap.alloc(cfg.npu_session_bytes(4096), name="session")
            except AddressSpaceError:
                rows.append([device.short_name, model, "-", "does not fit "
                             "(VA space)"])
                continue
            perf = DecodePerformanceModel(cfg, device)
            tps = [perf.decode_throughput(b, context) for b in batches]
            scaling[f"{device.short_name}/{model}"] = tps[-1] / tps[0]
            for batch, value in zip(batches, tps):
                rows.append([device.short_name, model, batch, round(value, 1)])
    mean_scaling = float(np.mean(list(scaling.values())))
    return ExperimentResult(
        experiment_id="fig11",
        title="End-to-end decode throughput vs batch size",
        headers=["device", "model", "batch", "throughput (tok/s)"],
        rows=rows,
        paper_claims={
            "scaling": "throughput increases significantly with batch but "
                       "sub-linearly (CPU-side lm_head grows to ~50% of step "
                       "time at batch 16)",
            "8G2": "only ~1B models run on OnePlus Ace3 (2 GiB VA space)",
        },
        measured_claims={
            "scaling": f"mean batch-16/batch-1 speedup {mean_scaling:.1f}x "
                       "(sub-linear)",
            "8G2": f"{sum(1 for r in rows if r[3] == 'does not fit (VA space)')} "
                   "model/device combinations rejected by the VA-space check",
        },
    )


# ----------------------------------------------------------------------
# Fig. 12 — power and energy during decoding
# ----------------------------------------------------------------------
def run_fig12(batches=(1, 2, 4, 8, 16)) -> ExperimentResult:
    """Power and energy during decoding (OnePlus 12)."""
    device = get_device("oneplus_12")
    rows = []
    samples = {}
    for model in ("qwen2.5-1.5b", "qwen2.5-3b"):
        power = PowerModel(get_model_config(model), device)
        for batch in batches:
            sample = power.sample(batch)
            samples[(model, batch)] = sample
            rows.append([model, batch, round(sample.power_w, 2),
                         round(1e3 * sample.energy_per_token_j, 1)])
    claim_energy = (samples[("qwen2.5-1.5b", 8)].energy_per_token_j
                    < samples[("qwen2.5-3b", 1)].energy_per_token_j)
    max_power = max(s.power_w for s in samples.values())
    return ExperimentResult(
        experiment_id="fig12",
        title="Power and energy during decoding (OnePlus 12)",
        headers=["model", "batch", "power (W)", "energy/token (mJ)"],
        rows=rows,
        paper_claims={
            "power": "1.5B power grows with batch but stays within 5 W; "
                     "3B stabilizes around 4.3 W",
            "energy": "1.5B at batch 8 uses less energy per token than 3B "
                      "at batch 1",
        },
        measured_claims={
            "power": f"max observed {max_power:.2f} W",
            "energy": f"1.5B@8 < 3B@1: {claim_energy}",
        },
    )


# ----------------------------------------------------------------------
# Fig. 13 — throughput comparison vs GPU (OpenCL) and QNN
# ----------------------------------------------------------------------
def run_fig13(batches=(1, 2, 4, 8, 16),
              prompt_len: int = 512) -> ExperimentResult:
    """Throughput comparison: ours vs GPU (OpenCL) vs QNN FP16."""
    device = get_device("oneplus_12")
    rows = []
    crossover_ok = {}
    prefill_win = {}
    for model in ("qwen2.5-1.5b", "qwen2.5-3b"):
        cfg = get_model_config(model)
        ours = DecodePerformanceModel(cfg, device)
        gpu = AdrenoGPUModel(cfg)
        qnn = QNNReferenceModel(cfg, device)
        ours_tps = [ours.decode_throughput(b, 1024) for b in batches]
        gpu_tps = [gpu.decode_throughput(b, 1024) for b in batches]
        for batch, o, g in zip(batches, ours_tps, gpu_tps):
            # QNN's static fixed-shape graphs are reported at batch 1 only
            qnn_cell = round(qnn.decode_throughput(1, 1024), 1) \
                if batch == 1 else "-"
            rows.append([model, "decode", batch, round(o, 1), round(g, 1),
                         qnn_cell])
        crossover_ok[model] = (gpu_tps[0] > ours_tps[0]
                               and ours_tps[-1] > gpu_tps[-1])
        ours_pf = ours.prefill_throughput(prompt_len)
        gpu_pf = gpu.prefill_throughput(prompt_len)
        qnn_pf = qnn.prefill_throughput(prompt_len)
        prefill_win[model] = ours_pf > gpu_pf
        rows.append([model, f"prefill@{prompt_len}", "-", round(ours_pf, 1),
                     round(gpu_pf, 1), round(qnn_pf, 1)])
    return ExperimentResult(
        experiment_id="fig13",
        title="Inference throughput: ours vs GPU (OpenCL) vs QNN FP16",
        headers=["model", "phase", "batch", "ours (tok/s)", "GPU (tok/s)",
                 "QNN (tok/s)"],
        rows=rows,
        paper_claims={
            "decode": "GPU decodes faster at batch 1, but our NPU system has "
                      "higher throughput and better scaling at larger batches",
            "prefill": "ours consistently outperforms the GPU; comparable "
                       "with QNN on some workloads",
        },
        measured_claims={
            "decode": f"batch-1 GPU win + large-batch NPU win: {crossover_ok}",
            "prefill": f"ours > GPU: {prefill_win}",
        },
    )


# ----------------------------------------------------------------------
# Fig. 14 — softmax exp ablation (functional traces)
# ----------------------------------------------------------------------
def run_fig14(query_lengths=(1, 4, 16),
              kv_lengths=(1024, 4096, 16384)) -> ExperimentResult:
    """On-chip softmax latency by exp implementation (functional traces)."""
    timing = TimingModel(V75)
    rng = np.random.default_rng(3)
    rows = []
    ratios_f32 = []
    ratios_f16 = []
    for n_q in query_lengths:
        for n_kv in kv_lengths:
            scores = rng.normal(0, 2, (n_q, n_kv)).astype(np.float16)
            seconds = {}
            for method in ("poly32", "poly16", "lut"):
                tcm = TCM()
                hvx = HVXContext("qfloat")
                softmax = OnChipSoftmax(hvx, method, tcm=tcm)
                softmax(scores)
                cost = KernelCost.from_trace(hvx.trace)
                seconds[method] = timing.seconds(cost)
            speedup32 = seconds["poly32"] / seconds["lut"]
            speedup16 = seconds["poly16"] / seconds["lut"]
            ratios_f32.append(speedup32)
            ratios_f16.append(speedup16)
            rows.append([n_q, n_kv, round(1e6 * seconds["poly32"], 3),
                         round(1e6 * seconds["poly16"], 3),
                         round(1e6 * seconds["lut"], 3),
                         round(speedup32, 2), round(speedup16, 2)])
    return ExperimentResult(
        experiment_id="fig14",
        title="On-chip softmax latency by exp implementation (V75)",
        headers=["Nq", "Nkv", "f32 exp (us)", "f16 exp (us)", "LUT exp (us)",
                 "speedup vs f32", "speedup vs f16"],
        rows=rows,
        paper_claims={
            "speedup vs f32": "1.26x - 2.19x",
            "speedup vs f16": "up to 1.60x",
            "trend": "larger queries at short context slightly reduce the "
                     "ratio; alleviated at longer KV",
        },
        measured_claims={
            "speedup vs f32": f"{min(ratios_f32):.2f}x - {max(ratios_f32):.2f}x",
            "speedup vs f16": f"up to {max(ratios_f16):.2f}x",
            "trend": f"ratio at Nq=16/Nkv=1024 ({rows[6][5]}) below "
                     f"Nq=16/Nkv=16384 ({rows[8][5]})",
        },
    )


# ----------------------------------------------------------------------
# Fig. 15 — GEMM dequantization ablation (functional kernels)
# ----------------------------------------------------------------------
_FIG15_MATRICES = {
    # the paper's operator-level GEMM set: attention Wq/Wo and FFN
    # gate/up/down projections of the evaluated models (§7.1)
    "Q1.5B Wq/Wo": (1536, 1536),
    "Q1.5B Wgate/Wup": (1536, 8960),
    "L1B Wq/Wo": (2048, 2048),
    "L1B Wgate/Wup": (2048, 8192),
    "Q3B Wgate/Wup": (2048, 11008),
    "L3B Wgate/Wup": (3072, 8192),
}


def run_fig15() -> ExperimentResult:
    """GEMV latency across dequantization strategies (analytic costs)."""
    timing = TimingModel(V75)
    rows = []
    speedups = []
    coalesce_gains = []
    upper_bound_gaps = []
    for label, (k, n) in _FIG15_MATRICES.items():
        seconds = {}
        for strategy in ("baseline", "hmx_layout", "ours", "no_dequant"):
            cost = gemm_cost(1, k, n, strategy=strategy, bits=4, qfloat=True)
            seconds[strategy] = timing.seconds(cost)
        speedup = seconds["baseline"] / seconds["ours"]
        gain = seconds["hmx_layout"] / seconds["ours"]
        gap = seconds["ours"] / seconds["no_dequant"] - 1.0
        speedups.append(speedup)
        coalesce_gains.append(gain)
        upper_bound_gaps.append(gap)
        rows.append([label, round(1e3 * seconds["baseline"], 3),
                     round(1e3 * seconds["hmx_layout"], 3),
                     round(1e3 * seconds["ours"], 3),
                     round(1e3 * seconds["no_dequant"], 3),
                     round(speedup, 1), round(gain, 2)])
    return ExperimentResult(
        experiment_id="fig15",
        title="GEMV dequantization ablation (V75, per matrix)",
        headers=["matrix", "baseline (ms)", "HMX layout (ms)", "ours (ms)",
                 "no dequant (ms)", "speedup vs baseline", "coalesce gain"],
        rows=rows,
        paper_claims={
            "speedup vs baseline": "9.65x - 19.04x",
            "coalesce/rearrange gain": "1.82x - 3.45x",
            "gap to no-dequant bound": "only 27% slower on average",
        },
        measured_claims={
            "speedup vs baseline": f"{min(speedups):.2f}x - {max(speedups):.2f}x",
            "coalesce/rearrange gain": f"{min(coalesce_gains):.2f}x - "
                                       f"{max(coalesce_gains):.2f}x",
            "gap to no-dequant bound": f"{100 * float(np.mean(upper_bound_gaps)):.0f}% "
                                       "slower on average",
        },
    )


# ----------------------------------------------------------------------
# Fig. 16 — CPU and memory usage during decoding
# ----------------------------------------------------------------------
def run_fig16(batches=(1, 2, 4, 8, 16)) -> ExperimentResult:
    """CPU and memory usage during decoding (OnePlus 12, ctx 4096)."""
    device = get_device("oneplus_12")
    rows = []
    dmabuf = {}
    for model in ("qwen2.5-1.5b", "qwen2.5-3b"):
        memory = MemoryModel(get_model_config(model), device,
                             context_budget=4096)
        dmabuf[model] = memory.dmabuf_bytes() / 2**20
        for batch in batches:
            snap = memory.snapshot(batch)
            rows.append([model, batch,
                         round(snap.dmabuf_bytes / 2**20),
                         round(snap.cpu_rss_bytes / 2**20),
                         round(snap.total_bytes / 2**30, 2),
                         round(snap.cpu_utilization_pct)])
    return ExperimentResult(
        experiment_id="fig16",
        title="CPU and memory usage during decoding (OnePlus 12, ctx 4096)",
        headers=["model", "batch", "dmabuf (MiB)", "CPU RSS (MiB)",
                 "total (GiB)", "CPU util (%)"],
        rows=rows,
        paper_claims={
            "dmabuf": "constant 1056 MiB (1.5B) and 2090 MiB (3B)",
            "total": "~1.3 GiB (1.5B), ~2.4 GiB (3B)",
            "cpu": "utilization grows with batch, always <= 4 cores",
        },
        measured_claims={
            "dmabuf": f"constant {dmabuf['qwen2.5-1.5b']:.0f} MiB (1.5B) and "
                      f"{dmabuf['qwen2.5-3b']:.0f} MiB (3B)",
            "total": f"{rows[0][4]} GiB (1.5B), {rows[5][4]} GiB (3B)",
            "cpu": f"utilization grows {rows[0][5]}% -> {rows[4][5]}% "
                   "(1.5B), always <= 400% (4 cores)",
        },
    )


# ----------------------------------------------------------------------
# Fig. 17 — impact of prompt length on decode throughput
# ----------------------------------------------------------------------
def run_fig17(prompt_lengths=(512, 1024, 2048, 4096),
              batches=(1, 4, 16)) -> ExperimentResult:
    """Impact of prompt length on decode throughput."""
    device = get_device("oneplus_12")
    rows = []
    max_drop = 0.0
    for model in ("qwen2.5-1.5b", "qwen2.5-3b"):
        perf = DecodePerformanceModel(get_model_config(model), device)
        for batch in batches:
            tps = [perf.decode_throughput(batch, p) for p in prompt_lengths]
            drop = 1.0 - tps[-1] / tps[0]
            max_drop = max(max_drop, drop)
            for prompt, value in zip(prompt_lengths, tps):
                rows.append([model, batch, prompt, round(value, 1)])
    return ExperimentResult(
        experiment_id="fig17",
        title="Decode throughput vs prompt length (OnePlus 12)",
        headers=["model", "batch", "prompt length", "throughput (tok/s)"],
        rows=rows,
        paper_claims={"trend": "mild decreasing trend from 512 to 4096 "
                               "tokens; decline remains subtle"},
        measured_claims={"trend": f"worst-case throughput drop "
                                  f"{100 * max_drop:.1f}% across the range"},
    )
