"""Prefill pipeline study: the §8b optimization directions.

The paper's prefill "leaves room for improvement": offloading more
operators to the NPU, reducing memory access and communication overhead
through operator fusion, and better tiling/pipelining.  This module
models the prefill pipeline explicitly so those directions can be swept:

* ``chunk`` — tokens processed per pipeline stage.  Small chunks pay the
  per-chunk communication overhead more often; huge chunks overflow the
  TCM working set and lose double-buffering;
* ``fused_fraction`` — fraction of elementwise/norm operators fused into
  their producer GEMMs (fusion removes their activation round-trips);
* ``cpu_fallback_ops`` — operators still running on the CPU, each paying
  the rpcmem crossing both ways per chunk.

The defaults reproduce the current system's ~35% pipeline efficiency
(the ``PREFILL_EFFICIENCY`` constant of the latency model); the sweep
shows how the §8b work items close the gap toward the engine bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import EngineError
from ..llm.config import ModelConfig
from ..npu.soc import Device
from ..npu.timing import KernelCost, TimingModel
from .latency import attention_cost, gemm_cost

__all__ = ["PrefillPipelineModel", "PrefillConfig"]

# per-chunk, per-layer communication overhead: FastRPC signalling plus
# cache maintenance on the activation buffers (§6)
_CHUNK_SYNC_SECONDS = 25e-6
# unfused elementwise ops re-read and re-write activations once each
_UNFUSED_PASSES = 4
# TCM working-set limit for double-buffered prefill tiles
_TCM_TOKEN_LIMIT_BYTES = 4 * 2**20


@dataclass(frozen=True)
class PrefillConfig:
    """One operating point of the prefill pipeline."""

    chunk: int = 128
    fused_fraction: float = 0.0
    cpu_fallback_ops: int = 2         # ops per layer still on the CPU
    pipeline_efficiency: float = 0.45  # HMX/dequant/DMA tiling overlap

    def __post_init__(self) -> None:
        if self.chunk <= 0:
            raise EngineError(f"chunk must be positive, got {self.chunk}")
        if not 0.0 <= self.fused_fraction <= 1.0:
            raise EngineError(
                f"fused fraction must be in [0,1], got {self.fused_fraction}")
        if self.cpu_fallback_ops < 0:
            raise EngineError("cpu_fallback_ops must be non-negative")
        if not 0.05 <= self.pipeline_efficiency <= 1.0:
            raise EngineError(
                f"pipeline efficiency must be in [0.05, 1], got "
                f"{self.pipeline_efficiency}")


class PrefillPipelineModel:
    """Chunked prefill with communication, fusion and fallback knobs."""

    def __init__(self, config: ModelConfig, device: Device,
                 strategy: str = "ours") -> None:
        self.config = config
        self.device = device
        self.strategy = strategy
        self.timing = TimingModel(device.npu)
        self._qfloat = not device.npu.ieee_float

    # ------------------------------------------------------------------
    def _chunk_layer_cost(self, chunk: int, context: int) -> KernelCost:
        cfg = self.config
        cost = KernelCost()
        for name, (k, n) in cfg.projection_shapes().items():
            bits = 8 if name == "w_down" else 4
            cost.merge(gemm_cost(chunk, k, n, strategy=self.strategy,
                                 bits=bits, qfloat=self._qfloat))
        attn = attention_cost(chunk * cfg.gqa_group, context, cfg.head_dim,
                              qfloat=self._qfloat)
        cost.merge(attn.scaled(cfg.n_kv_heads))
        return cost

    def _activation_roundtrip_seconds(self, chunk: int,
                                      fused_fraction: float) -> float:
        """Unfused elementwise passes re-stream activations through DMA.

        Half the passes touch hidden-sized activations, half the larger
        FFN intermediates (SwiGLU inputs).
        """
        cfg = self.config
        mean_width = (cfg.hidden_dim + cfg.intermediate_dim) / 2
        bytes_per_pass = 2 * chunk * mean_width * 2  # read + write FP16
        passes = _UNFUSED_PASSES * (1.0 - fused_fraction)
        return passes * bytes_per_pass \
            / (self.device.npu.dma_read_gbps * 1e9)

    def _tcm_spill_factor(self, chunk: int) -> float:
        """Chunks whose tiles overflow the TCM lose double buffering."""
        cfg = self.config
        working_set = 2 * chunk * (cfg.hidden_dim + cfg.intermediate_dim)
        if working_set <= _TCM_TOKEN_LIMIT_BYTES:
            return 1.0
        return 1.0 + 0.5 * (working_set / _TCM_TOKEN_LIMIT_BYTES - 1.0)

    # ------------------------------------------------------------------
    def prefill_seconds(self, prompt_len: int,
                        pipeline: Optional[PrefillConfig] = None) -> float:
        """Prompt-processing time at one pipeline operating point."""
        if prompt_len <= 0:
            raise EngineError(f"prompt length must be positive, got {prompt_len}")
        p = pipeline if pipeline is not None else PrefillConfig()
        cfg = self.config
        total = 0.0
        done = 0
        while done < prompt_len:
            step = min(p.chunk, prompt_len - done)
            compute = self.timing.seconds(
                self._chunk_layer_cost(step, done + step).scaled(cfg.n_layers))
            compute *= self._tcm_spill_factor(step) / p.pipeline_efficiency
            sync = _CHUNK_SYNC_SECONDS * cfg.n_layers
            crossings = (2 * p.cpu_fallback_ops * cfg.n_layers
                         * (_CHUNK_SYNC_SECONDS
                            + 2 * step * cfg.hidden_dim
                            / (self.device.cpu.dram_read_gbps * 1e9)))
            roundtrips = cfg.n_layers \
                * self._activation_roundtrip_seconds(step, p.fused_fraction)
            total += compute + sync + crossings + roundtrips
            done += step
        # final lm_head evaluation on the CPU
        total += self.device.cpu.gemm_seconds(
            1, cfg.hidden_dim, cfg.vocab_size,
            weight_bytes=cfg.lm_head_bytes())
        return total

    def prefill_throughput(self, prompt_len: int,
                           pipeline: Optional[PrefillConfig] = None) -> float:
        return prompt_len / self.prefill_seconds(prompt_len, pipeline)

    # ------------------------------------------------------------------
    def sweep(self, prompt_len: int = 512) -> Dict[str, float]:
        """Throughput at the §8b operating points.

        ``current`` is the paper's system; the other entries apply each
        future-work item; ``all`` applies every optimization at once.
        """
        return {
            "current": self.prefill_throughput(
                prompt_len, PrefillConfig()),
            "fused_ops": self.prefill_throughput(
                prompt_len, PrefillConfig(fused_fraction=0.9)),
            "all_ops_on_npu": self.prefill_throughput(
                prompt_len, PrefillConfig(cpu_fallback_ops=0)),
            "tuned_pipeline": self.prefill_throughput(
                prompt_len, PrefillConfig(pipeline_efficiency=0.85)),
            "all": self.prefill_throughput(
                prompt_len, PrefillConfig(fused_fraction=0.9,
                                          cpu_fallback_ops=0,
                                          pipeline_efficiency=0.85)),
        }
