"""Power and energy model for the decode stage (Fig. 12, §7.2.3).

Device power is decomposed into a baseline plus per-engine dynamic terms
weighted by engine utilization over a decode step:

    P = P_base + P_dram * u_dram + P_hmx * u_hmx + P_hvx * u_hvx + P_cpu * u_cpu

Utilizations come from the latency model's per-engine times, so power
inherits the same batch-scaling behaviour the paper measures on the
OnePlus 12 rails: rising with batch for the 1.5B model but staying under
5 W, and a ~4.3 W plateau for the 3B model (whose DMA/CPU terms are
already saturated at batch 1).  Energy per token is power times
per-token latency, reproducing the Fig. 12 claim that the 1.5B model at
batch 8 costs less energy per token than the 3B model at batch 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import EngineError
from ..llm.config import ModelConfig
from ..npu.soc import Device
from ..npu.timing import KernelCost
from .latency import DecodePerformanceModel

__all__ = ["PowerBudget", "PowerModel", "PowerSample"]


@dataclass(frozen=True)
class PowerBudget:
    """Component power draws (watts) of a Snapdragon-class SoC."""

    base_w: float = 1.2       # display-off idle + rails + framework
    dram_w: float = 2.3       # LPDDR5 at full streaming bandwidth
    hmx_w: float = 1.2        # matrix engine fully busy
    hvx_w: float = 1.0        # vector engine fully busy
    cpu_w: float = 4.0        # 4 big cores fully busy


@dataclass(frozen=True)
class PowerSample:
    """Power/energy measurement of one decode configuration."""

    batch: int
    power_w: float
    latency_s: float
    energy_per_token_j: float
    utilization: Dict[str, float]


class PowerModel:
    """Utilization-weighted power for batched decoding."""

    def __init__(self, config: ModelConfig, device: Device,
                 budget: PowerBudget = PowerBudget()) -> None:
        self.config = config
        self.device = device
        self.budget = budget
        self.performance = DecodePerformanceModel(config, device)

    def _utilizations(self, batch: int, context: int) -> "tuple[Dict[str, float], float]":
        cfg = self.config
        perf = self.performance
        gemm = perf._layer_gemm_cost(batch).scaled(cfg.n_layers)
        attn = perf._layer_attention_cost(batch, 1, context).scaled(cfg.n_layers)
        npu = KernelCost().merge(gemm).merge(attn)
        timing = perf.timing
        step = perf.decode_step(batch, context)
        total = step.total_seconds
        if total <= 0:
            raise EngineError("non-positive step latency")
        utilization = {
            "dram": min(1.0, timing.dma_seconds(npu) / total),
            "hmx": min(1.0, timing.hmx_seconds(npu) / total),
            "hvx": min(1.0, timing.hvx_seconds(npu) / total),
            "cpu": min(1.0, step.cpu_seconds / total),
        }
        return utilization, total

    def sample(self, batch: int, context: int = 1024) -> PowerSample:
        """Power and per-token energy for one decode configuration."""
        utilization, latency = self._utilizations(batch, context)
        b = self.budget
        power = (b.base_w
                 + b.dram_w * utilization["dram"]
                 + b.hmx_w * utilization["hmx"]
                 + b.hvx_w * utilization["hvx"]
                 + b.cpu_w * utilization["cpu"])
        energy_per_token = power * latency / batch
        return PowerSample(batch=batch, power_w=power, latency_s=latency,
                           energy_per_token_j=energy_per_token,
                           utilization=utilization)
