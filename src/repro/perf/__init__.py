"""Performance models: latency, power, memory, comparison baselines.

* :mod:`repro.perf.latency` — analytic per-step decode/prefill costs for
  the full-size models (cross-validated against the functional kernels).
* :mod:`repro.perf.power` — utilization-weighted power/energy (Fig. 12).
* :mod:`repro.perf.memory` — dmabuf/CPU footprint and utilization (Fig. 16).
* :mod:`repro.perf.baselines` — Adreno OpenCL and QNN FP16 models (Fig. 13).
"""

from .baselines import AdrenoGPUModel, CPUBaselineModel, QNNReferenceModel
from .latency import (
    PREFILL_EFFICIENCY,
    DecodePerformanceModel,
    attention_cost,
    attention_phase_costs,
    gemm_cost,
)
from .memory import MemoryModel, ResourceUsage
from .prefill import PrefillConfig, PrefillPipelineModel
from .power import PowerBudget, PowerModel, PowerSample

__all__ = [
    "AdrenoGPUModel",
    "CPUBaselineModel",
    "QNNReferenceModel",
    "PREFILL_EFFICIENCY",
    "DecodePerformanceModel",
    "attention_cost",
    "attention_phase_costs",
    "gemm_cost",
    "MemoryModel",
    "PrefillConfig",
    "PrefillPipelineModel",
    "ResourceUsage",
    "PowerBudget",
    "PowerModel",
    "PowerSample",
]
