"""End-to-end decode/prefill latency model for the real model sizes.

The functional simulator runs real numerics at tiny scale; for the
paper's full-size models (Figs. 8, 11, 12, 13, 16, 17) this module
computes the same :class:`~repro.npu.timing.KernelCost` records
*analytically* — mirroring the instruction counting of the kernels
exactly, which a cross-validation test enforces — and composes them into
per-step latency:

* every projection GEMM uses the "ours" dequantization path (Q4_0, Q8_0
  for the FFN down projection);
* attention uses the FP16 FlashAttention cost structure per (sequence,
  kv-head) with GQA-grouped query rows;
* the lm_head runs on the CPU with quantized weights (§7.2.2), which is
  what bends the batch-scaling curves of Fig. 11 at batch 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import EngineError
from ..kernels.dequant import (
    OURS_SUPER_GROUP_OVERHEAD_PACKETS,
    scatter_conflict_factor,
)
from ..kernels.softmax import (
    CALL_FIXED_PACKETS,
    CHAIN_STALL_PACKETS,
    LUT_ROW_EXPOSED_PACKETS,
    ROW_REDUCE_PACKETS,
)
from ..llm.config import ModelConfig
from ..npu.hmx import TILE_DIM
from ..npu.hvx import VECTOR_BYTES
from ..npu.soc import Device
from ..npu.timing import KernelCost, TimingModel

__all__ = [
    "PREFILL_EFFICIENCY",
    "gemm_cost",
    "attention_cost",
    "DecodePerformanceModel",
]

# The paper's prefill leaves "room for improvement" (§8b): operators not
# yet offloaded to the NPU, missing fusion, and per-chunk communication.
# The pipeline achieves roughly this fraction of the ideal engine overlap.
PREFILL_EFFICIENCY = 0.35


def _vectors(nbytes: int) -> int:
    return -(-nbytes // VECTOR_BYTES)


def _tiles(dim: int) -> int:
    return -(-dim // TILE_DIM)


def gemm_cost(m: int, k: int, n: int, strategy: str = "ours", bits: int = 4,
              qfloat: bool = True, coalesce: int = 8,
              group_size: int = 32) -> KernelCost:
    """Analytic cost of one mixed-precision GEMM (mirrors the kernels).

    The instruction counts replicate :func:`repro.kernels.dequant.
    dequantize_stream` for the padded weight (``k`` x ``n`` rounded up to
    whole tiles for tile layouts) plus the HMX tile MACs and the DMA
    streaming of activations and packed weights.
    """
    if min(m, k, n) <= 0:
        raise EngineError(f"GEMM dims must be positive, got ({m}, {k}, {n})")
    cost = KernelCost()
    if strategy == "baseline":
        rows, cols = k, n  # conventional layout is not tile-padded
    else:
        rows = _tiles(k) * TILE_DIM
        cols = _tiles(n) * TILE_DIM
    elements = rows * cols
    n_groups = elements // group_size
    code_bytes_total = elements * bits // 8
    packed_bytes = code_bytes_total + n_groups * 2

    # DMA: packed weights + FP16 activations
    cost.dma_bytes += packed_bytes + m * k * 2

    if strategy == "baseline":
        per_group = 6 + (1 if qfloat else 0)  # ld, vand, vsub_b, conv(+qf), splat, mpy
        cost.hvx_packets += n_groups * per_group
        n_scatters = -(-elements // 64)
        cost.vscatter_instrs += int(round(n_scatters
                                          * scatter_conflict_factor(rows)))
    elif strategy == "hmx_layout":
        cost.hvx_packets += n_groups * 7  # ld, 2x merge, vlut16, splat, mpy, st
    elif strategy == "ours":
        n_super = n_groups // coalesce if n_groups % coalesce == 0 \
            else -(-n_groups // coalesce)
        elems_per_super = coalesce * group_size
        code_bytes = elems_per_super * bits // 8
        out_bytes = elems_per_super * 2
        per_super = _vectors(code_bytes + 2 * coalesce)       # loads
        if bits == 4:
            per_super += 2 * _vectors(code_bytes)             # nibble expand
            per_super += _vectors(elems_per_super)            # vlut16
        else:
            per_super += _vectors(elems_per_super)            # vconv
        per_super += coalesce // 4 if coalesce >= 4 else 1    # scale broadcast
        per_super += _vectors(out_bytes) // 2                 # paired multiply
        per_super += _vectors(out_bytes)                      # stores
        per_super += OURS_SUPER_GROUP_OVERHEAD_PACKETS        # loop control
        cost.hvx_packets += n_super * per_super
    elif strategy == "no_dequant":
        cost.hvx_packets += 2 * _vectors(packed_bytes)
    else:
        raise EngineError(f"unknown GEMM strategy {strategy!r}")

    cost.hmx_tile_macs += _tiles(m) * _tiles(k) * _tiles(n)
    return cost


def attention_phase_costs(n_q: int, n_kv: int, head_dim: int,
                          method: str = "lut", qfloat: bool = True,
                          block_kv: int = TILE_DIM) -> Dict[str, KernelCost]:
    """Per-phase costs of one attention head (mirrors FlashAttention).

    ``n_q`` query rows (padded to a 32-row tile) against ``n_kv`` cached
    keys/values processed in ``block_kv`` chunks, following Algorithm 1's
    phase structure.  Phases: ``qk_matmul``, ``softmax``, ``pv_matmul``,
    ``rescale``, ``kv_stream`` — Fig. 8 plots the first four.
    """
    if min(n_q, n_kv, head_dim) <= 0:
        raise EngineError(
            f"attention dims must be positive, got ({n_q}, {n_kv}, {head_dim})")
    q_rows = _tiles(n_q) * TILE_DIM
    d_tiles = _tiles(head_dim)
    n_blocks = -(-n_kv // block_kv)
    block_cols = block_kv

    s_elems = q_rows * block_cols
    s_bytes16 = s_elems * 2

    qk = KernelCost()
    qk.hmx_tile_macs += _tiles(q_rows) * d_tiles * _tiles(block_cols)

    pv = KernelCost()
    pv.hmx_tile_macs += _tiles(q_rows) * _tiles(block_cols) * d_tiles

    # the vector-side softmax skips padded query rows (the HMX matmul
    # cannot), so its work scales with the *true* query count — which is
    # exactly why Softmax overtakes matmul as the query length grows
    # (Fig. 8)
    v_elems = n_q * block_cols
    v_bytes16 = v_elems * 2

    softmax = KernelCost()
    # scale + rowmax + subtract over S
    softmax.hvx_packets += 3 * _vectors(v_bytes16)
    # exp over S (+ the small correction vector, negligible)
    if method == "poly32":
        softmax.hvx_packets += int(round(_vectors(v_elems * 4) * 10
                                         * CHAIN_STALL_PACKETS))
    elif method == "poly16":
        n_ops = 12 + (2 if qfloat else 0)
        softmax.hvx_packets += int(round(_vectors(v_bytes16) * n_ops
                                         * CHAIN_STALL_PACKETS))
    elif method == "lut":
        softmax.hvx_packets += 2 * _vectors(v_bytes16)
        softmax.vgather_instrs += -(-v_elems // 64)
        softmax.hvx_packets += n_q * LUT_ROW_EXPOSED_PACKETS // max(1, n_blocks)
    else:
        raise EngineError(f"unknown exp method {method!r}")
    # FP32 row sum upcast + per-row reduce bookkeeping
    softmax.hvx_packets += _vectors(v_elems * 4)
    softmax.hvx_packets += n_q * ROW_REDUCE_PACKETS // max(1, n_blocks)

    rescale = KernelCost()
    o_bytes = q_rows * head_dim * 2
    rescale.hvx_packets += 2 * _vectors(o_bytes)

    phases = {
        "qk_matmul": qk.scaled(n_blocks),
        "softmax": softmax.scaled(n_blocks),
        "pv_matmul": pv.scaled(n_blocks),
        "rescale": rescale.scaled(n_blocks),
        "kv_stream": KernelCost(dma_bytes=2 * n_kv * head_dim * 2),
    }
    # final normalization + fixed call overhead
    phases["rescale"].hvx_packets += _vectors(q_rows * head_dim * 2) \
        + CALL_FIXED_PACKETS
    return phases


def attention_cost(n_q: int, n_kv: int, head_dim: int, method: str = "lut",
                   qfloat: bool = True, block_kv: int = TILE_DIM) -> KernelCost:
    """Total cost of one attention head (sum of the phase costs)."""
    phases = attention_phase_costs(n_q, n_kv, head_dim, method=method,
                                   qfloat=qfloat, block_kv=block_kv)
    total = KernelCost()
    for cost in phases.values():
        total.merge(cost)
    return total


@dataclass
class StepLatency:
    """Latency decomposition of one decode or prefill step."""

    npu_seconds: float
    cpu_seconds: float
    gemm_seconds: float
    attention_seconds: float

    @property
    def total_seconds(self) -> float:
        # the lm_head consumes the final hidden states, so CPU time
        # serializes after the NPU portion
        return self.npu_seconds + self.cpu_seconds


class DecodePerformanceModel:
    """Per-step latency/throughput for a full-size model on a device."""

    def __init__(self, config: ModelConfig, device: Device,
                 attention_method: str = "lut", strategy: str = "ours",
                 lm_head_on_npu: bool = False) -> None:
        self.config = config
        self.device = device
        self.attention_method = attention_method
        self.strategy = strategy
        self.lm_head_on_npu = lm_head_on_npu
        self.timing = TimingModel(device.npu)
        self._qfloat = not device.npu.ieee_float

    # ------------------------------------------------------------------
    def _layer_gemm_cost(self, m: int) -> KernelCost:
        cfg = self.config
        cost = KernelCost()
        for name, (k, n) in cfg.projection_shapes().items():
            bits = 8 if name == "w_down" else 4
            cost.merge(gemm_cost(m, k, n, strategy=self.strategy, bits=bits,
                                 qfloat=self._qfloat))
        return cost

    def _layer_attention_cost(self, batch: int, n_q: int, kv_len: int) -> KernelCost:
        cfg = self.config
        one_head = attention_cost(n_q * cfg.gqa_group, kv_len, cfg.head_dim,
                                  method=self.attention_method,
                                  qfloat=self._qfloat)
        return one_head.scaled(batch * cfg.n_kv_heads)

    # ------------------------------------------------------------------
    def decode_step(self, batch: int, context: int) -> StepLatency:
        """One batched decode step at the given context length."""
        if batch <= 0 or context <= 0:
            raise EngineError(
                f"batch/context must be positive, got {batch}/{context}")
        cfg = self.config
        gemm = self._layer_gemm_cost(batch).scaled(cfg.n_layers)
        attn = self._layer_attention_cost(batch, 1, context).scaled(cfg.n_layers)
        npu = KernelCost().merge(gemm).merge(attn)
        if self.lm_head_on_npu:
            # the §7.2.2 hypothetical: with the 32-bit VA limit solved,
            # the vocabulary projection runs on the NPU like any other
            # projection and the CPU leaves the critical path
            npu.merge(gemm_cost(batch, cfg.hidden_dim, cfg.vocab_size,
                                strategy=self.strategy, bits=4,
                                qfloat=self._qfloat))
            cpu = 0.0
        else:
            cpu = self.device.cpu.gemm_seconds(
                batch, cfg.hidden_dim, cfg.vocab_size,
                weight_bytes=cfg.lm_head_bytes())
        return StepLatency(
            npu_seconds=self.timing.seconds(npu),
            cpu_seconds=cpu,
            gemm_seconds=self.timing.seconds(gemm),
            attention_seconds=self.timing.seconds(attn),
        )

    def decode_latency(self, batch: int, context: int) -> float:
        return self.decode_step(batch, context).total_seconds

    def decode_throughput(self, batch: int, context: int) -> float:
        """Aggregate tokens/second across the batch."""
        return batch / self.decode_latency(batch, context)

    # ------------------------------------------------------------------
    def prefill_latency(self, prompt_len: int, chunk: int = 128) -> float:
        """Prompt processing time, chunked causal prefill."""
        if prompt_len <= 0:
            raise EngineError(f"prompt length must be positive, got {prompt_len}")
        cfg = self.config
        total = 0.0
        done = 0
        while done < prompt_len:
            step = min(chunk, prompt_len - done)
            gemm = self._layer_gemm_cost(step).scaled(cfg.n_layers)
            attn = self._layer_attention_cost(1, step, done + step)
            attn = attn.scaled(cfg.n_layers)
            npu = KernelCost().merge(gemm).merge(attn)
            total += self.timing.seconds(npu) / PREFILL_EFFICIENCY
            done += step
        # single lm_head evaluation for the last position
        total += self.device.cpu.gemm_seconds(
            1, cfg.hidden_dim, cfg.vocab_size, weight_bytes=cfg.lm_head_bytes())
        return total

    def prefill_throughput(self, prompt_len: int) -> float:
        return prompt_len / self.prefill_latency(prompt_len)

    # ------------------------------------------------------------------
    def cpu_time_fraction(self, batch: int, context: int) -> float:
        """Fraction of step time spent in the CPU lm_head (Fig. 11/16)."""
        step = self.decode_step(batch, context)
        return step.cpu_seconds / step.total_seconds
