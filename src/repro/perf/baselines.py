"""Comparison-system models: llama.cpp OpenCL (Adreno GPU) and QNN FP16.

Fig. 13 compares the paper's NPU system against the llama.cpp OpenCL
backend (Q4_0 kernels tuned for Adreno) and QNN FP16 as a reference.
Neither system can be run here, so both are modelled analytically from
their published characteristics (substitution S4 in DESIGN.md):

* **GPU decode** is memory-bound at batch 1 (streaming the packed Q4
  weights at the GPU's effective DDR bandwidth — *faster* than our
  system's batch-1 decode, as the paper concedes) but compute-saturates
  quickly because the OpenCL Q4 kernels reach only a few hundred
  GFLOPS on batched GEMM, so throughput plateaus around batch 2-4 while
  the NPU keeps scaling — the crossover Fig. 13 shows;
* **GPU prefill** is compute-bound at the same effective GEMM rate;
* **QNN FP16** streams FP16 weights (2x-4x the traffic of Q4) through
  the HMX+DMA path with no HVX dequantization, so its decode is
  bandwidth-limited and its prefill is strong — comparable to ours on
  some workloads, per §7.2.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EngineError
from ..llm.config import ModelConfig
from ..npu.soc import Device

__all__ = ["AdrenoGPUModel", "CPUBaselineModel", "QNNReferenceModel"]


@dataclass(frozen=True)
class CPUBaselineModel:
    """llama.cpp CPU backend: Q4 GEMV on the big cores.

    The third corner of the Fig. 13 crossover: at batch 1 the CPU
    streams the same packed Q4 weights as the GPU but from its own
    DRAM controller, so small-batch decode is competitive; the
    per-core ALU rate saturates within a few batch lanes, so the curve
    falls behind both the GPU and the NPU as batch grows.  Modelled
    directly on :meth:`~repro.npu.soc.CPUModel.gemm_seconds` (max of
    flops time and weight streaming per projection), which keeps this
    model consistent with the CPU-resident lm_head charge the NPU
    system already pays.
    """

    config: ModelConfig
    device: Device

    def decode_latency(self, batch: int, context: int = 1024) -> float:
        """Per-step decode latency: per-projection GEMMs + attention."""
        if batch <= 0:
            raise EngineError(f"batch must be positive, got {batch}")
        cpu = self.device.cpu
        shapes = self.config.projection_shapes()
        layer = 0.0
        for name, (k, n) in shapes.items():
            bits = 8.5 if name == "w_down" else 4.5
            layer += cpu.gemm_seconds(batch, k, n,
                                      weight_bytes=int(k * n * bits / 8))
        total = self.config.n_layers * layer
        # attention: FLOPs at the CPU rate plus streaming the KV cache
        rate = cpu.gflops_per_core * cpu.max_cores * 1e9
        attn_flops = 2.0 * batch * context * self.config.q_dim * 2
        kv_bytes = batch * 2 * context * self.config.kv_dim * 2
        total += self.config.n_layers * max(
            attn_flops / rate, kv_bytes / (cpu.dram_read_gbps * 1e9))
        total += cpu.gemm_seconds(batch, self.config.hidden_dim,
                                  self.config.vocab_size,
                                  weight_bytes=self.config.lm_head_bytes())
        return total

    def decode_throughput(self, batch: int, context: int = 1024) -> float:
        return batch / self.decode_latency(batch, context)

    def prefill_latency(self, prompt_len: int) -> float:
        """Compute-bound Q4 prefill on all big cores."""
        if prompt_len <= 0:
            raise EngineError(
                f"prompt length must be positive, got {prompt_len}")
        cpu = self.device.cpu
        flops = 2.0 * prompt_len * (
            self.config.param_count()
            - self.config.vocab_size * self.config.hidden_dim)
        compute = flops / (cpu.gflops_per_core * cpu.max_cores * 1e9)
        stream = (self.config.npu_weight_bytes()
                  / (cpu.dram_read_gbps * 1e9))
        return max(compute, stream)

    def prefill_throughput(self, prompt_len: int) -> float:
        return prompt_len / self.prefill_latency(prompt_len)


@dataclass(frozen=True)
class AdrenoGPUModel:
    """llama.cpp OpenCL backend on the Snapdragon's Adreno GPU."""

    config: ModelConfig
    effective_bandwidth_gbps: float = 55.0
    batched_gemm_gflops: float = 250.0   # OpenCL Q4 kernels, decode batches
    prefill_gemm_gflops: float = 900.0   # large-M GEMM path

    def _weight_bytes(self) -> int:
        # the whole model lives on the GPU, lm_head included
        return self.config.npu_weight_bytes() + self.config.lm_head_bytes()

    def decode_latency(self, batch: int, context: int = 1024) -> float:
        """Per-step decode latency: max of weight streaming and ALU time."""
        if batch <= 0:
            raise EngineError(f"batch must be positive, got {batch}")
        stream = self._weight_bytes() / (self.effective_bandwidth_gbps * 1e9)
        # attention + projection FLOPs grow with batch; Q4 mixed GEMM ALU
        # throughput is the limiter once batch exceeds a few
        flops = 2.0 * batch * (self.config.param_count()
                               - self.config.vocab_size * self.config.hidden_dim)
        flops += 2.0 * batch * self.config.hidden_dim * self.config.vocab_size
        compute = flops / (self.batched_gemm_gflops * 1e9)
        attention = (2.0 * batch * context * self.config.q_dim * 2
                     / (self.batched_gemm_gflops * 1e9))
        return max(stream, compute + attention)

    def decode_throughput(self, batch: int, context: int = 1024) -> float:
        return batch / self.decode_latency(batch, context)

    def prefill_latency(self, prompt_len: int) -> float:
        if prompt_len <= 0:
            raise EngineError(f"prompt length must be positive, got {prompt_len}")
        flops = 2.0 * prompt_len * (self.config.param_count()
                                    - self.config.vocab_size * self.config.hidden_dim)
        return flops / (self.prefill_gemm_gflops * 1e9)

    def prefill_throughput(self, prompt_len: int) -> float:
        return prompt_len / self.prefill_latency(prompt_len)


@dataclass(frozen=True)
class QNNReferenceModel:
    """QNN FP16 static-graph inference (reference system of Fig. 13)."""

    config: ModelConfig
    device: Device
    graph_overhead: float = 1.08   # static-graph scheduling overhead

    def _fp16_weight_bytes(self) -> int:
        shapes = self.config.projection_shapes()
        per_block = sum(i * o for i, o in shapes.values()) * 2
        return self.config.n_layers * per_block

    def decode_latency(self, batch: int = 1, context: int = 1024) -> float:
        """FP16 weight streaming through DMA; no HVX dequantization."""
        if batch <= 0:
            raise EngineError(f"batch must be positive, got {batch}")
        stream = self._fp16_weight_bytes() / (self.device.npu.dma_read_gbps * 1e9)
        kv = (2 * batch * context * self.config.kv_dim * 2
              / (self.device.npu.dma_read_gbps * 1e9))
        cpu = self.device.cpu.gemm_seconds(
            batch, self.config.hidden_dim, self.config.vocab_size,
            weight_bytes=self.config.lm_head_bytes())
        return (stream + kv) * self.graph_overhead + cpu

    def decode_throughput(self, batch: int = 1, context: int = 1024) -> float:
        return batch / self.decode_latency(batch, context)

    def prefill_latency(self, prompt_len: int) -> float:
        """HMX-bound FP16 prefill with static-graph overhead."""
        if prompt_len <= 0:
            raise EngineError(f"prompt length must be positive, got {prompt_len}")
        flops = 2.0 * prompt_len * (self.config.param_count()
                                    - self.config.vocab_size * self.config.hidden_dim)
        hmx = flops / (self.device.npu.hmx_fp16_gflops * 1e9)
        stream = self._fp16_weight_bytes() / (self.device.npu.dma_read_gbps * 1e9)
        return max(hmx, stream) * self.graph_overhead / 0.38

    def prefill_throughput(self, prompt_len: int) -> float:
        return prompt_len / self.prefill_latency(prompt_len)
