"""CPU and memory footprint model (Fig. 16, §7.5).

Reproduces the resource accounting the paper reports on the OnePlus 12:

* **dmabuf (NPU) memory** — rpcmem-mapped weights, the KV cache for the
  full context budget, and the activation workspace.  Constant in batch
  (the KV budget is preallocated), ~1056 MiB for Qwen2.5-1.5B and
  ~2090 MiB for 3B at a 4096-token budget;
* **CPU resident memory** — embeddings + quantized lm_head, the logits
  buffer (batch x vocab, FP32), tokenizer/runtime overhead;
* **CPU utilization** — the lm_head time fraction times the 4 cores the
  runtime is limited to, growing with batch as in Fig. 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EngineError
from ..llm.config import ModelConfig
from ..npu.soc import Device
from .latency import DecodePerformanceModel

__all__ = ["ResourceUsage", "MemoryModel"]

_RUNTIME_OVERHEAD_BYTES = 160 * 2**20   # llama.cpp runtime, buffers, mmap metadata


@dataclass(frozen=True)
class ResourceUsage:
    """Resource snapshot of one decode configuration."""

    batch: int
    dmabuf_bytes: int
    cpu_rss_bytes: int
    cpu_utilization_pct: float  # 100% == one core

    @property
    def total_bytes(self) -> int:
        return self.dmabuf_bytes + self.cpu_rss_bytes


class MemoryModel:
    """Footprint and CPU-utilization accounting for one model+device."""

    def __init__(self, config: ModelConfig, device: Device,
                 context_budget: int = 4096) -> None:
        if context_budget <= 0:
            raise EngineError(f"context budget must be positive, got {context_budget}")
        self.config = config
        self.device = device
        self.context_budget = context_budget
        self._perf = DecodePerformanceModel(config, device)

    def dmabuf_bytes(self, batch: int = 1) -> int:
        """NPU-mapped memory; the KV budget is preallocated, so this is
        constant in batch for a fixed context budget (matching the
        constant pmap totals the paper reports)."""
        cfg = self.config
        return cfg.npu_session_bytes(self.context_budget)

    def cpu_rss_bytes(self, batch: int) -> int:
        if batch <= 0:
            raise EngineError(f"batch must be positive, got {batch}")
        cfg = self.config
        logits = batch * cfg.vocab_size * 4
        return cfg.cpu_weight_bytes() + logits + _RUNTIME_OVERHEAD_BYTES

    def cpu_utilization_pct(self, batch: int, context: int = 1024) -> float:
        """CPU busy percentage (100% per core, 4-core ceiling)."""
        fraction = self._perf.cpu_time_fraction(batch, context)
        return min(fraction * self.device.cpu.max_cores, self.device.cpu.max_cores) * 100.0

    def snapshot(self, batch: int, context: int = 1024) -> ResourceUsage:
        return ResourceUsage(
            batch=batch,
            dmabuf_bytes=self.dmabuf_bytes(batch),
            cpu_rss_bytes=self.cpu_rss_bytes(batch),
            cpu_utilization_pct=self.cpu_utilization_pct(batch, context),
        )
