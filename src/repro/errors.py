"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish simulator faults from ordinary Python errors.  The
hierarchy mirrors the major subsystems: NPU hardware model, quantization,
kernels, LLM engine and the test-time-scaling layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NPUError(ReproError):
    """Base class for errors raised by the NPU hardware model."""


class TCMAllocationError(NPUError):
    """Raised when a TCM allocation request cannot be satisfied."""


class TCMAccessError(NPUError):
    """Raised on out-of-bounds or misaligned TCM access."""


class AddressSpaceError(NPUError):
    """Raised when a mapping exceeds the NPU virtual address space.

    Models the 32-bit (and, on Snapdragon 8 Gen 2, effectively 2 GiB)
    virtual-address-space limitation discussed in Sections 7.2.1/7.2.2 of
    the paper.
    """


class RegisterError(NPUError):
    """Raised on invalid HVX register usage (bad index, wrong width)."""


class TileShapeError(NPUError):
    """Raised when a matrix does not decompose into whole HMX tiles."""


class DMAError(NPUError):
    """Raised on invalid DMA descriptor (bad shape, overlapping rows)."""


class QuantizationError(ReproError):
    """Base class for quantization subsystem errors."""


class GroupSizeError(QuantizationError):
    """Raised when a tensor cannot be split into whole quantization groups."""


class CodebookError(QuantizationError):
    """Raised for invalid 4-bit codebook definitions."""


class KernelError(ReproError):
    """Base class for kernel-level errors."""


class LUTError(KernelError):
    """Raised for invalid lookup-table construction or addressing."""


class ModelConfigError(ReproError):
    """Raised for invalid or unknown LLM model configurations."""


class EngineError(ReproError):
    """Raised by the inference engine (scheduling, KV-cache, placement)."""


class ScalingError(ReproError):
    """Raised by the test-time-scaling layer (bad budget, empty beams)."""


class HarnessError(ReproError):
    """Raised by the experiment harness (unknown experiment id, etc.)."""


class ObservabilityError(ReproError):
    """Raised by the tracing/metrics/export subsystem."""
