"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish simulator faults from ordinary Python errors.  The
hierarchy mirrors the major subsystems: NPU hardware model, quantization,
kernels, LLM engine and the test-time-scaling layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NPUError(ReproError):
    """Base class for errors raised by the NPU hardware model."""


class TCMAllocationError(NPUError):
    """Raised when a TCM allocation request cannot be satisfied."""


class TCMAccessError(NPUError):
    """Raised on out-of-bounds or misaligned TCM access."""


class AddressSpaceError(NPUError):
    """Raised when a mapping exceeds the NPU virtual address space.

    Models the 32-bit (and, on Snapdragon 8 Gen 2, effectively 2 GiB)
    virtual-address-space limitation discussed in Sections 7.2.1/7.2.2 of
    the paper.
    """


class RegisterError(NPUError):
    """Raised on invalid HVX register usage (bad index, wrong width)."""


class TileShapeError(NPUError):
    """Raised when a matrix does not decompose into whole HMX tiles."""


class DMAError(NPUError):
    """Raised on invalid DMA descriptor (bad shape, overlapping rows)."""


class QuantizationError(ReproError):
    """Base class for quantization subsystem errors."""


class GroupSizeError(QuantizationError):
    """Raised when a tensor cannot be split into whole quantization groups."""


class CodebookError(QuantizationError):
    """Raised for invalid 4-bit codebook definitions."""


class KernelError(ReproError):
    """Base class for kernel-level errors."""


class LUTError(KernelError):
    """Raised for invalid lookup-table construction or addressing."""


class ModelConfigError(ReproError):
    """Raised for invalid or unknown LLM model configurations."""


class EngineError(ReproError):
    """Raised by the inference engine (scheduling, KV-cache, placement)."""


class KVPoolExhausted(EngineError):
    """Raised when the paged KV block pool cannot satisfy an allocation.

    Real exhaustion happens when the rpcmem budget backing the pool is
    undersized for the live batch (the Section 7.2.1 VA-space wall seen
    from the KV cache's side); the fault injector raises it to model
    transient memory pressure.  The continuous-batching scheduler
    recovers by evicting the lowest-value candidate and retrying.
    """


class FaultError(ReproError):
    """Base class for injected faults and resilience-layer failures.

    The :mod:`repro.resilience` fault injector models the deployment
    hazards of Section 7.2 — FastRPC session plumbing, rpcmem/TCM
    memory pressure, DVFS/thermal behaviour — as deterministic,
    seed-scheduled events so recovery paths can be tested exactly.
    """


class TransientFaultError(FaultError):
    """A fault expected to clear on retry (backoff, no state rebuild)."""


class DMATimeoutError(TransientFaultError, DMAError):
    """An injected DMA descriptor timeout.

    Models a stalled DDR<->TCM transfer under memory-subsystem
    contention (the DMA engine of Section 3.3); transient — the
    retry policy re-submits the step after capped backoff.
    """


class SessionAbortError(FaultError):
    """The FastRPC session to the NPU died mid-operation.

    Models the Section 6 failure mode where the remote Hexagon session
    is torn down (driver restart, SSR, process kill): all NPU-side
    mappings and state are lost.  Recovery requires
    :meth:`~repro.npu.soc.FastRPCSession.reopen` and a rebuild of
    NPU-resident state from host-side snapshots.
    """


class RetryExhaustedError(FaultError):
    """A retried operation kept faulting past the policy's retry cap."""


class DeadlineExceeded(ReproError):
    """A per-query wall-clock deadline elapsed on the simulated clock.

    Test-time scaling trades latency for accuracy (§2, §7.1); a serving
    deployment bounds that trade with a deadline.  The scheduler and
    the TTS layer degrade to best-answer-so-far rather than raising
    this out of a query; it escapes only when a single step cannot fit
    the budget at all.
    """


class FleetError(ReproError):
    """Raised by the discrete-event fleet layer (:mod:`repro.fleet`).

    Covers malformed traces and populations, scheduling an event in the
    simulated past, and capacity planning that cannot meet its latency
    target within the device cap.
    """


class ScalingError(ReproError):
    """Raised by the test-time-scaling layer (bad budget, empty beams)."""


class HarnessError(ReproError):
    """Raised by the experiment harness (unknown experiment id, etc.)."""


class ObservabilityError(ReproError):
    """Raised by the tracing/metrics/export subsystem."""


class TestingError(ReproError):
    """Raised by the conformance subsystem (:mod:`repro.testing`).

    (``__test__ = False`` keeps pytest from trying to collect the
    class because of the ``Test`` name prefix.)

    Covers unknown oracle names, malformed repro strings, invalid
    fuzz configurations and golden-fixture bookkeeping errors — the
    mismatches the oracles *detect* are reported as structured
    records, not exceptions.
    """

    __test__ = False
