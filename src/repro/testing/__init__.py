"""Correctness tooling: differential oracles, fuzzing, golden fixtures.

* :mod:`repro.testing.oracles` — paired-execution harness (HMX-sim vs
  float64 reference, paged vs contiguous KV, empty fault plan vs none,
  speculative vs plain decode, checkpoint round-trips) with structured
  bitwise/ULP mismatch records;
* :mod:`repro.testing.fuzz` — seeded random-config fuzzing over the
  oracle registry, a greedy shrinker, and canonical
  ``oracle::k=v,...`` repro strings that replay any trial exactly;
* :mod:`repro.testing.goldens` — committed ``.npz``/JSON fixtures for
  kernel outputs, decode traces and on-disk formats, behind the
  ``repro goldens --check/--update`` CLI.

This layer is what every perf PR is validated against: optimize a
kernel, then show ``repro fuzz`` and ``repro goldens --check`` still
pass (or an explicit ``--update`` diff in review when the change is an
intentional numerical break).
"""

from .oracles import (
    ORACLES,
    ArrayDiff,
    MismatchRecord,
    Oracle,
    OracleResult,
    diff_arrays,
    get_oracle,
    register_oracle,
    ulp_distance_fp16,
)
from .fuzz import (
    FuzzReport,
    TrialOutcome,
    format_repro,
    fuzz,
    parse_repro,
    run_repro,
    shrink_failure,
)
from .goldens import (
    GOLDEN_CASES,
    GOLDEN_DIR,
    GoldenCase,
    GoldenMismatch,
    check_goldens,
    update_goldens,
)

__all__ = [
    "ORACLES",
    "ArrayDiff",
    "MismatchRecord",
    "Oracle",
    "OracleResult",
    "diff_arrays",
    "get_oracle",
    "register_oracle",
    "ulp_distance_fp16",
    "FuzzReport",
    "TrialOutcome",
    "format_repro",
    "fuzz",
    "parse_repro",
    "run_repro",
    "shrink_failure",
    "GOLDEN_CASES",
    "GOLDEN_DIR",
    "GoldenCase",
    "GoldenMismatch",
    "check_goldens",
    "update_goldens",
]
