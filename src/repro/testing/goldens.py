"""Committed golden fixtures: kernel outputs, decode traces, formats.

The differential oracles compare two *live* executions; goldens pin the
stack against its own past.  Each :class:`GoldenCase` regenerates one
deterministic artifact — a kernel output tensor (``.npz``), a decode
trace (``.json``), or an on-disk format digest — and
:func:`check_goldens` compares the regeneration against the committed
fixture bitwise.  Any intentional numerical change (a kernel rewrite, a
quantization tweak) must therefore show up as an explicit
``repro goldens --update`` diff in review, never as a silent drift.

CLI::

    repro goldens --check            # exit 1 on any mismatch
    repro goldens --update           # rewrite fixtures in place
    repro goldens --check --only decode_tiny

Fixtures live in ``src/repro/testing/_goldens/`` so the CLI finds them
from any working directory.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import TestingError
from .oracles import _tiny_model, _tiny_weights

__all__ = [
    "GOLDEN_DIR",
    "GoldenCase",
    "GoldenMismatch",
    "GOLDEN_CASES",
    "check_goldens",
    "update_goldens",
]

GOLDEN_DIR = Path(__file__).resolve().parent / "_goldens"

_PROMPT = [3, 1, 4, 1, 5, 9, 2, 6]


@dataclass(frozen=True)
class GoldenCase:
    """One regenerable artifact with a committed reference fixture."""

    name: str
    kind: str          # "npz" | "json"
    description: str
    build: Callable[[], Dict]

    @property
    def filename(self) -> str:
        return f"{self.name}.{self.kind}"


@dataclass(frozen=True)
class GoldenMismatch:
    """One divergence between a fixture and its regeneration."""

    case: str
    path: str
    message: str


GOLDEN_CASES: Dict[str, GoldenCase] = {}


def _register(name: str, kind: str, description: str):
    if kind not in ("npz", "json"):
        raise TestingError(f"unknown golden kind {kind!r}")

    def wrap(fn: Callable[[], Dict]) -> Callable[[], Dict]:
        if name in GOLDEN_CASES:
            raise TestingError(f"duplicate golden case {name!r}")
        GOLDEN_CASES[name] = GoldenCase(name=name, kind=kind,
                                        description=description, build=fn)
        return fn
    return wrap


# ----------------------------------------------------------------------
# cases: kernels
# ----------------------------------------------------------------------
@_register("gemm_q4", "npz",
           "W4A16 GEMM output, 'ours' strategy, 24x64 @ 64x40")
def _gemm_q4() -> Dict:
    from ..kernels.gemm import MixedPrecisionGemm

    rng = np.random.default_rng(2024)
    activations = rng.normal(0.0, 1.0, (24, 64)).astype(np.float16)
    weight = rng.normal(0.0, 0.125, (64, 40))
    gemm = MixedPrecisionGemm(strategy="ours", bits=4)
    prepared = gemm.prepare_weight(weight)
    output, _ = gemm(activations, prepared)
    return {"output": output,
            "dequantized_weight": prepared.dequantized_matrix}


@_register("gemm_q8", "npz",
           "W8A16 GEMM output (the FFN down-projection path), 16x64 @ 64x32")
def _gemm_q8() -> Dict:
    from ..kernels.gemm import MixedPrecisionGemm

    rng = np.random.default_rng(2025)
    activations = rng.normal(0.0, 1.0, (16, 64)).astype(np.float16)
    weight = rng.normal(0.0, 0.125, (64, 32))
    gemm = MixedPrecisionGemm(strategy="ours", bits=8)
    prepared = gemm.prepare_weight(weight)
    output, _ = gemm(activations, prepared)
    return {"output": output,
            "dequantized_weight": prepared.dequantized_matrix}


@_register("attention_lut", "npz",
           "causal FlashAttention output, LUT exponent, 24 queries/40 keys")
def _attention_lut() -> Dict:
    return _attention_case("lut", seed=2026)


@_register("attention_poly32", "npz",
           "causal FlashAttention output, poly32 exponent, 24 queries/40 keys")
def _attention_poly32() -> Dict:
    return _attention_case("poly32", seed=2027)


def _attention_case(method: str, seed: int) -> Dict:
    from ..kernels.flash_attention import FlashAttention
    from ..npu.memory import TCM

    rng = np.random.default_rng(seed)
    q = rng.normal(0.0, 1.0, (24, 32)).astype(np.float16)
    k = rng.normal(0.0, 1.0, (40, 32)).astype(np.float16)
    v = rng.normal(0.0, 1.0, (40, 32)).astype(np.float16)
    attention = FlashAttention(method=method, tcm=TCM())
    out, _ = attention(q, k, v, q_positions=np.arange(16, 40),
                       k_positions=np.arange(40))
    return {"output": out}


# ----------------------------------------------------------------------
# cases: decode traces
# ----------------------------------------------------------------------
@_register("decode_tiny", "json",
           "lock-step batched decode trace on the tiny model")
def _decode_tiny() -> Dict:
    from ..llm import InferenceEngine, Sampler

    engine = InferenceEngine(_tiny_model(0), batch=4, max_context=32)
    result = engine.generate(_PROMPT, max_new_tokens=10,
                             sampler=Sampler(temperature=0.8, seed=7))
    return {"prompt": _PROMPT,
            "sequences": result.sequences,
            "n_generated_tokens": result.n_generated_tokens}


@_register("scheduler_chaos", "json",
           "continuous-batching decode under a fixed fault plan")
def _scheduler_chaos() -> Dict:
    from ..llm import ContinuousBatchingScheduler, InferenceEngine, Sampler
    from ..resilience import FaultPlan

    engine = InferenceEngine(_tiny_model(0), batch=4, max_context=32,
                             kv_backend="paged")
    scheduler = ContinuousBatchingScheduler(engine)
    plan = FaultPlan.parse("abort@2,alloc@4,throttle@1:efficiency:3")
    result = scheduler.generate(_PROMPT, n_candidates=6, max_new_tokens=10,
                                sampler=Sampler(temperature=0.8, seed=11),
                                fault_plan=plan)
    fault_kinds: Dict[str, int] = {}
    for record in result.faults:
        fault_kinds[record.kind] = fault_kinds.get(record.kind, 0) + 1
    return {"prompt": _PROMPT,
            "fault_plan": plan.spec(),
            "sequences": result.sequences,
            "n_steps": result.n_steps,
            "n_retries": result.n_retries,
            "n_evictions": result.n_evictions,
            "n_rebuilds": result.n_rebuilds,
            "fault_kinds": fault_kinds}


@_register("prefill_chunked", "json",
           "chunked prefill + mid-run prompt admission scheduler trace")
def _prefill_chunked() -> Dict:
    from ..llm import (ContinuousBatchingScheduler, InferenceEngine,
                       PromptAdmission, Sampler)

    engine = InferenceEngine(_tiny_model(0), batch=4, max_context=48,
                             kv_backend="paged")
    scheduler = ContinuousBatchingScheduler(engine)
    admission = PromptAdmission(prompt=[7, 7, 7, 2, 5, 1, 8, 8, 4, 3],
                                n_candidates=3, max_new_tokens=6, at_step=2)
    result = scheduler.generate(_PROMPT, n_candidates=6, max_new_tokens=10,
                                sampler=Sampler(temperature=0.8, seed=11),
                                prefill_chunk=3, admissions=[admission])
    return {"prompt": _PROMPT,
            "admitted_prompt": list(admission.prompt),
            "sequences": result.sequences,
            "n_steps": result.n_steps,
            "n_prefill_chunks": result.n_prefill_chunks,
            "n_prompt_admissions": result.n_prompt_admissions,
            "candidate_request_ids": [c.request_id
                                      for c in result.candidates],
            "finish_reasons": [c.finish_reason for c in result.candidates]}


@_register("speculative_greedy", "json",
           "greedy speculative decode trace (independent draft model)")
def _speculative_greedy() -> Dict:
    from ..llm import SpeculativeDecoder

    decoder = SpeculativeDecoder(_tiny_model(0), _tiny_model(1), draft_len=4)
    result = decoder.generate(_PROMPT, 12, temperature=0.0, seed=0)
    return {"prompt": _PROMPT,
            "tokens": result.tokens,
            "accepted_drafts": result.accepted_drafts,
            "proposed_drafts": result.proposed_drafts,
            "target_forward_passes": result.target_forward_passes}


# ----------------------------------------------------------------------
# cases: fleet serving
# ----------------------------------------------------------------------
@_register("fleet.capacity", "json",
           "100-device diurnal serving window with the capacity plan")
def _fleet_capacity() -> Dict:
    from ..fleet import run_fleet

    report = run_fleet(100, 10.0, horizon_seconds=30.0, seed=2026,
                       pattern="diurnal")
    return report.to_json()


@_register("fleet.chaos", "json",
           "8-device saturated window under a fixed fault schedule "
           "with failover and hedging")
def _fleet_chaos() -> Dict:
    from ..fleet import run_fleet

    report = run_fleet(
        8, 10.0, horizon_seconds=20.0, seed=2026,
        with_capacity_plan=False, hedge=True,
        fault_spec="dev#0:crash@3:6,dev#1:straggle@2:3:10,"
                   "dev#2:drop@5,dev#3:battery@8,dev#4:crash@12")
    return report.to_json()


@_register("fleet.explain", "json",
           "small chaos fleet with the critical-path blame ledger "
           "(repro.explain/v1 section embedded in the fleet report)")
def _fleet_explain() -> Dict:
    from ..fleet import run_fleet

    report = run_fleet(
        6, 8.0, horizon_seconds=10.0, seed=2026,
        with_capacity_plan=False, hedge=True,
        fault_spec="dev#0:crash@2:4,dev#1:straggle@1:2:8,dev#2:drop@3",
        explain=True)
    return report.to_json()


# ----------------------------------------------------------------------
# cases: on-disk format conformance
# ----------------------------------------------------------------------
@_register("checkpoint_q4_format", "json",
           "byte-level digest of the q4 checkpoint container format")
def _checkpoint_q4_format() -> Dict:
    from ..llm.checkpoint import save_checkpoint

    with tempfile.TemporaryDirectory(prefix="repro-golden-") as tmp:
        path = Path(tmp) / "tiny.ckpt"
        n_bytes = save_checkpoint(path, _tiny_weights(0), codec="q4")
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
    return {"codec": "q4", "bytes": n_bytes, "sha256": digest}


# ----------------------------------------------------------------------
# check / update
# ----------------------------------------------------------------------
def _select(only) -> List[GoldenCase]:
    if only is None:
        return [GOLDEN_CASES[name] for name in sorted(GOLDEN_CASES)]
    names = [only] if isinstance(only, str) else list(only)
    unknown = [name for name in names if name not in GOLDEN_CASES]
    if unknown:
        raise TestingError(
            f"unknown golden case(s) {unknown}; known: {sorted(GOLDEN_CASES)}")
    return [GOLDEN_CASES[name] for name in sorted(set(names))]


def _json_bytes(payload: Dict) -> bytes:
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode()


def _compare_npz(case: GoldenCase, path: Path, built: Dict
                 ) -> Optional[str]:
    with np.load(path) as archive:
        committed = {name: archive[name] for name in archive.files}
    if sorted(committed) != sorted(built):
        return (f"array set differs: committed {sorted(committed)}, "
                f"regenerated {sorted(built)}")
    for name in sorted(built):
        a, b = np.asarray(built[name]), committed[name]
        if a.dtype != b.dtype or a.shape != b.shape:
            return (f"array {name!r}: dtype/shape changed "
                    f"({b.dtype}{b.shape} -> {a.dtype}{a.shape})")
        if a.tobytes() != b.tobytes():
            mismatch = (a != b) | (np.isnan(a.astype(np.float64))
                                   != np.isnan(b.astype(np.float64)))
            return (f"array {name!r}: {int(mismatch.sum())} of {a.size} "
                    "elements differ bitwise")
    return None


def check_goldens(directory: Optional[Path] = None,
                  only: Optional[Sequence[str]] = None) -> List[GoldenMismatch]:
    """Regenerate every case and diff it against the committed fixture."""
    directory = Path(directory) if directory is not None else GOLDEN_DIR
    mismatches: List[GoldenMismatch] = []
    for case in _select(only):
        path = directory / case.filename
        if not path.exists():
            mismatches.append(GoldenMismatch(
                case=case.name, path=str(path),
                message="fixture missing (run 'repro goldens --update')"))
            continue
        built = case.build()
        if case.kind == "npz":
            message = _compare_npz(case, path, built)
        else:
            committed = json.loads(path.read_text())
            message = None if committed == json.loads(_json_bytes(built)) \
                else "JSON payload differs from the committed fixture"
        if message is not None:
            mismatches.append(GoldenMismatch(case=case.name, path=str(path),
                                             message=message))
    return mismatches


def update_goldens(directory: Optional[Path] = None,
                   only: Optional[Sequence[str]] = None) -> List[str]:
    """Rewrite fixtures from the current implementation; returns paths."""
    directory = Path(directory) if directory is not None else GOLDEN_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for case in _select(only):
        path = directory / case.filename
        built = case.build()
        if case.kind == "npz":
            with open(path, "wb") as handle:
                np.savez(handle, **built)
        else:
            path.write_bytes(_json_bytes(built))
        written.append(str(path))
    return written
