"""Seeded configuration fuzzing with canonical repro strings.

The oracles of :mod:`repro.testing.oracles` check one configuration at
a time; this module drives them across the configuration space where
bit-discipline bugs actually hide — odd shapes, non-dividing block
sizes, every dtype/strategy/backend pairing — under a single master
seed.

Determinism contract:

* trial ``i`` of ``fuzz(trials, seed)`` draws from
  ``np.random.default_rng([seed, i])`` and nothing else, so any trial
  can be regenerated without replaying the trials before it;
* an oracle run is a pure function of its config dict, so the
  canonical **repro string** ``oracle::k=v,k=v,...`` emitted for every
  trial replays the exact run — same configuration, same diff;
* failing configurations are *shrunk*: a greedy pass over the oracle's
  simplification moves keeps the failure alive while shrinking sizes
  and resetting categoricals, and the minimized repro string is
  reported alongside the original.

``repro fuzz --trials N --seed S`` is the CLI face of this module;
``repro fuzz --replay 'paged_kv::batch=4,...'`` replays one string.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TestingError
from .oracles import Config, ORACLES, Oracle, OracleResult, get_oracle

__all__ = [
    "format_repro",
    "parse_repro",
    "run_repro",
    "shrink_failure",
    "fuzz",
    "TrialOutcome",
    "FuzzReport",
]

_SEPARATOR = "::"


# ----------------------------------------------------------------------
# canonical repro strings
# ----------------------------------------------------------------------
def format_repro(oracle: str, config: Config) -> str:
    """Render ``oracle::k=v,...`` with sorted keys (canonical form)."""
    for key, value in config.items():
        if not isinstance(value, (int, str)) or isinstance(value, bool):
            raise TestingError(
                f"config value {key}={value!r} is not int or str; repro "
                "strings only carry flat scalar configs")
        if isinstance(value, str) and ("," in value or "=" in value):
            raise TestingError(
                f"config value {key}={value!r} contains a reserved "
                "character (',' or '=')")
    body = ",".join(f"{k}={config[k]}" for k in sorted(config))
    return f"{oracle}{_SEPARATOR}{body}"


def parse_repro(repro: str) -> Tuple[str, Config]:
    """Parse a repro string back into ``(oracle_name, config)``."""
    if _SEPARATOR not in repro:
        raise TestingError(
            f"malformed repro string {repro!r}; expected "
            f"'oracle{_SEPARATOR}key=value,...'")
    name, body = repro.split(_SEPARATOR, 1)
    name = name.strip()
    if name not in ORACLES:
        raise TestingError(
            f"unknown oracle {name!r} in repro string; "
            f"registered: {sorted(ORACLES)}")
    config: Config = {}
    for token in body.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise TestingError(
                f"malformed repro token {token!r} in {repro!r}")
        key, value = token.split("=", 1)
        try:
            config[key] = int(value)
        except ValueError:
            config[key] = value
    return name, config


def run_repro(repro: str) -> OracleResult:
    """Replay one repro string deterministically."""
    name, config = parse_repro(repro)
    return get_oracle(name).run(config)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink_failure(oracle: Oracle, config: Config,
                   budget: int = 64) -> Tuple[Config, OracleResult]:
    """Greedily minimize a failing config, re-running at most ``budget``
    times.

    Accepts the first simplification move that still fails and
    restarts from it; stops at a fixpoint (no move fails) or when the
    run budget is exhausted.  Returns the minimized config and its
    failing result.
    """
    result = oracle.run(config)
    if result.ok:
        raise TestingError(
            f"shrink_failure called on a passing config: "
            f"{format_repro(oracle.name, config)}")
    current = dict(config)
    runs = 0
    improved = True
    while improved and runs < budget:
        improved = False
        for candidate in oracle.shrink_steps(current):
            runs += 1
            candidate_result = oracle.run(candidate)
            if not candidate_result.ok:
                current, result = dict(candidate), candidate_result
                improved = True
                break
            if runs >= budget:
                break
    return current, result


# ----------------------------------------------------------------------
# the fuzz loop
# ----------------------------------------------------------------------
@dataclass
class TrialOutcome:
    """One fuzz trial: which oracle ran what, and how it went."""

    index: int
    oracle: str
    repro: str
    ok: bool
    result: OracleResult
    shrunk_repro: Optional[str] = None
    shrunk_result: Optional[OracleResult] = None


@dataclass
class FuzzReport:
    """Aggregate outcome of one ``fuzz`` sweep."""

    seed: int
    trials: List[TrialOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def failures(self) -> List[TrialOutcome]:
        return [t for t in self.trials if not t.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def per_oracle_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for trial in self.trials:
            counts[trial.oracle] = counts.get(trial.oracle, 0) + 1
        return counts

    def render(self) -> str:
        lines = [f"fuzz: {self.n_trials} trials, seed {self.seed}, "
                 f"{len(self.failures)} failure(s), "
                 f"{self.elapsed_seconds:.1f}s"]
        for name, count in sorted(self.per_oracle_counts().items()):
            failed = sum(1 for t in self.trials
                         if t.oracle == name and not t.ok)
            lines.append(f"  {name:<12s} {count:4d} trials"
                         + (f"  ({failed} FAILED)" if failed else ""))
        for trial in self.failures:
            mismatch = trial.result.mismatch
            lines.append(f"FAIL [{trial.index}] {trial.repro}")
            if mismatch is not None:
                lines.append(f"  {mismatch.kind}: {mismatch.message}")
            if trial.shrunk_repro is not None \
                    and trial.shrunk_repro != trial.repro:
                lines.append(f"  shrunk: {trial.shrunk_repro}")
                if trial.shrunk_result is not None \
                        and trial.shrunk_result.mismatch is not None:
                    lines.append(
                        "  shrunk "
                        f"{trial.shrunk_result.mismatch.kind}: "
                        f"{trial.shrunk_result.mismatch.message}")
        return "\n".join(lines)


def fuzz(trials: int, seed: int = 0,
         oracles: Optional[Sequence[str]] = None,
         shrink: bool = True, shrink_budget: int = 64,
         progress=None) -> FuzzReport:
    """Run ``trials`` random oracle configurations under one seed.

    ``oracles`` restricts the sweep to a subset of registered oracle
    names (default: all, cycled deterministically so every oracle gets
    coverage regardless of trial count).  Failing trials are shrunk
    unless ``shrink=False``.  ``progress`` is an optional callable
    receiving each :class:`TrialOutcome` as it completes.
    """
    if trials <= 0:
        raise TestingError(f"trials must be positive, got {trials}")
    names = sorted(ORACLES) if oracles is None else list(oracles)
    for name in names:
        get_oracle(name)  # validate early
    if not names:
        raise TestingError("no oracles selected")

    report = FuzzReport(seed=seed)
    start = time.perf_counter()
    for index in range(trials):
        rng = np.random.default_rng([seed, index])
        # round-robin guarantees coverage; the per-trial RNG still
        # randomizes everything inside the config
        oracle = get_oracle(names[index % len(names)])
        config = oracle.sample_config(rng)
        result = oracle.run(config)
        outcome = TrialOutcome(index=index, oracle=oracle.name,
                               repro=format_repro(oracle.name, config),
                               ok=result.ok, result=result)
        if not result.ok and shrink:
            shrunk_config, shrunk_result = shrink_failure(
                oracle, config, budget=shrink_budget)
            outcome.shrunk_repro = format_repro(oracle.name, shrunk_config)
            outcome.shrunk_result = shrunk_result
        report.trials.append(outcome)
        if progress is not None:
            progress(outcome)
    report.elapsed_seconds = time.perf_counter() - start
    return report
