"""Differential oracles: paired execution with structured mismatch reports.

Every accuracy claim in the reproduction reduces to the same shape of
argument: *run the same workload under two configurations and show the
outputs agree* — HMX-simulated kernels against a float64 numpy
reference, paged KV decode against contiguous decode, a chaos run with
an empty fault plan against no resilience layer at all, speculative
decode against plain greedy decode.  Before this module each of those
pairings was a hand-written test; this module turns the pattern into
infrastructure.

An :class:`Oracle` packages one pairing: it knows how to *sample* a
random configuration from a seeded RNG, how to *run* the pair for a
concrete configuration, and how to *shrink* a failing configuration
toward a minimal reproduction.  Running returns an
:class:`OracleResult` whose :class:`MismatchRecord` carries enough
structure (bitwise/ULP array diffs, token divergence position, cost
deltas) to debug the failure from the record alone.

Configurations are flat ``{str: int | str}`` dicts so they round-trip
losslessly through the canonical repro strings of
:mod:`repro.testing.fuzz` — a run is a pure function of its config, so
replaying a repro string reproduces the exact trial.

Tolerance discipline (calibrated against the seed implementation):

* ``gemm`` — the HMX pipeline (FP16 operands, FP32 tile accumulation,
  FP16 store) lands within 1 ULP of the float64 reference rounded to
  FP16; the oracle allows 2.
* ``attention`` — the pluggable exponent (``lut``/``poly16``/``poly32``)
  is an approximation, so the oracle checks a 0.01 absolute ceiling
  (~5x the worst calibrated error of 0.002) rather than ULPs.
* everything else is **bitwise**: identical tokens, identical
  :class:`~repro.llm.model.StepCost` records.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import ReproError, TestingError

__all__ = [
    "ArrayDiff",
    "MismatchRecord",
    "OracleResult",
    "Oracle",
    "ORACLES",
    "register_oracle",
    "get_oracle",
    "diff_arrays",
    "ulp_distance_fp16",
]

ConfigValue = Union[int, str]
Config = Dict[str, ConfigValue]

GEMM_ULP_TOLERANCE = 2
ATTENTION_ABS_TOLERANCE = 0.01


# ----------------------------------------------------------------------
# structured diffs
# ----------------------------------------------------------------------
def ulp_distance_fp16(actual: np.ndarray, expected: np.ndarray) -> np.ndarray:
    """Elementwise ULP distance between two arrays, compared as FP16.

    FP16 bit patterns map monotonically onto integers (sign-magnitude
    folded into two's complement), so the ULP distance is the absolute
    difference of the mapped integers — 0 means bitwise equal.
    """
    def ordered(x: np.ndarray) -> np.ndarray:
        bits = np.asarray(x, dtype=np.float16).view(np.int16).astype(np.int64)
        return np.where(bits < 0, -(bits & 0x7FFF), bits)

    return np.abs(ordered(actual) - ordered(expected))


@dataclass(frozen=True)
class ArrayDiff:
    """Summary of where and by how much two arrays disagree."""

    shape: Tuple[int, ...]
    n_diff: int
    max_abs: float
    max_ulp: int
    first_index: Optional[Tuple[int, ...]] = None

    @property
    def bitwise_equal(self) -> bool:
        return self.n_diff == 0

    def to_json(self) -> Dict:
        return {"shape": list(self.shape), "n_diff": self.n_diff,
                "max_abs": self.max_abs, "max_ulp": self.max_ulp,
                "first_index": list(self.first_index)
                if self.first_index is not None else None}


def diff_arrays(actual: np.ndarray, expected: np.ndarray) -> ArrayDiff:
    """Structured comparison of two numeric arrays of the same shape."""
    a = np.asarray(actual)
    e = np.asarray(expected)
    if a.shape != e.shape:
        raise TestingError(
            f"cannot diff arrays of shapes {a.shape} and {e.shape}")
    mismatch = a.astype(np.float64) != e.astype(np.float64)
    n_diff = int(mismatch.sum())
    if n_diff == 0:
        return ArrayDiff(shape=a.shape, n_diff=0, max_abs=0.0, max_ulp=0)
    abs_diff = np.abs(a.astype(np.float64) - e.astype(np.float64))
    first = tuple(int(i) for i in np.argwhere(mismatch)[0])
    max_ulp = int(ulp_distance_fp16(a, e).max()) \
        if a.dtype == np.float16 or e.dtype == np.float16 else 0
    return ArrayDiff(shape=a.shape, n_diff=n_diff,
                     max_abs=float(abs_diff.max()), max_ulp=max_ulp,
                     first_index=first)


@dataclass(frozen=True)
class MismatchRecord:
    """One oracle failure, structured enough to debug from the record.

    ``kind`` names what diverged: ``"ulp"``/``"abs"`` for numeric
    kernel comparisons, ``"tokens"`` for sampled-token divergence,
    ``"cost"`` for :class:`StepCost` records, ``"state"`` for
    checkpoint/weight round-trip state.
    """

    oracle: str
    kind: str
    message: str
    config: Config = field(default_factory=dict)
    diff: Optional[ArrayDiff] = None

    def to_json(self) -> Dict:
        return {"oracle": self.oracle, "kind": self.kind,
                "message": self.message, "config": dict(self.config),
                "diff": self.diff.to_json() if self.diff else None}


@dataclass
class OracleResult:
    """Outcome of one paired execution."""

    oracle: str
    config: Config
    ok: bool
    mismatch: Optional[MismatchRecord] = None
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def repro(self) -> str:
        from .fuzz import format_repro
        return format_repro(self.oracle, self.config)


# ----------------------------------------------------------------------
# oracle base + registry
# ----------------------------------------------------------------------
class Oracle:
    """One paired-execution check over a seeded configuration space.

    Subclasses set :attr:`name`, the integer ranges
    (:attr:`SHRINK_MINS`) and categorical canonical values
    (:attr:`SHRINK_RESETS`) used by the generic shrinker, and implement
    :meth:`sample_config` and :meth:`run`.  ``run`` must be a pure
    function of the config dict — all randomness derives from seeds
    stored *in* the config, never from ambient state.
    """

    name: str = ""
    description: str = ""
    #: integer config keys the shrinker may reduce, with their minima
    SHRINK_MINS: Dict[str, int] = {}
    #: categorical config keys with the value the shrinker resets toward
    SHRINK_RESETS: Dict[str, ConfigValue] = {}

    def sample_config(self, rng: np.random.Generator) -> Config:
        raise NotImplementedError

    def run(self, config: Config) -> OracleResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def normalize(self, config: Config) -> Config:
        """Repair cross-key constraints after a shrink move (identity
        by default)."""
        return config

    def shrink_steps(self, config: Config) -> Iterator[Config]:
        """Candidate simplifications of ``config``, most aggressive first.

        Categorical resets come before integer reductions so a failure
        that survives on the canonical variant is reported there; each
        integer key tries its minimum, the halfway point, then a
        decrement.
        """
        seen = set()

        def propose(cand: Config) -> Iterator[Config]:
            cand = self.normalize(dict(cand))
            key = tuple(sorted(cand.items()))
            if cand != config and key not in seen:
                seen.add(key)
                yield cand

        for name, canonical in self.SHRINK_RESETS.items():
            if config.get(name) != canonical:
                yield from propose({**config, name: canonical})
        for name, lo in self.SHRINK_MINS.items():
            value = int(config.get(name, lo))
            if value <= lo:
                continue
            yield from propose({**config, name: lo})
            yield from propose({**config, name: (value + lo) // 2})
            yield from propose({**config, name: value - 1})

    def _check_config(self, config: Config) -> None:
        missing = [k for k in self.SHRINK_MINS if k not in config]
        missing += [k for k in self.SHRINK_RESETS if k not in config]
        if missing:
            raise TestingError(
                f"oracle {self.name!r} config is missing keys "
                f"{sorted(missing)}; got {sorted(config)}")

    # result constructors -------------------------------------------------
    def passed(self, config: Config, **notes: float) -> OracleResult:
        return OracleResult(oracle=self.name, config=dict(config), ok=True,
                            notes=notes)

    def failed(self, config: Config, kind: str, message: str,
               diff: Optional[ArrayDiff] = None,
               **notes: float) -> OracleResult:
        record = MismatchRecord(oracle=self.name, kind=kind, message=message,
                                config=dict(config), diff=diff)
        return OracleResult(oracle=self.name, config=dict(config), ok=False,
                            mismatch=record, notes=notes)


ORACLES: Dict[str, Oracle] = {}


def register_oracle(cls):
    """Class decorator: instantiate and add to the global registry."""
    oracle = cls()
    if not oracle.name:
        raise TestingError(f"oracle class {cls.__name__} has no name")
    if oracle.name in ORACLES:
        raise TestingError(f"duplicate oracle name {oracle.name!r}")
    ORACLES[oracle.name] = oracle
    return cls


def get_oracle(name: str) -> Oracle:
    if name not in ORACLES:
        raise TestingError(
            f"unknown oracle {name!r}; registered: {sorted(ORACLES)}")
    return ORACLES[name]


# ----------------------------------------------------------------------
# shared fixtures (cached: oracles run hundreds of times per fuzz sweep)
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _tiny_weights(seed: int):
    from ..llm import TransformerWeights, tiny_config
    return TransformerWeights.generate(tiny_config(), seed=seed)


@lru_cache(maxsize=4)
def _tiny_model(seed: int):
    from ..llm import NPUTransformer
    return NPUTransformer(_tiny_weights(seed))


def _tokens_diff(actual: List[List[int]], expected: List[List[int]]
                 ) -> Optional[str]:
    """First token divergence between two candidate-sequence lists."""
    if len(actual) != len(expected):
        return (f"candidate count differs: {len(actual)} vs {len(expected)}")
    for cand, (a, e) in enumerate(zip(actual, expected)):
        if a == e:
            continue
        for pos, (ta, te) in enumerate(zip(a, e)):
            if ta != te:
                return (f"candidate {cand} diverges at token {pos}: "
                        f"{ta} vs {te}")
        return (f"candidate {cand} lengths differ: {len(a)} vs {len(e)}")
    return None


def _costs_diff(actual, expected) -> Optional[str]:
    """First StepCost divergence between two decode-cost lists."""
    if len(actual) != len(expected):
        return (f"decode step count differs: "
                f"{len(actual)} vs {len(expected)}")
    for step, (a, e) in enumerate(zip(actual, expected)):
        if a != e:
            return f"StepCost diverged at decode step {step}"
    return None


def _random_prompt(rng: np.random.Generator, length: int,
                   vocab: int = 512) -> List[int]:
    return [int(t) for t in rng.integers(1, vocab, size=length)]


# ----------------------------------------------------------------------
# kernel oracles: HMX simulation vs float64 numpy reference
# ----------------------------------------------------------------------
@register_oracle
class GemmOracle(Oracle):
    """W4A16/W8A16 GEMM on the HMX pipeline vs a float64 reference.

    The reference multiplies the *same dequantized FP16 weights* in
    float64 and rounds once to FP16 — so the comparison isolates the
    tile decomposition, accumulation order and precision discipline
    from the (intentional) quantization error.
    """

    name = "gemm"
    description = ("MixedPrecisionGemm (HVX dequant + HMX tiles) vs "
                   "float64 matmul, <= 2 ULP in FP16")
    SHRINK_MINS = {"m": 1, "k": 32, "n": 32, "seed": 0}
    SHRINK_RESETS = {"bits": 4, "strategy": "ours"}

    def sample_config(self, rng: np.random.Generator) -> Config:
        strategy = ("ours", "baseline", "hmx_layout")[int(rng.integers(3))]
        config = {
            "m": int(rng.integers(1, 65)),
            "k": int(rng.integers(1, 13)) * 8,
            "n": int(rng.integers(1, 13)) * 8,
            "bits": (4, 8)[int(rng.integers(2))],
            "strategy": strategy,
            "seed": int(rng.integers(0, 2**31)),
        }
        return self.normalize(config)

    def normalize(self, config: Config) -> Config:
        # the "baseline" conventional-group path needs tile-aligned
        # operands; round up so shrink moves stay valid
        if config.get("strategy") == "baseline":
            config["k"] = max(32, -(-int(config["k"]) // 32) * 32)
            config["n"] = max(32, -(-int(config["n"]) // 32) * 32)
        return config

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        from ..kernels.gemm import MixedPrecisionGemm

        m, k, n = int(config["m"]), int(config["k"]), int(config["n"])
        rng = np.random.default_rng(int(config["seed"]))
        activations = rng.normal(0.0, 1.0, (m, k)).astype(np.float16)
        weight = rng.normal(0.0, 1.0 / np.sqrt(k), (k, n))

        gemm = MixedPrecisionGemm(strategy=str(config["strategy"]),
                                  bits=int(config["bits"]))
        prepared = gemm.prepare_weight(weight)
        out, _ = gemm(activations, prepared)
        reference = (activations.astype(np.float64)
                     @ prepared.dequantized_matrix.astype(np.float64)
                     ).astype(np.float16)
        diff = diff_arrays(out, reference)
        max_ulp = int(ulp_distance_fp16(out, reference).max())
        if max_ulp > GEMM_ULP_TOLERANCE:
            return self.failed(
                config, "ulp",
                f"GEMM output off by {max_ulp} ULP "
                f"(tolerance {GEMM_ULP_TOLERANCE}) vs float64 reference",
                diff=diff, max_ulp=max_ulp)
        return self.passed(config, max_ulp=max_ulp, max_abs=diff.max_abs)


@register_oracle
class AttentionOracle(Oracle):
    """FP16 FlashAttention (Algorithm 1) vs the FP32/float64 reference.

    The exponential is approximated (LUT / polynomial), so the check is
    an absolute ceiling calibrated at ~5x the seed implementation's
    worst error — tight enough that any masking, block-boundary or
    rescale bug trips it.
    """

    name = "attention"
    description = ("FlashAttention (blockwise FP16, lut/poly exp) vs "
                   "FP32 reference, |diff| <= 0.01")
    SHRINK_MINS = {"n_q": 1, "n_kv": 1, "head_dim": 16, "seed": 0}
    SHRINK_RESETS = {"method": "lut", "causal": 0}

    def sample_config(self, rng: np.random.Generator) -> Config:
        config = {
            "n_q": int(rng.integers(1, 33)),
            "n_kv": int(rng.integers(1, 97)),
            "head_dim": (16, 32, 64)[int(rng.integers(3))],
            "method": ("lut", "poly16", "poly32")[int(rng.integers(3))],
            "causal": int(rng.integers(2)),
            "seed": int(rng.integers(0, 2**31)),
        }
        return self.normalize(config)

    def normalize(self, config: Config) -> Config:
        # causal decode semantics: queries are the last n_q positions of
        # an n_kv-long sequence, so every query row sees >= 1 key
        if int(config.get("causal", 0)) and \
                int(config["n_kv"]) < int(config["n_q"]):
            config["n_kv"] = int(config["n_q"])
        return config

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        from ..kernels.flash_attention import (
            FlashAttention,
            attention_fp32_reference,
        )
        from ..npu.memory import TCM

        n_q, n_kv = int(config["n_q"]), int(config["n_kv"])
        d = int(config["head_dim"])
        rng = np.random.default_rng(int(config["seed"]))
        q = rng.normal(0.0, 1.0, (n_q, d)).astype(np.float16)
        k = rng.normal(0.0, 1.0, (n_kv, d)).astype(np.float16)
        v = rng.normal(0.0, 1.0, (n_kv, d)).astype(np.float16)
        q_pos = k_pos = None
        if int(config["causal"]):
            q_pos = np.arange(n_kv - n_q, n_kv)
            k_pos = np.arange(n_kv)

        attention = FlashAttention(method=str(config["method"]), tcm=TCM())
        with np.errstate(over="ignore", invalid="ignore"):
            out, _ = attention(q, k, v, q_positions=q_pos, k_positions=k_pos)
        reference = attention_fp32_reference(
            q, k, v, q_positions=q_pos, k_positions=k_pos).astype(np.float16)
        diff = diff_arrays(out, reference)
        if diff.max_abs > ATTENTION_ABS_TOLERANCE:
            return self.failed(
                config, "abs",
                f"attention output off by {diff.max_abs:.4f} "
                f"(tolerance {ATTENTION_ABS_TOLERANCE}) vs FP32 reference",
                diff=diff, max_abs=diff.max_abs)
        return self.passed(config, max_abs=diff.max_abs)


# ----------------------------------------------------------------------
# engine oracles: bitwise pairings on the tiny model
# ----------------------------------------------------------------------
@register_oracle
class PagedKVOracle(Oracle):
    """Paged-KV decode vs contiguous decode: bitwise tokens and costs.

    The PR-2 guarantee, generalized: any (dtype, batch, block size,
    prompt length) combination — including block sizes that do not
    divide the prompt — reassembles the identical KV prefix.
    """

    name = "paged_kv"
    description = ("engine decode, kv_backend='paged' vs 'contiguous': "
                   "bitwise-identical tokens and StepCosts")
    SHRINK_MINS = {"batch": 1, "block_size": 1, "prompt_len": 1,
                   "new_tokens": 1, "sampler_seed": 0}
    SHRINK_RESETS = {"dtype": "fp16"}

    def sample_config(self, rng: np.random.Generator) -> Config:
        return {
            "dtype": ("fp16", "q8")[int(rng.integers(2))],
            "batch": int(rng.integers(1, 9)),
            "block_size": int(rng.integers(1, 21)),
            "prompt_len": int(rng.integers(1, 13)),
            "new_tokens": int(rng.integers(1, 13)),
            "sampler_seed": int(rng.integers(0, 2**31)),
        }

    def _generate(self, config: Config, backend: str):
        from ..llm import InferenceEngine, Sampler

        prompt = _random_prompt(
            np.random.default_rng([int(config["sampler_seed"]),
                                   int(config["prompt_len"])]),
            int(config["prompt_len"]))
        engine = InferenceEngine(
            _tiny_model(0), batch=int(config["batch"]),
            max_context=len(prompt) + int(config["new_tokens"]) + 1,
            kv_backend=backend, kv_dtype=str(config["dtype"]),
            kv_block_size=int(config["block_size"]))
        return engine.generate(
            prompt, max_new_tokens=int(config["new_tokens"]),
            sampler=Sampler(temperature=0.8,
                            seed=int(config["sampler_seed"])))

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        contiguous = self._generate(config, "contiguous")
        paged = self._generate(config, "paged")
        token_diff = _tokens_diff(paged.sequences, contiguous.sequences)
        if token_diff is not None:
            return self.failed(config, "tokens",
                               f"paged vs contiguous: {token_diff}")
        if paged.prefill_cost != contiguous.prefill_cost:
            return self.failed(config, "cost",
                               "prefill StepCost differs between backends")
        cost_diff = _costs_diff(paged.decode_costs, contiguous.decode_costs)
        if cost_diff is not None:
            return self.failed(config, "cost",
                               f"paged vs contiguous: {cost_diff}")
        return self.passed(
            config, n_tokens=float(paged.total_generated_tokens))


@register_oracle
class FaultNoopOracle(Oracle):
    """Scheduler with an empty fault plan vs no fault plan at all.

    The PR-3 guarantee: arming the resilience machinery with zero
    events must be a bitwise no-op — same tokens, same costs, same
    step count, no RNG perturbation.
    """

    name = "fault_noop"
    description = ("ContinuousBatchingScheduler, FaultPlan.empty() vs "
                   "fault_plan=None: bitwise-identical generation")
    SHRINK_MINS = {"batch": 1, "n_candidates": 1, "prompt_len": 1,
                   "new_tokens": 1, "sampler_seed": 0}
    SHRINK_RESETS = {}

    def sample_config(self, rng: np.random.Generator) -> Config:
        batch = int(rng.integers(1, 7))
        config = {
            "batch": batch,
            "n_candidates": int(rng.integers(batch, 13)),
            "prompt_len": int(rng.integers(1, 11)),
            "new_tokens": int(rng.integers(1, 11)),
            "sampler_seed": int(rng.integers(0, 2**31)),
        }
        return self.normalize(config)

    def normalize(self, config: Config) -> Config:
        if int(config["n_candidates"]) < int(config["batch"]):
            config["n_candidates"] = int(config["batch"])
        return config

    def _generate(self, config: Config, fault_plan):
        from ..llm import ContinuousBatchingScheduler, InferenceEngine, Sampler

        prompt = _random_prompt(
            np.random.default_rng([int(config["sampler_seed"]),
                                   int(config["prompt_len"])]),
            int(config["prompt_len"]))
        engine = InferenceEngine(
            _tiny_model(0), batch=int(config["batch"]),
            max_context=len(prompt) + int(config["new_tokens"]) + 1,
            kv_backend="paged")
        scheduler = ContinuousBatchingScheduler(engine)
        return scheduler.generate(
            prompt, n_candidates=int(config["n_candidates"]),
            max_new_tokens=int(config["new_tokens"]),
            sampler=Sampler(temperature=0.8,
                            seed=int(config["sampler_seed"])),
            fault_plan=fault_plan)

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        from ..resilience import FaultPlan

        plain = self._generate(config, None)
        armed = self._generate(config, FaultPlan.empty())
        token_diff = _tokens_diff(armed.sequences, plain.sequences)
        if token_diff is not None:
            return self.failed(config, "tokens",
                               f"empty plan vs none: {token_diff}")
        cost_diff = _costs_diff(armed.decode_costs, plain.decode_costs)
        if cost_diff is not None:
            return self.failed(config, "cost",
                               f"empty plan vs none: {cost_diff}")
        if armed.n_steps != plain.n_steps:
            return self.failed(
                config, "cost",
                f"step counts differ: {armed.n_steps} vs {plain.n_steps}")
        if armed.faults or armed.n_retries or armed.n_rebuilds:
            return self.failed(
                config, "state",
                "empty plan reported resilience activity: "
                f"{len(armed.faults)} faults, {armed.n_retries} retries, "
                f"{armed.n_rebuilds} rebuilds")
        return self.passed(config, n_steps=float(plain.n_steps))


@register_oracle
class PrefillChunkedOracle(Oracle):
    """Chunked prefill vs monolithic prefill: bitwise parity.

    The stage-dispatch guarantee: splitting a prompt into TCM-sized
    chunks — one covering chunk, an aligned divisor, or a ragged tail —
    must not change a single bit.  Checked at two levels: the engine
    (final-position logits and the reassembled KV pages of the prompt
    sequence) and the continuous-batching scheduler (sampled sequences,
    StepCosts and step count with ``prefill_chunk`` set versus the
    monolithic default).
    """

    name = "prefill.chunked"
    description = ("chunked vs monolithic prefill: bitwise-identical "
                   "logits, KV pages and scheduled sequences")
    SHRINK_MINS = {"batch": 1, "n_candidates": 1, "prompt_len": 1,
                   "chunk": 1, "new_tokens": 1, "sampler_seed": 0}
    SHRINK_RESETS = {"dtype": "fp16"}

    def sample_config(self, rng: np.random.Generator) -> Config:
        prompt_len = int(rng.integers(1, 13))
        # cover the three chunking regimes: a single covering chunk,
        # an aligned divisor, and a ragged tail
        mode = int(rng.integers(3))
        if mode == 0:
            chunk = prompt_len + int(rng.integers(0, 4))
        elif mode == 1:
            divisors = [d for d in range(1, prompt_len + 1)
                        if prompt_len % d == 0]
            chunk = divisors[int(rng.integers(len(divisors)))]
        else:
            chunk = int(rng.integers(1, prompt_len + 1))
        batch = int(rng.integers(1, 7))
        return {
            "dtype": ("fp16", "q8")[int(rng.integers(2))],
            "batch": batch,
            "n_candidates": int(rng.integers(batch, 13)),
            "prompt_len": prompt_len,
            "chunk": max(1, chunk),
            "new_tokens": int(rng.integers(1, 11)),
            "sampler_seed": int(rng.integers(0, 2**31)),
        }

    def normalize(self, config: Config) -> Config:
        if int(config["n_candidates"]) < int(config["batch"]):
            config["n_candidates"] = int(config["batch"])
        return config

    def _prompt(self, config: Config) -> List[int]:
        return _random_prompt(
            np.random.default_rng([int(config["sampler_seed"]),
                                   int(config["prompt_len"])]),
            int(config["prompt_len"]))

    def _engine(self, config: Config, prompt: List[int]):
        from ..llm import InferenceEngine
        return InferenceEngine(
            _tiny_model(0), batch=int(config["batch"]),
            max_context=len(prompt) + int(config["new_tokens"]) + 1,
            kv_backend="paged", kv_dtype=str(config["dtype"]))

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        from ..llm import ContinuousBatchingScheduler, Sampler

        prompt = self._prompt(config)
        chunk = int(config["chunk"])

        # engine level: final logits and the prompt's KV pages
        mono = self._engine(config, prompt)
        mono_logits, _ = mono.prefill(prompt, seq=0)
        chunked = self._engine(config, prompt)
        chunk_logits = None
        for start in range(0, len(prompt), chunk):
            chunk_logits, _ = chunked.prefill_chunk(
                prompt[start:start + chunk], seq=0)
        logits_diff = diff_arrays(chunk_logits, mono_logits)
        if not logits_diff.bitwise_equal:
            return self.failed(
                config, "abs",
                "chunked prefill logits diverge from monolithic",
                diff=logits_diff)
        for layer in range(len(mono.cache)):
            mono_k, mono_v = mono.cache[layer].view(0)
            chunk_k, chunk_v = chunked.cache[layer].view(0)
            for name, actual, expected in (("k", chunk_k, mono_k),
                                           ("v", chunk_v, mono_v)):
                kv_diff = diff_arrays(actual, expected)
                if not kv_diff.bitwise_equal:
                    return self.failed(
                        config, "state",
                        f"KV {name} pages diverge at layer {layer}",
                        diff=kv_diff)

        # scheduler level: sequences, costs and step count
        def schedule(prefill_chunk):
            engine = self._engine(config, prompt)
            scheduler = ContinuousBatchingScheduler(engine)
            return scheduler.generate(
                prompt, n_candidates=int(config["n_candidates"]),
                max_new_tokens=int(config["new_tokens"]),
                sampler=Sampler(temperature=0.8,
                                seed=int(config["sampler_seed"])),
                prefill_chunk=prefill_chunk)

        plain = schedule(None)
        sliced = schedule(chunk)
        token_diff = _tokens_diff(sliced.sequences, plain.sequences)
        if token_diff is not None:
            return self.failed(config, "tokens",
                               f"chunk={chunk} vs monolithic: {token_diff}")
        cost_diff = _costs_diff(sliced.decode_costs, plain.decode_costs)
        if cost_diff is not None:
            return self.failed(config, "cost",
                               f"chunk={chunk} vs monolithic: {cost_diff}")
        if sliced.n_steps != plain.n_steps:
            return self.failed(
                config, "cost",
                f"step counts differ: {sliced.n_steps} vs {plain.n_steps}")
        expected_chunks = -(-len(prompt) // chunk)
        if sliced.n_prefill_chunks != expected_chunks:
            return self.failed(
                config, "state",
                f"expected {expected_chunks} prefill chunks, got "
                f"{sliced.n_prefill_chunks}")
        return self.passed(config, n_chunks=float(sliced.n_prefill_chunks),
                           n_steps=float(plain.n_steps))


@register_oracle
class SpeculativeOracle(Oracle):
    """Greedy speculative decode vs plain greedy target decode.

    The §9 Generate-then-Verify guarantee: with greedy acceptance the
    draft model *cannot* change the output — whatever it proposes, the
    committed tokens equal pure argmax decoding of the target model,
    whether the draft always agrees (draft == target) or frequently
    disagrees (an independently seeded draft).
    """

    name = "speculative"
    description = ("SpeculativeDecoder (greedy) vs plain argmax decode: "
                   "token-identical for any draft model")
    SHRINK_MINS = {"draft_len": 1, "prompt_len": 1, "new_tokens": 1,
                   "draft_seed": 0, "seed": 0}
    SHRINK_RESETS = {}

    def sample_config(self, rng: np.random.Generator) -> Config:
        return {
            "draft_len": int(rng.integers(1, 9)),
            "prompt_len": int(rng.integers(1, 11)),
            "new_tokens": int(rng.integers(1, 17)),
            # 0 = draft shares the target's weights (always agrees)
            "draft_seed": int(rng.integers(0, 3)),
            "seed": int(rng.integers(0, 2**31)),
        }

    @staticmethod
    def _plain_greedy(model, prompt: List[int], n_tokens: int) -> List[int]:
        cache = model.new_cache(1, len(prompt) + n_tokens + 1)
        logits, _ = model.forward(
            np.asarray(prompt, dtype=np.int64)[np.newaxis, :], cache)
        tokens: List[int] = []
        current = int(logits[0, -1].argmax())
        tokens.append(current)
        for _ in range(n_tokens - 1):
            logits, _ = model.forward(
                np.asarray([[current]], dtype=np.int64), cache)
            current = int(logits[0, -1].argmax())
            tokens.append(current)
        return tokens

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        from ..llm import SpeculativeDecoder

        target = _tiny_model(0)
        draft = _tiny_model(int(config["draft_seed"]))
        prompt = _random_prompt(
            np.random.default_rng([int(config["seed"]),
                                   int(config["prompt_len"])]),
            int(config["prompt_len"]))
        n_tokens = int(config["new_tokens"])

        decoder = SpeculativeDecoder(target, draft,
                                     draft_len=int(config["draft_len"]))
        speculative = decoder.generate(prompt, n_tokens, temperature=0.0,
                                       seed=int(config["seed"]))
        plain = self._plain_greedy(target, prompt, n_tokens)
        if speculative.tokens != plain:
            divergence = _tokens_diff([speculative.tokens], [plain])
            return self.failed(
                config, "tokens",
                f"speculative vs plain greedy: {divergence}",
                acceptance_rate=speculative.acceptance_rate)
        return self.passed(config,
                           acceptance_rate=speculative.acceptance_rate)


@register_oracle
class CheckpointOracle(Oracle):
    """Checkpoint round-trips: save -> load -> bitwise-identical decode.

    Checked guarantees (quantization is deliberately lossy *once*, so
    the invariants hold after the first encode):

    * ``f16``: loaded weights are an encode fixpoint — re-saving and
      re-loading reproduces every tensor bitwise, and both generations
      decode identically;
    * ``q4``: the loaded projections equal the quantize-dequantize
      round-trip the NPU computes with
      (:meth:`NPUTransformer.dequantized_layer_weights`), and two
      independent loads of the same file decode identically —
      including through the paged KV backend.
    """

    name = "checkpoint"
    description = ("save/load round-trip (f16 fixpoint, q4 == NPU "
                   "effective weights) decodes bitwise-identically")
    SHRINK_MINS = {"batch": 1, "new_tokens": 1, "weights_seed": 0,
                   "sampler_seed": 0}
    SHRINK_RESETS = {"codec": "f16", "backend": "contiguous"}

    def sample_config(self, rng: np.random.Generator) -> Config:
        return {
            "codec": ("f16", "q4")[int(rng.integers(2))],
            "backend": ("contiguous", "paged")[int(rng.integers(2))],
            "batch": int(rng.integers(1, 5)),
            "new_tokens": int(rng.integers(1, 11)),
            "weights_seed": int(rng.integers(0, 3)),
            "sampler_seed": int(rng.integers(0, 2**31)),
        }

    @staticmethod
    def _weight_arrays(weights) -> Iterator[Tuple[str, np.ndarray]]:
        yield "embedding", weights.embedding
        yield "lm_head", weights.lm_head
        yield "final_norm", weights.final_norm
        for i, layer in enumerate(weights.layers):
            for name, matrix in sorted(layer.items()):
                yield f"layers.{i}.{name}", matrix

    def _decode(self, model, config: Config) -> List[List[int]]:
        from ..llm import InferenceEngine, Sampler

        prompt = _random_prompt(
            np.random.default_rng([int(config["sampler_seed"]), 17]), 6)
        engine = InferenceEngine(
            model, batch=int(config["batch"]),
            max_context=len(prompt) + int(config["new_tokens"]) + 1,
            kv_backend=str(config["backend"]))
        result = engine.generate(
            prompt, max_new_tokens=int(config["new_tokens"]),
            sampler=Sampler(temperature=0.8,
                            seed=int(config["sampler_seed"])))
        return result.sequences

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        from ..llm import NPUTransformer
        from ..llm.checkpoint import load_checkpoint, save_checkpoint

        codec = str(config["codec"])
        weights = _tiny_weights(int(config["weights_seed"]))
        with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as tmp:
            first = Path(tmp) / "first.ckpt"
            save_checkpoint(first, weights, codec=codec)
            loaded = load_checkpoint(first)

            if codec == "f16":
                second = Path(tmp) / "second.ckpt"
                save_checkpoint(second, loaded, codec=codec)
                reloaded = load_checkpoint(second)
            else:
                reloaded = load_checkpoint(first)

        if codec == "f16":
            for name, a in self._weight_arrays(loaded):
                b = dict(self._weight_arrays(reloaded))[name]
                if not np.array_equal(a, b):
                    return self.failed(
                        config, "state",
                        f"f16 round-trip is not a fixpoint: tensor "
                        f"{name!r} changed on re-save",
                        diff=diff_arrays(b, a))
        else:
            effective = _tiny_model(
                int(config["weights_seed"])).dequantized_layer_weights()
            for i, layer in enumerate(effective):
                for name, expected in layer.items():
                    actual = loaded.layers[i][name]
                    if not np.array_equal(actual, expected):
                        return self.failed(
                            config, "state",
                            f"q4 checkpoint tensor layers.{i}.{name} != "
                            "the NPU's dequantized weights",
                            diff=diff_arrays(actual, expected))

        tokens_a = self._decode(NPUTransformer(loaded), config)
        tokens_b = self._decode(NPUTransformer(reloaded), config)
        token_diff = _tokens_diff(tokens_b, tokens_a)
        if token_diff is not None:
            return self.failed(config, "tokens",
                               f"round-trip decode: {token_diff}")
        return self.passed(config)


@register_oracle
class FleetOracle(Oracle):
    """Fleet simulation replay: two runs of one config, byte-identical.

    The PR-7 guarantee: the ``repro.fleet/v1`` report is a pure
    function of its configuration — same trace seed, same population,
    same admission bound reproduce the serialized report bytewise —
    and the frontend conserves requests
    (``offered == completed + shed + unserved``).  The capacity plan is
    left off so a shrunk repro stays one simulation, not a search.
    """

    name = "fleet"
    description = ("fleet serving simulation, run twice: byte-identical "
                   "repro.fleet/v1 JSON + request conservation")
    SHRINK_MINS = {"devices": 1, "qps": 1, "horizon_ds": 1,
                   "queue_depth": 1, "seed": 0}
    SHRINK_RESETS = {"pattern": "poisson"}

    def sample_config(self, rng: np.random.Generator) -> Config:
        return {
            "devices": int(rng.integers(1, 41)),
            "qps": int(rng.integers(1, 25)),
            "horizon_ds": int(rng.integers(1, 201)),  # deciseconds
            "queue_depth": int(rng.integers(1, 33)),
            "pattern": ("poisson", "diurnal")[int(rng.integers(2))],
            "seed": int(rng.integers(0, 2**31)),
        }

    def _report(self, config: Config):
        from ..fleet import run_fleet

        return run_fleet(
            int(config["devices"]), float(config["qps"]),
            horizon_seconds=int(config["horizon_ds"]) / 10.0,
            seed=int(config["seed"]), pattern=str(config["pattern"]),
            queue_depth=int(config["queue_depth"]),
            with_capacity_plan=False)

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        first = self._report(config)
        second = self._report(config)
        text_a, text_b = first.to_json_text(), second.to_json_text()
        if text_a != text_b:
            for line_a, line_b in zip(text_a.splitlines(),
                                      text_b.splitlines()):
                if line_a != line_b:
                    return self.failed(
                        config, "state",
                        f"replay diverged: {line_a!r} vs {line_b!r}")
            return self.failed(config, "state",
                               "replay diverged in length only")
        requests = first.requests
        served = (requests["completed"] + requests["shed"]
                  + requests["unserved"])
        if requests["offered"] != served:
            return self.failed(
                config, "state",
                f"request conservation violated: offered "
                f"{requests['offered']} != completed+shed+unserved "
                f"{served}")
        token = first.latency["token"]
        if token["count"] and token["p99"] < token["p50"]:
            return self.failed(
                config, "state",
                f"token latency percentiles inverted: p99 {token['p99']} "
                f"< p50 {token['p50']}")
        return self.passed(config,
                           n_offered=float(requests["offered"]),
                           n_completed=float(requests["completed"]),
                           n_shed=float(requests["shed"]))


@register_oracle
class FleetChaosOracle(Oracle):
    """Chaos replay: a faulted, hedged fleet run is still deterministic.

    The PR-8 guarantee on top of :class:`FleetOracle`: under **any**
    seeded fleet fault schedule (crashes, stragglers, dropped
    dispatches, battery drains) with failover and hedging armed, the
    ``repro.fleet/v1`` report — chaos section included — replays
    byte-identically, and the conservation invariant widens to
    ``offered == completed + shed + failed_permanently + unserved``
    (the simulation itself raises if a hedged request is served twice).
    """

    name = "fleet.chaos"
    description = ("faulted fleet run, twice: byte-identical chaos "
                   "report + request conservation with failover/hedging")
    SHRINK_MINS = {"devices": 1, "qps": 1, "horizon_ds": 1,
                   "queue_depth": 1, "seed": 0, "fault_seed": 0,
                   "n_crashes": 0, "n_straggles": 0, "n_drops": 0,
                   "n_battery": 0, "hedge": 0}

    def sample_config(self, rng: np.random.Generator) -> Config:
        return {
            "devices": int(rng.integers(1, 25)),
            "qps": int(rng.integers(1, 25)),
            "horizon_ds": int(rng.integers(10, 201)),  # deciseconds
            "queue_depth": int(rng.integers(1, 33)),
            "seed": int(rng.integers(0, 2**31)),
            "fault_seed": int(rng.integers(0, 2**31)),
            "n_crashes": int(rng.integers(0, 4)),
            "n_straggles": int(rng.integers(0, 4)),
            "n_drops": int(rng.integers(0, 4)),
            "n_battery": int(rng.integers(0, 2)),
            "hedge": int(rng.integers(0, 2)),
        }

    def _fault_spec(self, config: Config) -> str:
        from ..resilience.faults import FaultPlan

        plan = FaultPlan.random(
            int(config["fault_seed"]), n_aborts=0, n_dma=0, n_allocs=0,
            n_throttles=0, n_crashes=int(config["n_crashes"]),
            n_straggles=int(config["n_straggles"]),
            n_drops=int(config["n_drops"]),
            n_battery=int(config["n_battery"]),
            n_devices=int(config["devices"]),
            horizon_seconds=int(config["horizon_ds"]) / 10.0)
        return plan.spec()

    def _report(self, config: Config, fault_spec: str):
        from ..fleet import run_fleet

        return run_fleet(
            int(config["devices"]), float(config["qps"]),
            horizon_seconds=int(config["horizon_ds"]) / 10.0,
            seed=int(config["seed"]),
            queue_depth=int(config["queue_depth"]),
            with_capacity_plan=False,
            fault_spec=fault_spec, hedge=bool(int(config["hedge"])))

    def run(self, config: Config) -> OracleResult:
        self._check_config(config)
        fault_spec = self._fault_spec(config)
        first = self._report(config, fault_spec)
        second = self._report(config, fault_spec)
        text_a, text_b = first.to_json_text(), second.to_json_text()
        if text_a != text_b:
            for line_a, line_b in zip(text_a.splitlines(),
                                      text_b.splitlines()):
                if line_a != line_b:
                    return self.failed(
                        config, "state",
                        f"chaos replay diverged: {line_a!r} vs {line_b!r}")
            return self.failed(config, "state",
                               "chaos replay diverged in length only")
        requests = first.requests
        chaos = first.chaos
        failed = (chaos["recovery"]["failed_permanently"]
                  if chaos is not None else 0)
        terminal = (requests["completed"] + requests["shed"] + failed
                    + requests["unserved"])
        if requests["offered"] != terminal:
            return self.failed(
                config, "state",
                f"request conservation violated under chaos: offered "
                f"{requests['offered']} != completed+shed+failed+unserved "
                f"{terminal}")
        if chaos is not None and chaos["conservation"]["offered"] != (
                requests["offered"]):
            return self.failed(
                config, "state",
                "chaos ledger disagrees with the requests section")
        n_faults = (chaos["faults"]["fleet_events"]
                    if chaos is not None else 0)
        return self.passed(config,
                           n_offered=float(requests["offered"]),
                           n_completed=float(requests["completed"]),
                           n_fleet_faults=float(n_faults),
                           n_failed=float(failed))


@register_oracle
class ExplainOracle(Oracle):
    """Blame attribution replay: critical paths are a pure function too.

    The PR-10 guarantee: a faulted, hedged fleet run with the timeline
    armed and every request's critical path reconstructed
    (``run_fleet(..., explain=True)``) replays byte-identically — the
    blame ledger included — and the ledger is *total*: every offered
    request is explained, per-phase nanoseconds sum exactly to the total
    attributed latency, and per-phase nanojoules sum exactly to the
    attributed energy.  Per-request bitwise conservation is asserted
    inside :func:`~repro.obs.blame.aggregate_blame` while the report is
    built, so it is covered by the run itself; this oracle pins the
    aggregate ledger and the replay.
    """

    name = "explain"
    description = ("faulted fleet run with explain armed, twice: "
                   "byte-identical blame ledger, offered == explained, "
                   "phase sums == totals")
    SHRINK_MINS = {"devices": 1, "qps": 1, "horizon_ds": 10,
                   "queue_depth": 1, "seed": 0, "fault_seed": 0,
                   "n_crashes": 0, "n_straggles": 0, "n_drops": 0,
                   "hedge": 0}

    def sample_config(self, rng: np.random.Generator) -> Config:
        return {
            "devices": int(rng.integers(1, 17)),
            "qps": int(rng.integers(1, 17)),
            "horizon_ds": int(rng.integers(10, 151)),  # deciseconds
            "queue_depth": int(rng.integers(1, 33)),
            "seed": int(rng.integers(0, 2**31)),
            "fault_seed": int(rng.integers(0, 2**31)),
            "n_crashes": int(rng.integers(0, 3)),
            "n_straggles": int(rng.integers(0, 3)),
            "n_drops": int(rng.integers(0, 3)),
            "hedge": int(rng.integers(0, 2)),
        }

    def _report(self, config: Config, fault_spec: str):
        from ..fleet import run_fleet

        return run_fleet(
            int(config["devices"]), float(config["qps"]),
            horizon_seconds=int(config["horizon_ds"]) / 10.0,
            seed=int(config["seed"]),
            queue_depth=int(config["queue_depth"]),
            with_capacity_plan=False,
            fault_spec=fault_spec, hedge=bool(int(config["hedge"])),
            explain=True)

    def run(self, config: Config) -> OracleResult:
        from ..resilience.faults import FaultPlan

        self._check_config(config)
        plan = FaultPlan.random(
            int(config["fault_seed"]), n_aborts=0, n_dma=0, n_allocs=0,
            n_throttles=0, n_crashes=int(config["n_crashes"]),
            n_straggles=int(config["n_straggles"]),
            n_drops=int(config["n_drops"]), n_battery=0,
            n_devices=int(config["devices"]),
            horizon_seconds=int(config["horizon_ds"]) / 10.0)
        fault_spec = plan.spec()
        first = self._report(config, fault_spec)
        second = self._report(config, fault_spec)
        text_a, text_b = first.to_json_text(), second.to_json_text()
        if text_a != text_b:
            for line_a, line_b in zip(text_a.splitlines(),
                                      text_b.splitlines()):
                if line_a != line_b:
                    return self.failed(
                        config, "state",
                        f"explain replay diverged: {line_a!r} vs "
                        f"{line_b!r}")
            return self.failed(config, "state",
                               "explain replay diverged in length only")
        explain = first.explain
        if explain is None:
            return self.failed(config, "state",
                               "explain=True produced no explain section")
        aggregate = explain["aggregate"]
        offered = first.requests["offered"]
        if aggregate["n_requests"] != offered:
            return self.failed(
                config, "state",
                f"explain ledger not total: offered {offered} != "
                f"explained {aggregate['n_requests']}")
        blame_sum = sum(aggregate["blame_ns"].values())
        if blame_sum != aggregate["total_latency_ns"]:
            return self.failed(
                config, "state",
                f"blame phases sum to {blame_sum} ns, not the attributed "
                f"total {aggregate['total_latency_ns']} ns")
        energy_sum = sum(aggregate["energy_nj"].values())
        if energy_sum != aggregate["total_nj"]:
            return self.failed(
                config, "state",
                f"energy phases sum to {energy_sum} nJ, not the "
                f"attributed total {aggregate['total_nj']} nJ")
        return self.passed(
            config,
            n_offered=float(offered),
            n_explained=float(aggregate["n_requests"]),
            blame_ns=float(aggregate["total_latency_ns"]))
