"""Decoder-only transformer running on the NPU simulator.

The model instantiates the exact architectures of the evaluated
checkpoints (GQA attention, RoPE, RMSNorm, SwiGLU) with synthetic
Gaussian weights (substitution S2 in DESIGN.md) and runs the paper's
operator placement:

* all projection GEMMs through :class:`~repro.kernels.gemm.MixedPrecisionGemm`
  (Q4_0, Q8_0 for the FFN down projection — §7.1);
* attention through the FP16 FlashAttention of Algorithm 1;
* embeddings and the ``lm_head`` vocabulary projection on the CPU
  (§7.2.2) in FP16/FP32.

Every forward pass aggregates a :class:`StepCost` so the performance
models can translate one functional step into device latency.  A pure
FP32 reference path (:meth:`NPUTransformer.forward_reference`) provides
the accuracy baseline for Tables 1/4/5-style measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import EngineError, ModelConfigError
from ..kernels.flash_attention import FlashAttention, attention_fp32_reference
from ..obs import trace as obs_trace
from ..kernels.gemm import MixedPrecisionGemm, PreparedWeight
from ..kernels.ops import (
    residual_add,
    rms_norm,
    rope_frequencies,
    rope_rotate,
    swiglu,
)
from ..npu.memory import TCM
from ..npu.timing import KernelCost
from .config import ModelConfig
from .kv_cache import KVCache

__all__ = ["TransformerWeights", "StepCost", "NPUTransformer",
           "reference_forward"]

_Q4_PROJECTIONS = ("wq", "wk", "wv", "wo", "w_gate", "w_up")


@dataclass
class TransformerWeights:
    """Synthetic FP32 master weights for one model."""

    config: ModelConfig
    embedding: np.ndarray                 # (vocab, hidden)
    lm_head: np.ndarray                   # (hidden, vocab)
    final_norm: np.ndarray                # (hidden,)
    layers: List[Dict[str, np.ndarray]]   # per-layer projections + norms

    @classmethod
    def generate(cls, config: ModelConfig, seed: int = 0,
                 scale: Optional[float] = None,
                 outlier_fraction: float = 1e-3,
                 outlier_scale: float = 8.0,
                 channel_gain_sigma: float = 0.0,
                 embedding_std: float = 0.02) -> "TransformerWeights":
        """Zero-mean Gaussian weights with realistic magnitude structure.

        The paper's tile-quantization argument (§5.1.1) relies on
        pretrained weights being approximately zero-mean Gaussian.  The
        systematic magnitude outliers of real checkpoints ([27] in the
        paper) are reproduced via ``outlier_fraction`` entries scaled by
        ``outlier_scale``: a single outlier inflates the scale of every
        weight sharing it — an entire input column under per-channel
        quantization (the Table 1 collapse mechanism) but only one
        32-element group under fine-grained quantization, where tile
        groups and conventional groups are hit equally (the Table 4
        comparability mechanism).  ``channel_gain_sigma`` optionally adds
        a smooth log-normal magnitude envelope across input channels for
        heterogeneity studies; ``embedding_std`` controls output
        sharpness (larger values give the low self-perplexity the
        accuracy probes need).
        """
        rng = np.random.default_rng(seed)
        std = scale if scale is not None else 1.0 / np.sqrt(config.hidden_dim)
        embedding = rng.normal(0.0, embedding_std,
                               (config.vocab_size, config.hidden_dim))
        lm_head = embedding.T.copy() if config.tie_embeddings else \
            rng.normal(0.0, std, (config.hidden_dim, config.vocab_size))
        layers = []
        for _ in range(config.n_layers):
            layer: Dict[str, np.ndarray] = {}
            for name, (fan_in, fan_out) in config.projection_shapes().items():
                matrix = rng.normal(0.0, 1.0 / np.sqrt(fan_in), (fan_in, fan_out))
                if channel_gain_sigma > 0:
                    window = max(8, fan_in // 4)
                    noise = rng.normal(0.0, 1.0, fan_in)
                    smooth = np.convolve(noise, np.ones(window) / window,
                                         mode="same")
                    smooth = smooth / max(float(smooth.std()), 1e-8)
                    matrix *= np.exp(channel_gain_sigma * smooth)[:, None]
                if outlier_fraction > 0:
                    n_outliers = max(1, int(matrix.size * outlier_fraction))
                    idx = rng.choice(matrix.size, size=n_outliers, replace=False)
                    matrix.ravel()[idx] *= outlier_scale
                layer[name] = matrix
            layer["norm_attn"] = np.ones(config.hidden_dim)
            layer["norm_ffn"] = np.ones(config.hidden_dim)
            layers.append(layer)
        return cls(config=config,
                   embedding=embedding.astype(np.float32),
                   lm_head=np.asarray(lm_head, dtype=np.float32),
                   final_norm=np.ones(config.hidden_dim, dtype=np.float32),
                   layers=layers)


@dataclass
class StepCost:
    """Aggregated cost of one forward step.

    ``npu`` collects kernel costs executed on the NPU; ``cpu_gemms``
    lists the (m, k, n) shapes of GEMMs placed on the CPU (embedding
    lookup is negligible; the lm_head is not — §7.2.2).
    """

    npu: KernelCost = field(default_factory=KernelCost)
    cpu_gemms: List[Tuple[int, int, int]] = field(default_factory=list)

    def merge(self, other: "StepCost") -> "StepCost":
        """Accumulate ``other`` into ``self`` **in place** and return self.

        Because the return value *is* ``self``, using ``merge`` in
        expression position aliases the accumulator — merging the result
        into another record later double-counts.  Use :meth:`__add__` or
        :meth:`combined` when a fresh record is wanted.
        """
        self.npu.merge(other.npu)
        self.cpu_gemms.extend(other.cpu_gemms)
        return self

    def __add__(self, other: "StepCost") -> "StepCost":
        """Non-mutating sum: returns a fresh record, operands untouched."""
        if not isinstance(other, StepCost):
            return NotImplemented
        return StepCost(npu=self.npu + other.npu,
                        cpu_gemms=self.cpu_gemms + other.cpu_gemms)

    def combined(self, *others: "StepCost") -> "StepCost":
        """Fresh sum of ``self`` and ``others`` (alias-safe merge)."""
        total = self + StepCost()
        for other in others:
            total = total + other
        return total


class NPUTransformer:
    """A transformer whose projections run on the simulated NPU."""

    def __init__(self, weights: TransformerWeights, strategy: str = "ours",
                 attention_method: str = "lut", qfloat_mode: str = "qfloat",
                 down_bits: int = 8) -> None:
        self.config = weights.config
        self.weights = weights
        self.strategy = strategy
        self.attention_method = attention_method
        self.qfloat_mode = qfloat_mode
        self.tcm = TCM()
        self._attention = FlashAttention(method=attention_method, tcm=self.tcm,
                                         qfloat_mode=qfloat_mode)
        self._gemm_q4 = MixedPrecisionGemm(strategy=strategy, bits=4,
                                           qfloat_mode=qfloat_mode)
        self._gemm_down = MixedPrecisionGemm(strategy=strategy, bits=down_bits,
                                             qfloat_mode=qfloat_mode)
        self._prepared: List[Dict[str, PreparedWeight]] = []
        for layer in weights.layers:
            prepared = {}
            for name in _Q4_PROJECTIONS:
                prepared[name] = self._gemm_q4.prepare_weight(layer[name])
            prepared["w_down"] = self._gemm_down.prepare_weight(layer["w_down"])
            self._prepared.append(prepared)
        self._cos, self._sin = rope_frequencies(
            self.config.head_dim, self.config.max_position, self.config.rope_theta)

    # ------------------------------------------------------------------
    # cache construction
    # ------------------------------------------------------------------
    def new_cache(self, batch: int, capacity: int,
                  dtype: str = "fp16") -> KVCache:
        return KVCache(self.config.n_layers, batch, capacity,
                       self.config.n_kv_heads, self.config.head_dim,
                       dtype=dtype)

    def new_paged_cache(self, batch: int, capacity: int, dtype: str = "fp16",
                        block_size: int = 16, pool=None, heap=None):
        """Block-table KV cache over a shared pool (see ``block_pool``)."""
        from .block_pool import PagedKVCache
        return PagedKVCache(self.config.n_layers, batch, capacity,
                            self.config.n_kv_heads, self.config.head_dim,
                            dtype=dtype, block_size=block_size, pool=pool,
                            heap=heap)

    # ------------------------------------------------------------------
    # forward pass
    # ------------------------------------------------------------------
    def forward(self, tokens: np.ndarray, cache: KVCache,
                sequences: Optional[List[int]] = None,
                stable_lm_head: bool = False
                ) -> Tuple[np.ndarray, StepCost]:
        """Run one step for a batch of sequences.

        ``tokens`` is ``(batch, n_new)`` token ids; sequence ``i`` of the
        batch appends its ``n_new`` tokens to cache slot ``sequences[i]``
        (identity mapping by default).  Returns FP32 logits of shape
        ``(batch, n_new, vocab)`` and the aggregated step cost.

        ``stable_lm_head`` routes a single-row lm_head matmul through
        the same BLAS gemm kernel multi-row calls use (BLAS dispatches
        one-row products to gemv, whose accumulation order rounds
        differently).  Prefill paths enable it so a chunked prefill
        whose last chunk is one token stays bitwise identical to the
        monolithic forward.
        """
        tokens = np.atleast_2d(np.asarray(tokens, dtype=np.int64))
        batch, n_new = tokens.shape
        if sequences is None:
            sequences = list(range(batch))
        if len(sequences) != batch:
            raise EngineError(
                f"{batch} token rows but {len(sequences)} sequence slots")
        if tokens.size and int(tokens.max()) >= self.config.vocab_size:
            raise EngineError("token id out of vocabulary range")
        cost = StepCost()
        cfg = self.config

        start_positions = [cache.sequence_length(s) for s in sequences]
        positions = np.stack([np.arange(p, p + n_new) for p in start_positions])
        if positions.size and int(positions.max()) >= cfg.max_position:
            raise EngineError("position exceeds the model's maximum context")

        tracer = obs_trace.get_tracer()
        with tracer.span("model.forward", category="model",
                         batch=batch, n_new=n_new) as forward_span:
            # CPU-side embedding lookup (FP16 storage)
            hidden = self.weights.embedding[tokens].astype(np.float16)
            flat = hidden.reshape(batch * n_new, cfg.hidden_dim)
            flat_pos = positions.reshape(-1)

            for layer_idx in range(cfg.n_layers):
                layer = self.weights.layers[layer_idx]
                prepared = self._prepared[layer_idx]

                with tracer.span("model.layer", category="model",
                                 layer=layer_idx):
                    # --- attention block -------------------------------
                    normed = rms_norm(flat,
                                      layer["norm_attn"].astype(np.float16))
                    q, c = self._gemm_q4(normed, prepared["wq"])
                    cost.npu.merge(c)
                    k, c = self._gemm_q4(normed, prepared["wk"])
                    cost.npu.merge(c)
                    v, c = self._gemm_q4(normed, prepared["wv"])
                    cost.npu.merge(c)

                    q = q.reshape(batch * n_new, cfg.n_heads, cfg.head_dim)
                    k = k.reshape(batch * n_new, cfg.n_kv_heads, cfg.head_dim)
                    v = v.reshape(batch * n_new, cfg.n_kv_heads, cfg.head_dim)
                    for h in range(cfg.n_heads):
                        q[:, h] = rope_rotate(q[:, h], flat_pos,
                                              self._cos, self._sin)
                    for h in range(cfg.n_kv_heads):
                        k[:, h] = rope_rotate(k[:, h], flat_pos,
                                              self._cos, self._sin)

                    layer_cache = cache[layer_idx]
                    attn_out = np.empty(
                        (batch * n_new, cfg.n_heads, cfg.head_dim),
                        dtype=np.float16)
                    for b, seq in enumerate(sequences):
                        rows = slice(b * n_new, (b + 1) * n_new)
                        layer_cache.append(seq, k[rows], v[rows])
                        keys, values = layer_cache.view(seq)
                        kv_len = keys.shape[0]
                        k_pos = np.arange(kv_len)
                        q_pos = positions[b]
                        for kv_head in range(cfg.n_kv_heads):
                            heads = range(kv_head * cfg.gqa_group,
                                          (kv_head + 1) * cfg.gqa_group)
                            for h in heads:
                                out, breakdown = self._attention(
                                    q[rows, h], keys[:, kv_head],
                                    values[:, kv_head],
                                    q_positions=q_pos, k_positions=k_pos)
                                attn_out[rows, h] = out
                                cost.npu.merge(breakdown.total())

                    attn_flat = attn_out.reshape(batch * n_new, cfg.q_dim)
                    o, c = self._gemm_q4(attn_flat, prepared["wo"])
                    cost.npu.merge(c)
                    flat = residual_add(o, flat)

                    # --- FFN block --------------------------------------
                    normed = rms_norm(flat,
                                      layer["norm_ffn"].astype(np.float16))
                    gate, c = self._gemm_q4(normed, prepared["w_gate"])
                    cost.npu.merge(c)
                    up, c = self._gemm_q4(normed, prepared["w_up"])
                    cost.npu.merge(c)
                    activated = swiglu(gate, up)
                    down, c = self._gemm_down(activated, prepared["w_down"])
                    cost.npu.merge(c)
                    flat = residual_add(down, flat)

            # --- CPU-side lm_head (§7.2.2) -----------------------------
            with tracer.span("model.lm_head", category="model",
                             m=batch * n_new, k=cfg.hidden_dim,
                             n=cfg.vocab_size):
                final = rms_norm(flat, self.weights.final_norm.astype(np.float16))
                final32 = final.astype(np.float32)
                if stable_lm_head and final32.shape[0] == 1:
                    logits = (np.concatenate([final32, final32], axis=0)
                              @ self.weights.lm_head)[:1]
                else:
                    logits = final32 @ self.weights.lm_head
            cost.cpu_gemms.append((batch * n_new, cfg.hidden_dim, cfg.vocab_size))
            forward_span.add_cost(cost.npu + KernelCost())
        return logits.reshape(batch, n_new, cfg.vocab_size), cost

    # ------------------------------------------------------------------
    # FP32 reference (accuracy baseline)
    # ------------------------------------------------------------------
    def forward_reference(self, tokens: np.ndarray,
                          effective_weights: Optional[List[Dict[str, np.ndarray]]]
                          = None) -> np.ndarray:
        """Full-precision forward over a prompt, no cache, no simulator.

        ``effective_weights`` substitutes per-layer projections (e.g. a
        dequantized weight set) while keeping everything else identical —
        the mechanism behind the quantization-accuracy experiments.
        Returns FP32 logits ``(n_tokens, vocab)``.
        """
        return reference_forward(self.weights, tokens, effective_weights)

    def dequantized_layer_weights(self) -> List[Dict[str, np.ndarray]]:
        """The effective (quantize-dequantize round-trip) projections."""
        out = []
        for prepared in self._prepared:
            out.append({name: p.dequantized_matrix.astype(np.float32)
                        for name, p in prepared.items()})
        return out


def reference_forward(weights: TransformerWeights, tokens: np.ndarray,
                      effective_weights: Optional[List[Dict[str, np.ndarray]]]
                      = None) -> np.ndarray:
    """FP32 reference forward pass over a prompt (no simulator, no cache).

    Standalone so accuracy experiments can evaluate weight variants
    without paying the NPU weight-preparation cost.
    """
    tokens = np.asarray(tokens, dtype=np.int64).ravel()
    cfg = weights.config
    layers = effective_weights if effective_weights is not None \
        else weights.layers
    if len(layers) != cfg.n_layers:
        raise ModelConfigError(
            f"expected {cfg.n_layers} layers of weights, got {len(layers)}")
    cos, sin = rope_frequencies(cfg.head_dim, int(tokens.size), cfg.rope_theta)
    x = weights.embedding[tokens].astype(np.float32)
    pos = np.arange(tokens.size)
    for layer_idx in range(cfg.n_layers):
        layer = layers[layer_idx]
        master = weights.layers[layer_idx]
        normed = _rms_norm32(x, master["norm_attn"])
        q = normed @ np.asarray(layer["wq"], dtype=np.float32)
        k = normed @ np.asarray(layer["wk"], dtype=np.float32)
        v = normed @ np.asarray(layer["wv"], dtype=np.float32)
        q = q.reshape(tokens.size, cfg.n_heads, cfg.head_dim)
        k = k.reshape(tokens.size, cfg.n_kv_heads, cfg.head_dim)
        v = v.reshape(tokens.size, cfg.n_kv_heads, cfg.head_dim)
        for h in range(cfg.n_heads):
            q[:, h] = _rope32(q[:, h], pos, cos, sin)
        for h in range(cfg.n_kv_heads):
            k[:, h] = _rope32(k[:, h], pos, cos, sin)
        attn = np.empty((tokens.size, cfg.n_heads, cfg.head_dim),
                        dtype=np.float32)
        for kv_head in range(cfg.n_kv_heads):
            for h in range(kv_head * cfg.gqa_group,
                           (kv_head + 1) * cfg.gqa_group):
                attn[:, h] = attention_fp32_reference(
                    q[:, h], k[:, kv_head], v[:, kv_head],
                    q_positions=pos, k_positions=pos)
        x = x + attn.reshape(tokens.size, cfg.q_dim) \
            @ np.asarray(layer["wo"], dtype=np.float32)
        normed = _rms_norm32(x, master["norm_ffn"])
        gate = normed @ np.asarray(layer["w_gate"], dtype=np.float32)
        up = normed @ np.asarray(layer["w_up"], dtype=np.float32)
        with np.errstate(over="ignore"):
            act = gate / (1.0 + np.exp(-gate)) * up
        x = x + act @ np.asarray(layer["w_down"], dtype=np.float32)
    final = _rms_norm32(x, weights.final_norm)
    return final @ weights.lm_head


def _rms_norm32(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    mean_sq = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(mean_sq + eps) * np.asarray(weight, dtype=np.float32)


def _rope32(x: np.ndarray, positions: np.ndarray, cos_table: np.ndarray,
            sin_table: np.ndarray) -> np.ndarray:
    cos = cos_table[positions]
    sin = sin_table[positions]
    out = np.empty_like(x)
    even, odd = x[:, 0::2], x[:, 1::2]
    out[:, 0::2] = even * cos - odd * sin
    out[:, 1::2] = even * sin + odd * cos
    return out
