"""Operator placement: NPU kernels with seamless CPU fallback (§6).

The paper's llama.cpp backend "schedule[s] the operators that have not
been implemented on the NPU to run on the CPU, achieving seamless
integration with upper-layer applications".  This module models that
scheduler:

* an :class:`OpCatalog` records which operator types have NPU kernels;
* a :class:`PlacementPolicy` assigns each operator instance to a device,
  with overrides (the paper pins ``lm_head`` to the CPU because of the
  32-bit VA space — §7.2.2);
* a :class:`PlacementPlan` walks a model's per-layer operator list,
  assigns devices, and charges the cross-device transfers a fallback
  introduces (activations crossing via rpcmem cost a cache
  clean/invalidate pair plus the copy bandwidth).

The performance consequence of an unimplemented NPU op is therefore
visible end to end: the op's own CPU time plus two boundary crossings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import EngineError
from ..npu.soc import Device
from .config import ModelConfig

__all__ = [
    "OP_TYPES",
    "OpInstance",
    "OpCatalog",
    "PlacementPolicy",
    "PlacementPlan",
    "build_decode_ops",
    "crossing_for_bytes",
]

OP_TYPES = ("gemm", "attention", "rms_norm", "rope", "swiglu",
            "residual_add", "embedding", "lm_head", "softcap")

# rpcmem boundary crossing: explicit cache maintenance + FastRPC signal
_CROSSING_OVERHEAD_S = 30e-6


def crossing_for_bytes(device: Device, nbytes: int) -> float:
    """Cost of moving ``nbytes`` across the CPU/NPU rpcmem boundary.

    One cache clean/invalidate pair plus the copy at DRAM bandwidth —
    the unit charge behind both per-op fallback crossings and the
    scheduler's mid-request stage migrations.
    """
    if nbytes < 0:
        raise EngineError(f"crossing bytes must be >= 0, got {nbytes}")
    return _CROSSING_OVERHEAD_S + nbytes / (device.cpu.dram_read_gbps * 1e9)


@dataclass(frozen=True)
class OpInstance:
    """One operator occurrence in the execution graph."""

    name: str
    op_type: str
    flops: float
    activation_bytes: int

    def __post_init__(self) -> None:
        if self.op_type not in OP_TYPES:
            raise EngineError(f"unknown op type {self.op_type!r}")


class OpCatalog:
    """Which operator types have NPU kernel implementations."""

    # the paper's system: projections, attention and misc ops on the NPU
    DEFAULT_NPU_OPS = frozenset({"gemm", "attention", "rms_norm", "rope",
                                 "swiglu", "residual_add"})

    def __init__(self, npu_ops: Optional[frozenset] = None) -> None:
        ops = self.DEFAULT_NPU_OPS if npu_ops is None else frozenset(npu_ops)
        unknown = ops - set(OP_TYPES)
        if unknown:
            raise EngineError(f"catalog references unknown op types {sorted(unknown)}")
        self.npu_ops = ops

    def has_npu_kernel(self, op_type: str) -> bool:
        if op_type not in OP_TYPES:
            raise EngineError(f"unknown op type {op_type!r}")
        return op_type in self.npu_ops

    def without(self, *op_types: str) -> "OpCatalog":
        """A catalog with some NPU kernels removed (fallback studies)."""
        return OpCatalog(self.npu_ops - set(op_types))


@dataclass
class PlacementPolicy:
    """Device assignment rules.

    ``pinned`` forces specific op *names* to a device regardless of
    kernel availability — the mechanism behind the CPU-resident lm_head.
    """

    catalog: OpCatalog = field(default_factory=OpCatalog)
    pinned: Dict[str, str] = field(default_factory=dict)

    def device_for(self, op: OpInstance) -> str:
        pinned = self.pinned.get(op.name)
        if pinned is not None:
            if pinned not in ("cpu", "npu"):
                raise EngineError(f"unknown device {pinned!r} for {op.name}")
            if pinned == "npu" and not self.catalog.has_npu_kernel(op.op_type):
                raise EngineError(
                    f"{op.name} pinned to the NPU but {op.op_type!r} has no "
                    "NPU kernel")
            return pinned
        return "npu" if self.catalog.has_npu_kernel(op.op_type) else "cpu"


@dataclass
class PlacedOp:
    op: OpInstance
    device: str
    crossing_before: bool  # activations move between devices first


@dataclass
class PlacementPlan:
    """A fully placed operator sequence with transfer accounting."""

    ops: List[PlacedOp]

    def boundaries(self) -> List[PlacedOp]:
        """The ops whose *device sequence* changes relative to the
        previous op (activations start CPU-side).

        This is the authoritative boundary walk: it derives crossings
        from the device assignments alone, so a run of consecutive
        same-device ops contributes at most one clean/invalidate pair at
        its head — even if stale per-op ``crossing_before`` flags on a
        hand-assembled plan claim otherwise (the double-count bug: one
        NPU op followed by two CPU ops each flagged as crossing).
        """
        out: List[PlacedOp] = []
        previous_device = "cpu"  # tokens/embeddings start on the CPU side
        for placed in self.ops:
            if placed.device != previous_device:
                out.append(placed)
            previous_device = placed.device
        return out

    @property
    def n_crossings(self) -> int:
        return len(self.boundaries())

    def device_of(self, name: str) -> str:
        for placed in self.ops:
            if placed.op.name == name:
                return placed.device
        raise EngineError(f"no op named {name!r} in the plan")

    def crossing_seconds(self, device: Device) -> float:
        """Time spent moving activations across the CPU/NPU boundary."""
        return sum(crossing_for_bytes(device, p.op.activation_bytes)
                   for p in self.boundaries())

    def cpu_op_seconds(self, device: Device) -> float:
        """Compute time of the CPU-resident ops (flops-bound estimate)."""
        rate = device.cpu.gflops_per_core * device.cpu.max_cores * 1e9
        return sum(p.op.flops / rate for p in self.ops if p.device == "cpu")

    @classmethod
    def build(cls, ops: List[OpInstance],
              policy: PlacementPolicy) -> "PlacementPlan":
        placed: List[PlacedOp] = []
        previous_device = "cpu"  # tokens/embeddings start on the CPU side
        for op in ops:
            device = policy.device_for(op)
            placed.append(PlacedOp(op=op, device=device,
                                   crossing_before=device != previous_device))
            previous_device = device
        return cls(ops=placed)


def build_decode_ops(config: ModelConfig, batch: int) -> List[OpInstance]:
    """The per-step decode operator sequence of one model.

    One entry per operator per layer plus embedding and lm_head, with
    FLOP and activation-size estimates used for fallback costing.
    """
    if batch <= 0:
        raise EngineError(f"batch must be positive, got {batch}")
    act = 2 * batch * config.hidden_dim  # FP16 hidden activations
    ops: List[OpInstance] = [
        OpInstance("embedding", "embedding", flops=0.0, activation_bytes=act),
    ]
    shapes = config.projection_shapes()
    for layer in range(config.n_layers):
        prefix = f"layer{layer}"
        ops.append(OpInstance(f"{prefix}.norm_attn", "rms_norm",
                              flops=4.0 * batch * config.hidden_dim,
                              activation_bytes=act))
        for name in ("wq", "wk", "wv"):
            k, n = shapes[name]
            ops.append(OpInstance(f"{prefix}.{name}", "gemm",
                                  flops=2.0 * batch * k * n,
                                  activation_bytes=act))
        ops.append(OpInstance(f"{prefix}.rope", "rope",
                              flops=6.0 * batch * config.q_dim,
                              activation_bytes=2 * batch * config.q_dim))
        ops.append(OpInstance(f"{prefix}.attention", "attention",
                              flops=4.0 * batch * config.q_dim * 1024,
                              activation_bytes=2 * batch * config.q_dim))
        k, n = shapes["wo"]
        ops.append(OpInstance(f"{prefix}.wo", "gemm",
                              flops=2.0 * batch * k * n,
                              activation_bytes=act))
        ops.append(OpInstance(f"{prefix}.residual1", "residual_add",
                              flops=1.0 * batch * config.hidden_dim,
                              activation_bytes=act))
        ops.append(OpInstance(f"{prefix}.norm_ffn", "rms_norm",
                              flops=4.0 * batch * config.hidden_dim,
                              activation_bytes=act))
        for name in ("w_gate", "w_up", "w_down"):
            k, n = shapes[name]
            ops.append(OpInstance(f"{prefix}.{name}", "gemm",
                                  flops=2.0 * batch * k * n,
                                  activation_bytes=act))
        ops.append(OpInstance(f"{prefix}.swiglu", "swiglu",
                              flops=8.0 * batch * config.intermediate_dim,
                              activation_bytes=2 * batch
                              * config.intermediate_dim))
        ops.append(OpInstance(f"{prefix}.residual2", "residual_add",
                              flops=1.0 * batch * config.hidden_dim,
                              activation_bytes=act))
    ops.append(OpInstance("final_norm", "rms_norm",
                          flops=4.0 * batch * config.hidden_dim,
                          activation_bytes=act))
    ops.append(OpInstance("lm_head", "lm_head",
                          flops=2.0 * batch * config.hidden_dim
                          * config.vocab_size,
                          activation_bytes=act))
    return ops
