"""Perplexity and distribution-divergence metrics.

The paper reports Wikitext-2 perplexity via ``llama-perplexity`` for its
quantization-accuracy tables (Tables 1, 4, 5).  With synthetic weights we
measure the same quantities on synthetic token streams: next-token
perplexity of the model under each weight variant, and the KL divergence
of the quantized model's predictive distribution from the full-precision
reference — the direct measure of quantization damage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ModelConfigError
from .sampler import softmax_logits

__all__ = ["perplexity", "mean_kl_divergence", "top1_agreement"]


def perplexity(logits: np.ndarray, targets: np.ndarray) -> float:
    """Perplexity of next-token predictions.

    ``logits`` is ``(n_tokens, vocab)`` predicting ``targets``
    ``(n_tokens,)``; rows align (logits row ``i`` predicts target ``i``).
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64).ravel()
    if logits.ndim != 2 or logits.shape[0] != targets.size:
        raise ModelConfigError(
            f"logits {logits.shape} do not align with targets {targets.shape}")
    probs = softmax_logits(logits)
    picked = probs[np.arange(targets.size), targets]
    picked = np.maximum(picked, 1e-300)
    return float(np.exp(-np.mean(np.log(picked))))


def mean_kl_divergence(reference_logits: np.ndarray,
                       candidate_logits: np.ndarray) -> float:
    """Mean KL(reference || candidate) over rows, in nats."""
    p = softmax_logits(np.asarray(reference_logits, dtype=np.float64))
    q = softmax_logits(np.asarray(candidate_logits, dtype=np.float64))
    if p.shape != q.shape:
        raise ModelConfigError(f"logit shapes differ: {p.shape} vs {q.shape}")
    q = np.maximum(q, 1e-300)
    per_row = np.sum(p * (np.log(np.maximum(p, 1e-300)) - np.log(q)), axis=-1)
    return float(per_row.mean())


def top1_agreement(reference_logits: np.ndarray,
                   candidate_logits: np.ndarray) -> float:
    """Fraction of rows whose argmax token matches the reference."""
    a = np.asarray(reference_logits).argmax(axis=-1)
    b = np.asarray(candidate_logits).argmax(axis=-1)
    if a.shape != b.shape:
        raise ModelConfigError(f"logit shapes differ: {a.shape} vs {b.shape}")
    return float(np.mean(a == b))
