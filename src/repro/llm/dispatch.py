"""Stage-level backend dispatch: the Fig. 13 crossover, acted on.

The paper's Fig. 13 shows the NPU winning prefill and batched decode
while the llama.cpp CPU/GPU backends win small-batch decode ("When NPUs
Are Not Always Faster").  The analytic models of those systems already
live in :mod:`repro.perf.baselines`; this module turns them into a
scheduling decision: a :class:`BackendSelector` picks, per (stage,
batch size, thermal governor), the backend with the lowest modeled
stage latency, restricted to backends that can actually run the stage
(the NPU needs ``gemm`` and ``attention`` kernels in the
:class:`~repro.llm.placement.OpCatalog`).

Decisions are quantized onto a small batch grid and memoized, so the
scheduler hot loop pays one dict lookup per step, and the decision
function is a *pure* function of its (hashable) inputs — the property
the hypothesis suite pins down.  The NPU model is governor-aware
(thermal throttling slows only the NPU, shifting the crossover toward
the CPU/GPU); the CPU/GPU baselines run at their own clocks and are
deliberately governor-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..errors import EngineError
from ..npu.power_mgmt import GOVERNORS, apply_governor
from ..npu.soc import Device
from ..perf.baselines import AdrenoGPUModel, CPUBaselineModel
from ..perf.latency import DecodePerformanceModel
from .config import ModelConfig
from .placement import OpCatalog

__all__ = [
    "BACKENDS",
    "BATCH_GRID",
    "PREFILL_GRID",
    "BackendDecision",
    "BackendSelector",
]

#: Backends the selector can dispatch a stage to, in tie-break
#: preference order (the NPU wins ties: it is where the KV cache lives,
#: so staying put avoids a future migration).
BACKENDS = ("npu", "gpu", "cpu")

#: Decode batch sizes the decision function is evaluated at.  Batches
#: between grid points quantize *up* to the next point (a conservative
#: latency estimate); beyond the grid they clamp to the last point.
BATCH_GRID = (1, 2, 4, 6, 8, 12, 16, 24, 32)

#: Prefill token counts (a chunk or a whole short prompt) the decision
#: function is evaluated at.
PREFILL_GRID = (8, 16, 32, 64, 128, 256, 512, 1024)

STAGES = ("prefill", "decode")


def _quantize(value: int, grid: Tuple[int, ...]) -> int:
    for point in grid:
        if value <= point:
            return point
    return grid[-1]


@lru_cache(maxsize=4096)
def _modeled_latency(backend: str, stage: str, config: ModelConfig,
                     device: Device, governor_name: str, size: int,
                     context: int) -> float:
    """Modeled latency of one stage on one backend (pure + memoized).

    ``size`` is the decode batch or the prefill token count.  Only the
    NPU model sees the governor: DVFS throttling rescales the Hexagon
    clock/fabric, not the CPU or GPU.
    """
    if backend == "npu":
        governed = replace(device,
                           npu=apply_governor(device.npu, governor_name))
        model = DecodePerformanceModel(config, governed)
        if stage == "decode":
            return model.decode_step(size, context).total_seconds
        return model.prefill_latency(size)
    if backend == "gpu":
        gpu = AdrenoGPUModel(config)
        if stage == "decode":
            return gpu.decode_latency(size, context)
        return gpu.prefill_latency(size)
    cpu = CPUBaselineModel(config, device)
    if stage == "decode":
        return cpu.decode_latency(size, context)
    return cpu.prefill_latency(size)


@dataclass(frozen=True)
class BackendDecision:
    """One dispatch decision with the full modeled-latency table.

    ``size`` is the grid point the request quantized onto; ``modeled``
    maps every backend (eligible or not) to its modeled stage latency,
    so the decision is auditable and the scheduler can form the
    NPU-relative slowdown ratio without re-querying the models.
    """

    stage: str
    size: int
    governor: str
    backend: str
    latency_seconds: float
    modeled: Dict[str, float] = field(default_factory=dict)

    @property
    def npu_ratio(self) -> float:
        """Modeled slowdown of the chosen backend relative to the NPU."""
        return self.modeled[self.backend] / self.modeled["npu"]


class BackendSelector:
    """Pick a backend per (stage, batch/chunk size, governor state).

    ``catalog`` gates NPU eligibility: without ``gemm`` *and*
    ``attention`` NPU kernels the transformer body cannot run there and
    the selector never returns ``"npu"``.  ``forced`` pins every
    decision to one backend (the bitwise-no-op escape hatch and the A/B
    lever for tests); the modeled table is still populated.
    """

    def __init__(self, device: Device, config: ModelConfig,
                 catalog: Optional[OpCatalog] = None,
                 forced: Optional[str] = None,
                 context: int = 1024) -> None:
        if forced is not None and forced not in BACKENDS:
            raise EngineError(
                f"unknown forced backend {forced!r}; known: {BACKENDS}")
        if context <= 0:
            raise EngineError(f"context must be positive, got {context}")
        self.device = device
        self.config = config
        self.catalog = catalog if catalog is not None else OpCatalog()
        self.forced = forced
        self.context = int(context)
        self._npu_eligible = (self.catalog.has_npu_kernel("gemm")
                              and self.catalog.has_npu_kernel("attention"))

    # ------------------------------------------------------------------
    def eligible_backends(self) -> Tuple[str, ...]:
        if self._npu_eligible:
            return BACKENDS
        return tuple(b for b in BACKENDS if b != "npu")

    def select(self, stage: str, size: int,
               governor: str = "performance") -> BackendDecision:
        """The lowest-modeled-latency backend for one stage execution.

        ``size`` is the live decode batch or the prefill chunk length;
        it quantizes onto the stage's grid so the memoized model table
        stays small.  Ties break toward the earlier entry of
        :data:`BACKENDS` (the NPU).
        """
        if stage not in STAGES:
            raise EngineError(f"unknown stage {stage!r}; known: {STAGES}")
        if size <= 0:
            raise EngineError(f"stage size must be positive, got {size}")
        if governor not in GOVERNORS:
            raise EngineError(
                f"unknown governor {governor!r}; known: {sorted(GOVERNORS)}")
        grid = BATCH_GRID if stage == "decode" else PREFILL_GRID
        point = _quantize(int(size), grid)
        modeled = {backend: _modeled_latency(
            backend, stage, self.config, self.device, governor, point,
            self.context) for backend in BACKENDS}
        if self.forced is not None:
            backend = self.forced
        else:
            backend = min(self.eligible_backends(),
                          key=lambda b: (modeled[b], BACKENDS.index(b)))
        return BackendDecision(stage=stage, size=point, governor=governor,
                               backend=backend,
                               latency_seconds=modeled[backend],
                               modeled=modeled)

    # ------------------------------------------------------------------
    def crossover_batch(self, stage: str = "decode",
                        governor: str = "performance") -> Optional[int]:
        """Smallest grid size at which the NPU wins the stage (Fig. 13).

        ``None`` when the NPU never wins on the grid (e.g. a catalog
        without its GEMM kernel).
        """
        grid = BATCH_GRID if stage == "decode" else PREFILL_GRID
        for point in grid:
            if self.select(stage, point, governor).backend == "npu":
                return point
        return None

    def decision_table(self, governor: str = "performance"
                       ) -> List[BackendDecision]:
        """Every grid decision for both stages (the CLI placement view)."""
        rows: List[BackendDecision] = []
        for stage in STAGES:
            grid = BATCH_GRID if stage == "decode" else PREFILL_GRID
            rows.extend(self.select(stage, point, governor)
                        for point in grid)
        return rows
