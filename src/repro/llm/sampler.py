"""Token samplers: greedy, temperature, top-k and nucleus (top-p).

Parallel test-time scaling draws *independent* samples per candidate, so
the sampler owns its RNG and exposes a vectorized batch interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import EngineError

__all__ = ["Sampler", "softmax_logits"]


def softmax_logits(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis (float64 internals)."""
    arr = np.asarray(logits, dtype=np.float64)
    shifted = arr - arr.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass
class Sampler:
    """Sampling policy applied to one logits row at a time.

    ``temperature = 0`` means greedy; ``top_k``/``top_p`` restrict the
    candidate set before renormalization.
    """

    temperature: float = 1.0
    top_k: Optional[int] = None
    top_p: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.temperature < 0:
            raise EngineError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k is not None and self.top_k <= 0:
            raise EngineError(f"top_k must be positive, got {self.top_k}")
        if self.top_p is not None and not 0 < self.top_p <= 1:
            raise EngineError(f"top_p must be in (0, 1], got {self.top_p}")
        self._rng = np.random.default_rng(self.seed)

    def reseed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def sample(self, logits: np.ndarray) -> int:
        """Draw one token id from a single logits vector."""
        row = np.asarray(logits, dtype=np.float64).ravel()
        if row.size == 0:
            raise EngineError("cannot sample from empty logits")
        if self.temperature == 0.0:
            return int(row.argmax())
        probs = softmax_logits(row / self.temperature)
        if self.top_k is not None and self.top_k < probs.size:
            cutoff = np.partition(probs, -self.top_k)[-self.top_k]
            probs = np.where(probs >= cutoff, probs, 0.0)
        if self.top_p is not None:
            order = np.argsort(probs)[::-1]
            cumulative = np.cumsum(probs[order])
            keep = cumulative - probs[order] < self.top_p
            mask = np.zeros_like(probs, dtype=bool)
            mask[order[keep]] = True
            probs = np.where(mask, probs, 0.0)
        total = probs.sum()
        if total <= 0:
            return int(row.argmax())
        return int(self._rng.choice(probs.size, p=probs / total))

    def sample_batch(self, logits: np.ndarray) -> np.ndarray:
        """Draw one token per row of a ``(batch, vocab)`` logits matrix."""
        matrix = np.atleast_2d(np.asarray(logits))
        return np.array([self.sample(row) for row in matrix], dtype=np.int64)
