"""Paged KV cache: fixed-size token blocks from a refcounted shared pool.

The contiguous :class:`~repro.llm.kv_cache.LayerKVCache` preallocates
``batch x capacity`` for every slot and copies the whole prompt prefix on
``fork`` — exactly the rpcmem waste that caps the candidate count N on
Snapdragon 8 Gen 2 (§7.2.1).  This module replaces that backing with a
vLLM-style block table:

* KV storage is split into fixed-size *token blocks* (default 16 tokens)
  allocated from a :class:`BlockPool` shared by every layer and charged
  against the NPU session's rpcmem budget;
* ``fork`` becomes copy-on-write sharing: targets reference the source's
  blocks and only the block a candidate actually writes into is copied
  (one partial tail block per fork, not the whole prompt);
* a candidate that terminates frees its private blocks immediately, so a
  scheduler can admit a new candidate into the vacated slot
  mid-generation (waved Best-of-N).

Numerics are bitwise identical to the contiguous caches: blocks store
the same FP16 (or INT8 + FP16-scale) values and ``view`` reassembles the
same prefix, which ``tests/differential`` asserts token-for-token.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import EngineError, KVPoolExhausted
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .kv_cache import QuantizedLayerKVCache

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockPool",
    "PagedLayerKVCache",
    "QuantizedPagedLayerKVCache",
    "PagedKVCache",
    "SequenceSnapshot",
]

DEFAULT_BLOCK_SIZE = 16


class BlockPool:
    """Refcounted accountant for KV blocks shared across layers.

    The pool hands out integer block handles and charges their bytes
    against a fixed capacity (optionally backed by an rpcmem mapping so
    the NPU VA budget enforces it).  Layers own the actual block storage;
    the pool owns lifetime: a handle is live while its refcount is
    positive, and every byte of a live handle counts toward
    ``used_bytes`` exactly once no matter how many sequences share it.
    """

    def __init__(self, capacity_bytes: int,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 heap=None, name: str = "kv-pool") -> None:
        if capacity_bytes <= 0:
            raise EngineError(
                f"pool capacity must be positive, got {capacity_bytes}")
        if block_size <= 0:
            raise EngineError(f"block size must be positive, got {block_size}")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.name = name
        self.backing = None
        if heap is not None:
            # raises AddressSpaceError when the session cannot hold it
            self.backing = heap.alloc(capacity_bytes, name=name)
        self._refcounts: Dict[int, int] = {}
        self._handle_nbytes: Dict[int, int] = {}
        self._next_handle = 0
        self.used_bytes = 0
        self.peak_bytes = 0
        self.cow_copies = 0
        self.total_allocated = 0
        # optional repro.resilience.FaultInjector; fires alloc_fail
        # events at the "kv_pool.alloc" site when set
        self.fault_injector = None

    # ------------------------------------------------------------------
    @property
    def blocks_in_use(self) -> int:
        return len(self._refcounts)

    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def refcount(self, handle: int) -> int:
        try:
            return self._refcounts[handle]
        except KeyError:
            raise EngineError(f"block {handle} is not live") from None

    def live_handles(self) -> Dict[int, int]:
        """Live handle -> refcount (invariant checks in tests)."""
        return dict(self._refcounts)

    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        """Allocate one block of ``nbytes`` with refcount 1."""
        if nbytes <= 0:
            raise EngineError(f"block bytes must be positive, got {nbytes}")
        if self.fault_injector is not None:
            self.fault_injector.maybe_raise(
                "kv_pool.alloc",
                detail=f"requested {nbytes} bytes, {self.free_bytes()} free "
                       f"of {self.capacity_bytes}, peak {self.peak_bytes}, "
                       f"{self.blocks_in_use} blocks live")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise KVPoolExhausted(
                f"KV block pool exhausted: need {nbytes} bytes, "
                f"{self.free_bytes()} free of {self.capacity_bytes}, "
                f"peak {self.peak_bytes}, {self.blocks_in_use} blocks live")
        handle = self._next_handle
        self._next_handle += 1
        self._refcounts[handle] = 1
        self._handle_nbytes[handle] = nbytes
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.total_allocated += 1
        self._publish()
        return handle

    def incref(self, handle: int) -> None:
        self._refcounts[handle] = self.refcount(handle) + 1

    def decref(self, handle: int) -> bool:
        """Drop one reference; returns True when the block was freed.

        Decrefing a dead handle is a double-free and raises
        :class:`~repro.errors.EngineError`.
        """
        count = self.refcount(handle) - 1
        if count == 0:
            del self._refcounts[handle]
            self.used_bytes -= self._handle_nbytes.pop(handle)
            self._publish()
            return True
        self._refcounts[handle] = count
        return False

    def note_cow(self) -> None:
        """Record one copy-on-write block divergence."""
        self.cow_copies += 1
        if obs_trace.enabled():
            obs_metrics.get_metrics().counter("repro.kv.cow_copies").inc()

    def _publish(self) -> None:
        if obs_trace.enabled():
            reg = obs_metrics.get_metrics()
            reg.gauge("repro.kv.blocks_in_use").set(self.blocks_in_use)
            reg.gauge("repro.kv.used_bytes").set(self.used_bytes)


class PagedLayerKVCache:
    """Block-table KV storage for one layer (FP16 blocks).

    Interface-compatible with :class:`~repro.llm.kv_cache.LayerKVCache`
    (``append`` / ``view`` / ``fork`` / ``truncate`` plus ``lengths``),
    so :meth:`NPUTransformer.forward` runs unmodified on either backing.
    """

    def __init__(self, batch: int, capacity: int, n_kv_heads: int,
                 head_dim: int, pool: BlockPool) -> None:
        if min(batch, capacity, n_kv_heads, head_dim) <= 0:
            raise EngineError("all KV cache dimensions must be positive")
        self.batch = batch
        self.capacity = capacity
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.pool = pool
        self.block_size = pool.block_size
        self.tables: List[List[int]] = [[] for _ in range(batch)]
        self.lengths = np.zeros(batch, dtype=np.int64)
        self._storage: Dict[int, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # storage layout (overridden by the quantized variant)
    # ------------------------------------------------------------------
    def block_nbytes(self) -> int:
        """Bytes of one block: K and V, FP16."""
        return 2 * self.block_size * self.n_kv_heads * self.head_dim * 2

    def _empty_block(self) -> Dict[str, np.ndarray]:
        shape = (self.block_size, self.n_kv_heads, self.head_dim)
        return {"k": np.zeros(shape, dtype=np.float16),
                "v": np.zeros(shape, dtype=np.float16)}

    def _write_block(self, storage: Dict[str, np.ndarray], offset: int,
                     k, v, start: int, n: int) -> None:
        storage["k"][offset:offset + n] = k[start:start + n]
        storage["v"][offset:offset + n] = v[start:start + n]

    def _assemble(self, seq: int) -> Tuple[np.ndarray, np.ndarray]:
        n = int(self.lengths[seq])
        if n == 0:
            shape = (0, self.n_kv_heads, self.head_dim)
            return (np.zeros(shape, dtype=np.float16),
                    np.zeros(shape, dtype=np.float16))
        blocks = [self._storage[h] for h in self.tables[seq]]
        keys = np.concatenate([b["k"] for b in blocks])[:n]
        values = np.concatenate([b["v"] for b in blocks])[:n]
        return keys, values

    def _prepare(self, k: np.ndarray, v: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert an incoming chunk to the stored representation."""
        return (np.asarray(k, dtype=np.float16),
                np.asarray(v, dtype=np.float16))

    # ------------------------------------------------------------------
    # block-table plumbing
    # ------------------------------------------------------------------
    def _check_seq(self, seq: int) -> None:
        if not 0 <= seq < self.batch:
            raise EngineError(
                f"sequence {seq} out of range (batch {self.batch})")

    def _new_block(self) -> int:
        handle = self.pool.alloc(self.block_nbytes())
        self._storage[handle] = self._empty_block()
        return handle

    def _release(self, handle: int) -> None:
        if self.pool.decref(handle):
            del self._storage[handle]

    def _writable_block(self, seq: int, block_idx: int) -> int:
        """The block at ``block_idx``, copied first when shared (CoW)."""
        handle = self.tables[seq][block_idx]
        if self.pool.refcount(handle) == 1:
            return handle
        fresh = self._new_block()
        for key, array in self._storage[handle].items():
            self._storage[fresh][key][:] = array
        self.tables[seq][block_idx] = fresh
        self._release(handle)
        self.pool.note_cow()
        return fresh

    # ------------------------------------------------------------------
    # LayerKVCache interface
    # ------------------------------------------------------------------
    def append(self, seq: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``(tokens, kv_heads, head_dim)`` blocks for one sequence."""
        self._check_seq(seq)
        k = np.asarray(k, dtype=np.float16)
        v = np.asarray(v, dtype=np.float16)
        expected = (self.n_kv_heads, self.head_dim)
        if k.shape != v.shape or k.shape[1:] != expected:
            raise EngineError(
                f"KV block shape {k.shape} incompatible with cache "
                f"(batch, capacity, {self.n_kv_heads}, {self.head_dim})")
        n = k.shape[0]
        start = int(self.lengths[seq])
        if start + n > self.capacity:
            raise EngineError(
                f"KV cache overflow: {start} + {n} > capacity {self.capacity}")
        k_store, v_store = self._prepare(k, v)
        pos = start
        written = 0
        table = self.tables[seq]
        while written < n:
            block_idx, offset = divmod(pos, self.block_size)
            if block_idx == len(table):
                table.append(self._new_block())
                handle = table[block_idx]
            else:
                handle = self._writable_block(seq, block_idx)
            take = min(self.block_size - offset, n - written)
            self._write_block(self._storage[handle], offset,
                              k_store, v_store, written, take)
            pos += take
            written += take
        self.lengths[seq] = start + n

    def view(self, seq: int) -> Tuple[np.ndarray, np.ndarray]:
        """The valid K/V prefix of one sequence (FP16)."""
        self._check_seq(seq)
        return self._assemble(seq)

    def fork(self, source: int, targets: List[int]) -> None:
        """Share one sequence's blocks into other slots (CoW, no copy)."""
        self._check_seq(source)
        for t in targets:
            if not 0 <= t < self.batch:
                raise EngineError(f"fork target {t} out of range")
            if t == source:
                continue
            self.free(t)
            for handle in self.tables[source]:
                self.pool.incref(handle)
            self.tables[t] = list(self.tables[source])
            self.lengths[t] = self.lengths[source]

    def truncate(self, seq: int, length: int) -> None:
        """Roll a sequence back to ``length`` tokens, freeing whole blocks."""
        self._check_seq(seq)
        if length < 0 or length > int(self.lengths[seq]):
            raise EngineError(
                f"cannot truncate sequence {seq} to {length} "
                f"(current {int(self.lengths[seq])})")
        keep = -(-length // self.block_size)
        table = self.tables[seq]
        for handle in table[keep:]:
            self._release(handle)
        self.tables[seq] = table[:keep]
        self.lengths[seq] = length

    def free(self, seq: int) -> None:
        """Release every block a sequence references."""
        self._check_seq(seq)
        for handle in self.tables[seq]:
            self._release(handle)
        self.tables[seq] = []
        self.lengths[seq] = 0

    # ------------------------------------------------------------------
    def nbytes_used(self) -> int:
        """Bytes of distinct live blocks referenced by this layer."""
        distinct = {h for table in self.tables for h in table}
        return len(distinct) * self.block_nbytes()


class QuantizedPagedLayerKVCache(PagedLayerKVCache):
    """INT8 paged blocks with one FP16 scale per (token, head) vector.

    Quantization is per token-row (matching
    :class:`~repro.llm.kv_cache.QuantizedLayerKVCache` exactly), so
    splitting a chunk across blocks produces bit-identical codes and
    scales to the contiguous INT8 cache.
    """

    def block_nbytes(self) -> int:
        codes = 2 * self.block_size * self.n_kv_heads * self.head_dim
        scales = 2 * self.block_size * self.n_kv_heads * 2
        return codes + scales

    def _empty_block(self) -> Dict[str, np.ndarray]:
        shape = (self.block_size, self.n_kv_heads, self.head_dim)
        return {"k": np.zeros(shape, dtype=np.int8),
                "v": np.zeros(shape, dtype=np.int8),
                "k_scale": np.zeros(shape[:2], dtype=np.float16),
                "v_scale": np.zeros(shape[:2], dtype=np.float16)}

    def _prepare(self, k: np.ndarray, v: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
        k_codes, k_scales = QuantizedLayerKVCache._quantize(k)
        v_codes, v_scales = QuantizedLayerKVCache._quantize(v)
        # stash scales alongside the codes for _write_block
        return ((k_codes, k_scales), (v_codes, v_scales))

    def _write_block(self, storage: Dict[str, np.ndarray], offset: int,
                     k, v, start: int, n: int) -> None:
        k_codes, k_scales = k
        v_codes, v_scales = v
        storage["k"][offset:offset + n] = k_codes[start:start + n]
        storage["v"][offset:offset + n] = v_codes[start:start + n]
        storage["k_scale"][offset:offset + n] = k_scales[start:start + n]
        storage["v_scale"][offset:offset + n] = v_scales[start:start + n]

    def _assemble(self, seq: int) -> Tuple[np.ndarray, np.ndarray]:
        n = int(self.lengths[seq])
        if n == 0:
            shape = (0, self.n_kv_heads, self.head_dim)
            return (np.zeros(shape, dtype=np.float16),
                    np.zeros(shape, dtype=np.float16))
        blocks = [self._storage[h] for h in self.tables[seq]]
        k_codes = np.concatenate([b["k"] for b in blocks])[:n]
        v_codes = np.concatenate([b["v"] for b in blocks])[:n]
        k_scales = np.concatenate([b["k_scale"] for b in blocks])[:n]
        v_scales = np.concatenate([b["v_scale"] for b in blocks])[:n]
        k = (k_codes.astype(np.float32)
             * k_scales.astype(np.float32)[..., None])
        v = (v_codes.astype(np.float32)
             * v_scales.astype(np.float32)[..., None])
        return k.astype(np.float16), v.astype(np.float16)


@dataclass
class SequenceSnapshot:
    """A pinned reference to one sequence's block tables (all layers).

    Taking a snapshot increfs every referenced block, so the prompt
    prefix stays resident even after every candidate slot has been freed
    — the scheduler restores it into vacated slots to admit new
    candidates mid-generation.  Release with
    :meth:`PagedKVCache.release_snapshot`.
    """

    tables: List[List[int]] = field(default_factory=list)
    length: int = 0
    released: bool = False


class PagedKVCache:
    """Stack of per-layer paged caches over one shared :class:`BlockPool`.

    Drop-in for :class:`~repro.llm.kv_cache.KVCache`: the engine and the
    model only use ``__getitem__`` / ``sequence_length`` / ``fork`` /
    ``truncate``, all provided here with block-table semantics.
    """

    def __init__(self, n_layers: int, batch: int, capacity: int,
                 n_kv_heads: int, head_dim: int, dtype: str = "fp16",
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 pool: Optional[BlockPool] = None, heap=None) -> None:
        if dtype == "fp16":
            layer_cls = PagedLayerKVCache
        elif dtype == "q8":
            layer_cls = QuantizedPagedLayerKVCache
        else:
            raise EngineError(f"unknown KV cache dtype {dtype!r}")
        if pool is None:
            probe = layer_cls(1, capacity, n_kv_heads, head_dim,
                              BlockPool(1, block_size))
            blocks_per_seq = -(-capacity // block_size)
            # budget one sequence beyond the batch: a pinned snapshot
            # (the scheduler's prompt anchor) holds at most one
            # sequence's worth of blocks on top of the live slots
            capacity_bytes = (n_layers * (batch + 1) * blocks_per_seq
                              * probe.block_nbytes())
            pool = BlockPool(capacity_bytes, block_size, heap=heap)
        self.pool = pool
        self.layers = [layer_cls(batch, capacity, n_kv_heads, head_dim, pool)
                       for _ in range(n_layers)]
        self.batch = batch
        self.capacity = capacity
        self.dtype = dtype

    def __getitem__(self, layer: int) -> PagedLayerKVCache:
        return self.layers[layer]

    def __len__(self) -> int:
        return len(self.layers)

    def sequence_length(self, seq: int) -> int:
        return int(self.layers[0].lengths[seq])

    def fork(self, source: int, targets: List[int]) -> None:
        for layer in self.layers:
            layer.fork(source, targets)

    def truncate(self, seq: int, length: int) -> None:
        for layer in self.layers:
            layer.truncate(seq, length)

    def free_sequence(self, seq: int) -> None:
        """Release a retired candidate's blocks so a new one can admit."""
        for layer in self.layers:
            layer.free(seq)

    def nbytes(self) -> int:
        """Live pool bytes (contiguous caches report full preallocation)."""
        return self.pool.used_bytes

    # ------------------------------------------------------------------
    # snapshots (scheduler admission)
    # ------------------------------------------------------------------
    def snapshot_sequence(self, seq: int) -> SequenceSnapshot:
        """Pin a sequence's current blocks for later restoration."""
        tables = []
        for layer in self.layers:
            table = list(layer.tables[seq])
            for handle in table:
                self.pool.incref(handle)
            tables.append(table)
        return SequenceSnapshot(tables=tables,
                                length=self.sequence_length(seq))

    def restore_sequence(self, seq: int, snapshot: SequenceSnapshot) -> None:
        """Install a snapshot into a slot (shares blocks, CoW on write)."""
        if snapshot.released:
            raise EngineError("cannot restore a released snapshot")
        for layer, table in zip(self.layers, snapshot.tables):
            layer.free(seq)
            for handle in table:
                self.pool.incref(handle)
            layer.tables[seq] = list(table)
            layer.lengths[seq] = snapshot.length

    def release_snapshot(self, snapshot: SequenceSnapshot) -> None:
        """Drop the snapshot's pins; storage is reclaimed when unshared."""
        if snapshot.released:
            raise EngineError("snapshot already released")
        for layer, table in zip(self.layers, snapshot.tables):
            for handle in table:
                layer._release(handle)
        snapshot.released = True
