"""Byte-level toy tokenizer for examples and integration tests.

The reproduction uses synthetic weights, so no trained vocabulary exists;
a reversible byte-level tokenizer keeps the examples runnable end-to-end
(prompt in, text out) while exercising the same token-id plumbing a real
tokenizer would.
"""

from __future__ import annotations

from typing import List

from ..errors import ModelConfigError

__all__ = ["ByteTokenizer"]


class ByteTokenizer:
    """Maps text to byte values plus BOS/EOS specials.

    Token ids 0-255 are raw bytes; ``bos_id`` = 256 and ``eos_id`` = 257.
    Requires a model vocabulary of at least 258 entries.
    """

    N_SPECIALS = 2

    def __init__(self, vocab_size: int = 512) -> None:
        if vocab_size < 256 + self.N_SPECIALS:
            raise ModelConfigError(
                f"byte tokenizer needs a vocab of >= {256 + self.N_SPECIALS}, "
                f"got {vocab_size}")
        self.vocab_size = vocab_size
        self.bos_id = 256
        self.eos_id = 257

    def encode(self, text: str, add_bos: bool = True) -> List[int]:
        ids = list(text.encode("utf-8"))
        return [self.bos_id] + ids if add_bos else ids

    def decode(self, ids: List[int]) -> str:
        payload = bytes(i for i in ids if 0 <= i < 256)
        return payload.decode("utf-8", errors="replace")
