"""Inference engine: prefill/decode scheduling and device placement.

Mirrors the paper's system structure (§6): the NPU runs projection GEMMs
and attention; the CPU keeps embeddings and the lm_head; rpcmem shared
buffers hold weights, KV cache and activations, all charged against the
NPU session's virtual address space (which is what prevents 3B-parameter
models from running on Snapdragon 8 Gen 2 — §7.2.1/7.2.2).

The engine supports the batched decode that test-time scaling needs:
one shared-prompt prefill, a fork into N candidate sequences, then
lock-step batch decode where each step is a single batch-N forward pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import EngineError
from ..npu.memory import MultiSessionHeap, RpcMemHeap
from ..npu.power_mgmt import GOVERNORS, PowerGovernor, apply_governor
from ..npu.soc import Device
from ..npu.timing import TimingModel
from ..obs import energy as obs_energy
from ..obs import metrics as obs_metrics
from ..obs import timeline as obs_timeline
from ..obs import trace as obs_trace
from .kv_cache import KVCache
from .model import NPUTransformer, StepCost
from .sampler import Sampler

__all__ = ["GenerationResult", "InferenceEngine"]

@dataclass
class GenerationResult:
    """Tokens plus cost bookkeeping for one generation call."""

    sequences: List[List[int]]
    prefill_cost: StepCost
    decode_costs: List[StepCost] = field(default_factory=list)
    n_generated_tokens: List[int] = field(default_factory=list)
    prompt_tokens: int = 0
    sim_seconds: float = 0.0
    joules: float = 0.0

    @property
    def n_decode_steps(self) -> int:
        return len(self.decode_costs)

    @property
    def tokens_per_joule(self) -> float:
        """Sampled tokens per simulated joule (0.0 when unmetered)."""
        return obs_energy.tokens_per_joule(self.total_generated_tokens,
                                           self.joules)

    @property
    def total_generated_tokens(self) -> int:
        """Sampled tokens across all candidate sequences."""
        return sum(self.n_generated_tokens)

    def tokens_per_candidate(self) -> List[int]:
        """Sampled-token count of each candidate sequence, in slot order.

        Falls back to sequence lengths when the per-sequence counts were
        not recorded (results built by hand in tests); hand-built
        sequences may include the prompt, so ``prompt_tokens`` is
        subtracted in the fallback to keep cost accounting honest.
        """
        if self.n_generated_tokens:
            return list(self.n_generated_tokens)
        return [max(len(seq) - self.prompt_tokens, 0)
                for seq in self.sequences]


class InferenceEngine:
    """Drives an :class:`NPUTransformer` through prefill and batch decode."""

    def __init__(self, model: NPUTransformer, batch: int, max_context: int,
                 device: Optional[Device] = None, n_sessions: int = 1,
                 kv_backend: str = "contiguous", kv_dtype: str = "fp16",
                 kv_block_size: int = 16) -> None:
        if batch <= 0 or max_context <= 0:
            raise EngineError(
                f"batch/context must be positive, got {batch}/{max_context}")
        if n_sessions <= 0:
            raise EngineError(f"need at least one NPU session, got {n_sessions}")
        if kv_backend not in ("contiguous", "paged"):
            raise EngineError(
                f"unknown KV backend {kv_backend!r}; "
                "expected 'contiguous' or 'paged'")
        self.model = model
        self.batch = batch
        self.max_context = max_context
        self.device = device
        self.n_sessions = n_sessions
        self.kv_backend = kv_backend
        self.kv_dtype = kv_dtype
        self.kv_block_size = kv_block_size
        self.cache = self._build_cache()
        self.heap: Optional[MultiSessionHeap] = None
        if device is not None:
            self._map_buffers(device)
        self.governor: PowerGovernor = GOVERNORS["performance"]
        self._timing = TimingModel(device.npu) if device is not None else None
        # deferred import: perf.power pulls in the latency model stack,
        # which imports llm.config — importing it at module scope would
        # cycle back into this package
        from ..perf.power import PowerBudget
        self.energy_model = obs_energy.EnergyModel(PowerBudget(),
                                                   self._timing)
        reg = obs_metrics.get_metrics()
        self._tokens_counter = reg.counter("repro.engine.generated_tokens")
        self._step_latency = reg.histogram("repro.engine.decode_step_seconds")
        self._tokens_per_second = reg.gauge("repro.engine.tokens_per_second")

    def _map_buffers(self, device: Device) -> None:
        """Map weights, KV cache and workspace into the NPU VA space.

        Raises :class:`~repro.errors.AddressSpaceError` when a session
        does not fit — the 8 Gen 2 failure mode for >= 3B models.  With
        ``n_sessions > 1`` the weights and KV cache shard across sessions
        (the paper's §8c mitigation).
        """
        cfg = self.model.config
        heap = MultiSessionHeap(self.n_sessions, device.npu.npu_va_space_bytes)
        heap.alloc_sharded(cfg.npu_weight_bytes(), name=f"{cfg.name}-weights")
        heap.alloc_sharded(cfg.kv_cache_bytes(self.max_context, self.batch),
                           name=f"{cfg.name}-kv")
        for i in range(self.n_sessions):
            heap.sessions[i].alloc(cfg.NPU_WORKSPACE_BYTES,
                                   name=f"workspace[{i}]")
        self.heap = heap

    # ------------------------------------------------------------------
    def _build_cache(self):
        if self.kv_backend == "paged":
            return self.model.new_paged_cache(
                self.batch, self.max_context, dtype=self.kv_dtype,
                block_size=self.kv_block_size)
        return self.model.new_cache(self.batch, self.max_context,
                                    dtype=self.kv_dtype)

    def reset(self) -> None:
        """Drop all cached sequences."""
        self.cache = self._build_cache()

    def set_governor(self, governor: "PowerGovernor | str") -> PowerGovernor:
        """Move the NPU session to a DVFS operating point (§7.2.3).

        Thermal throttling events force the governor down; the timing
        model is rebuilt from the rescaled generation parameters so
        every subsequent step cost reflects the lower clock.  Returns
        the governor that was active before the change.
        """
        previous = self.governor
        if isinstance(governor, str):
            if governor not in GOVERNORS:
                raise EngineError(
                    f"unknown governor {governor!r}; "
                    f"known: {sorted(GOVERNORS)}")
            governor = GOVERNORS[governor]
        self.governor = governor
        if self.device is not None:
            self._timing = TimingModel(
                apply_governor(self.device.npu, governor))
            self.energy_model.timing = self._timing
        return previous

    def _cpu_seconds(self, cost: StepCost) -> float:
        """CPU time of a step's lm_head GEMMs (0 without a device)."""
        if self.device is None:
            return 0.0
        return sum(self.device.cpu.gemm_seconds(m, k, n)
                   for m, k, n in cost.cpu_gemms)

    def _step_seconds(self, cost: StepCost, wall_seconds: float) -> float:
        """Simulated step latency, or host wall clock without a device.

        Without a device the host wall clock stands in for step time;
        a throttled governor stretches it by the inverse clock scale so
        chaos runs still see slower steps (performance mode divides by
        1.0 and is bitwise neutral).
        """
        if self._timing is None:
            return wall_seconds / self.governor.clock_scale
        return self._timing.seconds(cost.npu) + self._cpu_seconds(cost)

    def step_energy(self, cost: Optional[StepCost],
                    step_seconds: float) -> "obs_energy.EnergyBreakdown":
        """Simulated joules of one step under the active governor.

        Per-engine seconds come from the (possibly throttled) timing
        model; the governor's ``power_scale`` discounts the dynamic NPU
        terms so a throttled step is slower *and* cheaper per second,
        as the DVFS ladder intends.
        """
        return self.energy_model.step_energy(
            cost.npu if cost is not None else None,
            self._cpu_seconds(cost) if cost is not None else 0.0,
            step_seconds, power_scale=self.governor.power_scale)

    def prefill(self, prompt: Sequence[int], seq: int = 0) -> "tuple[np.ndarray, StepCost]":
        """Run the prompt through sequence slot ``seq``.

        Returns the logits of the *last* prompt token and the step cost.
        """
        prompt = list(prompt)
        if not prompt:
            raise EngineError("cannot prefill an empty prompt")
        if len(prompt) + 1 > self.max_context:
            raise EngineError(
                f"prompt of {len(prompt)} tokens exceeds context {self.max_context}")
        tokens = np.asarray(prompt, dtype=np.int64)[np.newaxis, :]
        with obs_trace.span("engine.prefill", category="engine",
                            n_tokens=len(prompt), seq=seq) as sp:
            logits, cost = self.model.forward(tokens, self.cache,
                                              sequences=[seq],
                                              stable_lm_head=True)
            sp.set(cpu_seconds=self._cpu_seconds(cost))
        return logits[0, -1], cost

    def prefill_chunk(self, chunk: Sequence[int], seq: int = 0
                      ) -> "tuple[np.ndarray, StepCost]":
        """Run one prompt chunk through slot ``seq``, continuing the slot.

        Chunked prefill feeds a long prompt through the TCM-sized
        windows the pipeline actually processes.  RoPE positions come
        from the slot's current cached length, so running a prompt as
        one call or as consecutive chunks computes the *same* per-token
        forward passes — the bitwise parity the ``prefill.chunked``
        oracle locks down.  Returns the logits of the chunk's last
        token and the chunk's step cost.
        """
        chunk = list(chunk)
        if not chunk:
            raise EngineError("cannot prefill an empty chunk")
        cached = self.cache.sequence_length(seq)
        if cached + len(chunk) + 1 > self.max_context:
            raise EngineError(
                f"chunk of {len(chunk)} tokens on {cached} cached exceeds "
                f"context {self.max_context}")
        tokens = np.asarray(chunk, dtype=np.int64)[np.newaxis, :]
        with obs_trace.span("engine.prefill_chunk", category="engine",
                            n_tokens=len(chunk), seq=seq,
                            cached=cached) as sp:
            logits, cost = self.model.forward(tokens, self.cache,
                                              sequences=[seq],
                                              stable_lm_head=True)
            sp.set(cpu_seconds=self._cpu_seconds(cost))
        return logits[0, -1], cost

    def offloaded_step_energy(self, step_seconds: float
                              ) -> "obs_energy.EnergyBreakdown":
        """Joules of a step whose compute ran off-NPU (CPU/GPU dispatch).

        The NPU's dynamic DMA/HMX/HVX terms are zero; the platform base
        power plus a fully-busy CPU term cover the step, so dispatching
        a stage off the NPU changes the energy attribution along with
        the latency.
        """
        return self.energy_model.step_energy(
            None, step_seconds, step_seconds,
            power_scale=self.governor.power_scale)

    def fork_prompt(self, source: int = 0,
                    targets: Optional[List[int]] = None) -> None:
        """Share one prefilled prompt across candidate slots."""
        if targets is None:
            targets = [i for i in range(self.batch) if i != source]
        self.cache.fork(source, targets)

    def rebuild_sequence(self, slot: int, tokens: Sequence[int]
                         ) -> Optional[StepCost]:
        """Recompute the KV entries of already-sampled tokens (recovery).

        After a session abort destroys NPU-side KV state, the scheduler
        restores the prompt prefix from a block-pool snapshot and calls
        this to re-prefill the candidate's decoded tokens into ``slot``.
        The forward pass is deterministic, so the rebuilt KV continues
        the sequence exactly; the sampler is never consulted (the
        tokens are already chosen).  Returns the re-prefill cost, or
        ``None`` when there is nothing to rebuild.
        """
        tokens = [int(t) for t in tokens]
        if not tokens:
            return None
        token_arr = np.asarray(tokens, dtype=np.int64)[np.newaxis, :]
        with obs_trace.span("engine.rebuild_sequence", category="engine",
                            slot=slot, n_tokens=len(tokens)) as sp:
            _, cost = self.model.forward(token_arr, self.cache,
                                         sequences=[slot])
            sp.set(cpu_seconds=self._cpu_seconds(cost))
        return cost

    def decode_step(self, tokens: Sequence[int],
                    sequences: Optional[List[int]] = None
                    ) -> "tuple[np.ndarray, StepCost]":
        """One lock-step decode: one new token per listed sequence.

        Returns ``(batch, vocab)`` logits and the step cost.  This is the
        workload whose batch dimension rides the idle HMX capacity.
        """
        token_arr = np.asarray(list(tokens), dtype=np.int64)[:, np.newaxis]
        wall_start = time.perf_counter()
        with obs_trace.span("engine.decode_step", category="engine",
                            batch=token_arr.shape[0]) as sp:
            logits, cost = self.model.forward(token_arr, self.cache,
                                              sequences=sequences)
            sp.set(cpu_seconds=self._cpu_seconds(cost))
        self._step_latency.observe(
            self._step_seconds(cost, time.perf_counter() - wall_start))
        return logits[:, 0, :], cost

    # ------------------------------------------------------------------
    def generate(self, prompt: Sequence[int], max_new_tokens: int,
                 sampler: Optional[Sampler] = None,
                 n_candidates: Optional[int] = None,
                 eos_id: Optional[int] = None) -> GenerationResult:
        """Prefill once, fork, then batch-decode N candidate continuations."""
        if max_new_tokens <= 0:
            raise EngineError(f"max_new_tokens must be positive, got {max_new_tokens}")
        n = self.batch if n_candidates is None else n_candidates
        if n > self.batch:
            raise EngineError(f"{n} candidates exceed engine batch {self.batch}")
        if len(prompt) + max_new_tokens > self.max_context:
            raise EngineError(
                f"prompt {len(prompt)} + {max_new_tokens} new tokens exceed "
                f"context {self.max_context}")
        sampler = sampler if sampler is not None else Sampler(temperature=0.8)
        self.reset()

        with obs_trace.span("engine.generate", category="engine",
                            prompt_tokens=len(prompt),
                            max_new_tokens=max_new_tokens,
                            n_candidates=n):
            wall_start = time.perf_counter()
            last_logits, prefill_cost = self.prefill(prompt, seq=0)
            prefill_seconds = self._step_seconds(
                prefill_cost, time.perf_counter() - wall_start)
            prefill_energy = self.step_energy(prefill_cost, prefill_seconds)
            if obs_timeline.timeline_enabled():
                obs_timeline.emit("prefill", prefill_seconds,
                                  seconds=prefill_seconds,
                                  n_tokens=len(prompt),
                                  joules=prefill_energy.joules)
            if n > 1:
                with obs_trace.span("engine.fork", category="engine",
                                    n_targets=n - 1):
                    self.fork_prompt(0, list(range(1, n)))

            sequences = list(range(n))
            current = [int(t) for t in sampler.sample_batch(
                np.tile(last_logits, (n, 1)))]
            outputs: List[List[int]] = [[t] for t in current]
            finished = [eos_id is not None and t == eos_id for t in current]
            result = GenerationResult(sequences=outputs,
                                      prefill_cost=prefill_cost,
                                      n_generated_tokens=[1] * n,
                                      prompt_tokens=len(prompt))

            decode_seconds = 0.0
            joules = prefill_energy.joules
            for step_index in range(max_new_tokens - 1):
                if all(finished):
                    break
                wall_start = time.perf_counter()
                logits, cost = self.decode_step(current, sequences)
                step_seconds = self._step_seconds(
                    cost, time.perf_counter() - wall_start)
                decode_seconds += step_seconds
                step_energy = self.step_energy(cost, step_seconds)
                joules += step_energy.joules
                if obs_timeline.timeline_enabled():
                    obs_timeline.emit(
                        "decode_step", prefill_seconds + decode_seconds,
                        step=step_index, seconds=step_seconds,
                        live_batch=sum(1 for f in finished if not f),
                        joules=step_energy.joules)
                result.decode_costs.append(cost)
                next_tokens = sampler.sample_batch(logits)
                for i in range(n):
                    if finished[i]:
                        continue
                    token = int(next_tokens[i])
                    outputs[i].append(token)
                    current[i] = token
                    result.n_generated_tokens[i] += 1
                    if eos_id is not None and token == eos_id:
                        finished[i] = True

            self._tokens_counter.inc(result.total_generated_tokens)
            result.sim_seconds = prefill_seconds + decode_seconds
            result.joules = joules
            if obs_timeline.timeline_enabled():
                for i in range(n):
                    obs_timeline.emit("complete", result.sim_seconds,
                                      request_id=i, reason="eos"
                                      if finished[i] else "length",
                                      tokens=result.n_generated_tokens[i])
            if decode_seconds > 0.0:
                decoded = result.total_generated_tokens - n
                self._tokens_per_second.set(max(decoded, 0) / decode_seconds)
        return result
