"""Continuous-batching decode scheduler over the paged KV block pool.

The lock-step :meth:`InferenceEngine.generate` decodes every candidate
until the *slowest* one finishes: a candidate that hits EOS keeps
occupying its batch slot (and its KV memory) doing dead work.  This
scheduler instead drives the engine step-by-step over a
:class:`~repro.llm.block_pool.PagedKVCache`:

* the prompt is prefilled once and pinned as a block-table snapshot;
* candidates are admitted into free slots by copy-on-write sharing the
  prompt blocks (no KV copy);
* a candidate that terminates (EOS or its token budget) frees its
  private blocks immediately and the scheduler admits the next pending
  candidate into the vacated slot *mid-generation* — waved Best-of-N
  that keeps the NPU batch full until the total candidate budget N is
  drained, even when N exceeds the engine batch;
* each step is charged at the *live* batch size through the engine's
  :class:`~repro.npu.timing.TimingModel` path, so the simulated time
  reflects the reclaimed slots.

:func:`plan_waves` is the closed-form counterpart used by the TTS layer:
given candidate lengths it computes the continuous-batching makespan
versus sequential lock-step waves without running the engine.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import EngineError
from ..npu.timing import SimClock
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .block_pool import PagedKVCache
from .engine import GenerationResult, InferenceEngine
from .sampler import Sampler

__all__ = ["CandidateOutput", "ScheduledGeneration", "WavePlan",
           "plan_waves", "ContinuousBatchingScheduler"]


@dataclass
class CandidateOutput:
    """Lifecycle record of one scheduled candidate."""

    candidate_id: int
    slot: int
    tokens: List[int]
    admitted_step: int
    finished_step: int
    finish_reason: str  # "eos" or "length"


@dataclass
class ScheduledGeneration(GenerationResult):
    """A :class:`GenerationResult` plus continuous-batching bookkeeping."""

    candidates: List[CandidateOutput] = field(default_factory=list)
    n_steps: int = 0
    n_admissions: int = 0
    peak_kv_bytes: int = 0
    cow_copies: int = 0
    live_batch_per_step: List[int] = field(default_factory=list)

    @property
    def mean_live_batch(self) -> float:
        if not self.live_batch_per_step:
            return 0.0
        return sum(self.live_batch_per_step) / len(self.live_batch_per_step)


@dataclass(frozen=True)
class WavePlan:
    """Makespan of N candidates on a batch-B engine, two disciplines.

    Steps are decode iterations of the whole batch; ``continuous_steps``
    backfills vacated slots immediately, ``lockstep_steps`` runs
    ``ceil(N / B)`` sequential waves each gated on its slowest member.
    """

    n_candidates: int
    batch: int
    continuous_steps: int
    lockstep_steps: int
    total_token_steps: int

    @property
    def steps_saved(self) -> int:
        return self.lockstep_steps - self.continuous_steps

    @property
    def speedup(self) -> float:
        if self.continuous_steps == 0:
            return 1.0
        return self.lockstep_steps / self.continuous_steps


def plan_waves(candidate_tokens: Sequence[int], batch: int) -> WavePlan:
    """Compare continuous backfill against sequential lock-step waves.

    ``candidate_tokens`` are per-candidate decode lengths in admission
    order.  The continuous makespan list-schedules each candidate onto
    the earliest-free slot (greedy, the policy the real scheduler
    implements); the lock-step makespan sums per-wave maxima.
    """
    lengths = [int(n) for n in candidate_tokens]
    if not lengths or any(n <= 0 for n in lengths):
        raise EngineError(
            f"candidate token counts must be positive, got {lengths}")
    if batch <= 0:
        raise EngineError(f"batch must be positive, got {batch}")
    slots = [0] * min(batch, len(lengths))
    heapq.heapify(slots)
    makespan = 0
    for n in lengths:
        start = heapq.heappop(slots)
        heapq.heappush(slots, start + n)
        makespan = max(makespan, start + n)
    lockstep = sum(max(lengths[i:i + batch])
                   for i in range(0, len(lengths), batch))
    return WavePlan(n_candidates=len(lengths), batch=batch,
                    continuous_steps=makespan, lockstep_steps=lockstep,
                    total_token_steps=sum(lengths))


@dataclass
class _LiveCandidate:
    candidate_id: int
    slot: int
    tokens: List[int]
    budget: int
    admitted_step: int

    @property
    def last_token(self) -> int:
        return self.tokens[-1]


class ContinuousBatchingScheduler:
    """Waved Best-of-N decode over an engine with a paged KV cache."""

    def __init__(self, engine: InferenceEngine) -> None:
        if engine.kv_backend != "paged":
            raise EngineError(
                "the continuous-batching scheduler requires an engine with "
                "kv_backend='paged' (got "
                f"{engine.kv_backend!r})")
        self.engine = engine
        reg = obs_metrics.get_metrics()
        self._admissions = reg.counter("repro.scheduler.admissions")
        self._retired = reg.counter("repro.scheduler.retired")
        self._live_batch = reg.gauge("repro.scheduler.live_batch")

    # ------------------------------------------------------------------
    def generate(self, prompt: Sequence[int], n_candidates: int,
                 max_new_tokens: int, sampler: Optional[Sampler] = None,
                 eos_id: Optional[int] = None,
                 length_schedule: Optional[Sequence[int]] = None
                 ) -> ScheduledGeneration:
        """Decode ``n_candidates`` continuations, backfilling freed slots.

        ``length_schedule`` optionally caps each candidate's decode
        budget individually (candidate ``i`` gets ``length_schedule[i %
        len]`` tokens, at most ``max_new_tokens``) — the TTS workload
        where reasoning chains have heterogeneous lengths.
        """
        engine = self.engine
        if n_candidates <= 0:
            raise EngineError(
                f"candidate count must be positive, got {n_candidates}")
        if max_new_tokens <= 0:
            raise EngineError(
                f"max_new_tokens must be positive, got {max_new_tokens}")
        prompt = list(prompt)
        if len(prompt) + max_new_tokens > engine.max_context:
            raise EngineError(
                f"prompt {len(prompt)} + {max_new_tokens} new tokens exceed "
                f"context {engine.max_context}")
        budgets = self._budgets(n_candidates, max_new_tokens, length_schedule)
        sampler = sampler if sampler is not None else Sampler(temperature=0.8)
        engine.reset()
        cache = engine.cache
        assert isinstance(cache, PagedKVCache)
        clock = SimClock()

        result = ScheduledGeneration(sequences=[], prefill_cost=None,
                                     prompt_tokens=len(prompt))
        with obs_trace.span("scheduler.generate", category="scheduler",
                            prompt_tokens=len(prompt),
                            n_candidates=n_candidates,
                            batch=engine.batch,
                            max_new_tokens=max_new_tokens):
            wall = time.perf_counter()
            last_logits, prefill_cost = engine.prefill(prompt, seq=0)
            clock.advance(engine._step_seconds(prefill_cost,
                                               time.perf_counter() - wall))
            result.prefill_cost = prefill_cost
            anchor = cache.snapshot_sequence(0)
            # slot 0 still holds the prompt tokens; the first admission
            # restores the anchor over it, which is a refcount no-op
            cache.free_sequence(0)

            free_slots = list(range(engine.batch))
            live: Dict[int, _LiveCandidate] = {}
            finished: List[CandidateOutput] = []
            next_id = 0
            step = 0

            def admit() -> None:
                nonlocal next_id
                while free_slots and next_id < n_candidates:
                    slot = free_slots.pop(0)
                    with obs_trace.span("scheduler.admit",
                                        category="scheduler", slot=slot,
                                        candidate=next_id, step=step):
                        cache.restore_sequence(slot, anchor)
                        token = int(sampler.sample(last_logits))
                    candidate = _LiveCandidate(
                        candidate_id=next_id, slot=slot, tokens=[token],
                        budget=budgets[next_id], admitted_step=step)
                    next_id += 1
                    result.n_admissions += 1
                    self._admissions.inc()
                    if ((eos_id is not None and token == eos_id)
                            or candidate.budget == 1):
                        retire(candidate, "eos" if eos_id is not None
                               and token == eos_id else "length")
                    else:
                        live[slot] = candidate

            def retire(candidate: _LiveCandidate, reason: str) -> None:
                cache.free_sequence(candidate.slot)
                live.pop(candidate.slot, None)
                free_slots.append(candidate.slot)
                finished.append(CandidateOutput(
                    candidate_id=candidate.candidate_id,
                    slot=candidate.slot, tokens=candidate.tokens,
                    admitted_step=candidate.admitted_step,
                    finished_step=step, finish_reason=reason))
                self._retired.inc()

            admit()
            while live:
                slots = sorted(live)
                tokens = [live[s].last_token for s in slots]
                self._live_batch.set(len(slots))
                wall = time.perf_counter()
                with obs_trace.span("scheduler.step", category="scheduler",
                                    step=step, live_batch=len(slots),
                                    blocks_in_use=cache.pool.blocks_in_use):
                    logits, cost = engine.decode_step(tokens, slots)
                clock.advance(engine._step_seconds(
                    cost, time.perf_counter() - wall))
                result.decode_costs.append(cost)
                result.live_batch_per_step.append(len(slots))
                step += 1
                next_tokens = sampler.sample_batch(logits)
                for i, slot in enumerate(slots):
                    candidate = live[slot]
                    token = int(next_tokens[i])
                    candidate.tokens.append(token)
                    if eos_id is not None and token == eos_id:
                        retire(candidate, "eos")
                    elif len(candidate.tokens) >= candidate.budget:
                        retire(candidate, "length")
                admit()

            cache.release_snapshot(anchor)
            result.n_steps = step
            result.peak_kv_bytes = cache.pool.peak_bytes
            result.cow_copies = cache.pool.cow_copies
            result.sim_seconds = clock.total_seconds

        finished.sort(key=lambda c: c.candidate_id)
        result.candidates = finished
        result.sequences = [c.tokens for c in finished]
        result.n_generated_tokens = [len(c.tokens) for c in finished]
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _budgets(n_candidates: int, max_new_tokens: int,
                 length_schedule: Optional[Sequence[int]]) -> List[int]:
        if length_schedule is None:
            return [max_new_tokens] * n_candidates
        schedule = [int(b) for b in length_schedule]
        if not schedule or any(b <= 0 for b in schedule):
            raise EngineError(
                f"length schedule entries must be positive, got {schedule}")
        return [min(schedule[i % len(schedule)], max_new_tokens)
                for i in range(n_candidates)]
