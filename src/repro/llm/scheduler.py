"""Continuous-batching decode scheduler over the paged KV block pool.

The lock-step :meth:`InferenceEngine.generate` decodes every candidate
until the *slowest* one finishes: a candidate that hits EOS keeps
occupying its batch slot (and its KV memory) doing dead work.  This
scheduler instead drives the engine step-by-step over a
:class:`~repro.llm.block_pool.PagedKVCache`:

* the prompt is prefilled once and pinned as a block-table snapshot;
* candidates are admitted into free slots by copy-on-write sharing the
  prompt blocks (no KV copy);
* a candidate that terminates (EOS or its token budget) frees its
  private blocks immediately and the scheduler admits the next pending
  candidate into the vacated slot *mid-generation* — waved Best-of-N
  that keeps the NPU batch full until the total candidate budget N is
  drained, even when N exceeds the engine batch;
* each step is charged at the *live* batch size through the engine's
  :class:`~repro.npu.timing.TimingModel` path, so the simulated time
  reflects the reclaimed slots.

:func:`plan_waves` is the closed-form counterpart used by the TTS layer:
given candidate lengths it computes the continuous-batching makespan
versus sequential lock-step waves without running the engine.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    DMATimeoutError,
    EngineError,
    KVPoolExhausted,
    SessionAbortError,
    TransientFaultError,
)
from ..npu.power_mgmt import governor_level
from ..sim import SimClock
from ..obs import energy as obs_energy
from ..obs import metrics as obs_metrics
from ..obs import timeline as obs_timeline
from ..obs import trace as obs_trace
from ..obs.slo import SLOTracker
from ..resilience.faults import FaultInjector, FaultPlan, FaultRecord
from ..resilience.recovery import RetryPolicy
from .block_pool import PagedKVCache
from .dispatch import BackendSelector
from .engine import GenerationResult, InferenceEngine
from .placement import crossing_for_bytes
from .sampler import Sampler

__all__ = ["CandidateOutput", "PromptAdmission", "ScheduledGeneration",
           "WavePlan", "plan_waves", "ContinuousBatchingScheduler"]


@dataclass(frozen=True)
class PromptAdmission:
    """One extra prompt admitted into a running ``generate`` call.

    Chunked prefill makes prompt processing schedulable, so a run can
    accept new requests mid-decode: from ``at_step`` on, the scheduler
    forwards one prompt chunk per decode iteration into a free slot,
    then admits ``n_candidates`` continuations exactly like the primary
    prompt's.  Candidate ids continue after the previous request's.
    """

    prompt: Sequence[int]
    n_candidates: int
    max_new_tokens: int
    at_step: int = 0


@dataclass
class CandidateOutput:
    """Lifecycle record of one scheduled candidate."""

    candidate_id: int
    slot: int
    tokens: List[int]
    admitted_step: int
    finished_step: int
    finish_reason: str  # "eos" or "length"
    joules: float = 0.0  # decode/rebuild energy attributed to this candidate
    request_id: int = 0  # prompt the candidate continues (0 = primary)


@dataclass
class ScheduledGeneration(GenerationResult):
    """A :class:`GenerationResult` plus continuous-batching bookkeeping.

    The resilience fields are all zero/empty when no fault plan and no
    deadline were given — the chaos path is never entered in that case.
    """

    candidates: List[CandidateOutput] = field(default_factory=list)
    n_steps: int = 0
    n_admissions: int = 0
    peak_kv_bytes: int = 0
    cow_copies: int = 0
    live_batch_per_step: List[int] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    n_retries: int = 0
    n_evictions: int = 0
    n_rebuilds: int = 0
    rebuilt_tokens: int = 0
    deadline_hit: bool = False
    degraded: bool = False
    governor_steps: List[Tuple[int, str]] = field(default_factory=list)
    prefill_joules: float = 0.0
    idle_joules: float = 0.0
    wave_joules: Dict[int, float] = field(default_factory=dict)
    # stage-level dispatch + chunked prefill (zero/empty when the
    # dispatcher and chunking are off — the bitwise-no-op default)
    n_prefill_chunks: int = 0
    n_prompt_admissions: int = 0
    backend_steps: List[Tuple[int, str]] = field(default_factory=list)
    n_backend_switches: int = 0
    migration_seconds: float = 0.0

    @property
    def mean_live_batch(self) -> float:
        if not self.live_batch_per_step:
            return 0.0
        return sum(self.live_batch_per_step) / len(self.live_batch_per_step)

    @property
    def n_faults(self) -> int:
        return len(self.faults)


@dataclass(frozen=True)
class WavePlan:
    """Makespan of N candidates on a batch-B engine, two disciplines.

    Steps are decode iterations of the whole batch; ``continuous_steps``
    backfills vacated slots immediately, ``lockstep_steps`` runs
    ``ceil(N / B)`` sequential waves each gated on its slowest member.
    """

    n_candidates: int
    batch: int
    continuous_steps: int
    lockstep_steps: int
    total_token_steps: int

    @property
    def steps_saved(self) -> int:
        return self.lockstep_steps - self.continuous_steps

    @property
    def speedup(self) -> float:
        if self.continuous_steps == 0:
            return 1.0
        return self.lockstep_steps / self.continuous_steps


def plan_waves(candidate_tokens: Sequence[int], batch: int) -> WavePlan:
    """Compare continuous backfill against sequential lock-step waves.

    ``candidate_tokens`` are per-candidate decode lengths in admission
    order.  The continuous makespan list-schedules each candidate onto
    the earliest-free slot (greedy, the policy the real scheduler
    implements); the lock-step makespan sums per-wave maxima.
    """
    lengths = [int(n) for n in candidate_tokens]
    if not lengths or any(n <= 0 for n in lengths):
        raise EngineError(
            f"candidate token counts must be positive, got {lengths}")
    if batch <= 0:
        raise EngineError(f"batch must be positive, got {batch}")
    slots = [0] * min(batch, len(lengths))
    heapq.heapify(slots)
    makespan = 0
    for n in lengths:
        start = heapq.heappop(slots)
        heapq.heappush(slots, start + n)
        makespan = max(makespan, start + n)
    lockstep = sum(max(lengths[i:i + batch])
                   for i in range(0, len(lengths), batch))
    return WavePlan(n_candidates=len(lengths), batch=batch,
                    continuous_steps=makespan, lockstep_steps=lockstep,
                    total_token_steps=sum(lengths))


@dataclass
class _LiveCandidate:
    candidate_id: int
    slot: int
    tokens: List[int]
    budget: int
    admitted_step: int
    admitted_sim: float = 0.0
    request_id: int = 0

    @property
    def last_token(self) -> int:
        return self.tokens[-1]


@dataclass
class _Request:
    """One prompt's serving state inside a scheduler run."""

    request_id: int
    prompt: List[int]
    n_candidates: int
    budgets: List[int]
    first_candidate: int  # global id of this request's first candidate
    at_step: int = 0
    anchor: Optional[object] = None       # prompt snapshot once prefilled
    last_logits: Optional[np.ndarray] = None
    prefill_slot: Optional[int] = None    # slot an in-flight prefill holds
    prefilled: int = 0                    # prompt tokens forwarded so far
    next_local: int = 0                   # candidates admitted so far


class ContinuousBatchingScheduler:
    """Waved Best-of-N decode over an engine with a paged KV cache."""

    def __init__(self, engine: InferenceEngine) -> None:
        if engine.kv_backend != "paged":
            raise EngineError(
                "the continuous-batching scheduler requires an engine with "
                "kv_backend='paged' (got "
                f"{engine.kv_backend!r})")
        self.engine = engine
        reg = obs_metrics.get_metrics()
        self._admissions = reg.counter("repro.scheduler.admissions")
        self._retired = reg.counter("repro.scheduler.retired")
        self._live_batch = reg.gauge("repro.scheduler.live_batch")
        self._step_retries = reg.counter("repro.resilience.step_retries")
        self._evictions = reg.counter("repro.resilience.evictions")
        self._rebuilds = reg.counter("repro.resilience.rebuilds")

    # ------------------------------------------------------------------
    def generate(self, prompt: Sequence[int], n_candidates: int,
                 max_new_tokens: int, sampler: Optional[Sampler] = None,
                 eos_id: Optional[int] = None,
                 length_schedule: Optional[Sequence[int]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 deadline_seconds: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 clock: Optional[SimClock] = None,
                 prefill_chunk: Optional[int] = None,
                 dispatch: Optional[BackendSelector] = None,
                 admissions: Optional[Sequence[PromptAdmission]] = None
                 ) -> ScheduledGeneration:
        """Decode ``n_candidates`` continuations, backfilling freed slots.

        ``length_schedule`` optionally caps each candidate's decode
        budget individually (candidate ``i`` gets ``length_schedule[i %
        len]`` tokens, at most ``max_new_tokens``) — the TTS workload
        where reasoning chains have heterogeneous lengths.

        ``fault_plan`` arms a deterministic :class:`FaultInjector` over
        the run: session aborts and DMA timeouts are retried with
        backoff charged to the :class:`SimClock` (aborts additionally
        pay a reopen penalty and rebuild every live candidate's KV from
        the prompt anchor snapshot), allocation failures evict the
        least-progressed candidate, and thermal throttling downgrades
        the engine's DVFS governor for ``duration_steps``.  An empty or
        ``None`` plan leaves the decode loop bitwise identical to the
        non-resilient path.  ``deadline_seconds`` bounds simulated
        wall-clock: once exceeded, live candidates retire with their
        tokens so far (``finish_reason="deadline"``) and no further
        candidates are admitted.

        ``clock`` optionally injects a shared :class:`~repro.sim.SimClock`
        (the fleet layer passes a device-local clock so every request on
        a device accumulates onto one timeline).  The run's
        ``sim_seconds`` and deadline are measured relative to the
        clock's reading at entry, so a fresh default clock — the
        existing single-run path — is bitwise unchanged.

        ``prefill_chunk`` enables chunked prefill: the prompt forwards
        through TCM-sized windows of at most that many tokens, each a
        separately clocked, SLO-tracked, fault-injectable step.  RoPE
        positions continue across chunks, so the decoded output is
        bitwise identical to monolithic prefill (the ``prefill.chunked``
        oracle).  ``dispatch`` arms a stage-level
        :class:`~repro.llm.dispatch.BackendSelector`: each prefill chunk
        and decode step runs on the backend with the lowest modeled
        latency for its (stage, size, governor), off-NPU time scaling
        the NPU-simulated step by the modeled ratio; a backend change
        pays an rpcmem boundary crossing for the live KV state.  A
        selector forced to ``"npu"`` (with chunking off) is a bitwise
        no-op.  ``admissions`` queues extra prompts that enter the run
        at their ``at_step`` as chunk-interleaved prefill work, then
        decode as additional candidates — mixed prefill/decode
        continuous batching.
        """
        engine = self.engine
        if n_candidates <= 0:
            raise EngineError(
                f"candidate count must be positive, got {n_candidates}")
        if max_new_tokens <= 0:
            raise EngineError(
                f"max_new_tokens must be positive, got {max_new_tokens}")
        prompt = list(prompt)
        if len(prompt) + max_new_tokens > engine.max_context:
            raise EngineError(
                f"prompt {len(prompt)} + {max_new_tokens} new tokens exceed "
                f"context {engine.max_context}")
        budgets = self._budgets(n_candidates, max_new_tokens, length_schedule)
        if prefill_chunk is not None and prefill_chunk <= 0:
            raise EngineError(
                f"prefill_chunk must be positive, got {prefill_chunk}")
        admitted = list(admissions) if admissions is not None else []
        for admission in admitted:
            extra = list(admission.prompt)
            if not extra:
                raise EngineError("admitted prompts must be non-empty")
            if admission.n_candidates <= 0:
                raise EngineError(
                    "admitted candidate count must be positive, got "
                    f"{admission.n_candidates}")
            if admission.max_new_tokens <= 0:
                raise EngineError(
                    "admitted max_new_tokens must be positive, got "
                    f"{admission.max_new_tokens}")
            if admission.at_step < 0:
                raise EngineError(
                    f"admission at_step must be >= 0, got {admission.at_step}")
            if len(extra) + admission.max_new_tokens > engine.max_context:
                raise EngineError(
                    f"admitted prompt {len(extra)} + "
                    f"{admission.max_new_tokens} new tokens exceed context "
                    f"{engine.max_context}")
        if dispatch is not None and dispatch.config != engine.model.config:
            raise EngineError(
                "dispatch selector was built for a different model config "
                "than the engine's")
        sampler = sampler if sampler is not None else Sampler(temperature=0.8)
        injector: Optional[FaultInjector] = None
        if fault_plan is not None and len(fault_plan) > 0:
            injector = FaultInjector(fault_plan)
        policy = retry_policy if retry_policy is not None else RetryPolicy()
        engine.reset()
        cache = engine.cache
        assert isinstance(cache, PagedKVCache)
        clock = clock if clock is not None else SimClock()

        result = ScheduledGeneration(sequences=[], prefill_cost=None,
                                     prompt_tokens=len(prompt))
        slo = SLOTracker(obs_metrics.get_metrics(),
                         engine_batch=engine.batch)
        base_governor = engine.governor
        try:
            with obs_trace.span("scheduler.generate", category="scheduler",
                                prompt_tokens=len(prompt),
                                n_candidates=n_candidates,
                                batch=engine.batch,
                                max_new_tokens=max_new_tokens):
                self._run(engine, cache, clock, prompt, n_candidates,
                          budgets, sampler, eos_id, injector, policy,
                          deadline_seconds, base_governor, result, slo,
                          prefill_chunk, dispatch, admitted)
        finally:
            if injector is not None:
                cache.pool.fault_injector = None
                engine.set_governor(base_governor)
        if injector is not None:
            result.faults = list(injector.injected)
        return result

    # ------------------------------------------------------------------
    def _run(self, engine: InferenceEngine, cache: PagedKVCache,
             clock: SimClock, prompt: List[int], n_candidates: int,
             budgets: List[int], sampler: Sampler, eos_id: Optional[int],
             injector: Optional[FaultInjector], policy: RetryPolicy,
             deadline_seconds: Optional[float], base_governor,
             result: ScheduledGeneration, slo: SLOTracker,
             prefill_chunk: Optional[int],
             selector: Optional[BackendSelector],
             admissions: Sequence[PromptAdmission]) -> None:
        tlog = obs_timeline.get_event_log()
        accountant = obs_energy.EnergyAccountant()
        batch = engine.batch
        config = engine.model.config
        # An injected clock may already carry earlier requests' time;
        # deadline and sim_seconds are relative to this run's start.
        run_start = clock.total_seconds

        requests: List[_Request] = [
            _Request(request_id=0, prompt=list(prompt),
                     n_candidates=n_candidates, budgets=budgets,
                     first_candidate=0)]
        next_cid = n_candidates
        for i, admission in enumerate(admissions):
            requests.append(_Request(
                request_id=i + 1, prompt=list(admission.prompt),
                n_candidates=admission.n_candidates,
                budgets=[admission.max_new_tokens] * admission.n_candidates,
                first_candidate=next_cid, at_step=admission.at_step))
            next_cid += admission.n_candidates
        result.n_prompt_admissions = len(requests) - 1

        if tlog.enabled:
            for request in requests:
                for local in range(request.n_candidates):
                    cid = request.first_candidate + local
                    tlog.emit("queue", run_start, request_id=cid,
                              wave=cid // batch)

        free_slots = list(range(engine.batch))
        live: Dict[int, _LiveCandidate] = {}
        finished: List[CandidateOutput] = []
        # wave boundary bookkeeping: every candidate id is known up
        # front, so wave populations are too — wave k opens at its
        # first admission and closes when its last member retires
        total_candidates = next_cid
        waves_started: set = set()
        wave_retired: Dict[int, int] = {}

        def wave_population(wave: int) -> int:
            return min(batch, total_candidates - wave * batch)

        step = 0
        admitting = True
        throttle_restore_step: Optional[int] = None
        # the simulated NPU is the reference backend: all costs come out
        # of the TimingModel's NPU path, and the dispatcher scales them
        prev_backend = "npu"

        def migrate(decision, stage: str) -> None:
            # moving a stage between backends drags the live KV state
            # across the rpcmem boundary (clean/invalidate + DRAM copy)
            nonlocal prev_backend
            if decision.backend == prev_backend:
                return
            tokens_cached = sum(cache.sequence_length(s)
                                for s in range(batch))
            kv_bytes = tokens_cached * config.n_layers * 2 * config.kv_dim * 2
            seconds = crossing_for_bytes(selector.device, kv_bytes)
            clock.advance(seconds)
            idle = engine.energy_model.idle_energy(seconds)
            accountant.charge_idle(idle)
            result.migration_seconds += seconds
            result.n_backend_switches += 1
            if tlog.enabled:
                tlog.emit("backend_switch", clock.total_seconds, step=step,
                          stage=stage, backend_from=prev_backend,
                          backend_to=decision.backend,
                          crossing_seconds=seconds, kv_bytes=kv_bytes,
                          joules=idle.joules)
            prev_backend = decision.backend

        def forward_chunk(request: _Request, recover: bool) -> bool:
            # one prompt window through the model; True means the run
            # made forward progress (a chunk landed, or an eviction
            # freed pool space for the retry)
            slot = request.prefill_slot
            start = request.prefilled
            end = len(request.prompt) if prefill_chunk is None \
                else min(start + prefill_chunk, len(request.prompt))
            chunk = request.prompt[start:end]
            decision = None
            if selector is not None:
                decision = selector.select("prefill", len(chunk),
                                           engine.governor.name)
                migrate(decision, "prefill")
            try:
                wall = time.perf_counter()
                logits_vec, cost = engine.prefill_chunk(chunk, seq=slot)
            except KVPoolExhausted:
                if not recover:
                    raise
                # roll the partial prefill back; eviction frees pool
                # space so the next service round restarts from scratch
                cache.free_sequence(slot)
                request.prefilled = 0
                request.last_logits = None
                if not evict_one():
                    request.prefill_slot = None
                    free_slots.append(slot)
                    free_slots.sort()
                    return False
                return True
            seconds = engine._step_seconds(cost, time.perf_counter() - wall)
            if decision is not None and decision.backend != "npu":
                seconds *= decision.npu_ratio
            clock.advance(seconds)
            if decision is not None and decision.backend != "npu":
                breakdown = engine.offloaded_step_energy(seconds)
            else:
                breakdown = engine.step_energy(cost, seconds)
            accountant.charge_prefill(breakdown)
            slo.observe_prefill_chunk(seconds)
            result.n_prefill_chunks += 1
            request.prefilled = end
            request.last_logits = logits_vec
            if request.request_id == 0:
                result.prefill_cost = cost
            if tlog.enabled:
                attrs = dict(seconds=seconds, n_tokens=len(chunk),
                             offset=start, request=request.request_id,
                             joules=breakdown.joules)
                if decision is not None:
                    attrs["backend"] = decision.backend
                tlog.emit("prefill_chunk", clock.total_seconds, step=step,
                          **attrs)
            if request.prefilled >= len(request.prompt):
                request.anchor = cache.snapshot_sequence(slot)
                cache.free_sequence(slot)
                request.prefill_slot = None
                free_slots.append(slot)
                free_slots.sort()
            return True

        def pending_requests() -> bool:
            return any(r.anchor is None or r.next_local < r.n_candidates
                       for r in requests)

        def service_prefills(idle: bool = False) -> bool:
            # at most one chunk per decode step: prefill interleaves
            # with decode instead of stalling it
            if not admitting:
                return False
            for request in requests:
                if request.anchor is not None:
                    continue
                if request.at_step > step and not idle:
                    continue
                if request.prefill_slot is None:
                    if not free_slots:
                        continue
                    request.prefill_slot = free_slots.pop(0)
                return forward_chunk(request, recover=True)
            return False

        def admit() -> None:
            for request in requests:
                if not (admitting and free_slots):
                    break
                if request.anchor is None:
                    continue
                while (admitting and free_slots
                       and request.next_local < request.n_candidates):
                    slot = free_slots.pop(0)
                    cid = request.first_candidate + request.next_local
                    with obs_trace.span("scheduler.admit",
                                        category="scheduler", slot=slot,
                                        candidate=cid, step=step):
                        cache.restore_sequence(slot, request.anchor)
                        token = int(sampler.sample(request.last_logits))
                    candidate = _LiveCandidate(
                        candidate_id=cid, slot=slot, tokens=[token],
                        budget=request.budgets[request.next_local],
                        admitted_step=step,
                        admitted_sim=clock.total_seconds,
                        request_id=request.request_id)
                    request.next_local += 1
                    result.n_admissions += 1
                    self._admissions.inc()
                    if tlog.enabled:
                        wave = candidate.candidate_id // batch
                        if wave not in waves_started:
                            waves_started.add(wave)
                            tlog.emit("wave_start", clock.total_seconds,
                                      step=step, wave=wave,
                                      population=wave_population(wave))
                        tlog.emit("admit", clock.total_seconds,
                                  request_id=candidate.candidate_id,
                                  step=step, slot=slot)
                        tlog.emit("wave_assign", clock.total_seconds,
                                  request_id=candidate.candidate_id,
                                  step=step, wave=wave)
                    if ((eos_id is not None and token == eos_id)
                            or candidate.budget == 1):
                        retire(candidate, "eos" if eos_id is not None
                               and token == eos_id else "length")
                    else:
                        live[slot] = candidate

        def retire(candidate: _LiveCandidate, reason: str) -> None:
            cache.free_sequence(candidate.slot)
            live.pop(candidate.slot, None)
            free_slots.append(candidate.slot)
            joules = accountant.request_joules(candidate.candidate_id)
            finished.append(CandidateOutput(
                candidate_id=candidate.candidate_id,
                slot=candidate.slot, tokens=candidate.tokens,
                admitted_step=candidate.admitted_step,
                finished_step=step, finish_reason=reason,
                joules=joules, request_id=candidate.request_id))
            self._retired.inc()
            latency = clock.total_seconds - candidate.admitted_sim
            slo.observe_candidate(candidate.candidate_id, latency)
            if tlog.enabled:
                tlog.emit("complete", clock.total_seconds,
                          request_id=candidate.candidate_id, step=step,
                          reason=reason, tokens=len(candidate.tokens),
                          latency_seconds=latency, joules=joules)
                wave = candidate.candidate_id // batch
                wave_retired[wave] = wave_retired.get(wave, 0) + 1
                if wave_retired[wave] == wave_population(wave):
                    tlog.emit("wave_end", clock.total_seconds, step=step,
                              wave=wave, population=wave_retired[wave])

        def rebuild_live() -> None:
            # The paged cache may be in an inconsistent mid-forward
            # state after an abort; restoring the prompt anchor and
            # re-forwarding each candidate's already-sampled prefix
            # rebuilds exact KV without consuming any sampler RNG.
            for slot in sorted(live):
                candidate = live[slot]
                prefix = candidate.tokens[:-1]
                rebuild_joules = 0.0
                rebuild_seconds = 0.0
                with obs_trace.span("resilience.rebuild",
                                    category="resilience", slot=slot,
                                    candidate=candidate.candidate_id,
                                    tokens=len(prefix), step=step):
                    cache.free_sequence(slot)
                    cache.restore_sequence(
                        slot, requests[candidate.request_id].anchor)
                    if prefix:
                        w = time.perf_counter()
                        cost = engine.rebuild_sequence(slot, prefix)
                        if cost is not None:
                            seconds = engine._step_seconds(
                                cost, time.perf_counter() - w)
                            clock.advance(seconds)
                            breakdown = engine.step_energy(cost, seconds)
                            accountant.charge_prefill(
                                breakdown,
                                request_id=candidate.candidate_id,
                                wave=candidate.candidate_id // batch)
                            rebuild_joules = breakdown.joules
                            rebuild_seconds = seconds
                result.n_rebuilds += 1
                result.rebuilt_tokens += len(prefix)
                self._rebuilds.inc()
                if tlog.enabled:
                    tlog.emit("rebuild", clock.total_seconds,
                              request_id=candidate.candidate_id,
                              step=step, tokens=len(prefix),
                              seconds=rebuild_seconds,
                              joules=rebuild_joules)
            # in-flight partial prefills lost their KV too: restart them
            # from scratch on the next service round
            for request in requests:
                if (request.anchor is None
                        and request.prefill_slot is not None
                        and request.prefilled > 0):
                    cache.free_sequence(request.prefill_slot)
                    request.prefilled = 0
                    request.last_logits = None

        def evict_one() -> bool:
            if not live:
                return False
            # lowest-value candidate: least decoded progress, breaking
            # ties toward the most recently admitted (highest id)
            victim = min(live.values(),
                         key=lambda c: (len(c.tokens), -c.candidate_id))
            if tlog.enabled:
                tlog.emit("evict", clock.total_seconds,
                          request_id=victim.candidate_id, step=step,
                          tokens=len(victim.tokens))
            with obs_trace.span("resilience.evict", category="resilience",
                                candidate=victim.candidate_id,
                                slot=victim.slot, tokens=len(victim.tokens),
                                step=step):
                retire(victim, "evicted")
            result.n_evictions += 1
            self._evictions.inc()
            return True

        def degrade(reason: str) -> None:
            result.degraded = True
            with obs_trace.span("resilience.degrade", category="resilience",
                                reason=reason, live=len(live), step=step):
                for slot in sorted(live):
                    retire(live[slot], reason)

        def note_retry(kind: str, seconds: float) -> None:
            result.n_retries += 1
            self._step_retries.inc()
            obs_metrics.get_metrics().counter(
                "repro.resilience.step_retries", labels={"kind": kind}).inc()
            with obs_trace.span("resilience.retry", category="resilience",
                                kind=kind, step=step,
                                backoff_ms=seconds * 1e3):
                clock.advance(seconds)
            # backoff burns baseline power while the NPU sits idle
            idle = engine.energy_model.idle_energy(seconds)
            accountant.charge_idle(idle)
            if tlog.enabled:
                tlog.emit("retry", clock.total_seconds, step=step,
                          retry_kind=kind, backoff_seconds=seconds,
                          joules=idle.joules)

        if prefill_chunk is None:
            wall = time.perf_counter()
            last_logits, prefill_cost = engine.prefill(prompt, seq=0)
            prefill_seconds = engine._step_seconds(
                prefill_cost, time.perf_counter() - wall)
            prefill_offloaded = False
            if selector is not None:
                decision = selector.select("prefill", len(prompt),
                                           engine.governor.name)
                migrate(decision, "prefill")
                if decision.backend != "npu":
                    prefill_seconds *= decision.npu_ratio
                    prefill_offloaded = True
            clock.advance(prefill_seconds)
            prefill_energy = (
                engine.offloaded_step_energy(prefill_seconds)
                if prefill_offloaded
                else engine.step_energy(prefill_cost, prefill_seconds))
            accountant.charge_prefill(prefill_energy)
            if tlog.enabled:
                attrs = dict(seconds=prefill_seconds, n_tokens=len(prompt),
                             joules=prefill_energy.joules)
                if selector is not None:
                    attrs["backend"] = prev_backend
                tlog.emit("prefill", clock.total_seconds, **attrs)
            result.prefill_cost = prefill_cost
            requests[0].last_logits = last_logits
            requests[0].anchor = cache.snapshot_sequence(0)
            # slot 0 still holds the prompt tokens; the first admission
            # restores the anchor over it, which is a refcount no-op
            cache.free_sequence(0)
        else:
            # chunked main prefill: the primary prompt forwards through
            # TCM-sized windows before the run's first decode step
            requests[0].prefill_slot = free_slots.pop(0)
            while requests[0].anchor is None:
                forward_chunk(requests[0], recover=False)
        if injector is not None:
            # armed only once the serving loop (and its recovery paths)
            # owns the pool: the primary prefill is the run's
            # precondition, not a recoverable step
            cache.pool.fault_injector = injector
            injector.clock = clock

        admit()
        while live or (admitting and pending_requests()):
            if not live:
                # nothing decodable: the only useful work is servicing a
                # pending prompt (ignore at_step gates — the decode
                # timeline they were relative to has drained)
                progressed = service_prefills(idle=True)
                admit()
                if not live:
                    if not progressed:
                        break
                    continue
            arm_abort = arm_dma = arm_alloc = 0
            if injector is not None:
                if (throttle_restore_step is not None
                        and step >= throttle_restore_step):
                    engine.set_governor(base_governor)
                    throttle_restore_step = None
                    result.governor_steps.append((step, base_governor.name))
                    if tlog.enabled:
                        tlog.emit("throttle", clock.total_seconds,
                                  step=step, governor=base_governor.name,
                                  governor_level=governor_level(
                                      base_governor.name),
                                  restored=True)
                for event in injector.step_events(step):
                    if event.kind == "thermal_throttle":
                        engine.set_governor(event.governor)
                        result.governor_steps.append((step, event.governor))
                        if event.duration_steps is not None:
                            throttle_restore_step = (step
                                                     + event.duration_steps)
                        with obs_trace.span("resilience.throttle",
                                            category="resilience",
                                            governor=event.governor,
                                            step=step,
                                            duration=event.duration_steps):
                            pass
                        if tlog.enabled:
                            tlog.emit("throttle", clock.total_seconds,
                                      step=step, governor=event.governor,
                                      governor_level=governor_level(
                                          event.governor),
                                      restored=False)
                    elif event.kind == "session_abort":
                        arm_abort += 1
                    elif event.kind == "dma_timeout":
                        arm_dma += 1
                    else:  # alloc_fail
                        arm_alloc += 1
            attempt = 0
            needs_rebuild = False
            step_offloaded = False
            while live:
                try:
                    if arm_abort:
                        arm_abort -= 1
                        raise SessionAbortError(
                            f"injected FastRPC session abort at decode "
                            f"step {step}")
                    if arm_dma:
                        arm_dma -= 1
                        raise DMATimeoutError(
                            f"injected DMA timeout at decode step {step}")
                    if arm_alloc:
                        arm_alloc -= 1
                        raise KVPoolExhausted(
                            f"injected KV pool exhaustion at decode "
                            f"step {step}")
                    if needs_rebuild:
                        rebuild_live()
                        needs_rebuild = False
                        if not live:
                            break
                    slots = sorted(live)
                    tokens = [live[s].last_token for s in slots]
                    self._live_batch.set(len(slots))
                    wall = time.perf_counter()
                    with obs_trace.span(
                            "scheduler.step", category="scheduler",
                            step=step, live_batch=len(slots),
                            blocks_in_use=cache.pool.blocks_in_use):
                        logits, cost = engine.decode_step(tokens, slots)
                    step_seconds = engine._step_seconds(
                        cost, time.perf_counter() - wall)
                    if selector is not None:
                        decision = selector.select("decode", len(slots),
                                                   engine.governor.name)
                        migrate(decision, "decode")
                        if decision.backend != "npu":
                            step_seconds *= decision.npu_ratio
                            step_offloaded = True
                    clock.advance(step_seconds)
                    break
                except SessionAbortError:
                    attempt += 1
                    if injector is None or attempt > policy.max_retries:
                        degrade("aborted")
                        break
                    note_retry("session_abort",
                               policy.backoff(attempt - 1)
                               + policy.reopen_seconds)
                    needs_rebuild = True
                except TransientFaultError:
                    attempt += 1
                    if injector is None or attempt > policy.max_retries:
                        degrade("aborted")
                        break
                    note_retry("dma_timeout", policy.backoff(attempt - 1))
                except KVPoolExhausted:
                    attempt += 1
                    if (injector is None or attempt > policy.max_retries
                            or not evict_one()):
                        degrade("aborted")
                        break
                    needs_rebuild = True
            if not live:
                service_prefills()
                admit()
                continue
            result.decode_costs.append(cost)
            result.live_batch_per_step.append(len(slots))
            if selector is not None:
                result.backend_steps.append((step, prev_backend))
            live_ids = [live[s].candidate_id for s in slots if s in live]
            step_energy = (engine.offloaded_step_energy(step_seconds)
                           if step_offloaded
                           else engine.step_energy(cost, step_seconds))
            accountant.charge_step(step_energy, request_ids=live_ids,
                                   waves=[cid // batch for cid in live_ids])
            if tlog.enabled:
                attrs = dict(seconds=step_seconds, live_batch=len(slots),
                             kv_blocks=cache.pool.blocks_in_use,
                             governor_level=governor_level(
                                 engine.governor.name),
                             joules=step_energy.joules,
                             live_ids=list(live_ids))
                if selector is not None:
                    attrs["backend"] = prev_backend
                tlog.emit("decode_step", clock.total_seconds, step=step,
                          **attrs)
            slo.observe_step(step_seconds, live_ids)
            step += 1
            next_tokens = sampler.sample_batch(logits)
            for i, slot in enumerate(slots):
                candidate = live.get(slot)
                if candidate is None:
                    continue
                token = int(next_tokens[i])
                candidate.tokens.append(token)
                if eos_id is not None and token == eos_id:
                    retire(candidate, "eos")
                elif len(candidate.tokens) >= candidate.budget:
                    retire(candidate, "length")
            if (deadline_seconds is not None
                    and clock.total_seconds - run_start >= deadline_seconds):
                result.deadline_hit = True
                admitting = False
                if tlog.enabled:
                    tlog.emit("deadline", clock.total_seconds, step=step,
                              deadline=deadline_seconds, live=len(live))
                with obs_trace.span("resilience.deadline",
                                    category="resilience", step=step,
                                    sim_seconds=clock.total_seconds,
                                    deadline=deadline_seconds):
                    degrade("deadline")
            service_prefills()
            admit()

        for request in requests:
            if request.anchor is not None:
                cache.release_snapshot(request.anchor)
            elif request.prefill_slot is not None:
                cache.free_sequence(request.prefill_slot)
        result.n_steps = step
        result.peak_kv_bytes = cache.pool.peak_bytes
        result.cow_copies = cache.pool.cow_copies
        result.sim_seconds = clock.total_seconds - run_start
        result.joules = accountant.total_j
        result.prefill_joules = accountant.prefill_j
        result.idle_joules = accountant.idle_j
        result.wave_joules = {wave: accountant.per_wave[wave]
                              for wave in sorted(accountant.per_wave)}

        finished.sort(key=lambda c: c.candidate_id)
        result.candidates = finished
        result.sequences = [c.tokens for c in finished]
        result.n_generated_tokens = [len(c.tokens) for c in finished]

    # ------------------------------------------------------------------
    @staticmethod
    def _budgets(n_candidates: int, max_new_tokens: int,
                 length_schedule: Optional[Sequence[int]]) -> List[int]:
        if length_schedule is None:
            return [max_new_tokens] * n_candidates
        schedule = [int(b) for b in length_schedule]
        if not schedule or any(b <= 0 for b in schedule):
            raise EngineError(
                f"length schedule entries must be positive, got {schedule}")
        return [min(schedule[i % len(schedule)], max_new_tokens)
                for i in range(n_candidates)]
