"""Model configurations for the evaluated LLM families (§7.1).

The paper evaluates Qwen 2.5 (1.5B / 3B / 7B) and Llama 3.2 (1B / 3B)
Instruct models.  The architectural dimensions below are the published
ones; the reproduction instantiates these architectures with synthetic
Gaussian weights (substitution S2 in DESIGN.md), so parameter counts,
layer shapes, GQA ratios and memory footprints are all faithful.

Quantization placement follows §7.1: Q4_0 for attention/FFN projections,
Q8_0 for the FFN down projection, FP16 activations, and the lm_head kept
on the CPU (§7.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..errors import ModelConfigError

__all__ = ["ModelConfig", "MODEL_CONFIGS", "get_model_config", "tiny_config"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of one decoder-only transformer."""

    name: str
    hidden_dim: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    intermediate_dim: int
    vocab_size: int
    max_position: int = 32768
    rope_theta: float = 1000000.0
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads != 0:
            raise ModelConfigError(
                f"{self.name}: heads {self.n_heads} not divisible by KV heads "
                f"{self.n_kv_heads}")
        if self.head_dim * self.n_heads <= 0:
            raise ModelConfigError(f"{self.name}: invalid attention geometry")

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def q_dim(self) -> int:
        return self.n_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim

    @property
    def gqa_group(self) -> int:
        return self.n_heads // self.n_kv_heads

    def projection_shapes(self) -> Dict[str, Tuple[int, int]]:
        """(input, output) shapes of every linear layer in one block."""
        return {
            "wq": (self.hidden_dim, self.q_dim),
            "wk": (self.hidden_dim, self.kv_dim),
            "wv": (self.hidden_dim, self.kv_dim),
            "wo": (self.q_dim, self.hidden_dim),
            "w_gate": (self.hidden_dim, self.intermediate_dim),
            "w_up": (self.hidden_dim, self.intermediate_dim),
            "w_down": (self.intermediate_dim, self.hidden_dim),
        }

    def param_count(self) -> int:
        """Total parameters (weights only, incl. embeddings and norms)."""
        per_block = sum(i * o for i, o in self.projection_shapes().values())
        per_block += 2 * self.hidden_dim  # the two RMSNorm weights
        embed = self.vocab_size * self.hidden_dim
        lm_head = 0 if self.tie_embeddings else self.vocab_size * self.hidden_dim
        return self.n_layers * per_block + embed + lm_head + self.hidden_dim

    def npu_weight_bytes(self) -> int:
        """Bytes of NPU-resident weights under the paper's quant placement.

        Q4_0 (4.5 BPW) everywhere except the FFN down projection (Q8_0,
        8.5 BPW); embeddings and the lm_head stay on the CPU.
        """
        shapes = self.projection_shapes()
        q4_params = sum(i * o for name, (i, o) in shapes.items() if name != "w_down")
        q8_params = shapes["w_down"][0] * shapes["w_down"][1]
        per_block = q4_params * 4.5 / 8 + q8_params * 8.5 / 8
        norms = 2 * self.hidden_dim * 2  # FP16 norm weights
        return int(self.n_layers * (per_block + norms))

    def kv_cache_bytes(self, context: int, batch: int = 1) -> int:
        """FP16 KV cache bytes for ``batch`` sequences of ``context`` tokens."""
        if context <= 0 or batch <= 0:
            raise ModelConfigError(
                f"context/batch must be positive, got {context}/{batch}")
        per_token = 2 * self.kv_dim * 2  # K and V, FP16
        return self.n_layers * batch * context * per_token

    def cpu_weight_bytes(self) -> int:
        """Resident CPU-side weight bytes: embeddings plus lm_head.

        llama.cpp keeps the embedding table quantized (Q4-class, 4.5
        BPW); a tied lm_head shares that tensor, an untied one adds its
        Q6_K storage (§7.2.2).
        """
        embed = int(self.vocab_size * self.hidden_dim * 4.5 / 8)
        head = 0 if self.tie_embeddings else self.lm_head_bytes()
        return embed + head

    NPU_WORKSPACE_BYTES = 64 * 2**20  # activation scratch mapped per session

    def npu_session_bytes(self, context: int, batch: int = 1) -> int:
        """Total NPU VA-space footprint of one inference session.

        Weights + the preallocated KV budget + the activation workspace;
        this is what the 2 GiB VA space of Snapdragon 8 Gen 2 must hold,
        and why >=3B models cannot run there (§7.2.1).
        """
        return (self.npu_weight_bytes() + self.kv_cache_bytes(context, batch)
                + self.NPU_WORKSPACE_BYTES)

    def lm_head_bytes(self) -> int:
        """Streamed lm_head bytes per decode step on the CPU.

        llama.cpp quantizes the output projection (Q6_K, 6.5625 BPW in
        Q4_0 models); this is the weight traffic that makes the
        CPU-resident logits computation dominate at batch 16 (§7.2.2).
        """
        return int(self.vocab_size * self.hidden_dim * 6.5625 / 8)


# Published architecture dimensions of the evaluated checkpoints.
MODEL_CONFIGS: Dict[str, ModelConfig] = {
    "qwen2.5-1.5b": ModelConfig(
        name="qwen2.5-1.5b", hidden_dim=1536, n_layers=28, n_heads=12,
        n_kv_heads=2, head_dim=128, intermediate_dim=8960, vocab_size=151936,
        tie_embeddings=True),
    "qwen2.5-3b": ModelConfig(
        name="qwen2.5-3b", hidden_dim=2048, n_layers=36, n_heads=16,
        n_kv_heads=2, head_dim=128, intermediate_dim=11008, vocab_size=151936,
        tie_embeddings=True),
    "qwen2.5-7b": ModelConfig(
        name="qwen2.5-7b", hidden_dim=3584, n_layers=28, n_heads=28,
        n_kv_heads=4, head_dim=128, intermediate_dim=18944, vocab_size=152064),
    "llama3.2-1b": ModelConfig(
        name="llama3.2-1b", hidden_dim=2048, n_layers=16, n_heads=32,
        n_kv_heads=8, head_dim=64, intermediate_dim=8192, vocab_size=128256,
        rope_theta=500000.0, tie_embeddings=True),
    "llama3.2-3b": ModelConfig(
        name="llama3.2-3b", hidden_dim=3072, n_layers=28, n_heads=24,
        n_kv_heads=8, head_dim=128, intermediate_dim=8192, vocab_size=128256,
        rope_theta=500000.0, tie_embeddings=True),
}


def get_model_config(name: str) -> ModelConfig:
    key = name.lower()
    if key not in MODEL_CONFIGS:
        raise ModelConfigError(
            f"unknown model {name!r}; known: {sorted(MODEL_CONFIGS)}")
    return MODEL_CONFIGS[key]


def tiny_config(name: str = "tiny", n_layers: int = 2, hidden_dim: int = 64,
                n_heads: int = 4, n_kv_heads: int = 2, intermediate_dim: int = 128,
                vocab_size: int = 512, max_position: int = 512) -> ModelConfig:
    """A scaled-down config for functional tests and examples.

    Keeps the real architecture (GQA, SwiGLU, RoPE) at dimensions small
    enough to run the full numerical path through the NPU simulator.
    """
    return ModelConfig(
        name=name, hidden_dim=hidden_dim, n_layers=n_layers, n_heads=n_heads,
        n_kv_heads=n_kv_heads, head_dim=hidden_dim // n_heads,
        intermediate_dim=intermediate_dim, vocab_size=vocab_size,
        max_position=max_position, rope_theta=10000.0, tie_embeddings=True)
