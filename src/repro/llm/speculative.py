"""Speculative decoding on the batched-verification engine (§9).

The paper observes that generalized speculative decoding and parallel
test-time scaling both belong to the Generate-then-Verify framework and
that "our system can theoretically support these applications
seamlessly": verifying k drafted tokens in one target-model forward pass
rides exactly the same idle HMX capacity as a batch-k decode, because a
[k, hidden] activation matrix occupies the same 32-row tile as a single
token.

This module implements that application on the simulated-NPU stack with
the standard draft-k / verify-once loop:

* a small *draft* model proposes ``k`` tokens autoregressively;
* the *target* model scores all ``k`` positions in one forward pass;
* tokens are accepted left-to-right — greedily (accept while the
  target's argmax matches; provably identical output to pure greedy
  target decoding) or stochastically with the ``min(1, p_t/p_d)`` rule
  and residual resampling.

Cache discipline: both KV caches always hold every *committed* token
except the newest one (the ``pending`` token).  Drafting starts by
feeding ``pending`` to the draft model; verification feeds ``[pending,
d_1, ..., d_{k-1}]`` to the target, so row ``i`` scores draft token
``d_{i+1}`` and no extra re-priming passes are ever needed.  On a
rejection at position ``j`` both caches truncate to the committed
length minus one, restoring the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import EngineError
from .kv_cache import KVCache
from .model import NPUTransformer, StepCost
from .sampler import softmax_logits

__all__ = ["SpeculativeResult", "SpeculativeDecoder"]


@dataclass
class SpeculativeResult:
    """Outcome of one speculative generation call."""

    tokens: List[int]
    target_forward_passes: int = 0
    draft_forward_passes: int = 0
    accepted_drafts: int = 0
    proposed_drafts: int = 0
    target_cost: StepCost = field(default_factory=StepCost)
    draft_cost: StepCost = field(default_factory=StepCost)

    @property
    def acceptance_rate(self) -> float:
        if self.proposed_drafts == 0:
            return 0.0
        return self.accepted_drafts / self.proposed_drafts

    @property
    def tokens_per_target_pass(self) -> float:
        if self.target_forward_passes == 0:
            return 0.0
        return len(self.tokens) / self.target_forward_passes


class SpeculativeDecoder:
    """Draft-then-verify decoding across two NPU transformers.

    Both models must share a vocabulary.  ``draft_len`` (k) is the
    number of tokens drafted per verification round; for k <= 31 the
    verification forward still fits a single HMX activation tile.
    """

    def __init__(self, target: NPUTransformer, draft: NPUTransformer,
                 draft_len: int = 4) -> None:
        if target.config.vocab_size != draft.config.vocab_size:
            raise EngineError(
                f"vocabulary mismatch: target {target.config.vocab_size} vs "
                f"draft {draft.config.vocab_size}")
        if not 1 <= draft_len <= 31:
            raise EngineError(
                f"draft length must be in [1, 31] (one HMX tile), got {draft_len}")
        self.target = target
        self.draft = draft
        self.draft_len = draft_len

    # ------------------------------------------------------------------
    def _forward(self, model: NPUTransformer, cache: KVCache,
                 tokens: List[int], cost_sink: StepCost) -> np.ndarray:
        arr = np.asarray(tokens, dtype=np.int64)[np.newaxis, :]
        logits, cost = model.forward(arr, cache)
        cost_sink.merge(cost)
        return logits[0]

    @staticmethod
    def _sample(logits: np.ndarray, temperature: float,
                rng: np.random.Generator) -> "tuple[int, Optional[np.ndarray]]":
        if temperature == 0.0:
            return int(np.asarray(logits).argmax()), None
        probs = softmax_logits(np.asarray(logits) / temperature)
        return int(rng.choice(probs.size, p=probs)), probs

    # ------------------------------------------------------------------
    def generate(self, prompt: List[int], max_new_tokens: int,
                 temperature: float = 0.0, seed: int = 0) -> SpeculativeResult:
        """Generate ``max_new_tokens`` tokens past the prompt."""
        if not prompt:
            raise EngineError("cannot decode from an empty prompt")
        if max_new_tokens <= 0:
            raise EngineError(
                f"max_new_tokens must be positive, got {max_new_tokens}")
        rng = np.random.default_rng(seed)
        capacity = len(prompt) + max_new_tokens + self.draft_len + 2
        target_cache = self.target.new_cache(1, capacity)
        draft_cache = self.draft.new_cache(1, capacity)
        result = SpeculativeResult(tokens=[])

        # establish the invariant: caches hold the prompt minus its last
        # token, which becomes the pending token
        committed = list(prompt)
        pending = committed[-1]
        if len(committed) > 1:
            self._forward(self.target, target_cache, committed[:-1],
                          result.target_cost)
            result.target_forward_passes += 1
            self._forward(self.draft, draft_cache, committed[:-1],
                          result.draft_cost)
            result.draft_forward_passes += 1

        generated = 0
        while generated < max_new_tokens:
            k = min(self.draft_len, max_new_tokens - generated)

            # --- draft k tokens autoregressively ----------------------
            drafted: List[int] = []
            draft_probs: List[Optional[np.ndarray]] = []
            feed = pending
            for _ in range(k):
                logits = self._forward(self.draft, draft_cache, [feed],
                                       result.draft_cost)[-1]
                result.draft_forward_passes += 1
                token, probs = self._sample(logits, temperature, rng)
                drafted.append(token)
                draft_probs.append(probs)
                feed = token
            result.proposed_drafts += k

            # --- verify in ONE target forward --------------------------
            verify_in = [pending] + drafted[:-1]
            verify_logits = self._forward(self.target, target_cache,
                                          verify_in, result.target_cost)
            result.target_forward_passes += 1

            n_accept = 0
            replacement: Optional[int] = None
            for i, token in enumerate(drafted):
                row = verify_logits[i]
                if temperature == 0.0:
                    expected = int(row.argmax())
                    if token == expected:
                        n_accept += 1
                    else:
                        replacement = expected
                        break
                else:
                    p_t = softmax_logits(row / temperature)
                    p_d = draft_probs[i]
                    if rng.random() < min(1.0, p_t[token]
                                          / max(float(p_d[token]), 1e-12)):
                        n_accept += 1
                    else:
                        residual = np.maximum(p_t - p_d, 0.0)
                        total = residual.sum()
                        replacement = int(rng.choice(residual.size,
                                                     p=residual / total)) \
                            if total > 0 else int(p_t.argmax())
                        break
            result.accepted_drafts += n_accept

            # --- commit and restore the cache invariant ----------------
            accepted = drafted[:n_accept]
            committed.extend(accepted)
            result.tokens.extend(accepted)
            generated += len(accepted)
            if replacement is not None and generated < max_new_tokens:
                committed.append(replacement)
                result.tokens.append(replacement)
                generated += 1
            pending = committed[-1]
            target_cache.truncate(0, len(committed) - 1)
            draft_cache.truncate(0, len(committed) - 1)

        result.tokens = result.tokens[:max_new_tokens]
        return result
