"""Model checkpoints: a GGUF-like single-file format for the simulator.

The paper's system loads llama.cpp GGUF files whose tensors are already
Q4_0/Q8_0-packed.  This module provides the equivalent for the
reproduction: a self-describing binary container holding either

* ``f16`` master weights (for exact round-trips), or
* ``q4`` tensors — tile-group quantized, super-group packed projections
  (Q4_0, with the FFN down projection in Q8_0 per §7.1) plus FP16
  embeddings/norms — at the on-disk cost of ~4.5-8.5 bits per weight.

Layout::

    magic "RNPUCKPT" | u32 header_len | header JSON | tensor blob

The header carries the model configuration and a tensor index (name,
codec, shape, offset, size), so files are loadable without out-of-band
metadata and corruption is detected early.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ModelConfigError
from ..quant.coalesce import pack_supergroups_q4, unpack_supergroups_q4
from ..quant.schemes import QuantizedGroups
from ..quant.tile_quant import (
    QuantizedWeight,
    dequantize_weight,
    quantize_tile_group,
)
from .config import ModelConfig
from .model import TransformerWeights

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_info"]

_MAGIC = b"RNPUCKPT"
_CODECS = ("f16", "f32", "q4_tile", "q8_tile")


def _config_to_dict(config: ModelConfig) -> Dict:
    return asdict(config)


def _config_from_dict(data: Dict) -> ModelConfig:
    return ModelConfig(**data)


class _BlobWriter:
    def __init__(self) -> None:
        self.chunks: List[bytes] = []
        self.offset = 0
        self.index: List[Dict] = []

    def add(self, name: str, codec: str, shape: Tuple[int, ...],
            payload: bytes, extra: Dict = None) -> None:
        entry = {"name": name, "codec": codec, "shape": list(shape),
                 "offset": self.offset, "nbytes": len(payload)}
        if extra:
            entry.update(extra)
        self.index.append(entry)
        self.chunks.append(payload)
        self.offset += len(payload)


def _encode_q4(matrix: np.ndarray) -> Tuple[bytes, Dict]:
    quantized = quantize_tile_group(matrix, bits=4)
    packed = pack_supergroups_q4(quantized.groups)
    extra = {"padded_shape": list(quantized.padded_shape),
             "group_size": quantized.groups.group_size,
             "coalesce": packed.coalesce,
             "n_groups": quantized.groups.n_groups}
    return packed.data.tobytes(), extra


def _decode_q4(payload: bytes, shape: Tuple[int, int], entry: Dict) -> np.ndarray:
    from ..quant.coalesce import PackedWeight
    packed = PackedWeight(data=np.frombuffer(payload, dtype=np.uint8),
                          layout="supergroup", n_groups=entry["n_groups"],
                          group_size=entry["group_size"],
                          coalesce=entry["coalesce"])
    groups = unpack_supergroups_q4(packed)
    quantized = QuantizedWeight(groups=groups, layout="hmx_tile",
                                original_shape=tuple(shape),
                                padded_shape=tuple(entry["padded_shape"]))
    return dequantize_weight(quantized).astype(np.float32)


def _encode_q8(matrix: np.ndarray) -> Tuple[bytes, Dict]:
    quantized = quantize_tile_group(matrix, bits=8)
    codes = quantized.groups.codes.astype(np.uint8).tobytes()
    scales = quantized.groups.scales.astype(np.float16).tobytes()
    extra = {"padded_shape": list(quantized.padded_shape),
             "group_size": quantized.groups.group_size,
             "n_groups": quantized.groups.n_groups,
             "scale_bytes": len(scales)}
    return codes + scales, extra


def _decode_q8(payload: bytes, shape: Tuple[int, int], entry: Dict) -> np.ndarray:
    n_groups = entry["n_groups"]
    group_size = entry["group_size"]
    code_bytes = n_groups * group_size
    codes = np.frombuffer(payload[:code_bytes], dtype=np.uint8) \
        .reshape(n_groups, group_size).copy()
    scales = np.frombuffer(payload[code_bytes:], dtype=np.float16).copy()
    groups = QuantizedGroups(codes=codes, scales=scales, bits=8,
                             group_size=group_size)
    quantized = QuantizedWeight(groups=groups, layout="hmx_tile",
                                original_shape=tuple(shape),
                                padded_shape=tuple(entry["padded_shape"]))
    return dequantize_weight(quantized).astype(np.float32)


def save_checkpoint(path, weights: TransformerWeights,
                    codec: str = "q4") -> int:
    """Write a checkpoint; returns the file size in bytes.

    ``codec="f16"`` stores master weights losslessly enough for FP16
    inference; ``codec="q4"`` stores the deployment form (Q4_0 tile
    groups, Q8_0 down projections, FP16 embeddings and norms).
    """
    if codec not in ("f16", "q4"):
        raise ModelConfigError(f"unknown checkpoint codec {codec!r}")
    writer = _BlobWriter()

    def add_dense(name: str, array: np.ndarray, dtype: str = "f16") -> None:
        np_dtype = np.float16 if dtype == "f16" else np.float32
        writer.add(name, dtype, array.shape,
                   np.ascontiguousarray(array, dtype=np_dtype).tobytes())

    add_dense("embedding", weights.embedding)
    if not weights.config.tie_embeddings:
        add_dense("lm_head", weights.lm_head)
    add_dense("final_norm", weights.final_norm, "f32")
    for i, layer in enumerate(weights.layers):
        for name, matrix in layer.items():
            full = f"layers.{i}.{name}"
            if name.startswith("norm"):
                add_dense(full, matrix, "f32")
            elif codec == "f16":
                add_dense(full, matrix, "f16")
            elif name == "w_down":
                payload, extra = _encode_q8(matrix)
                writer.add(full, "q8_tile", matrix.shape, payload, extra)
            else:
                payload, extra = _encode_q4(matrix)
                writer.add(full, "q4_tile", matrix.shape, payload, extra)

    header = json.dumps({
        "config": _config_to_dict(weights.config),
        "codec": codec,
        "tensors": writer.index,
    }).encode("utf-8")
    path = Path(path)
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(np.uint32(len(header)).tobytes())
        f.write(header)
        for chunk in writer.chunks:
            f.write(chunk)
    return path.stat().st_size


def _read_header(path) -> Tuple[Dict, int]:
    with open(path, "rb") as f:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ModelConfigError(
                f"{path} is not a repro checkpoint (bad magic {magic!r})")
        header_len = int(np.frombuffer(f.read(4), dtype=np.uint32)[0])
        header = json.loads(f.read(header_len).decode("utf-8"))
    return header, len(_MAGIC) + 4 + header_len


def checkpoint_info(path) -> Dict:
    """Header metadata: config, codec, tensor index."""
    header, _ = _read_header(path)
    return header


def load_checkpoint(path) -> TransformerWeights:
    """Load a checkpoint back into :class:`TransformerWeights`.

    Quantized tensors dequantize on load (the master weights of a ``q4``
    file are the quantize-dequantize round-trip, exactly what the NPU
    computes with).
    """
    header, blob_start = _read_header(path)
    config = _config_from_dict(header["config"])
    blob = Path(path).read_bytes()[blob_start:]

    def payload(entry: Dict) -> bytes:
        return blob[entry["offset"]:entry["offset"] + entry["nbytes"]]

    tensors: Dict[str, np.ndarray] = {}
    for entry in header["tensors"]:
        raw = payload(entry)
        shape = tuple(entry["shape"])
        codec = entry["codec"]
        if codec == "f16":
            tensors[entry["name"]] = np.frombuffer(raw, dtype=np.float16) \
                .reshape(shape).astype(np.float32)
        elif codec == "f32":
            tensors[entry["name"]] = np.frombuffer(raw, dtype=np.float32) \
                .reshape(shape).copy()
        elif codec == "q4_tile":
            tensors[entry["name"]] = _decode_q4(raw, shape, entry)
        elif codec == "q8_tile":
            tensors[entry["name"]] = _decode_q8(raw, shape, entry)
        else:
            raise ModelConfigError(f"unknown tensor codec {codec!r}")

    layers = []
    for i in range(config.n_layers):
        layer = {}
        for name in list(config.projection_shapes()) + ["norm_attn",
                                                        "norm_ffn"]:
            layer[name] = tensors[f"layers.{i}.{name}"]
        layers.append(layer)
    embedding = tensors["embedding"]
    lm_head = embedding.T.copy() if config.tie_embeddings \
        else tensors["lm_head"]
    return TransformerWeights(config=config, embedding=embedding,
                              lm_head=lm_head,
                              final_norm=tensors["final_norm"],
                              layers=layers)
