"""LLM layer: model configs, transformer, KV cache, engine, metrics.

* :mod:`repro.llm.config` — the evaluated Qwen2.5 / Llama3.2 geometries.
* :mod:`repro.llm.model` — the GQA transformer on the NPU simulator.
* :mod:`repro.llm.kv_cache` — batched FP16 KV cache with prompt forking.
* :mod:`repro.llm.block_pool` — paged KV blocks with copy-on-write forks.
* :mod:`repro.llm.engine` — prefill / batched decode orchestration.
* :mod:`repro.llm.scheduler` — continuous-batching (waved Best-of-N) decode.
* :mod:`repro.llm.sampler` / :mod:`repro.llm.tokenizer` — generation glue.
* :mod:`repro.llm.perplexity` — PPL and KL metrics for accuracy tables.
"""

from .block_pool import (
    BlockPool,
    PagedKVCache,
    PagedLayerKVCache,
    QuantizedPagedLayerKVCache,
)
from .config import MODEL_CONFIGS, ModelConfig, get_model_config, tiny_config
from .dispatch import BackendDecision, BackendSelector
from .engine import GenerationResult, InferenceEngine
from .kv_cache import KVCache, LayerKVCache, QuantizedLayerKVCache
from .model import NPUTransformer, StepCost, TransformerWeights, reference_forward
from .scheduler import (
    ContinuousBatchingScheduler,
    PromptAdmission,
    ScheduledGeneration,
    WavePlan,
    plan_waves,
)
from .perplexity import mean_kl_divergence, perplexity, top1_agreement
from .sampler import Sampler, softmax_logits
from .speculative import SpeculativeDecoder, SpeculativeResult
from .tokenizer import ByteTokenizer

__all__ = [
    "MODEL_CONFIGS",
    "ModelConfig",
    "get_model_config",
    "tiny_config",
    "BlockPool",
    "PagedKVCache",
    "PagedLayerKVCache",
    "QuantizedPagedLayerKVCache",
    "BackendDecision",
    "BackendSelector",
    "ContinuousBatchingScheduler",
    "PromptAdmission",
    "ScheduledGeneration",
    "WavePlan",
    "plan_waves",
    "GenerationResult",
    "InferenceEngine",
    "KVCache",
    "LayerKVCache",
    "QuantizedLayerKVCache",
    "NPUTransformer",
    "StepCost",
    "TransformerWeights",
    "reference_forward",
    "mean_kl_divergence",
    "perplexity",
    "top1_agreement",
    "Sampler",
    "SpeculativeDecoder",
    "SpeculativeResult",
    "softmax_logits",
    "ByteTokenizer",
]
